//! `r2c` — command-line driver for the R²C toolchain.
//!
//! ```text
//! r2c run <file.ir> [--seed N] [--baseline|--full|--push|--hardened]
//!                   [--machine i9|rome|tr|xeon] [--stats]
//! r2c disasm <file.ir> [--seed N] [--baseline|--full|--push]
//! r2c layout <file.ir> [--seed N]        # section map + symbols
//! r2c interp <file.ir>                   # reference interpreter
//! ```
//!
//! The input is the textual IR format of `r2c-ir` (see the parser docs
//! for the grammar; `examples/quickstart.rs` shows a complete program).

use std::process::ExitCode;

use r2c_repro::core::{R2cCompiler, R2cConfig};
use r2c_repro::ir;
use r2c_repro::vm::{disasm, ExitStatus, MachineKind, Vm, VmConfig};

struct Args {
    cmd: String,
    file: String,
    seed: u64,
    config: String,
    machine: MachineKind,
    stats: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: r2c <run|disasm|layout|interp> <file.ir> \
         [--seed N] [--baseline|--full|--push|--hardened] \
         [--machine i9|rome|tr|xeon] [--stats]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().ok_or_else(usage)?;
    let file = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        cmd,
        file,
        seed: 1,
        config: "full".into(),
        machine: MachineKind::EpycRome,
        stats: false,
    };
    let mut rest: Vec<String> = argv.collect();
    while let Some(flag) = rest.first().cloned() {
        rest.remove(0);
        match flag.as_str() {
            "--seed" => {
                let v = rest.first().cloned().ok_or_else(usage)?;
                rest.remove(0);
                args.seed = v.parse().map_err(|_| usage())?;
            }
            "--baseline" | "--full" | "--push" | "--hardened" => {
                args.config = flag.trim_start_matches("--").to_string();
            }
            "--machine" => {
                let v = rest.first().cloned().ok_or_else(usage)?;
                rest.remove(0);
                args.machine = match v.as_str() {
                    "i9" => MachineKind::I9_9900K,
                    "rome" => MachineKind::EpycRome,
                    "tr" => MachineKind::Tr3970X,
                    "xeon" => MachineKind::Xeon8358,
                    _ => return Err(usage()),
                };
            }
            "--stats" => args.stats = true,
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn config_of(args: &Args) -> R2cConfig {
    match args.config.as_str() {
        "baseline" => R2cConfig::baseline(args.seed),
        "push" => R2cConfig::full_push(args.seed),
        "hardened" => R2cConfig {
            diversify: r2c_repro::core::DiversifyConfig::hardened(2),
            seed: args.seed,
            check: cfg!(debug_assertions),
            check_decode: cfg!(debug_assertions),
        },
        _ => R2cConfig::full(args.seed),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("r2c: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let module = match ir::parse_module(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("r2c: parse error in {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = ir::verify_module(&module) {
        eprintln!("r2c: invalid module: {e}");
        return ExitCode::FAILURE;
    }

    match args.cmd.as_str() {
        "interp" => match ir::interpret(&module, "main", 2_000_000_000) {
            Ok(r) => {
                for v in &r.output {
                    println!("{v}");
                }
                println!(
                    "(exit {}; {} IR instructions, {} calls)",
                    r.ret, r.executed, r.calls
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("r2c: interpreter error: {e}");
                ExitCode::FAILURE
            }
        },
        "run" => {
            let image = match R2cCompiler::new(config_of(&args)).build(&module) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("r2c: compile error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut vm = Vm::new(&image, VmConfig::new(args.machine.config()));
            let out = vm.run();
            for v in &vm.output {
                println!("{v}");
            }
            if args.stats {
                let s = out.stats;
                eprintln!(
                    "(cycles {:.0}; instructions {}; calls {}; icache miss rate {:.2}%; maxrss {} KiB)",
                    s.cycles_f64(),
                    s.instructions,
                    s.calls,
                    100.0 * s.icache_miss_rate(),
                    s.max_rss_bytes() / 1024
                );
            }
            match out.status {
                ExitStatus::Exited(code) => {
                    eprintln!("(exit {code})");
                    ExitCode::SUCCESS
                }
                other => {
                    eprintln!("r2c: program died: {other:?}");
                    ExitCode::FAILURE
                }
            }
        }
        "disasm" => match R2cCompiler::new(config_of(&args)).build(&module) {
            Ok(image) => {
                print!("{}", disasm::dump_image(&image));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("r2c: compile error: {e}");
                ExitCode::FAILURE
            }
        },
        "layout" => match R2cCompiler::new(config_of(&args)).build(&module) {
            Ok(image) => {
                let mut syms = image.symbols.clone();
                syms.sort_by_key(|s| s.addr);
                println!(
                    "text {:#x}..{:#x}  data {:#x}..{:#x}  entry {:#x}  xom {}",
                    image.layout.text_base,
                    image.layout.text_end,
                    image.layout.data_base,
                    image.layout.data_end,
                    image.entry,
                    image.xom
                );
                for s in syms {
                    println!("{:#014x} {:>6}  {:?}  {}", s.addr, s.size, s.kind, s.name);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("r2c: compile error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
