//! # r2c-repro — reproduction of *R²C: AOCR-Resilient Diversity with
//! Reactive and Reflective Camouflage* (EuroSys '23)
//!
//! This facade crate re-exports the workspace: see the README for the
//! architecture and DESIGN.md for the system inventory and experiment
//! index.
//!
//! * [`vm`] — the simulated x86-64-style machine (paged memory with
//!   R/W/X permissions, execute-only text, guard pages, cost models for
//!   the paper's four evaluation machines).
//! * [`ir`] — the compiler IR (builder, textual parser/printer,
//!   verifier, reference interpreter).
//! * [`codegen`] — the backend (register allocation, frame layout, call
//!   lowering, linking) with R²C's diversification hooks.
//! * [`core`] — R²C itself: [`core::R2cCompiler`] applies BTRAs, BTDPs,
//!   NOP/trap insertion and layout randomization.
//! * [`attacks`] — ROP, JIT-ROP, AOCR, Blind ROP and PIROP, run against
//!   real images under the paper's threat model.
//! * [`baselines`] — executable models of the Table 3 defenses.
//! * [`workloads`] — SPEC-CPU-2017-profiled synthetic benchmarks, the
//!   web-server workload, and the checked-in captured workloads.
//! * [`replay`] — the record-reduce-replay pipeline that captures
//!   traced executions and re-emits them as standalone benchmark
//!   workloads.
//!
//! ## Quick start
//!
//! ```
//! use r2c_repro::core::{R2cCompiler, R2cConfig};
//! use r2c_repro::vm::{MachineKind, Vm, VmConfig};
//!
//! let src = "func @main(0) {\nentry:\n  %0 = const 7\n  ret %0\n}\n";
//! let module = r2c_repro::ir::parse_module(src).unwrap();
//! let image = R2cCompiler::new(R2cConfig::full(1)).build(&module).unwrap();
//! let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
//! assert_eq!(vm.run().status, r2c_repro::vm::ExitStatus::Exited(7));
//! ```

pub use r2c_attacks as attacks;
pub use r2c_baselines as baselines;
pub use r2c_codegen as codegen;
pub use r2c_core as core;
pub use r2c_ir as ir;
pub use r2c_replay as replay;
pub use r2c_vm as vm;
pub use r2c_workloads as workloads;
