//! Structure-aware IR generator.
//!
//! The existing property tests (`tests/proptest_pipeline.rs`) draw from
//! a deliberately narrow recipe: acyclic call DAGs, straight-line
//! bodies, one bounded loop shape. This generator goes after the
//! control-flow and data-flow corners that recipe can never reach:
//!
//! * **recursion** — direct and mutual, bounded by an explicit runtime
//!   depth budget threaded through every call as the second parameter;
//! * **irregular CFGs** — diamonds, self-looping single-block loops
//!   (the PR 1 interpreter-hang shape), nested loops whose outer
//!   increment lives in the inner loop's continuation block, and
//!   unreachable empty self-looping blocks;
//! * **memory traffic** — masked in-bounds reads/writes of data
//!   globals, stack slots reused across constructs, short-lived heap
//!   blocks (`malloc`/`memalign` + `free`);
//! * **extern-call boundaries** — `print`/`putchar`/`probe` sprinkled
//!   mid-function so caller-save handling is exercised, not just frame
//!   setup;
//! * **register pressure** — bursts of simultaneously-live values wide
//!   enough to force spills under every machine's register budget.
//!
//! Everything is derived deterministically from one `u64` case seed.
//!
//! ## The pointer-class discipline
//!
//! The differential oracle compares guest output and final global bytes
//! between the reference interpreter and the compiled VM — two worlds
//! whose *address spaces* are unrelated. A generated program must
//! therefore never let a pointer-valued datum become observable: no
//! printing pointers, no storing them to globals, no returning them, no
//! folding them into integer arithmetic. The generator enforces this by
//! construction: integer and pointer values live in disjoint pools, and
//! only integers ever reach `store`d data, `print`, or `ret`.

use r2c_ir::{
    BinOp, CmpOp, ExternFn, FuncId, FunctionBuilder, GlobalId, GlobalInit, Module, ModuleBuilder,
    Val,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Shape knobs for one generated module. Sampled per case seed by
/// [`GenConfig::sampled`]; fixed values can be supplied for targeted
/// tests.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of helper functions (call targets; recursion allowed).
    pub helpers: usize,
    /// Runtime call-depth budget `main` passes to root calls. Every
    /// call site passes `depth - 1` and is guarded by `depth > 0`, so
    /// this bounds the call-tree depth regardless of the (possibly
    /// cyclic) static call graph.
    pub call_depth: i64,
    /// Maximum trip count of any generated loop.
    pub loop_iters: i64,
    /// Structured constructs (straight burst, diamond, loop, call,
    /// extern burst) per function body.
    pub constructs_per_fn: usize,
    /// Expression-burst length (instructions per burst before folding).
    pub burst_len: usize,
    /// Simultaneously-live values per pressure burst (forces spills
    /// once it exceeds the machine's allocatable registers).
    pub pressure: usize,
    /// Words in the initialized `tab` global (power of two).
    pub tab_words: usize,
    /// Words in the zero-initialized `arr` global (power of two).
    pub arr_words: usize,
    /// Emit extern-call bursts (heap traffic, mid-function output).
    pub use_extern: bool,
    /// Emit indirect calls (via `funcref` and a function-pointer
    /// global).
    pub use_indirect: bool,
    /// If set, add a linearly self-recursive function called from
    /// `main` with this depth — deep enough to push the compiled stack
    /// toward the guard page without overflowing it.
    pub deep_recursion: Option<i64>,
    /// Emit setjmp/longjmp-style unwinding: a module-level unwind flag
    /// that helpers raise data-dependently and check mid-function,
    /// early-returning through multiple diversified frames when set.
    pub use_unwind: bool,
    /// Emit an attacker-writable function-pointer slot: a mutable
    /// funcptr global that is *overwritten at runtime* with a freshly
    /// taken function address and then called through — the
    /// code-pointer-in-writable-data shape AOCR corrupts.
    pub use_fptr_slot: bool,
    /// Length of heap aliasing chains (0 = off): `malloc`ed blocks
    /// linked through stored pointers, walked back through loads so two
    /// pointer names alias one block, freed in shuffled order.
    pub heap_chain: usize,
    /// Probability that a function (helpers *and* `main`) is emitted
    /// with `no_instrument` — compiled but left undiversified. 1.0
    /// produces fully plain modules, exercising the protected/plain
    /// call boundary and the §5.2 skip paths.
    pub plain_fns: f64,
}

impl GenConfig {
    /// Draws a config from `rng`, covering the whole supported shape
    /// space over many case seeds.
    pub fn sampled(rng: &mut SmallRng) -> GenConfig {
        GenConfig {
            helpers: rng.gen_range(1..=5usize),
            call_depth: rng.gen_range(0..=4i64),
            loop_iters: rng.gen_range(1..=6i64),
            constructs_per_fn: rng.gen_range(1..=5usize),
            burst_len: rng.gen_range(2..=8usize),
            pressure: rng.gen_range(2..=18usize),
            tab_words: 1 << rng.gen_range(3..=6u32),
            arr_words: 1 << rng.gen_range(3..=6u32),
            use_extern: rng.gen_bool(0.8),
            use_indirect: rng.gen_bool(0.5),
            deep_recursion: if rng.gen_bool(0.25) {
                Some(rng.gen_range(8..=200i64))
            } else {
                None
            },
            use_unwind: rng.gen_bool(0.4),
            use_fptr_slot: rng.gen_bool(0.4),
            heap_chain: if rng.gen_bool(0.35) {
                rng.gen_range(2..=5usize)
            } else {
                0
            },
            plain_fns: if rng.gen_bool(0.1) { 0.5 } else { 0.06 },
        }
    }
}

/// Generates one module from a case seed (config sampled from the same
/// seed).
pub fn generate(case_seed: u64) -> Module {
    let mut rng = SmallRng::seed_from_u64(case_seed);
    let cfg = GenConfig::sampled(&mut rng);
    generate_with(&cfg, &mut rng)
}

/// Generates a module with an explicit shape config (for targeted
/// tests); `rng` supplies all remaining choices.
pub fn generate_with(cfg: &GenConfig, rng: &mut SmallRng) -> Module {
    Gen { rng, cfg }.module()
}

const BIN_OPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Sar,
];

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// The module-level data globals every body emitter addresses.
#[derive(Clone, Copy)]
struct DataGlobals {
    /// Initialized read-only word table.
    tab: GlobalId,
    /// Zero-initialized read-write word array.
    arr: GlobalId,
    /// Unwind-flag word (`use_unwind` only).
    uw: Option<GlobalId>,
    /// Attacker-writable function-pointer slot (`use_fptr_slot` only).
    fpslot: Option<GlobalId>,
}

/// Everything a body emitter may reference from any block: values
/// defined in the entry block (which dominates everything) plus the
/// module-level addresses. Integers and pointers are kept apart — see
/// the module docs on the pointer-class discipline.
struct BodyCtx {
    /// 16-byte accumulator slot: `+0` the running accumulator, `+8`
    /// scratch.
    acc: Val,
    /// 16-byte counter slot: `+0` outer-loop counter, `+8` inner.
    cnt: Val,
    /// Address of the initialized `tab` global.
    tab: Val,
    /// Address of the zero-initialized `arr` global.
    arr: Val,
    /// Address of the unwind-flag global, if the module has one.
    uw: Option<Val>,
    /// Address of the writable funcptr slot, if the module has one.
    fpslot: Option<Val>,
    /// Entry-defined integer values (params, constants).
    ints: Vec<Val>,
    /// The runtime depth-budget value (param 1, or a constant in
    /// `main`).
    depth: Val,
    /// Loop nesting level, selecting the counter-slot offset.
    loop_level: u32,
    /// Whether this body is `main` (no early unwind returns there —
    /// `main` raises and re-arms the flag instead).
    in_main: bool,
}

struct Gen<'a> {
    rng: &'a mut SmallRng,
    cfg: &'a GenConfig,
}

impl Gen<'_> {
    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.rng.gen_range(0..xs.len())]
    }

    /// A constant biased toward interesting magnitudes: small indices,
    /// bit masks, sign boundaries, full-width values.
    fn salt(&mut self) -> i64 {
        match self.rng.gen_range(0..6u32) {
            0 => self.rng.gen_range(-8..=8i64),
            1 => self.rng.gen_range(0..=255i64),
            2 => (1i64 << self.rng.gen_range(0..=62u32)) - self.rng.gen_range(0..=1i64),
            3 => -(1i64 << self.rng.gen_range(0..=62u32)),
            4 => self.rng.gen::<u32>() as i64,
            _ => self.rng.gen::<u64>() as i64,
        }
    }

    fn module(&mut self) -> Module {
        let mut mb = ModuleBuilder::new("fuzz");
        let tab_init: Vec<i64> = (0..self.cfg.tab_words).map(|_| self.salt()).collect();
        let tab = mb.global("tab", GlobalInit::Words(tab_init), 8);
        let arr = mb.global(
            "arr",
            GlobalInit::Zero((self.cfg.arr_words * 8) as u32),
            if self.rng.gen_bool(0.5) { 8 } else { 16 },
        );
        let uw = if self.cfg.use_unwind {
            Some(mb.global("uw", GlobalInit::Zero(8), 8))
        } else {
            None
        };

        let helpers: Vec<FuncId> = (0..self.cfg.helpers)
            .map(|i| mb.declare_function(&format!("f{i}"), 2))
            .collect();
        let deep = self
            .cfg
            .deep_recursion
            .map(|_| mb.declare_function("deep", 2));
        let fp_global = if self.cfg.use_indirect {
            let target = self.pick(&helpers);
            Some(mb.global("fp", GlobalInit::FuncPtr(target), 8))
        } else {
            None
        };
        let fpslot = if self.cfg.use_fptr_slot {
            let target = self.pick(&helpers);
            Some(mb.global("fpslot", GlobalInit::FuncPtr(target), 8))
        } else {
            None
        };
        let globals = DataGlobals {
            tab,
            arr,
            uw,
            fpslot,
        };

        for (i, &id) in helpers.iter().enumerate() {
            let mut fb = mb.function(&format!("f{i}"), 2);
            debug_assert_eq!(fb.id(), id);
            if self.rng.gen_bool(self.cfg.plain_fns) {
                fb.no_instrument();
            }
            let ctx = self.body_entry(&mut fb, globals, false);
            // Rotate the callee pool so index 0 is the ring-next helper;
            // `guarded_call` biases toward it, making mutual-recursion
            // cycles (f0→f1→…→f0) common instead of coincidental.
            let mut ring = helpers.clone();
            ring.rotate_left((i + 1) % helpers.len());
            self.emit_constructs(&mut fb, &ctx, &ring, fp_global);
            if helpers.len() > 1 && self.rng.gen_bool(0.6) {
                self.ring_call(&mut fb, &ctx, ring[0]);
            }
            let ret = fb.load(ctx.acc, 0);
            fb.ret(Some(ret));
            self.maybe_limbo(&mut fb);
            fb.finish();
        }

        if let (Some(id), Some(depth)) = (deep, self.cfg.deep_recursion) {
            self.emit_deep(&mut mb, id, depth);
        }

        self.emit_main(&mut mb, globals, &helpers, deep, fp_global);
        mb.finish()
    }

    /// Entry block shared by helpers and `main`: params (or stand-in
    /// constants), the accumulator and counter slots, global addresses,
    /// and a pool of constants.
    fn body_entry(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        globals: DataGlobals,
        is_main: bool,
    ) -> BodyCtx {
        let (x, depth) = if is_main {
            let x = fb.iconst(self.salt());
            let d = fb.iconst(self.cfg.call_depth);
            (x, d)
        } else {
            (fb.param(0), fb.param(1))
        };
        let acc = fb.alloca(16, if self.rng.gen_bool(0.5) { 8 } else { 16 });
        let cnt = fb.alloca(16, 8);
        fb.store(acc, 0, x);
        let scratch0 = fb.iconst(self.salt());
        fb.store(acc, 8, scratch0);
        let tab = fb.global_addr(globals.tab);
        let arr = fb.global_addr(globals.arr);
        let uw = globals.uw.map(|g| fb.global_addr(g));
        let fpslot = globals.fpslot.map(|g| fb.global_addr(g));
        let mut ints = vec![x, depth];
        for _ in 0..self.rng.gen_range(2..=5usize) {
            let c = self.salt();
            ints.push(fb.iconst(c));
        }
        BodyCtx {
            acc,
            cnt,
            tab,
            arr,
            uw,
            fpslot,
            ints,
            depth,
            loop_level: 0,
            in_main: is_main,
        }
    }

    fn emit_constructs(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        ctx: &BodyCtx,
        helpers: &[FuncId],
        fp_global: Option<GlobalId>,
    ) {
        let mut calls_left = 3u32;
        for _ in 0..self.cfg.constructs_per_fn {
            match self.rng.gen_range(0..13u32) {
                0..=2 => self.straight(fb, ctx),
                3..=4 => self.diamond(fb, ctx),
                5..=6 => {
                    let mut lvl = ctx.loop_level;
                    self.loop_construct(fb, ctx, &mut lvl);
                }
                7..=8 if calls_left > 0 => {
                    calls_left -= 1;
                    self.guarded_call(fb, ctx, helpers, fp_global);
                }
                9 if self.cfg.use_extern => self.extern_burst(fb, ctx),
                10 if ctx.uw.is_some() => self.unwind_construct(fb, ctx),
                11 if ctx.fpslot.is_some() && calls_left > 0 => {
                    calls_left -= 1;
                    self.fptr_slot_call(fb, ctx, helpers);
                }
                12 if self.cfg.heap_chain > 0 => self.heap_chain_construct(fb, ctx),
                _ => self.straight(fb, ctx),
            }
        }
    }

    /// A burst of integer expressions in the current block. Builds
    /// `pressure` simultaneously-live values, then folds them — the
    /// fold keeps every burst value live until consumed, forcing the
    /// register allocator to spill at high pressure settings.
    fn expr_burst(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx) -> Val {
        let mut local: Vec<Val> = ctx.ints.clone();
        let a0 = fb.load(ctx.acc, 0);
        local.push(a0);
        for _ in 0..self.cfg.burst_len {
            let v = self.expr_step(fb, ctx, &local);
            local.push(v);
        }
        // Pressure phase: widen, then fold.
        let base = local.len();
        for _ in 0..self.cfg.pressure {
            let a = self.pick(&local);
            let b = self.pick(&local);
            let op = self.pick(&BIN_OPS);
            local.push(fb.bin(op, a, b));
        }
        let mut folded = local[base];
        for &v in &local[base + 1..] {
            let op = self.pick(&[BinOp::Add, BinOp::Xor, BinOp::Sub]);
            folded = fb.bin(op, folded, v);
        }
        folded
    }

    /// One step of an expression burst: arithmetic, comparison, guarded
    /// division, or a masked in-bounds global/slot memory access.
    fn expr_step(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx, pool: &[Val]) -> Val {
        let a = self.pick(pool);
        let b = self.pick(pool);
        match self.rng.gen_range(0..10u32) {
            0..=3 => {
                let op = self.pick(&BIN_OPS);
                fb.bin(op, a, b)
            }
            4 => {
                let op = self.pick(&CMP_OPS);
                fb.cmp(op, a, b)
            }
            5 => {
                // Guarded division: divisor masked into 1..=255, so it
                // is nonzero and positive in both execution worlds.
                let mask = fb.iconst(0xff);
                let one = fb.iconst(1);
                let low = fb.bin(BinOp::And, b, mask);
                let div = fb.bin(BinOp::Or, low, one);
                let op = self.pick(&[BinOp::Div, BinOp::Rem]);
                fb.bin(op, a, div)
            }
            6 => self.global_read(fb, ctx, a),
            7 => {
                self.global_write(fb, ctx, a, b);
                fb.load(ctx.acc, 8)
            }
            8 => fb.load(ctx.acc, self.pick(&[0, 8])),
            _ => {
                fb.store(ctx.acc, 8, a);
                fb.bin(BinOp::Xor, a, b)
            }
        }
    }

    /// Masked in-bounds read of `tab` or `arr`.
    fn global_read(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx, idx_src: Val) -> Val {
        let (base, words) = if self.rng.gen_bool(0.5) {
            (ctx.tab, self.cfg.tab_words)
        } else {
            (ctx.arr, self.cfg.arr_words)
        };
        let mask = fb.iconst(words as i64 - 1);
        let idx = fb.bin(BinOp::And, idx_src, mask);
        let p = fb.ptr_add(base, Some(idx), 8, 0);
        fb.load(p, 0)
    }

    /// Masked in-bounds write to `arr` (never `tab`, so initialized
    /// data survives as load material; never a pointer value — `val`
    /// comes from the integer pool).
    fn global_write(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        ctx: &BodyCtx,
        idx_src: Val,
        val: Val,
    ) {
        let mask = fb.iconst(self.cfg.arr_words as i64 - 1);
        let idx = fb.bin(BinOp::And, idx_src, mask);
        let p = fb.ptr_add(ctx.arr, Some(idx), 8, 0);
        fb.store(p, 0, val);
    }

    /// Straight-line construct: burst, store to the accumulator.
    fn straight(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx) {
        let v = self.expr_burst(fb, ctx);
        fb.store(ctx.acc, 0, v);
    }

    /// Diamond: compare the accumulator against a pool value, run a
    /// different burst in each arm, rejoin.
    fn diamond(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx) {
        let a = fb.load(ctx.acc, 0);
        let t = self.pick(&ctx.ints);
        let op = self.pick(&CMP_OPS);
        let c = fb.cmp(op, a, t);
        let then_b = fb.new_block("then");
        let else_b = fb.new_block("else");
        let join = fb.new_block("join");
        fb.cond_br(c, then_b, else_b);
        for arm in [then_b, else_b] {
            fb.switch_to(arm);
            let v = self.expr_burst(fb, ctx);
            let s = fb.iconst(self.salt());
            let op = self.pick(&[BinOp::Add, BinOp::Xor]);
            let v = fb.bin(op, v, s);
            fb.store(ctx.acc, 0, v);
            fb.br(join);
        }
        fb.switch_to(join);
    }

    /// Bounded counting loop. The non-nested form is a single
    /// self-looping block (`header -> header | exit`) — the shape whose
    /// empty variant hung the seed interpreter (PR 1). With one level
    /// of nesting, the outer increment is emitted in the inner loop's
    /// continuation block, giving the irregular header/latch split.
    fn loop_construct(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx, level: &mut u32) {
        let off = (*level * 8) as i32;
        let zero = fb.iconst(0);
        fb.store(ctx.cnt, off, zero);
        let header = fb.new_block("loop");
        let exit = fb.new_block("done");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.load(ctx.cnt, off);
        let v = self.expr_burst(fb, ctx);
        let mixed = fb.bin(BinOp::Add, v, i);
        fb.store(ctx.acc, 0, mixed);
        if self.rng.gen_bool(0.5) {
            self.global_write(fb, ctx, i, mixed);
        }
        if *level == 0 && self.rng.gen_bool(0.35) {
            // Nested loop: after the inner loop exits, control is in
            // its continuation block, where the outer increment lands.
            *level = 1;
            self.loop_construct(fb, ctx, level);
            *level = 0;
        }
        let one = fb.iconst(1);
        let next = fb.bin(BinOp::Add, i, one);
        fb.store(ctx.cnt, off, next);
        let lim = fb.iconst(self.rng.gen_range(1..=self.cfg.loop_iters));
        let c = fb.cmp(CmpOp::Lt, next, lim);
        fb.cond_br(c, header, exit);
        fb.switch_to(exit);
    }

    /// Depth-guarded *direct* call to the ring-next helper, emitted at
    /// the tail of most helper bodies: together these close a
    /// call-graph cycle through every helper, so mutual recursion is a
    /// common generated shape rather than a lucky draw.
    fn ring_call(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx, callee: FuncId) {
        let zero = fb.iconst(0);
        let c = fb.cmp(CmpOp::Gt, ctx.depth, zero);
        let docall = fb.new_block("ringcall");
        let join = fb.new_block("ringjoin");
        fb.cond_br(c, docall, join);
        fb.switch_to(docall);
        let a = fb.load(ctx.acc, 0);
        let one = fb.iconst(1);
        let d1 = fb.bin(BinOp::Sub, ctx.depth, one);
        let r = fb.call(callee, &[a, d1]);
        let mixed = fb.bin(BinOp::Xor, r, a);
        fb.store(ctx.acc, 0, mixed);
        fb.br(join);
        fb.switch_to(join);
    }

    /// Depth-guarded call: `if depth > 0 { acc ^= callee(acc, depth-1) }`.
    /// The callee may be any helper — including the caller itself —
    /// so direct and mutual recursion arise naturally, terminated by
    /// the strictly-decreasing depth budget.
    fn guarded_call(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        ctx: &BodyCtx,
        helpers: &[FuncId],
        fp_global: Option<GlobalId>,
    ) {
        let zero = fb.iconst(0);
        let c = fb.cmp(CmpOp::Gt, ctx.depth, zero);
        let docall = fb.new_block("call");
        let join = fb.new_block("nocall");
        fb.cond_br(c, docall, join);
        fb.switch_to(docall);
        let a = fb.load(ctx.acc, 0);
        let one = fb.iconst(1);
        let d1 = fb.bin(BinOp::Sub, ctx.depth, one);
        // Helpers pass a rotated pool (ring-next first); biasing toward
        // it closes call-graph cycles across functions.
        let callee = if helpers.len() > 1 && self.rng.gen_bool(0.4) {
            helpers[0]
        } else {
            self.pick(helpers)
        };
        let r = match self.rng.gen_range(0..4u32) {
            0 if self.cfg.use_indirect => {
                let p = fb.func_addr(callee);
                fb.call_ind(p, &[a, d1])
            }
            1 if fp_global.is_some() => {
                let ga = fb.global_addr(fp_global.unwrap());
                let p = fb.load(ga, 0);
                fb.call_ind(p, &[a, d1])
            }
            _ => fb.call(callee, &[a, d1]),
        };
        let mixed = fb.bin(BinOp::Xor, r, a);
        fb.store(ctx.acc, 0, mixed);
        fb.br(join);
        fb.switch_to(join);
    }

    /// Extern traffic: a short-lived heap block with stores/loads, or
    /// mid-function output, or a probe point.
    fn extern_burst(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx) {
        match self.rng.gen_range(0..4u32) {
            0 => {
                let words = self.rng.gen_range(2..=8i64);
                let p = if self.rng.gen_bool(0.5) {
                    let sz = fb.iconst(words * 8);
                    fb.call_extern(ExternFn::Malloc, &[sz])
                } else {
                    let al = fb.iconst(if self.rng.gen_bool(0.5) { 16 } else { 32 });
                    let sz = fb.iconst(words * 8);
                    fb.call_extern(ExternFn::Memalign, &[al, sz])
                };
                let v = fb.load(ctx.acc, 0);
                let k = self.rng.gen_range(0..words);
                fb.store(p, (k * 8) as i32, v);
                let l = fb.load(p, (k * 8) as i32);
                let s = self.pick(&ctx.ints);
                let mixed = fb.bin(BinOp::Add, l, s);
                fb.store(ctx.acc, 0, mixed);
                fb.call_extern(ExternFn::Free, &[p]);
            }
            1 => {
                let v = fb.load(ctx.acc, 0);
                fb.call_extern(ExternFn::PrintI64, &[v]);
            }
            2 => {
                let v = fb.load(ctx.acc, 0);
                let mask = fb.iconst(0x7f);
                let ch = fb.bin(BinOp::And, v, mask);
                fb.call_extern(ExternFn::PutChar, &[ch]);
            }
            _ => {
                fb.call_extern(ExternFn::Probe, &[]);
            }
        }
    }

    /// Setjmp/longjmp-style unwinding over the module's `uw` flag
    /// global. Every body may *raise* the flag data-dependently
    /// (`uw |= ((acc ^ salt) & 7) == 3`); helpers additionally *check*
    /// it and early-return the accumulator when set, so a flag raised
    /// deep in the call tree cuts straight back up through several
    /// diversified frames — the epilogue-heavy control path a longjmp
    /// takes through BTRA-instrumented functions. `main` never
    /// early-returns; instead it sometimes clears the flag so later
    /// call trees run re-armed.
    fn unwind_construct(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx) {
        let uw = ctx.uw.expect("unwind construct needs the uw global");
        let a = fb.load(ctx.acc, 0);
        let s = fb.iconst(self.salt());
        let x = fb.bin(BinOp::Xor, a, s);
        let seven = fb.iconst(7);
        let m = fb.bin(BinOp::And, x, seven);
        let three = fb.iconst(3);
        let raised = fb.cmp(CmpOp::Eq, m, three);
        let old = fb.load(uw, 0);
        let nu = fb.bin(BinOp::Or, old, raised);
        fb.store(uw, 0, nu);
        if ctx.in_main {
            if self.rng.gen_bool(0.5) {
                let zero = fb.iconst(0);
                fb.store(uw, 0, zero);
            }
            return;
        }
        let flag = fb.load(uw, 0);
        let zero = fb.iconst(0);
        let c = fb.cmp(CmpOp::Ne, flag, zero);
        let unwind = fb.new_block("unwind");
        let cont = fb.new_block("cont");
        fb.cond_br(c, unwind, cont);
        fb.switch_to(unwind);
        let rv = fb.load(ctx.acc, 0);
        fb.ret(Some(rv));
        fb.switch_to(cont);
    }

    /// Attacker-writable code-pointer slot: overwrite the mutable
    /// `fpslot` global with a freshly taken function address at
    /// runtime, then make a depth-guarded indirect call through it.
    /// This is exactly the code-pointer-in-writable-data shape an AOCR
    /// write primitive corrupts, so the fuzzer must prove diversified
    /// variants keep it working.
    fn fptr_slot_call(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx, helpers: &[FuncId]) {
        let slot = ctx.fpslot.expect("fptr-slot construct needs the slot");
        let target = self.pick(helpers);
        let t = fb.func_addr(target);
        fb.store(slot, 0, t);
        let zero = fb.iconst(0);
        let c = fb.cmp(CmpOp::Gt, ctx.depth, zero);
        let docall = fb.new_block("slotcall");
        let join = fb.new_block("noslot");
        fb.cond_br(c, docall, join);
        fb.switch_to(docall);
        let a = fb.load(ctx.acc, 0);
        let one = fb.iconst(1);
        let d1 = fb.bin(BinOp::Sub, ctx.depth, one);
        let p = fb.load(slot, 0);
        let r = fb.call_ind(p, &[a, d1]);
        let mixed = fb.bin(BinOp::Add, r, a);
        fb.store(ctx.acc, 0, mixed);
        fb.br(join);
        fb.switch_to(join);
    }

    /// Heap aliasing chain: `heap_chain` malloc'd blocks linked through
    /// *stored pointers*, walked back through loads so the walk result
    /// aliases the last block under a different SSA name. A value is
    /// written through one name and read through the other, then the
    /// blocks are freed in a shuffled order. Pointers only ever live in
    /// heap memory here, which the oracle never compares — the
    /// pointer-class discipline holds.
    fn heap_chain_construct(&mut self, fb: &mut FunctionBuilder<'_>, ctx: &BodyCtx) {
        let n = self.cfg.heap_chain;
        debug_assert!(n >= 2);
        let blocks: Vec<Val> = (0..n)
            .map(|_| {
                let sz = fb.iconst(24);
                fb.call_extern(ExternFn::Malloc, &[sz])
            })
            .collect();
        for i in 0..n - 1 {
            fb.store(blocks[i], 0, blocks[i + 1]);
        }
        let v = fb.load(ctx.acc, 0);
        fb.store(blocks[n - 1], 8, v);
        // Walk the chain from the head: `q` ends up aliasing the tail.
        let mut q = blocks[0];
        for _ in 0..n - 1 {
            q = fb.load(q, 0);
        }
        let w = fb.load(q, 8);
        let s = self.pick(&ctx.ints);
        fb.store(q, 16, s);
        let r = fb.load(blocks[n - 1], 16);
        let m1 = fb.bin(BinOp::Xor, w, r);
        let old = fb.load(ctx.acc, 0);
        let mixed = fb.bin(BinOp::Add, old, m1);
        fb.store(ctx.acc, 0, mixed);
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for i in order {
            fb.call_extern(ExternFn::Free, &[blocks[i]]);
        }
    }

    /// Occasionally appends an unreachable, empty, self-looping block —
    /// legal IR the verifier accepts and codegen must compile without
    /// hanging or emitting garbage.
    fn maybe_limbo(&mut self, fb: &mut FunctionBuilder<'_>) {
        if self.rng.gen_bool(0.15) {
            let limbo = fb.new_block("limbo");
            fb.switch_to(limbo);
            fb.br(limbo);
        }
    }

    /// Linearly self-recursive function with a per-frame stack slot:
    /// `deep(x, d) = d > 0 ? deep(x + d, d - 1) + x : x`. Called from
    /// `main` with a depth large enough to stack a few hundred frames.
    fn emit_deep(&mut self, mb: &mut ModuleBuilder, id: FuncId, _depth: i64) {
        let mut fb = mb.function("deep", 2);
        let x = fb.param(0);
        let d = fb.param(1);
        let frame = fb.alloca(24, 8);
        fb.store(frame, 0, x);
        let zero = fb.iconst(0);
        let c = fb.cmp(CmpOp::Gt, d, zero);
        let rec = fb.new_block("rec");
        let base = fb.new_block("base");
        fb.cond_br(c, rec, base);
        fb.switch_to(rec);
        let one = fb.iconst(1);
        let d1 = fb.bin(BinOp::Sub, d, one);
        let x1 = fb.bin(BinOp::Add, x, d);
        let r = fb.call(id, &[x1, d1]);
        let saved = fb.load(frame, 0);
        let out = fb.bin(BinOp::Add, r, saved);
        fb.ret(Some(out));
        fb.switch_to(base);
        let saved = fb.load(frame, 0);
        fb.ret(Some(saved));
        fb.finish();
    }

    /// `main`: the same construct machinery as helpers (with constant
    /// stand-ins for the params), then root calls into the helper set,
    /// the optional deep-recursion call, an `arr` checksum loop, and a
    /// final print + return of the accumulator.
    fn emit_main(
        &mut self,
        mb: &mut ModuleBuilder,
        globals: DataGlobals,
        helpers: &[FuncId],
        deep: Option<FuncId>,
        fp_global: Option<GlobalId>,
    ) {
        let mut fb = mb.function("main", 0);
        if self.rng.gen_bool(self.cfg.plain_fns) {
            fb.no_instrument();
        }
        let ctx = self.body_entry(&mut fb, globals, true);
        self.emit_constructs(&mut fb, &ctx, helpers, fp_global);

        // Root calls with the full depth budget.
        for _ in 0..self.rng.gen_range(1..=3u32) {
            let seed = fb.iconst(self.salt());
            let callee = self.pick(helpers);
            let r = fb.call(callee, &[seed, ctx.depth]);
            let old = fb.load(ctx.acc, 0);
            let mixed = fb.bin(BinOp::Xor, old, r);
            fb.store(ctx.acc, 0, mixed);
        }
        if let (Some(id), Some(depth)) = (deep, self.cfg.deep_recursion) {
            let seed = fb.iconst(self.rng.gen_range(-64..=64i64));
            let d = fb.iconst(depth);
            let r = fb.call(id, &[seed, d]);
            let old = fb.load(ctx.acc, 0);
            let mixed = fb.bin(BinOp::Add, old, r);
            fb.store(ctx.acc, 0, mixed);
        }

        // Checksum every word of `arr` so that all the masked writes
        // scattered through the helpers become observable even without
        // the global-bytes comparison.
        let zero = fb.iconst(0);
        fb.store(ctx.cnt, 0, zero);
        let header = fb.new_block("ck");
        let fin = fb.new_block("fin");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.load(ctx.cnt, 0);
        let p = fb.ptr_add(ctx.arr, Some(i), 8, 0);
        let w = fb.load(p, 0);
        let old = fb.load(ctx.acc, 0);
        let t = fb.bin(BinOp::Xor, old, w);
        let nw = fb.bin(BinOp::Add, t, i);
        fb.store(ctx.acc, 0, nw);
        let one = fb.iconst(1);
        let next = fb.bin(BinOp::Add, i, one);
        fb.store(ctx.cnt, 0, next);
        let lim = fb.iconst(self.cfg.arr_words as i64);
        let c = fb.cmp(CmpOp::Lt, next, lim);
        fb.cond_br(c, header, fin);
        fb.switch_to(fin);
        let total = fb.load(ctx.acc, 0);
        fb.call_extern(ExternFn::PrintI64, &[total]);
        fb.ret(Some(total));
        self.maybe_limbo(&mut fb);
        fb.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::{interpret, verify_module};

    const FUEL: u64 = 20_000_000;

    #[test]
    fn generated_modules_verify() {
        for seed in 0..120 {
            let m = generate(seed);
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn generated_modules_terminate_in_reference() {
        for seed in 0..40 {
            let m = generate(seed);
            let r = interpret(&m, "main", FUEL);
            assert!(r.is_ok(), "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 7, 0xdead_beef] {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn shapes_are_actually_reached() {
        // Over a modest seed range the generator must produce each of
        // the structural features it advertises.
        let mut saw_recursion = false;
        let mut saw_indirect = false;
        let mut saw_deep = false;
        let mut saw_limbo = false;
        let mut saw_no_instrument = false;
        let mut saw_unwind = false;
        let mut saw_slot_call = false;
        let mut saw_heap_chain = false;
        for seed in 0..150u64 {
            let m = generate(seed);
            saw_deep |= m.funcs.iter().any(|f| f.name == "deep");
            saw_no_instrument |= m.funcs.iter().any(|f| f.no_instrument);
            for (fi, f) in m.funcs.iter().enumerate() {
                // A heap aliasing chain stores one malloc result into
                // another malloc'd block — a pointer stored to heap.
                let mut mallocs = std::collections::HashSet::new();
                for b in &f.blocks {
                    for (v, i) in &b.insts {
                        if let (
                            Some(v),
                            r2c_ir::Inst::CallExtern {
                                ext: ExternFn::Malloc,
                                ..
                            },
                        ) = (v, i)
                        {
                            mallocs.insert(*v);
                        }
                        if let r2c_ir::Inst::Store { val, .. } = i {
                            saw_heap_chain |= mallocs.contains(val);
                        }
                    }
                    let self_call = b.insts.iter().any(|(_, i)| {
                        matches!(i, r2c_ir::Inst::Call { callee, .. } if callee.0 as usize == fi)
                    });
                    saw_recursion |= self_call && f.name != "deep";
                    saw_indirect |= b
                        .insts
                        .iter()
                        .any(|(_, i)| matches!(i, r2c_ir::Inst::CallInd { .. }));
                    saw_limbo |= b.name == "limbo";
                    saw_unwind |= b.name == "unwind";
                    saw_slot_call |= b.name == "slotcall";
                }
            }
        }
        assert!(saw_recursion, "no helper recursion generated");
        assert!(saw_indirect, "no indirect calls generated");
        assert!(saw_deep, "no deep-recursion function generated");
        assert!(saw_limbo, "no unreachable self-loop generated");
        assert!(saw_no_instrument, "no no_instrument function generated");
        assert!(saw_unwind, "no unwind early-return generated");
        assert!(saw_slot_call, "no writable-slot indirect call generated");
        assert!(saw_heap_chain, "no heap aliasing chain generated");
    }
}
