//! Coverage feedback for the differential fuzzer.
//!
//! A fixed-size AFL-style bitmap fed from three feature sources:
//!
//! * **compiler edges** — [`r2c_core::CompileReport::coverage_features`]
//!   (passes run, log2-bucketed instrumentation counters) plus, when a
//!   build is rejected, one feature per `r2c-check` finding kind
//!   ([`r2c_check::CheckKind::name`], including the decode-TV class
//!   buckets);
//! * **VM edges** — execution statistics, engine-path counters
//!   ([`r2c_vm::EdgeStats`]: block runs, mid-run rollbacks, budget
//!   handoffs), the decoded-op (lowering-template / fusion-pattern)
//!   histogram, fault and detection kinds;
//! * **IR shape** — CFG features of the generated module itself
//!   (diamonds, loops and their nesting, direct/mutual recursion,
//!   indirect calls, extern boundaries, funcptr globals).
//!
//! Features are strings hashed (FNV-1a) into a `2^14`-bit map. Counter
//! features are bucketed by [`r2c_core::coverage_bucket`] before
//! hashing, so a case only lights a new bit when it moves a counter
//! into a new magnitude class. Everything is deterministic: same module
//! and build seed ⇒ same feature set ⇒ same bits.

use r2c_core::{coverage_bucket, observe_variant, BuildError, R2cConfig};
use r2c_ir::{GlobalInit, Inst, Module, Term};
use r2c_vm::{Detection, ExitStatus, Fault, MachineKind};

use crate::oracle::VARIANT_INSN_BUDGET;

/// Size of the coverage bitmap in bits (power of two).
pub const MAP_BITS: usize = 1 << 14;

/// The fuzzer's accumulated coverage: one bit per hashed feature.
#[derive(Clone, Debug, Default)]
pub struct CoverageMap {
    bits: Vec<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap {
            bits: vec![0u64; MAP_BITS / 64],
        }
    }

    /// Number of bits set.
    pub fn population(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the bit for `idx` set?
    pub fn contains(&self, idx: usize) -> bool {
        self.bits[(idx % MAP_BITS) / 64] & (1 << (idx % 64)) != 0
    }

    /// Sets the bit for `idx`; true if it was previously clear.
    fn set(&mut self, idx: usize) -> bool {
        let (w, m) = ((idx % MAP_BITS) / 64, 1u64 << (idx % 64));
        let fresh = self.bits[w] & m == 0;
        self.bits[w] |= m;
        fresh
    }

    /// How many bits of `cov` are not yet in the map (without merging).
    pub fn new_bits(&self, cov: &CaseCoverage) -> usize {
        let mut seen = std::collections::HashSet::new();
        cov.features
            .iter()
            .map(|f| feature_index(f))
            .filter(|&i| !self.contains(i) && seen.insert(i))
            .count()
    }

    /// Merges `cov` into the map; returns the number of newly set bits.
    pub fn merge(&mut self, cov: &CaseCoverage) -> usize {
        cov.features
            .iter()
            .map(|f| feature_index(f))
            .filter(|&i| self.set(i))
            .count()
    }
}

/// The coverage features one case produced (kept as strings so reports
/// and tests can see *what* was covered, not just which bit).
#[derive(Clone, Debug)]
pub struct CaseCoverage {
    /// Feature tokens; hash to map indices via [`feature_index`].
    pub features: Vec<String>,
}

/// Map index of one feature token (FNV-1a 64, reduced mod the map
/// size).
pub fn feature_index(feature: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in feature.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % MAP_BITS as u64) as usize
}

/// Full coverage extraction for one case: IR-shape features plus one
/// instrumented build + run of the `full` config under `build_seed` on
/// the default machine.
///
/// The instrumented cell is deliberately a *single* cell, not the whole
/// oracle matrix: coverage extraction must stay cheap enough to run on
/// every campaign case, and the `full` config exercises every
/// instrumentation source the map tracks.
pub fn case_coverage(module: &Module, build_seed: u64) -> CaseCoverage {
    let mut features = shape_features(module);
    features.extend(run_features(module, build_seed));
    CaseCoverage { features }
}

/// IR-shape features of the module itself (generator-side coverage).
pub fn shape_features(module: &Module) -> Vec<String> {
    let mut f = Vec::new();
    f.push(format!(
        "ir:funcs:{}",
        coverage_bucket(module.funcs.len() as u64)
    ));
    f.push(format!(
        "ir:globals:{}",
        coverage_bucket(module.globals.len() as u64)
    ));
    if module
        .globals
        .iter()
        .any(|g| matches!(g.init, GlobalInit::FuncPtr(_)))
    {
        f.push("ir:funcptr-global".to_string());
    }

    let (mut diamonds, mut backedges, mut insts) = (0u64, 0u64, 0u64);
    let mut max_loop_depth = 0u64;
    let mut direct_recursion = false;
    let mut indirect_calls = 0u64;
    let mut funcptr_store = false;
    let mut externs = std::collections::BTreeSet::new();
    // Call-graph adjacency for mutual-recursion detection.
    let n = module.funcs.len();
    let mut calls = vec![std::collections::BTreeSet::new(); n];
    for (fi, func) in module.funcs.iter().enumerate() {
        let mut func_backedges = 0u64;
        // FuncAddr results of this function, to spot code pointers
        // written into memory (the attacker-writable-slot shape).
        let mut code_ptrs = std::collections::HashSet::new();
        for (bi, b) in func.blocks.iter().enumerate() {
            insts += b.insts.len() as u64;
            for (v, i) in &b.insts {
                match i {
                    Inst::Call { callee, .. } => {
                        if callee.0 as usize == fi {
                            direct_recursion = true;
                        }
                        calls[fi].insert(callee.0 as usize);
                    }
                    Inst::CallInd { .. } => indirect_calls += 1,
                    Inst::CallExtern { ext, .. } => {
                        externs.insert(ext.name());
                    }
                    Inst::FuncAddr(_) => {
                        if let Some(v) = v {
                            code_ptrs.insert(*v);
                        }
                    }
                    Inst::Store { val, .. } => funcptr_store |= code_ptrs.contains(val),
                    _ => {}
                }
            }
            match b.term {
                Term::CondBr {
                    then_bb, else_bb, ..
                } => {
                    diamonds += 1;
                    if then_bb.0 as usize <= bi || else_bb.0 as usize <= bi {
                        func_backedges += 1;
                    }
                }
                Term::Br(t) => {
                    if t.0 as usize <= bi {
                        func_backedges += 1;
                    }
                }
                Term::Ret(_) => {}
            }
        }
        backedges += func_backedges;
        max_loop_depth = max_loop_depth.max(func_backedges);
    }
    f.push(format!("ir:insts:{}", coverage_bucket(insts)));
    f.push(format!("ir:diamonds:{}", coverage_bucket(diamonds)));
    f.push(format!("ir:loops:{}", coverage_bucket(backedges)));
    f.push(format!("ir:loop-depth:{}", coverage_bucket(max_loop_depth)));
    f.push(format!(
        "ir:indirect-calls:{}",
        coverage_bucket(indirect_calls)
    ));
    for e in externs {
        f.push(format!("ir:extern:{e}"));
    }
    if direct_recursion {
        f.push("ir:recursion:direct".to_string());
    }
    if funcptr_store {
        f.push("ir:funcptr-store".to_string());
    }
    // Mutual recursion: a call-graph cycle of length ≥ 2.
    if has_mutual_cycle(&calls) {
        f.push("ir:recursion:mutual".to_string());
    }
    f
}

/// Is there a call-graph cycle involving at least two distinct
/// functions?
fn has_mutual_cycle(calls: &[std::collections::BTreeSet<usize>]) -> bool {
    let n = calls.len();
    for start in 0..n {
        // Can `start` reach itself through at least one *other* node?
        let mut stack: Vec<usize> = calls[start]
            .iter()
            .copied()
            .filter(|&t| t != start)
            .collect();
        let mut seen = vec![false; n];
        while let Some(x) = stack.pop() {
            if x == start {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            stack.extend(calls[x].iter().copied());
        }
    }
    false
}

/// Compile- and execution-side features from one instrumented cell.
fn run_features(module: &Module, build_seed: u64) -> Vec<String> {
    match observe_variant(
        module,
        R2cConfig::full(build_seed),
        MachineKind::EpycRome,
        VARIANT_INSN_BUDGET,
    ) {
        Ok(obs) => {
            let mut f = obs.report.coverage_features();
            match obs.status {
                ExitStatus::Exited(_) => f.push("exit:ok".to_string()),
                ExitStatus::Probed => f.push("exit:probed".to_string()),
                ExitStatus::Faulted(fault) => {
                    f.push(format!("exit:fault:{}", fault_name(&fault)));
                    if fault.is_detection() {
                        f.push("exit:detection".to_string());
                    }
                }
            }
            for (name, v) in [
                ("instructions", obs.stats.instructions),
                ("cycles", obs.stats.cycles),
                ("calls", obs.stats.calls),
                ("native-calls", obs.stats.native_calls),
                ("rets", obs.stats.rets),
                ("icache-misses", obs.stats.icache_misses),
                ("max-rss-pages", obs.stats.max_rss_pages as u64),
                ("avx-transitions", obs.stats.avx_transitions),
                ("output-values", obs.output.len() as u64),
            ] {
                f.push(format!("stat:{name}:{}", coverage_bucket(v)));
            }
            for (name, v) in [
                ("runs-entered", obs.edges.runs_entered),
                ("run-rollbacks", obs.edges.run_rollbacks),
                ("slow-path-handoffs", obs.edges.slow_path_handoffs),
            ] {
                f.push(format!("edge:{name}:{}", coverage_bucket(v)));
            }
            for (kind, count) in &obs.op_kinds {
                f.push(format!("op:{kind}:{}", coverage_bucket(*count)));
            }
            for d in &obs.detections {
                f.push(match d {
                    Detection::BoobyTrap { .. } => "detect:booby-trap".to_string(),
                    Detection::GuardPage { .. } => "detect:guard-page".to_string(),
                });
            }
            f
        }
        Err(BuildError::Compile(_)) => vec!["build:compile-error".to_string()],
        Err(BuildError::Check { stage, errors }) => errors
            .iter()
            .map(|e| format!("check:{stage}:{}", e.kind.name()))
            .collect(),
    }
}

/// Stable name of a fault kind for coverage tokens.
pub fn fault_name(f: &Fault) -> &'static str {
    match f {
        Fault::Unmapped { .. } => "unmapped",
        Fault::Protection { .. } => "protection",
        Fault::InvalidJump { .. } => "invalid-jump",
        Fault::BoobyTrap { .. } => "booby-trap",
        Fault::Misaligned { .. } => "misaligned",
        Fault::DivideByZero { .. } => "divide-by-zero",
        Fault::BudgetExhausted => "budget-exhausted",
        Fault::StackOverflow { .. } => "stack-overflow",
        Fault::NativeError { .. } => "native-error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn map_basics() {
        let mut map = CoverageMap::new();
        assert_eq!(map.population(), 0);
        let cov = CaseCoverage {
            features: vec!["a".into(), "b".into(), "a".into()],
        };
        assert_eq!(map.new_bits(&cov), 2);
        assert_eq!(map.merge(&cov), 2);
        assert_eq!(map.population(), 2);
        assert_eq!(map.new_bits(&cov), 0);
        assert_eq!(map.merge(&cov), 0);
    }

    #[test]
    fn feature_extraction_is_deterministic() {
        for seed in [0u64, 3, 11] {
            let m = generate(seed);
            let a = case_coverage(&m, 1);
            let b = case_coverage(&m, 1);
            assert_eq!(a.features, b.features, "seed {seed}");
            assert!(!a.features.is_empty());
        }
    }

    #[test]
    fn shape_features_see_generator_shapes() {
        // Across a few seeds the shape extractor must light the
        // structural features the generator advertises.
        let mut all = std::collections::BTreeSet::new();
        for seed in 0..40u64 {
            for f in shape_features(&generate(seed)) {
                all.insert(f);
            }
        }
        for want in [
            "ir:recursion:direct",
            "ir:recursion:mutual",
            "ir:funcptr-global",
            "ir:funcptr-store",
            "ir:extern:malloc",
            "ir:extern:print",
        ] {
            assert!(all.contains(want), "missing {want}; have {all:?}");
        }
    }
}
