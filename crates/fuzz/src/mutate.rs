//! Verify-gated corpus mutations.
//!
//! Each mutator takes a well-formed module and produces a structural
//! variant: operand and immediate flips, block splices, CFG edge
//! rewires, call-target swaps, funcptr-global retargets. Raw mutants
//! may be arbitrarily broken — the public entry point [`mutate`] gates
//! every candidate exactly like the reducer gates its candidates:
//!
//! 1. `verify_module` accepts it (legal IR),
//! 2. it survives a printer → parser roundtrip unchanged (corpus
//!    entries are persisted as `.r2cir` text), and
//! 3. the reference interpreter runs it to completion within
//!    [`GATE_FUEL`] (well-defined, and strictly cheaper than the
//!    oracle's [`crate::oracle::REFERENCE_FUEL`], so an admitted mutant
//!    always replays under the oracle).
//!
//! Operand flips draw replacements only from entry-block `const`/
//! `param` values: the entry block dominates every use site, and those
//! values are integer-class by construction, so a flip can never leak a
//! pointer into compared data (the pointer-class discipline of
//! [`crate::gen`]). Everything else that could go wrong — out-of-bounds
//! masks, unbounded recursion from a flipped depth argument, dominance
//! breaks from a rewired edge — is caught by the gate and discarded.

use r2c_ir::{
    interpret, parse_module, print_module, verify_module, FuncId, GlobalInit, Inst, Module, Term,
    Val,
};
use rand::{rngs::SmallRng, Rng};

/// Interpreter fuel for the mutant gate. Below the oracle's
/// `REFERENCE_FUEL`, so gate-accepted modules always terminate under
/// the oracle too.
pub const GATE_FUEL: u64 = 10_000_000;

/// Which structural mutation was applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// An integer operand replaced by another entry-defined integer.
    OperandFlip,
    /// A `const` immediate flipped (bit flip, ±delta, negate, mask).
    ImmediateFlip,
    /// A block's instruction run duplicated (fresh value ids) onto the
    /// end of another block of the same function.
    BlockSplice,
    /// A branch edge retargeted to a different block.
    EdgeRewire,
    /// A conditional branch's arms swapped.
    ArmSwap,
    /// A direct call retargeted to another same-arity function.
    CallTargetSwap,
    /// A funcptr global retargeted to another same-arity function.
    FuncPtrRetarget,
}

const ALL_KINDS: [MutationKind; 7] = [
    MutationKind::OperandFlip,
    MutationKind::ImmediateFlip,
    MutationKind::BlockSplice,
    MutationKind::EdgeRewire,
    MutationKind::ArmSwap,
    MutationKind::CallTargetSwap,
    MutationKind::FuncPtrRetarget,
];

/// The mutant gate: legality, roundtrip fidelity, bounded well-defined
/// execution. Public so tests can assert what [`mutate`] promises.
pub fn gate(module: &Module) -> bool {
    if verify_module(module).is_err() {
        return false;
    }
    match parse_module(&print_module(module)) {
        Ok(rt) if &rt == module => {}
        _ => return false,
    }
    interpret(module, "main", GATE_FUEL).is_ok()
}

/// Applies one random mutation *without* gating; returns the mutant and
/// what was done, or `None` if the drawn mutator had no applicable site
/// (e.g. `FuncPtrRetarget` on a module without funcptr globals).
///
/// Exposed for tests; fuzzing goes through [`mutate`].
pub fn apply_random(module: &Module, rng: &mut SmallRng) -> Option<(Module, MutationKind)> {
    let kind = ALL_KINDS[rng.gen_range(0..ALL_KINDS.len())];
    let mut cand = module.clone();
    let applied = match kind {
        MutationKind::OperandFlip => operand_flip(&mut cand, rng),
        MutationKind::ImmediateFlip => immediate_flip(&mut cand, rng),
        MutationKind::BlockSplice => block_splice(&mut cand, rng),
        MutationKind::EdgeRewire => edge_rewire(&mut cand, rng),
        MutationKind::ArmSwap => arm_swap(&mut cand, rng),
        MutationKind::CallTargetSwap => call_target_swap(&mut cand, rng),
        MutationKind::FuncPtrRetarget => funcptr_retarget(&mut cand, rng),
    };
    applied.then_some((cand, kind))
}

/// Draws mutants until one passes the gate and actually differs from
/// the input, for at most `max_tries` attempts.
pub fn mutate(
    module: &Module,
    rng: &mut SmallRng,
    max_tries: usize,
) -> Option<(Module, MutationKind)> {
    for _ in 0..max_tries {
        if let Some((cand, kind)) = apply_random(module, rng) {
            if &cand != module && gate(&cand) {
                return Some((cand, kind));
            }
        }
    }
    None
}

/// Entry-block values that are integer-class by construction.
fn entry_int_vals(f: &r2c_ir::Function) -> Vec<Val> {
    f.blocks[0]
        .insts
        .iter()
        .filter_map(|(v, i)| match (v, i) {
            (Some(v), Inst::Const(_) | Inst::Param(_)) => Some(*v),
            _ => None,
        })
        .collect()
}

fn pick_func(m: &Module, rng: &mut SmallRng) -> usize {
    rng.gen_range(0..m.funcs.len())
}

fn operand_flip(m: &mut Module, rng: &mut SmallRng) -> bool {
    let fi = pick_func(m, rng);
    let pool = entry_int_vals(&m.funcs[fi]);
    if pool.is_empty() {
        return false;
    }
    // Collect the flippable integer-position operand slots.
    let mut sites: Vec<(usize, usize, u8)> = Vec::new();
    for (bi, b) in m.funcs[fi].blocks.iter().enumerate() {
        for (ii, (_, inst)) in b.insts.iter().enumerate() {
            match inst {
                Inst::Bin { .. } | Inst::Cmp { .. } => {
                    sites.push((bi, ii, 0));
                    sites.push((bi, ii, 1));
                }
                Inst::Store { .. } => sites.push((bi, ii, 0)),
                Inst::Call { args, .. }
                | Inst::CallInd { args, .. }
                | Inst::CallExtern { args, .. } => {
                    for k in 0..args.len().min(250) {
                        sites.push((bi, ii, 2 + k as u8));
                    }
                }
                _ => {}
            }
        }
    }
    if sites.is_empty() {
        return false;
    }
    let (bi, ii, slot) = sites[rng.gen_range(0..sites.len())];
    let repl = pool[rng.gen_range(0..pool.len())];
    let inst = &mut m.funcs[fi].blocks[bi].insts[ii].1;
    match (inst, slot) {
        (Inst::Bin { a, .. }, 0) | (Inst::Cmp { a, .. }, 0) => *a = repl,
        (Inst::Bin { b, .. }, 1) | (Inst::Cmp { b, .. }, 1) => *b = repl,
        (Inst::Store { val, .. }, 0) => *val = repl,
        (
            Inst::Call { args, .. } | Inst::CallInd { args, .. } | Inst::CallExtern { args, .. },
            k,
        ) => args[(k - 2) as usize] = repl,
        _ => return false,
    }
    true
}

fn immediate_flip(m: &mut Module, rng: &mut SmallRng) -> bool {
    let fi = pick_func(m, rng);
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (bi, b) in m.funcs[fi].blocks.iter().enumerate() {
        for (ii, (_, inst)) in b.insts.iter().enumerate() {
            if matches!(inst, Inst::Const(_)) {
                sites.push((bi, ii));
            }
        }
    }
    if sites.is_empty() {
        return false;
    }
    let (bi, ii) = sites[rng.gen_range(0..sites.len())];
    let Inst::Const(c) = &mut m.funcs[fi].blocks[bi].insts[ii].1 else {
        return false;
    };
    *c = match rng.gen_range(0..5u32) {
        0 => *c ^ (1i64 << rng.gen_range(0..64u32)),
        1 => c.wrapping_add(rng.gen_range(-16..=16i64)),
        2 => c.wrapping_neg(),
        3 => *c | ((1i64 << rng.gen_range(0..8u32)) - 1), // widen a mask
        _ => [0i64, 1, -1, 7, 255, i64::MAX, i64::MIN][rng.gen_range(0..7usize)],
    };
    true
}

fn block_splice(m: &mut Module, rng: &mut SmallRng) -> bool {
    let fi = pick_func(m, rng);
    let f = &mut m.funcs[fi];
    let src = rng.gen_range(0..f.blocks.len());
    let dst = rng.gen_range(0..f.blocks.len());
    if f.blocks[src].insts.is_empty() {
        return false;
    }
    let src_insts = f.blocks[src].insts.clone();
    // Re-number the spliced run's results; operands defined inside the
    // run follow, operands defined outside keep their original ids
    // (legal iff their definitions dominate `dst` — the gate decides).
    let mut map = std::collections::HashMap::new();
    let mut next = f.num_vals;
    let mut spliced = Vec::with_capacity(src_insts.len());
    for (v, inst) in src_insts {
        let mut inst = inst.clone();
        remap_operands(&mut inst, &map);
        let nv = v.map(|old| {
            let n = Val(next);
            next += 1;
            map.insert(old, n);
            n
        });
        spliced.push((nv, inst));
    }
    f.num_vals = next;
    f.blocks[dst].insts.extend(spliced);
    true
}

fn remap_operands(inst: &mut Inst, map: &std::collections::HashMap<Val, Val>) {
    let r = |v: &mut Val| {
        if let Some(n) = map.get(v) {
            *v = *n;
        }
    };
    match inst {
        Inst::Load { ptr, .. } => r(ptr),
        Inst::Store { ptr, val, .. } => {
            r(ptr);
            r(val);
        }
        Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
            r(a);
            r(b);
        }
        Inst::PtrAdd { base, idx, .. } => {
            r(base);
            if let Some(i) = idx {
                r(i);
            }
        }
        Inst::Call { args, .. } | Inst::CallExtern { args, .. } => args.iter_mut().for_each(r),
        Inst::CallInd { ptr, args } => {
            r(ptr);
            args.iter_mut().for_each(r);
        }
        Inst::Const(_) | Inst::Param(_) | Inst::Alloca { .. } => {}
        Inst::GlobalAddr(_) | Inst::FuncAddr(_) => {}
    }
}

fn edge_rewire(m: &mut Module, rng: &mut SmallRng) -> bool {
    let fi = pick_func(m, rng);
    let f = &mut m.funcs[fi];
    if f.blocks.len() < 2 {
        return false;
    }
    let bi = rng.gen_range(0..f.blocks.len());
    let new_target = r2c_ir::BlockId(rng.gen_range(0..f.blocks.len()) as u32);
    match &mut f.blocks[bi].term {
        Term::Br(t) => {
            if *t == new_target {
                return false;
            }
            *t = new_target;
        }
        Term::CondBr {
            then_bb, else_bb, ..
        } => {
            let arm = if rng.gen_bool(0.5) { then_bb } else { else_bb };
            if *arm == new_target {
                return false;
            }
            *arm = new_target;
        }
        Term::Ret(_) => return false,
    }
    true
}

fn arm_swap(m: &mut Module, rng: &mut SmallRng) -> bool {
    let fi = pick_func(m, rng);
    let f = &mut m.funcs[fi];
    let mut sites: Vec<usize> = (0..f.blocks.len())
        .filter(|&bi| matches!(f.blocks[bi].term, Term::CondBr { .. }))
        .collect();
    if sites.is_empty() {
        return false;
    }
    let bi = sites.remove(rng.gen_range(0..sites.len()));
    if let Term::CondBr {
        then_bb, else_bb, ..
    } = &mut f.blocks[bi].term
    {
        if then_bb == else_bb {
            return false;
        }
        std::mem::swap(then_bb, else_bb);
    }
    true
}

fn call_target_swap(m: &mut Module, rng: &mut SmallRng) -> bool {
    let mut sites: Vec<(usize, usize, usize)> = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, (_, inst)) in b.insts.iter().enumerate() {
                if matches!(inst, Inst::Call { .. }) {
                    sites.push((fi, bi, ii));
                }
            }
        }
    }
    if sites.is_empty() {
        return false;
    }
    let (fi, bi, ii) = sites[rng.gen_range(0..sites.len())];
    let Inst::Call { callee, .. } = &m.funcs[fi].blocks[bi].insts[ii].1 else {
        return false;
    };
    let arity = m.funcs[callee.0 as usize].params;
    let alternatives: Vec<FuncId> = m
        .funcs
        .iter()
        .enumerate()
        .filter(|(i, f)| f.params == arity && FuncId(*i as u32) != *callee)
        .map(|(i, _)| FuncId(i as u32))
        .collect();
    if alternatives.is_empty() {
        return false;
    }
    let new = alternatives[rng.gen_range(0..alternatives.len())];
    if let Inst::Call { callee, .. } = &mut m.funcs[fi].blocks[bi].insts[ii].1 {
        *callee = new;
    }
    true
}

fn funcptr_retarget(m: &mut Module, rng: &mut SmallRng) -> bool {
    let mut sites: Vec<usize> = (0..m.globals.len())
        .filter(|&gi| matches!(m.globals[gi].init, GlobalInit::FuncPtr(_)))
        .collect();
    if sites.is_empty() {
        return false;
    }
    let gi = sites.remove(rng.gen_range(0..sites.len()));
    let GlobalInit::FuncPtr(cur) = m.globals[gi].init else {
        return false;
    };
    let arity = m.funcs[cur.0 as usize].params;
    let alternatives: Vec<FuncId> = m
        .funcs
        .iter()
        .enumerate()
        .filter(|(i, f)| f.params == arity && FuncId(*i as u32) != cur)
        .map(|(i, _)| FuncId(i as u32))
        .collect();
    if alternatives.is_empty() {
        return false;
    }
    m.globals[gi].init = GlobalInit::FuncPtr(alternatives[rng.gen_range(0..alternatives.len())]);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use rand::SeedableRng;

    #[test]
    fn gated_mutants_stay_well_formed() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut produced = 0;
        for seed in 0..12u64 {
            let m = generate(seed);
            if let Some((mutant, _kind)) = mutate(&m, &mut rng, 16) {
                assert!(gate(&mutant));
                assert_ne!(mutant, m);
                produced += 1;
            }
        }
        assert!(produced >= 6, "only {produced}/12 modules yielded mutants");
    }

    #[test]
    fn ungated_mutants_exist_that_the_gate_rejects() {
        // The gate must actually be load-bearing: raw mutation output
        // contains ill-formed candidates.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut rejected = 0;
        for seed in 0..8u64 {
            let m = generate(seed);
            for _ in 0..40 {
                if let Some((cand, _)) = apply_random(&m, &mut rng) {
                    if cand != m && !gate(&cand) {
                        rejected += 1;
                    }
                }
            }
        }
        assert!(rejected > 0, "gate never rejected a raw mutant");
    }

    #[test]
    fn mutation_is_deterministic() {
        let m = generate(5);
        let a = mutate(&m, &mut SmallRng::seed_from_u64(9), 16);
        let b = mutate(&m, &mut SmallRng::seed_from_u64(9), 16);
        match (a, b) {
            (Some((ma, ka)), Some((mb, kb))) => {
                assert_eq!(ma, mb);
                assert_eq!(ka, kb);
            }
            (None, None) => {}
            other => panic!("nondeterministic mutate: {other:?}"),
        }
    }
}
