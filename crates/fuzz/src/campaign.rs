//! Coverage-guided campaign driver.
//!
//! A campaign is a deterministic function of its configuration: a
//! fixed case budget is drawn from a seed ladder (case seeds derive
//! from `base_seed` through one `SmallRng` stream), and each case is
//! either a *fresh* generated module or — in guided mode, once the
//! corpus is non-empty — a verify-gated mutant of an energy-weighted
//! corpus pick. Every case runs through the full differential oracle
//! matrix; passing cases have their coverage extracted
//! ([`crate::coverage::case_coverage`]) and merged into the campaign
//! map, and cases that light new bits are admitted to the corpus
//! (optionally minimized first with the delta-debug reducer, under a
//! predicate that preserves the new bits *and* the clean verdict, so
//! corpus entries always replay clean).
//!
//! Blind mode (`guided: false`) runs the identical pipeline minus the
//! feedback: no mutation, no admission — fresh generation only. The
//! coverage map is still tracked, which is what makes guided-vs-blind
//! A/B comparisons (equal case budget, same matrix) meaningful.

use std::path::PathBuf;

use r2c_ir::Module;
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::corpus::Corpus;
use crate::coverage::{case_coverage, feature_index, CoverageMap};
use crate::gen::{generate, generate_with, GenConfig};
use crate::mutate::mutate;
use crate::oracle::{run_oracle, summarize_divergences, CaseVerdict, Divergence, OracleMatrix};
use crate::reduce::reduce;

/// Everything a campaign run depends on. Same config ⇒ same campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Case budget.
    pub cases: u64,
    /// Base of the seed ladder; all randomness derives from it.
    pub base_seed: u64,
    /// Coverage feedback on (corpus evolution + mutation) or off
    /// (blind: fresh generation only).
    pub guided: bool,
    /// The oracle matrix every case runs through.
    pub matrix: OracleMatrix,
    /// Build seed of the instrumented coverage cell.
    pub coverage_build_seed: u64,
    /// Probability of mutating a corpus entry instead of generating
    /// fresh (guided mode, non-empty corpus).
    pub mutate_ratio: f64,
    /// Fixed generator shape for fresh cases; `None` samples a shape
    /// per case seed (the default fuzzing behavior).
    pub fresh_gen: Option<GenConfig>,
    /// Minimize coverage-admitted modules with the delta-debug reducer
    /// before admission (preserving new bits and the clean verdict).
    /// Costs one coverage extraction per reducer candidate.
    pub minimize: bool,
    /// Stop at the first diverging case (detection-latency A/B runs).
    pub stop_on_divergence: bool,
    /// Directory to mirror admitted entries into (`None` = in-memory).
    pub corpus_dir: Option<PathBuf>,
    /// Wall-clock cap for nightly CI runs: the campaign stops before
    /// starting a case once this much time has elapsed. `None` (the
    /// default everywhere except CI) keeps the run a pure function of
    /// the config.
    pub wall_clock_limit: Option<std::time::Duration>,
}

impl CampaignConfig {
    /// A guided campaign over the quick matrix.
    pub fn guided_quick(cases: u64, base_seed: u64) -> CampaignConfig {
        CampaignConfig {
            cases,
            base_seed,
            guided: true,
            matrix: OracleMatrix::quick(),
            coverage_build_seed: 1,
            mutate_ratio: 0.5,
            fresh_gen: None,
            minimize: false,
            stop_on_divergence: false,
            corpus_dir: None,
            wall_clock_limit: None,
        }
    }

    /// The same campaign with feedback disabled.
    pub fn blind(mut self) -> CampaignConfig {
        self.guided = false;
        self
    }
}

/// One point of the coverage-over-time curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoveragePoint {
    /// Case index (0-based, after the case ran).
    pub case_index: u64,
    /// Map population after merging that case.
    pub population: u64,
}

/// A diverging case, kept whole for downstream reduction.
#[derive(Clone, Debug)]
pub struct DivergenceRecord {
    /// Case index within the campaign.
    pub case_index: u64,
    /// The diverging module.
    pub module: Module,
    /// Every divergent cell of the matrix.
    pub divergences: Vec<Divergence>,
}

/// Campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Cases actually run (≤ budget when stopped early).
    pub cases_run: u64,
    /// Cases whose whole matrix agreed.
    pub passed: u64,
    /// Cases the reference interpreter rejected (generator bugs).
    pub skipped: u64,
    /// Cases produced by corpus mutation rather than fresh generation.
    pub mutated_cases: u64,
    /// Modules admitted to the corpus.
    pub admitted: u64,
    /// Map population after replaying the seed corpus, before any new
    /// case ran. The nightly baseline check compares this against the
    /// checked-in floor — it is deterministic even under a wall-clock
    /// cap.
    pub seed_corpus_population: u64,
    /// Final coverage-map population.
    pub population: u64,
    /// Case index of the first divergence, if any.
    pub first_divergence_case: Option<u64>,
    /// All diverging cases.
    pub divergences: Vec<DivergenceRecord>,
    /// Population after every case.
    pub curve: Vec<CoveragePoint>,
}

impl CampaignReport {
    /// Minimal JSON (no JSON crate in the offline build): totals, the
    /// coverage curve, and one summary line per diverging case.
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        j.push_str(&format!("  \"cases_run\": {},\n", self.cases_run));
        j.push_str(&format!("  \"passed\": {},\n", self.passed));
        j.push_str(&format!("  \"skipped\": {},\n", self.skipped));
        j.push_str(&format!("  \"mutated_cases\": {},\n", self.mutated_cases));
        j.push_str(&format!("  \"admitted\": {},\n", self.admitted));
        j.push_str(&format!(
            "  \"seed_corpus_population\": {},\n",
            self.seed_corpus_population
        ));
        j.push_str(&format!("  \"population\": {},\n", self.population));
        match self.first_divergence_case {
            Some(c) => j.push_str(&format!("  \"first_divergence_case\": {c},\n")),
            None => j.push_str("  \"first_divergence_case\": null,\n"),
        }
        j.push_str("  \"divergences\": [\n");
        for (i, d) in self.divergences.iter().enumerate() {
            j.push_str(&format!(
                "    {{\"case_index\": {}, \"summary\": \"{}\"}}{}\n",
                d.case_index,
                r2c_vm::trace::json_escape(&summarize_divergences(&d.divergences)),
                if i + 1 == self.divergences.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        j.push_str("  ],\n");
        j.push_str("  \"curve\": [");
        for (i, p) in self.curve.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str(&format!("[{},{}]", p.case_index, p.population));
        }
        j.push_str("]\n}\n");
        j
    }
}

fn fresh_module(cfg: &CampaignConfig, rng: &mut SmallRng) -> Module {
    let seed: u64 = rng.gen();
    match &cfg.fresh_gen {
        Some(g) => generate_with(g, &mut SmallRng::seed_from_u64(seed)),
        None => generate(seed),
    }
}

/// Runs one campaign. `corpus` carries seed entries in and evolved
/// entries out; pass `Corpus::new()` for a from-scratch run.
pub fn run_campaign(cfg: &CampaignConfig, corpus: &mut Corpus) -> CampaignReport {
    let mut rng = SmallRng::seed_from_u64(cfg.base_seed);
    let mut map = CoverageMap::new();
    let mut report = CampaignReport::default();

    // Pre-merge the seed corpus so its bits don't count as new again
    // (and so population reflects what the corpus already covers).
    if cfg.guided {
        for e in &corpus.entries {
            map.merge(&case_coverage(&e.module, cfg.coverage_build_seed));
        }
    }
    report.seed_corpus_population = map.population() as u64;

    let started = std::time::Instant::now();
    for case_index in 0..cfg.cases {
        if let Some(limit) = cfg.wall_clock_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        let mut mutated = false;
        let module = if cfg.guided && !corpus.entries.is_empty() && rng.gen_bool(cfg.mutate_ratio) {
            let idx = corpus.pick(&mut rng).expect("non-empty corpus");
            match mutate(&corpus.entries[idx].module, &mut rng, 8) {
                Some((m, _kind)) => {
                    mutated = true;
                    m
                }
                None => fresh_module(cfg, &mut rng),
            }
        } else {
            fresh_module(cfg, &mut rng)
        };
        if mutated {
            report.mutated_cases += 1;
        }
        report.cases_run = case_index + 1;

        match run_oracle(&module, &cfg.matrix) {
            CaseVerdict::Skipped { .. } => report.skipped += 1,
            CaseVerdict::Diverged(divergences) => {
                if report.first_divergence_case.is_none() {
                    report.first_divergence_case = Some(case_index);
                }
                report.divergences.push(DivergenceRecord {
                    case_index,
                    module,
                    divergences,
                });
                if cfg.stop_on_divergence {
                    report.curve.push(CoveragePoint {
                        case_index,
                        population: map.population() as u64,
                    });
                    break;
                }
            }
            CaseVerdict::Pass { .. } => {
                report.passed += 1;
                let cov = case_coverage(&module, cfg.coverage_build_seed);
                let needed: Vec<usize> = {
                    let mut seen = std::collections::HashSet::new();
                    cov.features
                        .iter()
                        .map(|f| feature_index(f))
                        .filter(|&i| !map.contains(i) && seen.insert(i))
                        .collect()
                };
                let fresh_bits = map.merge(&cov) as u64;
                if cfg.guided && fresh_bits > 0 {
                    let admitted = if cfg.minimize {
                        minimize_keeper(&module, &needed, cfg)
                    } else {
                        module
                    };
                    report.admitted += 1;
                    let name = format!("s{}-c{case_index:04}", cfg.base_seed);
                    corpus
                        .admit(admitted, fresh_bits, name, cfg.corpus_dir.as_deref())
                        .expect("corpus admission");
                }
            }
        }
        report.curve.push(CoveragePoint {
            case_index,
            population: map.population() as u64,
        });
    }
    report.population = map.population() as u64;
    report
}

/// Shrinks a coverage keeper with the delta-debug reducer while it (a)
/// still lights every one of its `needed` new bits and (b) still passes
/// the whole matrix — corpus entries must replay clean forever.
fn minimize_keeper(module: &Module, needed: &[usize], cfg: &CampaignConfig) -> Module {
    let needed = needed.to_vec();
    let matrix = cfg.matrix.clone();
    let coverage_build_seed = cfg.coverage_build_seed;
    let still_interesting = move |m: &Module| {
        if !matches!(run_oracle(m, &matrix), CaseVerdict::Pass { .. }) {
            return false;
        }
        let cov = case_coverage(m, coverage_build_seed);
        let got: std::collections::HashSet<usize> =
            cov.features.iter().map(|f| feature_index(f)).collect();
        needed.iter().all(|b| got.contains(b))
    };
    reduce(module, &still_interesting, 2).module
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_vm::MachineKind;

    /// A small single-cell matrix keeps campaign tests fast.
    fn tiny_matrix() -> OracleMatrix {
        OracleMatrix::single(
            "full",
            r2c_core::R2cConfig::full(0),
            MachineKind::EpycRome,
            1,
        )
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig {
            matrix: tiny_matrix(),
            ..CampaignConfig::guided_quick(6, 11)
        };
        let a = run_campaign(&cfg, &mut Corpus::new());
        let b = run_campaign(&cfg, &mut Corpus::new());
        assert_eq!(a.population, b.population);
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.admitted, b.admitted);
    }

    #[test]
    fn coverage_grows_monotonically() {
        let cfg = CampaignConfig {
            matrix: tiny_matrix(),
            ..CampaignConfig::guided_quick(8, 5)
        };
        let report = run_campaign(&cfg, &mut Corpus::new());
        assert!(report.population > 0);
        let mut last = 0;
        for p in &report.curve {
            assert!(
                p.population >= last,
                "coverage curve dipped: {:?}",
                report.curve
            );
            last = p.population;
        }
        assert_eq!(last, report.population);
    }

    #[test]
    fn report_json_shape() {
        let cfg = CampaignConfig {
            matrix: tiny_matrix(),
            ..CampaignConfig::guided_quick(3, 2)
        };
        let j = run_campaign(&cfg, &mut Corpus::new()).to_json();
        for key in ["\"cases_run\": 3", "\"population\":", "\"curve\": [[0,"] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }
}
