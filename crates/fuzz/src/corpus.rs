//! The evolving on-disk corpus and its energy-weighted scheduler.
//!
//! Corpus entries are *coverage keepers*: modules that lit new bits in
//! the campaign's [`crate::coverage::CoverageMap`] and replay cleanly
//! (they are admitted only from passing cases — divergence reproducers
//! live separately, written by the fuzz binary). Entries persist as
//! plain `.r2cir` text under a directory that is checked into the
//! repository, so every campaign — and the corpus-replay regression
//! test — starts from the accumulated interesting shapes instead of
//! from scratch.
//!
//! Scheduling is energy-weighted: an entry's energy is the number of
//! new bits it contributed at admission, decayed by how often it has
//! already been picked, so fresh high-yield entries get mutated most
//! and exhausted ones fade without ever reaching zero.

use std::path::{Path, PathBuf};

use r2c_ir::{parse_module, print_module, Module};
use rand::{rngs::SmallRng, Rng};

use crate::coverage::{case_coverage, CoverageMap};

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// File stem (unique within the corpus).
    pub name: String,
    /// The module.
    pub module: Module,
    /// New coverage bits contributed at admission (≥ 1).
    pub energy: u64,
    /// Times the scheduler has picked this entry for mutation.
    pub picks: u64,
}

/// An in-memory corpus, optionally mirrored to a directory.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Entries in admission order.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Loads every `*.r2cir` file under `dir` (sorted by name for
    /// determinism). Unparsable files are skipped with a warning —
    /// a corpus must never brick the fuzzer. Energy is taken from the
    /// `# energy: N` header when present, else 1.
    pub fn load(dir: &Path) -> Corpus {
        let mut corpus = Corpus::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return corpus;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "r2cir"))
            .collect();
        paths.sort();
        for p in &paths {
            let Ok(src) = std::fs::read_to_string(p) else {
                continue;
            };
            let module = match parse_module(&src) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("corpus {p:?}: unparsable ({e:?}); skipping");
                    continue;
                }
            };
            let energy = src
                .lines()
                .find_map(|l| l.strip_prefix("# energy: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(1)
                .max(1);
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            corpus.entries.push(CorpusEntry {
                name,
                module,
                energy,
                picks: 0,
            });
        }
        corpus
    }

    /// Admits a module that contributed `energy` new bits; returns the
    /// entry index. If `dir` is given the entry is written as
    /// `<name>.r2cir` with a small header.
    pub fn admit(
        &mut self,
        module: Module,
        energy: u64,
        name: String,
        dir: Option<&Path>,
    ) -> std::io::Result<usize> {
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
            let mut text = String::new();
            text.push_str("# r2c-fuzz corpus entry\n");
            text.push_str(&format!("# energy: {}\n", energy.max(1)));
            text.push_str(&print_module(&module));
            std::fs::write(dir.join(format!("{name}.r2cir")), text)?;
        }
        self.entries.push(CorpusEntry {
            name,
            module,
            energy: energy.max(1),
            picks: 0,
        });
        Ok(self.entries.len() - 1)
    }

    /// Energy-weighted pick: entry `i` is drawn with weight
    /// `energy_i / (1 + picks_i)` (scaled to integers). Increments the
    /// winner's pick count. `None` on an empty corpus.
    pub fn pick(&mut self, rng: &mut SmallRng) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let weights: Vec<u64> = self
            .entries
            .iter()
            .map(|e| (e.energy * 64 / (1 + e.picks)).max(1))
            .collect();
        let total: u64 = weights.iter().sum();
        let mut draw = rng.gen_range(0..total);
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                self.entries[i].picks += 1;
                return Some(i);
            }
            draw -= w;
        }
        unreachable!("weighted draw ran past the total");
    }

    /// Corpus hygiene: replays every entry (in admission order) against
    /// a fresh coverage map and drops entries that no longer add any
    /// bits — duplicates and entries whose coverage later admissions
    /// subsume from the front. Returns the names of dropped entries;
    /// when `dir` is given, their files are deleted too.
    pub fn refresh(
        &mut self,
        coverage_build_seed: u64,
        dir: Option<&Path>,
    ) -> std::io::Result<Vec<String>> {
        let mut map = CoverageMap::new();
        let mut dropped = Vec::new();
        let mut kept = Vec::new();
        for mut e in self.entries.drain(..) {
            let cov = case_coverage(&e.module, coverage_build_seed);
            let fresh = map.merge(&cov) as u64;
            if fresh == 0 {
                if let Some(dir) = dir {
                    let _ = std::fs::remove_file(dir.join(format!("{}.r2cir", e.name)));
                }
                dropped.push(e.name);
            } else {
                e.energy = fresh;
                kept.push(e);
            }
        }
        self.entries = kept;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use rand::SeedableRng;

    #[test]
    fn admit_pick_and_energy_decay() {
        let mut c = Corpus::new();
        c.admit(generate(1), 30, "a".into(), None).unwrap();
        c.admit(generate(2), 1, "b".into(), None).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 2];
        for _ in 0..200 {
            counts[c.pick(&mut rng).unwrap()] += 1;
        }
        // High-energy entry dominates, but decays with picks so the
        // low-energy one is still drawn sometimes.
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > 0, "{counts:?}");
    }

    #[test]
    fn roundtrips_through_directory() {
        let dir = std::env::temp_dir().join(format!("r2c-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Corpus::new();
        let m = generate(4);
        c.admit(m.clone(), 17, "case4".into(), Some(&dir)).unwrap();
        let back = Corpus::load(&dir);
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].module, m);
        assert_eq!(back.entries[0].energy, 17);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
