//! Automatic divergence reducer: delta-debugging over a diverging
//! module.
//!
//! Given a module and an *interestingness* predicate ("does this
//! module still diverge in the cell that originally disagreed?"), the
//! reducer repeatedly tries semantic simplifications — stubbing whole
//! functions, dropping unreferenced functions and globals, collapsing
//! conditional branches, deleting stores, zeroing instructions — and
//! keeps each change only if the candidate
//!
//! 1. still passes `verify_module` (a reproducer must be legal IR),
//! 2. survives a printer → parser roundtrip unchanged (reproducers are
//!    persisted as `.r2cir` text, so textual fidelity is part of the
//!    contract), and
//! 3. is still interesting.
//!
//! The predicate is a closure so tests can reduce against anything; the
//! fuzz driver passes [`crate::oracle::cell_still_diverges`] bound to
//! the original divergence's matrix cell, which also rejects candidates
//! the reference interpreter refuses to run — reduction never converges
//! on an ill-defined program.

use r2c_ir::{
    parse_module, print_module, verify_module, Block, BlockId, FuncId, Function, GlobalId,
    GlobalInit, Inst, Module, Term, Val,
};

/// Counters describing one reduction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Full passes over the module.
    pub rounds: usize,
    /// Candidates generated.
    pub candidates: usize,
    /// Candidates accepted (size-reducing steps kept).
    pub accepted: usize,
}

/// A reduced module plus run statistics.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The minimized module (still interesting, still legal,
    /// roundtrip-stable).
    pub module: Module,
    /// What it took.
    pub stats: ReductionStats,
}

/// Reduces `module` while `interesting` holds, up to `max_rounds` full
/// passes (a pass with no accepted candidate terminates early).
pub fn reduce(
    module: &Module,
    interesting: &dyn Fn(&Module) -> bool,
    max_rounds: usize,
) -> Reduction {
    let mut cur = module.clone();
    let mut stats = ReductionStats::default();
    debug_assert!(interesting(&cur), "input module must be interesting");
    for _ in 0..max_rounds {
        stats.rounds += 1;
        let before = stats.accepted;
        stub_functions(&mut cur, interesting, &mut stats);
        drop_functions(&mut cur, interesting, &mut stats);
        drop_globals(&mut cur, interesting, &mut stats);
        simplify_branches(&mut cur, interesting, &mut stats);
        drop_unreachable_blocks(&mut cur, interesting, &mut stats);
        thin_instructions(&mut cur, interesting, &mut stats);
        if stats.accepted == before {
            break;
        }
    }
    Reduction { module: cur, stats }
}

/// Serializes a reduced module as a standalone `.r2cir` reproducer with
/// a comment header. The output reparses to exactly `module`.
pub fn reproducer_source(module: &Module, header_lines: &[String]) -> String {
    let mut s = String::new();
    s.push_str("# r2c-fuzz reproducer\n");
    for l in header_lines {
        for part in l.lines() {
            s.push_str("# ");
            s.push_str(part);
            s.push('\n');
        }
    }
    s.push_str(&print_module(module));
    debug_assert_eq!(&parse_module(&s).expect("reproducer must reparse"), module);
    s
}

/// One candidate trial: legality, roundtrip fidelity, interestingness.
fn try_candidate(
    cur: &mut Module,
    cand: Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) -> bool {
    stats.candidates += 1;
    if verify_module(&cand).is_err() {
        return false;
    }
    match parse_module(&print_module(&cand)) {
        Ok(rt) if rt == cand => {}
        _ => return false,
    }
    if !interesting(&cand) {
        return false;
    }
    *cur = cand;
    stats.accepted += 1;
    true
}

/// A function body reduced to `ret 0`.
fn stub_body() -> (Vec<Block>, u32) {
    (
        vec![Block {
            name: "entry".to_string(),
            insts: vec![(Some(Val(0)), Inst::Const(0))],
            term: Term::Ret(Some(Val(0))),
        }],
        1,
    )
}

fn is_stub(f: &Function) -> bool {
    f.blocks.len() == 1
        && f.blocks[0].insts == [(Some(Val(0)), Inst::Const(0))]
        && f.blocks[0].term == Term::Ret(Some(Val(0)))
}

/// Replaces whole function bodies (except `main`) with `ret 0`.
fn stub_functions(
    cur: &mut Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) {
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].name == "main" || is_stub(&cur.funcs[fi]) {
            continue;
        }
        let mut cand = cur.clone();
        let (blocks, num_vals) = stub_body();
        cand.funcs[fi].blocks = blocks;
        cand.funcs[fi].num_vals = num_vals;
        try_candidate(cur, cand, interesting, stats);
    }
}

fn func_referenced(m: &Module, fi: u32) -> bool {
    let in_code = m.funcs.iter().flat_map(|f| &f.blocks).any(|b| {
        b.insts.iter().any(|(_, i)| match i {
            Inst::Call { callee, .. } => callee.0 == fi,
            Inst::FuncAddr(f) => f.0 == fi,
            _ => false,
        })
    });
    in_code
        || m.globals
            .iter()
            .any(|g| matches!(g.init, GlobalInit::FuncPtr(f) if f.0 == fi))
}

/// Removes unreferenced non-`main` functions, remapping `FuncId`s.
fn drop_functions(
    cur: &mut Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) {
    let mut fi = 0;
    while fi < cur.funcs.len() {
        if cur.funcs[fi].name == "main" || func_referenced(cur, fi as u32) {
            fi += 1;
            continue;
        }
        let mut cand = cur.clone();
        cand.funcs.remove(fi);
        let remap = |f: &mut FuncId| {
            if f.0 > fi as u32 {
                f.0 -= 1;
            }
        };
        for f in &mut cand.funcs {
            for b in &mut f.blocks {
                for (_, i) in &mut b.insts {
                    match i {
                        Inst::Call { callee, .. } => remap(callee),
                        Inst::FuncAddr(t) => remap(t),
                        _ => {}
                    }
                }
            }
        }
        for g in &mut cand.globals {
            if let GlobalInit::FuncPtr(t) = &mut g.init {
                remap(t);
            }
        }
        if !try_candidate(cur, cand, interesting, stats) {
            fi += 1;
        }
    }
}

fn global_referenced(m: &Module, gi: u32) -> bool {
    m.funcs.iter().flat_map(|f| &f.blocks).any(|b| {
        b.insts
            .iter()
            .any(|(_, i)| matches!(i, Inst::GlobalAddr(g) if g.0 == gi))
    })
}

/// Removes unreferenced globals, remapping `GlobalId`s.
fn drop_globals(
    cur: &mut Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) {
    let mut gi = 0;
    while gi < cur.globals.len() {
        if global_referenced(cur, gi as u32) {
            gi += 1;
            continue;
        }
        let mut cand = cur.clone();
        cand.globals.remove(gi);
        for f in &mut cand.funcs {
            for b in &mut f.blocks {
                for (_, i) in &mut b.insts {
                    if let Inst::GlobalAddr(GlobalId(g)) = i {
                        if *g > gi as u32 {
                            *g -= 1;
                        }
                    }
                }
            }
        }
        if !try_candidate(cur, cand, interesting, stats) {
            gi += 1;
        }
    }
}

/// Collapses `condbr c, a, b` into `br a` or `br b`.
fn simplify_branches(
    cur: &mut Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) {
    for fi in 0..cur.funcs.len() {
        for bi in 0..cur.funcs[fi].blocks.len() {
            let Term::CondBr {
                then_bb, else_bb, ..
            } = cur.funcs[fi].blocks[bi].term
            else {
                continue;
            };
            for target in [then_bb, else_bb] {
                let mut cand = cur.clone();
                cand.funcs[fi].blocks[bi].term = Term::Br(target);
                if try_candidate(cur, cand, interesting, stats) {
                    break;
                }
            }
        }
    }
}

/// Drops blocks unreachable from the entry block, remapping `BlockId`s.
fn drop_unreachable_blocks(
    cur: &mut Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) {
    for fi in 0..cur.funcs.len() {
        let f = &cur.funcs[fi];
        let n = f.blocks.len();
        let mut seen = vec![false; n];
        let mut work = vec![0usize];
        while let Some(b) = work.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            match f.blocks[b].term {
                Term::Br(t) => work.push(t.0 as usize),
                Term::CondBr {
                    then_bb, else_bb, ..
                } => {
                    work.push(then_bb.0 as usize);
                    work.push(else_bb.0 as usize);
                }
                Term::Ret(_) => {}
            }
        }
        if seen.iter().all(|&s| s) {
            continue;
        }
        let mut new_ids = vec![u32::MAX; n];
        let mut next = 0u32;
        for (b, &s) in seen.iter().enumerate() {
            if s {
                new_ids[b] = next;
                next += 1;
            }
        }
        let mut cand = cur.clone();
        let f = &mut cand.funcs[fi];
        let mut blocks = Vec::with_capacity(next as usize);
        for (b, blk) in f.blocks.drain(..).enumerate() {
            if seen[b] {
                blocks.push(blk);
            }
        }
        for blk in &mut blocks {
            let remap = |t: &mut BlockId| t.0 = new_ids[t.0 as usize];
            match &mut blk.term {
                Term::Br(t) => remap(t),
                Term::CondBr {
                    then_bb, else_bb, ..
                } => {
                    remap(then_bb);
                    remap(else_bb);
                }
                Term::Ret(_) => {}
            }
        }
        f.blocks = blocks;
        try_candidate(cur, cand, interesting, stats);
    }
}

/// Deletes `store`s and rewrites other instructions to `const 0`.
/// Result value ids are kept, so uses stay valid and `num_vals`
/// roundtrips through the printer unchanged.
fn thin_instructions(
    cur: &mut Module,
    interesting: &dyn Fn(&Module) -> bool,
    stats: &mut ReductionStats,
) {
    for fi in 0..cur.funcs.len() {
        for bi in 0..cur.funcs[fi].blocks.len() {
            let mut ii = 0;
            while ii < cur.funcs[fi].blocks[bi].insts.len() {
                let (val, inst) = cur.funcs[fi].blocks[bi].insts[ii].clone();
                let mut cand = cur.clone();
                match (val, &inst) {
                    (None, _) => {
                        cand.funcs[fi].blocks[bi].insts.remove(ii);
                    }
                    (Some(_), Inst::Const(0)) => {
                        ii += 1;
                        continue;
                    }
                    (Some(_), _) => {
                        cand.funcs[fi].blocks[bi].insts[ii].1 = Inst::Const(0);
                    }
                }
                if !try_candidate(cur, cand, interesting, stats) {
                    ii += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::interpret;

    /// A module with an obviously localizable "bug": helper `f1`
    /// prints a marker. Interesting = "output contains 7777". The
    /// reducer must strip everything else and keep the marker chain.
    const SRC: &str = r#"
global @tab words [1, 2, 3, 4] align 8
global @junk zero 32 align 8
func @f0(1) {
entry:
  %0 = param 0
  %1 = const 5
  %2 = mul %0, %1
  ret %2
}
func @f1(1) {
entry:
  %0 = const 7777
  %1 = extern print(%0)
  %2 = param 0
  ret %2
}
func @f2(1) {
entry:
  %0 = param 0
  ret %0
}
func @main(0) {
entry:
  %0 = const 3
  %1 = call @f0(%0)
  %2 = call @f1(%1)
  %3 = call @f2(%2)
  %4 = addrof @tab
  %5 = load %4 + 8
  %6 = add %3, %5
  ret %6
}
"#;

    fn prints_marker(m: &Module) -> bool {
        interpret(m, "main", 1_000_000)
            .map(|r| r.output.contains(&7777))
            .unwrap_or(false)
    }

    #[test]
    fn reduces_to_marker_chain() {
        let m = r2c_ir::parse_module(SRC).unwrap();
        assert!(prints_marker(&m));
        let red = reduce(&m, &prints_marker, 10);
        assert!(prints_marker(&red.module));
        // f0 and f2 stub away and become droppable; junk/tab globals
        // become unreferenced once main's tail is zeroed out.
        assert!(
            red.module.funcs.len() <= 2,
            "kept {} functions: {:?}",
            red.module.funcs.len(),
            red.module.funcs.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
        assert!(red.module.globals.is_empty(), "{:?}", red.module.globals);
        assert!(red.stats.accepted > 0);
    }

    #[test]
    fn reproducer_text_reparses() {
        let m = r2c_ir::parse_module(SRC).unwrap();
        let red = reduce(&m, &prints_marker, 10);
        let src = reproducer_source(
            &red.module,
            &["cell: full seed=1 machine=EpycRome".to_string()],
        );
        let back = r2c_ir::parse_module(&src).unwrap();
        assert_eq!(back, red.module);
        assert!(src.starts_with("# r2c-fuzz reproducer\n"));
    }

    #[test]
    fn uninteresting_candidates_are_rejected() {
        // Interesting = computes the original return value; almost
        // nothing can be removed without changing it.
        let src = "func @main(0) {\nentry:\n  %0 = const 41\n  %1 = const 1\n  %2 = add %0, %1\n  ret %2\n}\n";
        let m = r2c_ir::parse_module(src).unwrap();
        let keeps_ret = |m: &Module| {
            interpret(m, "main", 10_000)
                .map(|r| r.ret == 42)
                .unwrap_or(false)
        };
        let red = reduce(&m, &keeps_ret, 5);
        assert!(keeps_ret(&red.module));
        assert_eq!(red.module.funcs[0].blocks[0].term, Term::Ret(Some(Val(2))));
    }
}
