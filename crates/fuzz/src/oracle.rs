//! The differential oracle: one generated module, executed by the
//! reference interpreter and by every compiled variant in a
//! configuration matrix, with any disagreement reported as a
//! [`Divergence`].
//!
//! The per-cell machinery ([`r2c_core::observe_variant`] /
//! [`r2c_core::diff_against_reference`]) lives in `r2c-core` next to
//! the compiler it checks; this module contributes the *matrix* — which
//! presets, Table 1 component configs, machines, and build seeds a case
//! is pushed through — and the verdict classification.

use r2c_core::{diff_against_reference, observe_variant, Component, R2cCompiler, R2cConfig};
use r2c_ir::{interpret, InterpError, InterpResult, Module};
use r2c_serve::{run_fleet, ExecMode, FleetConfig, ReactionPolicy, Schedule};
use r2c_vm::{MachineKind, Vm, VmConfig};

/// Interpreter fuel per case. Generated programs are bounded by
/// construction; hitting this means a generator bug, and the case is
/// reported as [`CaseVerdict::Skipped`], not silently dropped.
pub const REFERENCE_FUEL: u64 = 50_000_000;

/// Machine-instruction budget per compiled run. Diversification (NOPs,
/// BTRA setup, spill traffic) multiplies the dynamic instruction count,
/// so this is well above `REFERENCE_FUEL`.
pub const VARIANT_INSN_BUDGET: u64 = 400_000_000;

/// One cell of the configuration matrix: a named build config, a
/// machine, and a variant seed.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Preset name (for reports and reproducers).
    pub config_name: String,
    /// Build configuration (seed not yet applied).
    pub config: R2cConfig,
    /// Machine model the variant runs on.
    pub machine: MachineKind,
    /// Variant seed (`R2cConfig::with_seed`).
    pub build_seed: u64,
}

/// The set of build configurations × machines × seeds every case is
/// run through.
#[derive(Clone, Debug)]
pub struct OracleMatrix {
    /// Named build configurations (seed 0 placeholders; the matrix
    /// applies each build seed via `with_seed`).
    pub configs: Vec<(String, R2cConfig)>,
    /// Machines to execute on.
    pub machines: Vec<MachineKind>,
    /// Variant seeds per (config, machine) pair.
    pub build_seeds: Vec<u64>,
}

/// The named presets the matrix understands, mirroring the `check` and
/// `bench` binaries.
pub fn named_configs() -> Vec<(String, R2cConfig)> {
    let mut v = vec![
        ("baseline".to_string(), R2cConfig::baseline(0)),
        ("full".to_string(), R2cConfig::full(0)),
        ("full-push".to_string(), R2cConfig::full_push(0)),
        (
            "hardened".to_string(),
            R2cConfig {
                diversify: r2c_core::DiversifyConfig::hardened(2),
                seed: 0,
                check: cfg!(debug_assertions),
                check_decode: cfg!(debug_assertions),
            },
        ),
    ];
    for c in Component::TABLE1 {
        v.push((format!("comp-{}", c.name()), R2cConfig::component(c, 0)));
    }
    v.push((
        format!("comp-{}", Component::Oia.name()),
        R2cConfig::component(Component::Oia, 0),
    ));
    v
}

impl OracleMatrix {
    /// The smoke matrix: the presets most likely to disagree (none,
    /// everything, both BTRA modes, hardened) on one machine with two
    /// variant seeds, plus a fleet cell ([`FLEET_CELL_PREFIX`]) that
    /// checks serial/parallel fleet determinism on the generated
    /// module. ~12 builds per case plus two small fleet runs.
    pub fn quick() -> OracleMatrix {
        let keep = [
            "baseline",
            "full",
            "full-push",
            "hardened",
            "comp-BTDP",
            "comp-Layout",
        ];
        let mut configs: Vec<(String, R2cConfig)> = named_configs()
            .into_iter()
            .filter(|(n, _)| keep.contains(&n.as_str()))
            .collect();
        configs.push(("fleet-respawn".to_string(), R2cConfig::full(0)));
        configs.push(("nofuse-full".to_string(), R2cConfig::full(0)));
        configs.push(("tv-full".to_string(), R2cConfig::full(0)));
        configs.push(("replay-full".to_string(), R2cConfig::full(0)));
        OracleMatrix {
            configs,
            machines: vec![MachineKind::EpycRome],
            build_seeds: vec![1, 2],
        }
    }

    /// The exhaustive matrix: every named config (presets plus every
    /// Table 1 component and OIA), two machine models with different
    /// cache geometries, three variant seeds. ~60 builds per case.
    pub fn full() -> OracleMatrix {
        OracleMatrix {
            configs: named_configs(),
            machines: vec![MachineKind::EpycRome, MachineKind::Xeon8358],
            build_seeds: vec![1, 2, 3],
        }
    }

    /// A single-config matrix (used by `--preset <name>` and by the
    /// reducer, which re-checks only the cell that diverged).
    pub fn single(
        config_name: &str,
        config: R2cConfig,
        machine: MachineKind,
        build_seed: u64,
    ) -> OracleMatrix {
        OracleMatrix {
            configs: vec![(config_name.to_string(), config)],
            machines: vec![machine],
            build_seeds: vec![build_seed],
        }
    }

    /// Flattens the matrix into cells.
    pub fn cells(&self) -> Vec<MatrixCell> {
        let mut out = Vec::new();
        for (name, cfg) in &self.configs {
            for &machine in &self.machines {
                for &build_seed in &self.build_seeds {
                    out.push(MatrixCell {
                        config_name: name.clone(),
                        config: *cfg,
                        machine,
                        build_seed,
                    });
                }
            }
        }
        out
    }
}

/// A reproducible disagreement between the reference interpreter and
/// one compiled variant.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The matrix cell that disagreed.
    pub cell: MatrixCell,
    /// Human-readable mismatch descriptions (build/check failures or
    /// behavioral diffs).
    pub details: Vec<String>,
}

/// Outcome of pushing one module through the matrix.
#[derive(Clone, Debug)]
pub enum CaseVerdict {
    /// Every cell agreed with the reference.
    Pass {
        /// Number of compiled variants checked.
        cells: usize,
    },
    /// The reference interpreter itself rejected the module — a
    /// generator bug (or an intentionally hostile reducer candidate),
    /// never a compiler verdict.
    Skipped {
        /// The interpreter error.
        reason: String,
    },
    /// At least one cell disagreed. *Every* divergent cell of the
    /// matrix is collected (the whole matrix is run to completion, not
    /// stopped at the first disagreement), so matrix-wide patterns —
    /// e.g. a fusion-only divergence that hits every `nofuse` cell but
    /// no plain cell — are visible in a single report. The reducer
    /// re-checks exactly one cell (callers conventionally pick the
    /// first).
    Diverged(Vec<Divergence>),
}

/// Runs `module` through every cell of `matrix`, comparing against the
/// reference interpretation. All cells are always checked; a diverged
/// verdict carries every disagreeing cell.
pub fn run_oracle(module: &Module, matrix: &OracleMatrix) -> CaseVerdict {
    let reference = match interpret(module, "main", REFERENCE_FUEL) {
        Ok(r) => r,
        Err(e) => {
            return CaseVerdict::Skipped {
                reason: format!("reference interpreter: {e:?}"),
            }
        }
    };
    let mut diverged = Vec::new();
    for cell in matrix.cells() {
        if let Some(details) = check_cell(module, &reference, &cell) {
            diverged.push(Divergence { cell, details });
        }
    }
    if !diverged.is_empty() {
        return CaseVerdict::Diverged(diverged);
    }
    CaseVerdict::Pass {
        cells: matrix.cells().len(),
    }
}

/// One-line matrix-wide pattern summary of a case's divergent cells:
/// how many cells disagreed and how the disagreement distributes over
/// configs and machines. This is what makes e.g. "fusion-only
/// divergence" (every `nofuse` cell, nothing else) readable at a
/// glance.
pub fn summarize_divergences(divs: &[Divergence]) -> String {
    let mut by_config: Vec<(String, usize)> = Vec::new();
    let mut machines: Vec<String> = Vec::new();
    for d in divs {
        match by_config.iter_mut().find(|(n, _)| *n == d.cell.config_name) {
            Some((_, c)) => *c += 1,
            None => by_config.push((d.cell.config_name.clone(), 1)),
        }
        let m = format!("{:?}", d.cell.machine);
        if !machines.contains(&m) {
            machines.push(m);
        }
    }
    let configs = by_config
        .iter()
        .map(|(n, c)| format!("{n}\u{d7}{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{} divergent cell(s) [{}] on {}",
        divs.len(),
        configs,
        machines.join("/")
    )
}

/// Config-name prefix marking a *fleet* cell. Such a cell does not diff
/// one variant against the reference; it serves the module from a
/// 2-worker `r2c-serve` fleet under `RespawnFreshVariant` and requires
/// the parallel run to reproduce the serial monitor log and metrics
/// bit-for-bit — the r2c-serve determinism contract, exercised on
/// arbitrary generated modules instead of the hand-written victims. The
/// prefix convention survives the reducer round-trip through
/// [`OracleMatrix::single`], which rebuilds a cell from its name.
pub const FLEET_CELL_PREFIX: &str = "fleet";

/// Events per fleet-cell schedule (kept small: every event is a full
/// guest run of the generated module).
const FLEET_CELL_EVENTS: usize = 12;

/// Checks one cell; `Some(details)` on divergence. A build failure —
/// including an `r2c-check` finding, which fails the build because the
/// oracle forces the checker on — counts as a divergence.
pub fn check_cell(
    module: &Module,
    reference: &InterpResult,
    cell: &MatrixCell,
) -> Option<Vec<String>> {
    if cell.config_name.starts_with(FLEET_CELL_PREFIX) {
        return check_fleet_cell(module, cell);
    }
    if cell.config_name.starts_with(NOFUSE_CELL_PREFIX) {
        return check_nofuse_cell(module, reference, cell);
    }
    if cell.config_name.starts_with(TV_CELL_PREFIX) {
        return check_tv_cell(module, cell);
    }
    if cell.config_name.starts_with(REPLAY_CELL_PREFIX) {
        return check_replay_cell(module, reference, cell);
    }
    let cfg = cell.config.with_seed(cell.build_seed);
    match observe_variant(module, cfg, cell.machine, VARIANT_INSN_BUDGET) {
        Ok(obs) => {
            let diffs = diff_against_reference(module, reference, &obs);
            if diffs.is_empty() {
                None
            } else {
                Some(diffs)
            }
        }
        Err(e) => Some(vec![format!("build failed: {e}")]),
    }
}

/// Config-name prefix marking a *fused-vs-unfused* cell. Such a cell
/// builds one variant image and executes it twice — on the decoded
/// engine with superinstruction fusion and block runs, and with
/// `no_fuse` forcing per-instruction decoding — and requires identical
/// [`r2c_vm::ExecStats`], exit status, and output, plus agreement of
/// the fused run with the reference interpretation. This is the
/// bit-identical contract of the decoded execution engine, exercised
/// on arbitrary generated modules instead of the hand-written suites.
pub const NOFUSE_CELL_PREFIX: &str = "nofuse";

fn check_nofuse_cell(
    module: &Module,
    reference: &InterpResult,
    cell: &MatrixCell,
) -> Option<Vec<String>> {
    let cfg = cell.config.with_seed(cell.build_seed);
    let image = match R2cCompiler::new(cfg).build(module) {
        Ok(image) => image,
        Err(e) => return Some(vec![format!("build failed: {e}")]),
    };
    let mut vm_cfg = VmConfig::new(cell.machine.config());
    vm_cfg.insn_budget = VARIANT_INSN_BUDGET;
    let mut fused = Vm::new(
        &image,
        VmConfig {
            no_fuse: false,
            ..vm_cfg
        },
    );
    let mut unfused = Vm::new(
        &image,
        VmConfig {
            no_fuse: true,
            ..vm_cfg
        },
    );
    let a = fused.run();
    let b = unfused.run();
    let mut details = Vec::new();
    if a.status != b.status {
        details.push(format!(
            "fused/unfused exit status diverged: {:?} vs {:?}",
            a.status, b.status
        ));
    }
    if a.stats != b.stats {
        details.push(format!(
            "fused/unfused ExecStats diverged: {:?} vs {:?}",
            a.stats, b.stats
        ));
    }
    if fused.output != unfused.output {
        details.push(format!(
            "fused/unfused output diverged ({} vs {} values)",
            fused.output.len(),
            unfused.output.len()
        ));
    }
    if fused.mem.resident_pages() != unfused.mem.resident_pages() {
        details.push(format!(
            "fused/unfused resident pages diverged: {} vs {}",
            fused.mem.resident_pages(),
            unfused.mem.resident_pages()
        ));
    }
    // The fused run must also mean what the reference says the module
    // means (globals compared via the ordinary differential path).
    if a.status != r2c_vm::ExitStatus::Exited(reference.ret) {
        details.push(format!(
            "fused exit status: {:?}, reference Exited({})",
            a.status, reference.ret
        ));
    }
    if fused.output != reference.output {
        details.push(format!(
            "fused output diverged from reference ({} vs {} values)",
            fused.output.len(),
            reference.output.len()
        ));
    }
    if details.is_empty() {
        None
    } else {
        Some(details)
    }
}

/// Config-name prefix marking a *translation-validation* cell. Such a
/// cell builds one variant image and runs the decode translation
/// validator ([`r2c_check::check_decode`]) over it: the pre-decoded
/// execution-engine program must be symbolically provable equivalent to
/// the image's reference semantics under every machine model, with
/// fusion on and off (`no_fuse` included). No execution happens — any
/// finding is a decoder bug by construction.
pub const TV_CELL_PREFIX: &str = "tv";

fn check_tv_cell(module: &Module, cell: &MatrixCell) -> Option<Vec<String>> {
    // The build itself may already run the validator (debug default);
    // force it off here so a finding is reported as a TV detail rather
    // than an opaque build failure, then validate explicitly.
    let cfg = cell
        .config
        .with_seed(cell.build_seed)
        .with_check_decode(false);
    let image = match R2cCompiler::new(cfg).build(module) {
        Ok(image) => image,
        Err(e) => return Some(vec![format!("build failed: {e}")]),
    };
    let findings: Vec<String> = r2c_check::check_decode(&image)
        .into_iter()
        .map(|e| format!("decode-tv: {e}"))
        .collect();
    if findings.is_empty() {
        None
    } else {
        Some(findings)
    }
}

fn check_fleet_cell(module: &Module, cell: &MatrixCell) -> Option<Vec<String>> {
    let fc = FleetConfig {
        fleet_seed: cell.build_seed,
        machine: cell.machine,
        event_budget: VARIANT_INSN_BUDGET,
        ..FleetConfig::new(cell.config, ReactionPolicy::RespawnFreshVariant).entry_service()
    };
    let sched = Schedule::generate(0xF1EE7 ^ cell.build_seed, 2, FLEET_CELL_EVENTS, 250);
    let serial = run_fleet(module, &fc, &sched, ExecMode::Serial);
    let parallel = run_fleet(module, &fc, &sched, ExecMode::Parallel);
    let mut details = Vec::new();
    if serial.log != parallel.log {
        let diff = serial
            .log
            .iter()
            .zip(&parallel.log)
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("serial {a:?} vs parallel {b:?}"))
            .unwrap_or_else(|| {
                format!("log lengths {} vs {}", serial.log.len(), parallel.log.len())
            });
        details.push(format!("fleet log diverged: {diff}"));
    }
    if serial.metrics != parallel.metrics {
        details.push(format!(
            "fleet metrics diverged: serial {:?} vs parallel {:?}",
            serial.metrics, parallel.metrics
        ));
    }
    if details.is_empty() {
        None
    } else {
        Some(details)
    }
}

/// Config-name prefix marking a *capture-replay* cell. Such a cell
/// exercises the record half of the `r2c-replay` pipeline on an
/// arbitrary generated module: it builds one variant image and runs it
/// three times — untraced, and twice under the capture tracer
/// ([`r2c_vm::trace::TraceConfig::capture`]) with the module's
/// `no_instrument` boundary spans armed. It diverges when capture
/// tracing perturbs execution (untraced vs traced `ExecStats`), when
/// two identical capture runs log different boundary events (a
/// nondeterministic environment boundary would make replay impossible),
/// when the lossless-capture contract is violated (`dropped_events !=
/// 0`), or when the traced run disagrees with the reference
/// interpretation.
pub const REPLAY_CELL_PREFIX: &str = "replay";

fn check_replay_cell(
    module: &Module,
    reference: &InterpResult,
    cell: &MatrixCell,
) -> Option<Vec<String>> {
    use r2c_vm::trace::TraceConfig;
    let cfg = cell.config.with_seed(cell.build_seed);
    let image = match R2cCompiler::new(cfg).build(module) {
        Ok(image) => image,
        Err(e) => return Some(vec![format!("build failed: {e}")]),
    };
    // Inline boundary-span computation (the dependency direction is
    // r2c-replay → r2c-fuzz, so `r2c_replay::boundary_spans` is not
    // available here).
    let spans: Vec<(u64, u64)> = module
        .funcs
        .iter()
        .filter(|f| f.no_instrument)
        .filter_map(|f| image.symbol(&f.name))
        .map(|sym| (sym.addr, sym.addr + sym.size))
        .collect();
    let mut vm_cfg = VmConfig::new(cell.machine.config());
    vm_cfg.insn_budget = VARIANT_INSN_BUDGET;
    let run = |capture: bool| {
        let mut vm = Vm::new(&image, vm_cfg);
        if capture {
            vm.enable_trace(
                &image,
                TraceConfig {
                    capture: true,
                    ..TraceConfig::default()
                },
            );
            vm.tracer_mut()
                .expect("trace just enabled")
                .set_capture_boundaries(spans.clone());
        }
        let out = vm.run();
        let log = vm.capture_log().cloned();
        let dropped = vm.trace_profile().map_or(0, |p| p.dropped_events);
        (out.status, out.stats, vm.output.clone(), log, dropped)
    };
    let plain = run(false);
    let cap_a = run(true);
    let cap_b = run(true);
    let mut details = Vec::new();
    if plain.0 != cap_a.0 {
        details.push(format!(
            "capture tracing changed exit status: {:?} vs {:?}",
            plain.0, cap_a.0
        ));
    }
    if plain.1 != cap_a.1 {
        details.push(format!(
            "capture tracing perturbed ExecStats: {:?} vs {:?}",
            plain.1, cap_a.1
        ));
    }
    if plain.2 != cap_a.2 {
        details.push(format!(
            "capture tracing changed output ({} vs {} values)",
            plain.2.len(),
            cap_a.2.len()
        ));
    }
    if cap_a.3 != cap_b.3 {
        let (a, b) = (&cap_a.3, &cap_b.3);
        let (la, lb) = (
            a.as_ref().map_or(0, |l| l.boundary.len()),
            b.as_ref().map_or(0, |l| l.boundary.len()),
        );
        details.push(format!(
            "capture log nondeterministic across identical runs ({la} vs {lb} events)"
        ));
    }
    if cap_a.4 != 0 {
        details.push(format!(
            "capture mode dropped {} events — lossless capture violated",
            cap_a.4
        ));
    }
    // The traced run must also mean what the reference says.
    if cap_a.0 != r2c_vm::ExitStatus::Exited(reference.ret) {
        details.push(format!(
            "traced exit status: {:?}, reference Exited({})",
            cap_a.0, reference.ret
        ));
    }
    if cap_a.2 != reference.output {
        details.push(format!(
            "traced output diverged from reference ({} vs {} values)",
            cap_a.2.len(),
            reference.output.len()
        ));
    }
    if details.is_empty() {
        None
    } else {
        Some(details)
    }
}

/// Convenience for reducer predicates: does `module` still diverge in
/// `cell` (for any reason other than being interpreter-rejected)?
///
/// Candidates the reference interpreter rejects are *not* interesting:
/// a reproducer must stay a well-defined program, otherwise the
/// reduction would happily converge on garbage.
pub fn cell_still_diverges(module: &Module, cell: &MatrixCell) -> bool {
    let reference = match interpret(module, "main", REFERENCE_FUEL) {
        Ok(r) => r,
        Err(InterpError::NoSuchFunction(_)) => return false,
        Err(_) => return false,
    };
    check_cell(module, &reference, cell).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn quick_matrix_passes_on_generated_cases() {
        for seed in 0..6u64 {
            let m = generate(seed);
            match run_oracle(&m, &OracleMatrix::quick()) {
                CaseVerdict::Pass { cells } => assert!(cells > 0),
                v => panic!("seed {seed}: unexpected verdict {v:?}"),
            }
        }
    }

    #[test]
    fn matrix_shapes() {
        assert_eq!(OracleMatrix::quick().cells().len(), 10 * 2);
        assert_eq!(OracleMatrix::full().cells().len(), 10 * 2 * 3);
        assert_eq!(
            OracleMatrix::single("full", R2cConfig::full(0), MachineKind::EpycRome, 7)
                .cells()
                .len(),
            1
        );
    }

    #[test]
    fn undefined_behavior_is_skipped_not_diverged() {
        // A module that divides by zero must be classified as Skipped:
        // the reference rejects it, so no compiled verdict exists.
        let src = r#"
func @main(0) {
entry:
  %0 = const 1
  %1 = const 0
  %2 = div %0, %1
  ret %2
}
"#;
        let m = r2c_ir::parse_module(src).unwrap();
        match run_oracle(&m, &OracleMatrix::quick()) {
            CaseVerdict::Skipped { reason } => {
                assert!(reason.contains("DivideByZero"), "{reason}")
            }
            v => panic!("unexpected verdict {v:?}"),
        }
    }
}
