//! # r2c-fuzz — structure-aware differential fuzzing for the R²C
//! pipeline
//!
//! Every diversified variant R²C produces must be *semantically
//! transparent*: same exit status, same output, same final global
//! memory as the reference interpretation of the input module, under
//! every preset, Table 1 component config, machine model, and variant
//! seed — and the `r2c-check` static analyzer must accept it. This
//! crate turns that contract into a fuzzer:
//!
//! * [`gen`] — a structure-aware generator producing modules far
//!   outside the existing property-test recipe: bounded recursion
//!   (direct and mutual), diamonds, self-looping and nested loops,
//!   unreachable blocks, masked global/heap/stack memory traffic,
//!   extern-call boundaries, and register pressure high enough to
//!   force spills.
//! * [`oracle`] — the differential oracle running each module through
//!   a configuration matrix and classifying the outcome.
//! * [`reduce`] — a delta-debugging reducer that shrinks a diverging
//!   module while re-running the diverging cell, emitting a minimized
//!   `.r2cir` reproducer.
//! * [`coverage`] — a cheap AFL-style coverage map fed from compiler
//!   reports, VM execution edges, and IR-shape features.
//! * [`mutate`] — verify-gated structural mutations over corpus
//!   entries (operand/immediate flips, block splices, CFG rewires,
//!   call-target swaps).
//! * [`corpus`] — the checked-in, energy-scheduled corpus of coverage
//!   keepers.
//! * [`campaign`] — the deterministic coverage-guided campaign driver
//!   tying all of the above together, with a blind mode for A/B runs.
//!
//! The `fuzz` binary in `r2c-bench` drives campaigns from the command
//! line; `tests/fuzz_regressions.rs` at the workspace root pins
//! previously-found shapes as named regression tests.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod reduce;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CoveragePoint, DivergenceRecord};
pub use corpus::{Corpus, CorpusEntry};
pub use coverage::{case_coverage, fault_name, CaseCoverage, CoverageMap, MAP_BITS};
pub use gen::{generate, generate_with, GenConfig};
pub use mutate::{gate, mutate, MutationKind};
pub use oracle::{
    named_configs, run_oracle, summarize_divergences, CaseVerdict, Divergence, MatrixCell,
    OracleMatrix, FLEET_CELL_PREFIX, REPLAY_CELL_PREFIX,
};
pub use reduce::{reduce, reproducer_source, Reduction, ReductionStats};

use r2c_ir::Module;

/// Result of one fuzz case: the generated module and its verdict.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The case seed the module was generated from.
    pub case_seed: u64,
    /// The matrix verdict.
    pub verdict: CaseVerdict,
}

/// Generates the module for `case_seed` and runs it through `matrix`.
pub fn run_case(case_seed: u64, matrix: &OracleMatrix) -> (Module, CaseReport) {
    let module = gen::generate(case_seed);
    let verdict = oracle::run_oracle(&module, matrix);
    (module, CaseReport { case_seed, verdict })
}

/// Reduces a diverging module against the exact cell that disagreed,
/// returning the minimized reproducer. The predicate re-runs the full
/// per-cell oracle (build + `r2c-check` + differential execution) on
/// every candidate.
pub fn reduce_divergence(module: &Module, div: &Divergence, max_rounds: usize) -> Reduction {
    let cell = div.cell.clone();
    reduce::reduce(
        module,
        &move |m: &Module| oracle::cell_still_diverges(m, &cell),
        max_rounds,
    )
}

/// Renders a reduced divergence as a standalone `.r2cir` reproducer.
pub fn divergence_report(case_seed: u64, div: &Divergence, reduced: &Module) -> String {
    let mut header = vec![
        format!("case seed {case_seed}"),
        format!(
            "cell: config={} build_seed={} machine={:?}",
            div.cell.config_name, div.cell.build_seed, div.cell.machine
        ),
    ];
    for d in &div.details {
        header.push(format!("diff: {d}"));
    }
    reduce::reproducer_source(reduced, &header)
}
