//! Coverage-guided campaign acceptance (ISSUE 8): the coverage map is
//! deterministic, corpus growth is monotone, the mutant gate keeps the
//! corpus well-formed, and — the headline claims — a guided campaign
//! beats a blind one at equal case budget, both on coverage population
//! and on time-to-detection of deliberately injected miscompiles.
//!
//! Everything here is a pure function of fixed seeds: the generator,
//! the mutator, the lowering pipeline, and the campaign scheduler all
//! draw from explicitly seeded RNGs, so these are exact assertions,
//! not statistical ones.

use std::path::Path;

use r2c_codegen::InjectedFault;
use r2c_core::R2cConfig;
use r2c_fuzz::{
    case_coverage, gate, generate, mutate, run_campaign, CampaignConfig, Corpus, CoverageMap,
    GenConfig, OracleMatrix,
};
use r2c_vm::MachineKind;
use rand::{rngs::SmallRng, SeedableRng};

fn checked_in_corpus() -> Corpus {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = Corpus::load(&dir);
    assert!(
        !corpus.entries.is_empty(),
        "checked-in corpus at {dir:?} is empty"
    );
    corpus
}

/// A fresh-generation shape that cannot trigger either injected fault:
/// every function is plain (`no_instrument`, so no BTDP stores exist to
/// skip) and register pressure is far below the spill threshold (so no
/// spill reloads exist to skip). Shared verbatim by the guided and
/// blind arms — only the feedback loop differs.
fn low_yield_gen() -> GenConfig {
    GenConfig {
        helpers: 1,
        call_depth: 1,
        loop_iters: 2,
        constructs_per_fn: 1,
        burst_len: 2,
        pressure: 2,
        tab_words: 8,
        arr_words: 8,
        use_extern: false,
        use_indirect: false,
        deep_recursion: None,
        use_unwind: false,
        use_fptr_slot: false,
        heap_chain: 0,
        plain_fns: 1.0,
    }
}

fn injected_cell(fault: InjectedFault, name: &str) -> OracleMatrix {
    let mut c = R2cConfig::full(0);
    c.diversify.inject_fault = Some(fault);
    OracleMatrix::single(name, c, MachineKind::EpycRome, 1)
}

#[test]
fn coverage_extraction_is_deterministic_across_runs() {
    for seed in [0u64, 9, 23] {
        let m = generate(seed);
        let a = case_coverage(&m, 1);
        let b = case_coverage(&m, 1);
        assert_eq!(a.features, b.features, "seed {seed}");
        let mut ma = CoverageMap::new();
        let mut mb = CoverageMap::new();
        assert_eq!(ma.merge(&a), mb.merge(&b));
        assert_eq!(ma.population(), mb.population());
    }
}

#[test]
fn corpus_growth_is_monotone_and_accounted() {
    let cfg = CampaignConfig {
        matrix: OracleMatrix::single("full", R2cConfig::full(0), MachineKind::EpycRome, 1),
        ..CampaignConfig::guided_quick(10, 3)
    };
    let mut corpus = Corpus::new();
    let report = run_campaign(&cfg, &mut corpus);
    // Every admission grows the corpus; nothing is ever removed by a
    // campaign (only `refresh` may drop entries, and only subsumed
    // ones).
    assert_eq!(corpus.entries.len() as u64, report.admitted);
    assert!(report.admitted > 0, "campaign admitted nothing");
    let mut last = 0;
    for p in &report.curve {
        assert!(p.population >= last);
        last = p.population;
    }
}

#[test]
fn mutant_gate_rejects_ill_formed_candidates() {
    // The raw mutator produces candidates the gate throws away; the
    // gated entry point never lets one through. Exercised over several
    // module shapes to hit splices/rewires that break verification.
    let mut raw_rejects = 0u32;
    for mod_seed in 0..6u64 {
        let m = generate(mod_seed);
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Some((cand, _kind)) = r2c_fuzz::mutate::apply_random(&m, &mut rng) {
                if cand != m && !gate(&cand) {
                    raw_rejects += 1;
                }
            }
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Some((mutant, _kind)) = mutate(&m, &mut rng, 8) {
                assert!(
                    gate(&mutant),
                    "gated mutant failed the gate (module {mod_seed}, seed {seed})"
                );
            }
        }
    }
    assert!(
        raw_rejects > 0,
        "no raw mutant was ever rejected — the gate is not being tested"
    );
}

#[test]
fn guided_reaches_higher_coverage_than_blind_at_equal_budget() {
    let base = CampaignConfig {
        matrix: OracleMatrix::single("full", R2cConfig::full(0), MachineKind::EpycRome, 1),
        ..CampaignConfig::guided_quick(8, 17)
    };
    let guided = run_campaign(&base, &mut checked_in_corpus());
    let blind = run_campaign(&base.clone().blind(), &mut Corpus::new());
    assert_eq!(guided.cases_run, blind.cases_run, "unequal budgets");
    assert!(
        guided.population > blind.population,
        "guided {} bits <= blind {} bits",
        guided.population,
        blind.population
    );
}

/// Cases until first detection, with "never found" counted as one past
/// the budget (standard censoring for fuzzing A/B evals).
fn detection_latency(cfg: &CampaignConfig, corpus: &mut Corpus) -> u64 {
    let report = run_campaign(cfg, corpus);
    report.first_divergence_case.unwrap_or(cfg.cases)
}

fn assert_guided_detects_faster(fault: InjectedFault, name: &str) {
    let base = CampaignConfig {
        matrix: injected_cell(fault, name),
        mutate_ratio: 0.95,
        fresh_gen: Some(low_yield_gen()),
        stop_on_divergence: true,
        ..CampaignConfig::guided_quick(25, 29)
    };
    let guided = detection_latency(&base, &mut checked_in_corpus());
    let blind = detection_latency(&base.clone().blind(), &mut Corpus::new());
    assert!(
        guided < blind,
        "{name}: guided found at case {guided}, blind at {blind} (budget {})",
        base.cases
    );
}

#[test]
fn skipped_btdp_store_found_faster_guided() {
    assert_guided_detects_faster(InjectedFault::SkipBtdpStore, "full+skip-btdp-store");
}

#[test]
fn skipped_spill_reload_found_faster_guided() {
    assert_guided_detects_faster(InjectedFault::SkipSpillReload, "full+skip-spill-reload");
}
