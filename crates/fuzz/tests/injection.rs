//! Oracle validation (ISSUE 3 acceptance): deliberately miscompiling
//! the backend via `r2c_codegen::InjectedFault` must (a) be caught by
//! the differential oracle and (b) reduce to a small reproducer.
//!
//! * `SkipBtdpStore` drops one booby-trapped-data-pointer store per
//!   function while leaving the camouflage metadata claiming it — the
//!   `r2c-check` camo pass must flag the mismatch, which the oracle
//!   surfaces as a build-failure divergence.
//! * `SkipSpillReload` omits one spill reload per function — a genuine
//!   semantic miscompile only differential execution can see.

use r2c_codegen::InjectedFault;
use r2c_core::R2cConfig;
use r2c_fuzz::{
    divergence_report, generate_with, reduce_divergence, run_oracle, CaseVerdict, GenConfig,
    OracleMatrix,
};
use r2c_ir::Module;
use r2c_vm::MachineKind;
use rand::{rngs::SmallRng, SeedableRng};

fn injected(fault: InjectedFault) -> R2cConfig {
    let mut c = R2cConfig::full(0);
    c.diversify.inject_fault = Some(fault);
    c
}

/// A module guaranteed to have several functions and enough register
/// pressure to spill in all of them.
fn pressure_module(seed: u64) -> Module {
    let cfg = GenConfig {
        helpers: 3,
        call_depth: 2,
        loop_iters: 3,
        constructs_per_fn: 3,
        burst_len: 5,
        pressure: 26,
        tab_words: 16,
        arr_words: 16,
        use_extern: true,
        use_indirect: false,
        deep_recursion: None,
        use_unwind: false,
        use_fptr_slot: false,
        heap_chain: 0,
        plain_fns: 0.0,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    generate_with(&cfg, &mut rng)
}

fn catch_and_reduce(fault: InjectedFault, name: &str) {
    let matrix = OracleMatrix::single(name, injected(fault), MachineKind::EpycRome, 1);
    for seed in 0..10u64 {
        let module = pressure_module(seed);
        let CaseVerdict::Diverged(divs) = run_oracle(&module, &matrix) else {
            continue;
        };
        let div = &divs[0];
        assert!(!div.details.is_empty());
        let reduced = reduce_divergence(&module, div, 6);
        assert!(
            reduced.module.funcs.len() <= 3,
            "{name}: reducer kept {} functions",
            reduced.module.funcs.len()
        );
        assert!(
            reduced.module.funcs.len() < module.funcs.len() || reduced.stats.accepted > 0,
            "{name}: reducer made no progress"
        );
        // The reproducer must reparse (checked inside) and name the cell.
        let report = divergence_report(seed, div, &reduced.module);
        assert!(report.contains(name), "{report}");
        return;
    }
    panic!("{name}: injected fault never produced a divergence in 10 module seeds");
}

#[test]
fn skipped_btdp_store_is_caught_and_reduced() {
    catch_and_reduce(InjectedFault::SkipBtdpStore, "full+skip-btdp-store");
}

#[test]
fn skipped_spill_reload_is_caught_and_reduced() {
    catch_and_reduce(InjectedFault::SkipSpillReload, "full+skip-spill-reload");
}

#[test]
fn clean_config_passes_where_injected_diverges() {
    // Sanity check on the harness itself: the very module whose
    // injected build diverges must pass the same cell without the
    // fault.
    let injected_matrix = OracleMatrix::single(
        "full+skip-spill-reload",
        injected(InjectedFault::SkipSpillReload),
        MachineKind::EpycRome,
        1,
    );
    let clean_matrix = OracleMatrix::single("full", R2cConfig::full(0), MachineKind::EpycRome, 1);
    for seed in 0..10u64 {
        let module = pressure_module(seed);
        if let CaseVerdict::Diverged(_) = run_oracle(&module, &injected_matrix) {
            match run_oracle(&module, &clean_matrix) {
                CaseVerdict::Pass { .. } => return,
                v => panic!("clean build of diverging module did not pass: {v:?}"),
            }
        }
    }
    panic!("no diverging seed found");
}
