//! Property-based contract of the corpus mutator: every mutant that
//! survives the gate round-trips through the textual IR format and is
//! accepted by the verifier, and no candidate that the verifier would
//! reject ever slips past the gate. Together these keep the checked-in
//! corpus well-formed no matter how campaigns evolve it.

use proptest::prelude::*;

use r2c_fuzz::mutate::apply_random;
use r2c_fuzz::{gate, generate, mutate};
use r2c_ir::{parse_module, print_module, verify_module};
use rand::{rngs::SmallRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 24 } else { 96 } })]

    /// `mutate` output always reparses to itself and verifies — the
    /// corpus on-disk format and the verifier contract both hold for
    /// every admitted mutant.
    #[test]
    fn gated_mutants_roundtrip_and_verify((mod_seed, rng_seed) in (0u64..32, any::<u64>())) {
        let m = generate(mod_seed);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        if let Some((mutant, kind)) = mutate(&m, &mut rng, 8) {
            prop_assert!(
                verify_module(&mutant).is_ok(),
                "verifier rejected a gated {kind:?} mutant (module {mod_seed}, rng {rng_seed})"
            );
            let text = print_module(&mutant);
            let back = parse_module(&text).expect("gated mutant must reparse");
            prop_assert_eq!(back, mutant);
        }
    }

    /// A raw candidate the verifier rejects is always discarded by the
    /// gate — a verifier-accepted module can never mutate into a
    /// rejected one without the mutant being thrown away.
    #[test]
    fn ill_formed_candidates_never_pass_the_gate((mod_seed, rng_seed) in (0u64..32, any::<u64>())) {
        let m = generate(mod_seed);
        prop_assert!(verify_module(&m).is_ok());
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        if let Some((cand, kind)) = apply_random(&m, &mut rng) {
            if verify_module(&cand).is_err() {
                prop_assert!(
                    !gate(&cand),
                    "gate admitted a verifier-rejected {kind:?} candidate \
                     (module {mod_seed}, rng {rng_seed})"
                );
            }
        }
    }
}
