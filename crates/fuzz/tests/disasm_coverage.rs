//! Disassembler coverage (ISSUE 3 satellite): every instruction the
//! lowerer can emit — across presets, BTRA modes, and component
//! configs, driven by fuzzer-generated modules — must disassemble to a
//! meaningful string. No `unknown`, no placeholders, and the
//! function-level and image-level dumps must resolve.

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_fuzz::{generate, named_configs};
use r2c_vm::disasm::{disasm_function, dump_image, format_insn};

#[test]
fn every_emitted_insn_disassembles() {
    let seeds: &[u64] = if cfg!(debug_assertions) {
        &[0, 1, 2, 3]
    } else {
        &[0, 1, 2, 3, 4, 5, 6, 7]
    };
    for &seed in seeds {
        let m = generate(seed);
        for (name, cfg) in named_configs() {
            let image = R2cCompiler::new(cfg.with_seed(seed + 99).with_check(false))
                .build(&m)
                .unwrap_or_else(|e| panic!("seed {seed} config {name}: {e}"));
            for (i, insn) in image.insns.iter().enumerate() {
                let s = format_insn(insn);
                assert!(
                    !s.is_empty(),
                    "seed {seed} config {name}: empty disasm at insn {i} ({insn:?})"
                );
                let low = s.to_ascii_lowercase();
                assert!(
                    !low.contains("unknown") && !low.contains("???"),
                    "seed {seed} config {name}: placeholder disasm {s:?} for {insn:?}"
                );
            }
        }
    }
}

#[test]
fn function_and_image_dumps_resolve() {
    let m = generate(5);
    let image = R2cCompiler::new(R2cConfig::full(11)).build(&m).unwrap();
    let main_dis = disasm_function(&image, "main").expect("main must be disassemblable");
    assert!(main_dis.lines().count() > 1, "{main_dis}");
    let dump = dump_image(&image);
    for f in &m.funcs {
        assert!(dump.contains(&f.name), "dump missing function {}", f.name);
    }
}
