//! Printer → parser roundtrip coverage on fuzzer-generated modules
//! (ISSUE 3 satellite): every module the structure-aware generator can
//! produce must survive `parse(print(m)) == m` exactly — duplicate
//! block names, unreachable blocks, function-pointer globals,
//! no-instrument markers and all. The duplicate-label collapse this
//! sweep originally exposed is fixed in `r2c_ir::parser` and pinned
//! there by `duplicate_block_names_roundtrip`.

use r2c_fuzz::generate;
use r2c_ir::{interpret, parse_module, print_module, verify_module};

const SEEDS: u64 = if cfg!(debug_assertions) { 150 } else { 400 };

#[test]
fn generated_modules_roundtrip_exactly() {
    for seed in 0..SEEDS {
        let m = generate(seed);
        let text = print_module(&m);
        let back = parse_module(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e:?}\n{text}"));
        assert_eq!(back, m, "seed {seed}: roundtrip changed the module");
        verify_module(&back).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
}

#[test]
fn roundtrip_preserves_semantics() {
    // Belt and braces on top of structural equality: the reparsed
    // module interprets identically (same return, output, and final
    // global bytes).
    for seed in 0..20u64 {
        let m = generate(seed);
        let back = parse_module(&print_module(&m)).unwrap();
        let a = interpret(&m, "main", 50_000_000).unwrap();
        let b = interpret(&back, "main", 50_000_000).unwrap();
        assert_eq!(a.ret, b.ret, "seed {seed}");
        assert_eq!(a.output, b.output, "seed {seed}");
        assert_eq!(a.globals, b.globals, "seed {seed}");
    }
}
