//! Replays the entire checked-in coverage corpus through the full
//! quick oracle matrix — including the `tv` (translation-validated)
//! and `nofuse` cells and the fleet-determinism cell. Corpus entries
//! are admitted only from passing cases, so any divergence here means
//! the pipeline regressed against a shape the corpus pinned down.
//!
//! This is a standalone test target so CI can run it (and nothing
//! else) against a freshly evolved corpus.

use std::path::Path;

use r2c_fuzz::{run_oracle, summarize_divergences, CaseVerdict, Corpus, OracleMatrix};

#[test]
fn checked_in_corpus_replays_clean_across_quick_matrix() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = Corpus::load(&dir);
    assert!(
        !corpus.entries.is_empty(),
        "checked-in corpus at {dir:?} is empty — campaigns cannot start from it"
    );
    let matrix = OracleMatrix::quick();
    // The quick matrix must still carry the special cells the corpus
    // is meant to exercise.
    let names: Vec<&str> = matrix.configs.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("tv")),
        "quick matrix lost its tv cell: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("nofuse")),
        "quick matrix lost its nofuse cell: {names:?}"
    );
    for e in &corpus.entries {
        match run_oracle(&e.module, &matrix) {
            CaseVerdict::Pass { cells } => assert!(cells > 0),
            CaseVerdict::Skipped { reason } => {
                panic!("corpus entry {}: reference rejected it: {reason}", e.name)
            }
            CaseVerdict::Diverged(divs) => panic!(
                "corpus entry {}: {}; first cell details: {:?}",
                e.name,
                summarize_divergences(&divs),
                divs[0].details
            ),
        }
    }
}
