//! Liveness analysis and linear-scan register allocation.
//!
//! Values live across call sites get callee-saved registers (or spill
//! slots), so no caller-side save/restore code is needed. The register
//! preference order can be randomized per function — R²C's
//! register-allocation randomization (§4.3/§6.2.3), which perturbs the
//! byte encodings and register-operand patterns of otherwise identical
//! code.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use r2c_ir::{Function, Inst, Term, Val};
use r2c_vm::Gpr;

/// Where a value lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Loc {
    /// In a register for its whole lifetime.
    Reg(Gpr),
    /// In a numbered spill slot (frame layout assigns the offset).
    Slot(u32),
}

/// Allocation result for one function.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location per value id.
    pub locs: Vec<Loc>,
    /// Callee-saved registers handed out (prologue must save them).
    pub used_callee_saved: Vec<Gpr>,
    /// Number of spill slots used.
    pub num_slots: u32,
}

impl Allocation {
    /// Location of a value.
    pub fn loc(&self, v: Val) -> Loc {
        self.locs[v.0 as usize]
    }
}

/// Registers handed to values that do not live across calls.
pub const CALLER_POOL: [Gpr; 7] = [
    Gpr::Rax,
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rsi,
    Gpr::Rdi,
    Gpr::R8,
    Gpr::R9,
];

/// Registers handed to values that live across calls.
pub const CALLEE_POOL: [Gpr; 5] = [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

/// Scratch registers reserved for the emitter (operand staging, BTRA
/// setup); never allocated.
pub const SCRATCH: [Gpr; 2] = [Gpr::R10, Gpr::R11];

fn uses_of(inst: &Inst, out: &mut Vec<Val>) {
    match inst {
        Inst::Const(_)
        | Inst::Param(_)
        | Inst::Alloca { .. }
        | Inst::GlobalAddr(_)
        | Inst::FuncAddr(_) => {}
        Inst::Load { ptr, .. } => out.push(*ptr),
        Inst::Store { ptr, val, .. } => {
            out.push(*ptr);
            out.push(*val);
        }
        Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
            out.push(*a);
            out.push(*b);
        }
        Inst::PtrAdd { base, idx, .. } => {
            out.push(*base);
            if let Some(i) = idx {
                out.push(*i);
            }
        }
        Inst::Call { args, .. } => out.extend(args.iter().copied()),
        Inst::CallInd { ptr, args } => {
            out.push(*ptr);
            out.extend(args.iter().copied());
        }
        Inst::CallExtern { args, .. } => out.extend(args.iter().copied()),
    }
}

fn is_call(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Call { .. } | Inst::CallInd { .. } | Inst::CallExtern { .. }
    )
}

/// Live interval of a value, as conservative `[start, end]` positions.
#[derive(Clone, Copy, Debug)]
struct Interval {
    val: Val,
    start: u32,
    end: u32,
    crosses_call: bool,
}

/// Computes a conservative allocation for `f`.
///
/// `rand_seed` of `Some(seed)` randomizes the register preference order
/// (register-allocation randomization); `None` uses the fixed default
/// order, giving a deterministic baseline.
pub fn allocate(f: &Function, rand_seed: Option<u64>) -> Allocation {
    let nvals = f.num_vals as usize;
    // Position numbering: blocks in layout order; each instruction and
    // each terminator takes one position.
    let mut block_start = Vec::with_capacity(f.blocks.len());
    let mut block_end = Vec::with_capacity(f.blocks.len());
    let mut pos = 0u32;
    for b in &f.blocks {
        block_start.push(pos);
        pos += b.insts.len() as u32 + 1; // +1 for the terminator
        block_end.push(pos - 1);
    }

    // Per-block gen/kill.
    let nb = f.blocks.len();
    let mut gen: Vec<Vec<bool>> = vec![vec![false; nvals]; nb];
    let mut kill: Vec<Vec<bool>> = vec![vec![false; nvals]; nb];
    let mut tmp = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (res, inst) in &b.insts {
            tmp.clear();
            uses_of(inst, &mut tmp);
            for u in &tmp {
                if !kill[bi][u.0 as usize] {
                    gen[bi][u.0 as usize] = true;
                }
            }
            if let Some(r) = res {
                kill[bi][r.0 as usize] = true;
            }
        }
        match &b.term {
            Term::CondBr { cond, .. } if !kill[bi][cond.0 as usize] => {
                gen[bi][cond.0 as usize] = true;
            }
            Term::Ret(Some(v)) if !kill[bi][v.0 as usize] => {
                gen[bi][v.0 as usize] = true;
            }
            _ => {}
        }
    }
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| match &b.term {
            Term::Br(t) => vec![t.0 as usize],
            Term::CondBr {
                then_bb, else_bb, ..
            } => vec![then_bb.0 as usize, else_bb.0 as usize],
            Term::Ret(_) => vec![],
        })
        .collect();

    // Iterative dataflow: live_in = gen ∪ (live_out \ kill).
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nvals]; nb];
    let mut live_out: Vec<Vec<bool>> = vec![vec![false; nvals]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            for v in 0..nvals {
                let mut out = false;
                for &s in &succs[bi] {
                    if live_in[s][v] {
                        out = true;
                        break;
                    }
                }
                if out != live_out[bi][v] {
                    live_out[bi][v] = out;
                    changed = true;
                }
                let inn = gen[bi][v] || (out && !kill[bi][v]);
                if inn != live_in[bi][v] {
                    live_in[bi][v] = inn;
                    changed = true;
                }
            }
        }
    }

    // Build intervals and record call positions.
    let mut start = vec![u32::MAX; nvals];
    let mut end = vec![0u32; nvals];
    let mut call_positions = Vec::new();
    let touch = |v: Val, p: u32, start: &mut Vec<u32>, end: &mut Vec<u32>| {
        let i = v.0 as usize;
        start[i] = start[i].min(p);
        end[i] = end[i].max(p);
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut p = block_start[bi];
        for (res, inst) in &b.insts {
            if is_call(inst) {
                call_positions.push(p);
            }
            tmp.clear();
            uses_of(inst, &mut tmp);
            for u in &tmp {
                touch(*u, p, &mut start, &mut end);
            }
            if let Some(r) = res {
                touch(*r, p, &mut start, &mut end);
            }
            p += 1;
        }
        match &b.term {
            Term::CondBr { cond, .. } => touch(*cond, p, &mut start, &mut end),
            Term::Ret(Some(v)) => touch(*v, p, &mut start, &mut end),
            _ => {}
        }
        for v in 0..nvals {
            if live_in[bi][v] {
                touch(Val(v as u32), block_start[bi], &mut start, &mut end);
            }
            if live_out[bi][v] {
                touch(Val(v as u32), block_end[bi], &mut start, &mut end);
            }
        }
    }

    let mut intervals: Vec<Interval> = (0..nvals)
        .filter(|&v| start[v] != u32::MAX)
        .map(|v| {
            let crosses = call_positions.iter().any(|&p| start[v] < p && p < end[v]);
            Interval {
                val: Val(v as u32),
                start: start[v],
                end: end[v],
                crosses_call: crosses,
            }
        })
        .collect();
    intervals.sort_by_key(|iv| (iv.start, iv.end));

    // Register preference orders (optionally shuffled).
    let mut caller: Vec<Gpr> = CALLER_POOL.to_vec();
    let mut callee: Vec<Gpr> = CALLEE_POOL.to_vec();
    if let Some(seed) = rand_seed {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        caller.shuffle(&mut rng);
        callee.shuffle(&mut rng);
    }

    // Linear scan.
    let mut locs = vec![Loc::Slot(u32::MAX); nvals];
    let mut active: Vec<(u32, Gpr)> = Vec::new(); // (end, reg)
    let mut free_caller = caller.clone();
    let mut free_callee = callee.clone();
    let mut used_callee_saved = Vec::new();
    let mut num_slots = 0u32;
    for iv in &intervals {
        // Expire.
        active.retain(|&(e, r)| {
            if e < iv.start {
                if CALLEE_POOL.contains(&r) {
                    free_callee.push(r);
                } else {
                    free_caller.push(r);
                }
                false
            } else {
                true
            }
        });
        let reg = if iv.crosses_call {
            free_callee.pop()
        } else {
            free_caller.pop().or_else(|| free_callee.pop())
        };
        match reg {
            Some(r) => {
                if CALLEE_POOL.contains(&r) && !used_callee_saved.contains(&r) {
                    used_callee_saved.push(r);
                }
                locs[iv.val.0 as usize] = Loc::Reg(r);
                active.push((iv.end, r));
            }
            None => {
                locs[iv.val.0 as usize] = Loc::Slot(num_slots);
                num_slots += 1;
            }
        }
    }
    // Dead values (never touched) still need a defined location for the
    // emitter to write their (unused) results to.
    for (v, loc) in locs.iter_mut().enumerate() {
        if *loc == Loc::Slot(u32::MAX) {
            if start[v] == u32::MAX {
                *loc = Loc::Slot(num_slots);
                num_slots += 1;
            } else {
                unreachable!("live value without a location");
            }
        }
    }
    used_callee_saved.sort();
    Allocation {
        locs,
        used_callee_saved,
        num_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::{BinOp, CmpOp, ExternFn, ModuleBuilder};

    fn alloc_of(build: impl FnOnce(&mut ModuleBuilder)) -> (r2c_ir::Module, Allocation) {
        let mut mb = ModuleBuilder::new("t");
        build(&mut mb);
        let m = mb.finish();
        r2c_ir::verify_module(&m).unwrap();
        let a = allocate(m.funcs.last().unwrap(), None);
        (m, a)
    }

    #[test]
    fn straight_line_gets_registers() {
        let (_m, a) = alloc_of(|mb| {
            let mut f = mb.function("main", 0);
            let x = f.iconst(1);
            let y = f.iconst(2);
            let z = f.bin(BinOp::Add, x, y);
            f.ret(Some(z));
            f.finish();
        });
        for l in &a.locs {
            assert!(
                matches!(l, Loc::Reg(_)),
                "small function must not spill: {a:?}"
            );
        }
        assert!(a.used_callee_saved.is_empty());
    }

    #[test]
    fn value_across_call_gets_callee_saved() {
        let (_m, a) = alloc_of(|mb| {
            let callee = mb.declare_function("callee", 0);
            let mut c = mb.function("callee", 0);
            c.ret(None);
            c.finish();
            let mut f = mb.function("main", 0);
            let x = f.iconst(5); // live across the call
            let _r = f.call(callee, &[]);
            let y = f.bin(BinOp::Add, x, x);
            f.ret(Some(y));
            f.finish();
        });
        // Value 0 (x) crosses the call.
        match a.locs[0] {
            Loc::Reg(r) => assert!(CALLEE_POOL.contains(&r), "x in caller-saved {r}"),
            Loc::Slot(_) => {}
        }
        if let Loc::Reg(r) = a.locs[0] {
            assert!(a.used_callee_saved.contains(&r));
        }
    }

    #[test]
    fn high_pressure_spills() {
        let (_m, a) = alloc_of(|mb| {
            let mut f = mb.function("main", 0);
            let vals: Vec<_> = (0..20).map(|i| f.iconst(i)).collect();
            // Keep all 20 alive until the end.
            let mut acc = vals[0];
            for v in &vals[1..] {
                acc = f.bin(BinOp::Add, acc, *v);
            }
            // Reuse the originals so their intervals stretch.
            let mut acc2 = vals[0];
            for v in &vals[1..] {
                acc2 = f.bin(BinOp::Xor, acc2, *v);
            }
            let r = f.bin(BinOp::Add, acc, acc2);
            f.ret(Some(r));
            f.finish();
        });
        assert!(a.num_slots > 0, "20 simultaneously live values must spill");
    }

    #[test]
    fn loop_value_lives_across_backedge() {
        let (_m, a) = alloc_of(|mb| {
            let mut f = mb.function("main", 0);
            let slot = f.alloca(8, 8);
            let zero = f.iconst(0);
            f.store(slot, 0, zero);
            let body = f.new_block("body");
            let exit = f.new_block("exit");
            f.br(body);
            f.switch_to(body);
            let cur = f.load(slot, 0);
            let one = f.iconst(1);
            let nxt = f.bin(BinOp::Add, cur, one);
            f.store(slot, 0, nxt);
            let lim = f.iconst(10);
            let done = f.cmp(CmpOp::Ge, nxt, lim);
            f.cond_br(done, exit, body);
            f.switch_to(exit);
            let v = f.load(slot, 0);
            f.ret(Some(v));
            f.finish();
        });
        // `slot` (value 0) is used in entry, body and is live around the
        // loop; it must have a single consistent location.
        assert!(matches!(a.locs[0], Loc::Reg(_) | Loc::Slot(_)));
    }

    #[test]
    fn randomized_order_changes_assignment() {
        let build = |mb: &mut ModuleBuilder| {
            let mut f = mb.function("main", 0);
            let x = f.iconst(1);
            let y = f.iconst(2);
            let z = f.bin(BinOp::Add, x, y);
            f.call_extern(ExternFn::PrintI64, &[z]);
            f.ret(Some(z));
            f.finish();
        };
        let mut mb1 = ModuleBuilder::new("a");
        build(&mut mb1);
        let m1 = mb1.finish();
        let base = allocate(&m1.funcs[0], None);
        // At least one of many seeds must give a different assignment.
        let mut differs = false;
        for seed in 0..16 {
            let r = allocate(&m1.funcs[0], Some(seed));
            if r.locs != base.locs {
                differs = true;
                break;
            }
        }
        assert!(differs, "randomization never changed the assignment");
    }
}
