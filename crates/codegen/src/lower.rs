//! Lowering from IR to machine code.
//!
//! This is where most of R²C lives mechanically:
//!
//! * **Call sites** optionally receive NOP insertion and a booby-trapped
//!   return-address window, set up either with pushes (Figure 3) or with
//!   AVX2 batched stores from a call-site-specific array in the data
//!   section (Figure 4). The window is written *in full before the
//!   call*, and the `call` overwrites the already-present return-address
//!   slot, so the stack content never changes afterwards — closing the
//!   race window of §5.1.
//! * **Prologues** optionally receive the callee-side BTRA post-offset,
//!   jumped-over trap instructions, and BTDP stores into randomized
//!   stack slots.
//! * **Stack arguments** go through offset-invariant addressing (§5.1.1)
//!   when BTRAs are active: the caller prepares the frame pointer before
//!   the varying pre-offset, and the callee reads arguments relative to
//!   it instead of to `rsp`.
//!
//! The emitted code tracks the stack-depth delta per instruction, from
//! which the linker derives `.eh_frame`-style unwind rows (§7.2.4).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use r2c_ir::{
    BinOp, CmpOp, ExternFn, FuncId, Function, GlobalInit, Inst, Module, Term, Val, VerifyError,
};
use r2c_vm::insn::AluOp;
use r2c_vm::{Cond, Gpr, Insn, MemRef, NativeKind, Ymm};

use crate::config::{BtraMode, DiversifyConfig};
use crate::frame::{FrameLayout, FrameRequest};
use crate::program::{
    CompiledFunc, DataObject, DataReloc, FuncKind, Program, Reloc, RelocKind, UnwindPoint,
};
use crate::regalloc::{allocate, Allocation, Loc};

/// Number of trap bytes at the start of every booby-trap function; a
/// BTRA may point at any of them (so BTRA values are not function-entry
/// aligned, keeping them indistinguishable from return addresses).
pub const BOOBY_TRAP_RUN: u8 = 16;

/// Options for [`compile`].
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Diversification configuration.
    pub diversify: DiversifyConfig,
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Name of the entry function.
    pub entry: String,
    /// Names of constructor functions (run before entry, in order).
    pub ctors: Vec<String>,
}

impl CompileOptions {
    /// Options with the given config and seed, `main` entry and no
    /// constructors.
    pub fn new(diversify: DiversifyConfig, seed: u64) -> CompileOptions {
        CompileOptions {
            diversify,
            seed,
            entry: "main".into(),
            ctors: Vec::new(),
        }
    }
}

/// Compilation failure.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// IR verification failed.
    Verify(VerifyError),
    /// The entry (or a constructor) function does not exist.
    NoSuchFunction(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Verify(e) => write!(f, "IR verification failed: {e}"),
            CompileError::NoSuchFunction(n) => write!(f, "no such function {n:?}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The fixed native-function table order.
pub const NATIVE_ORDER: [NativeKind; 7] = [
    NativeKind::Malloc,
    NativeKind::Free,
    NativeKind::Memalign,
    NativeKind::Mprotect,
    NativeKind::PrintI64,
    NativeKind::PutChar,
    NativeKind::StackProbe,
];

fn native_index(ext: ExternFn) -> u16 {
    match ext {
        ExternFn::Malloc => 0,
        ExternFn::Free => 1,
        ExternFn::Memalign => 2,
        ExternFn::Mprotect => 3,
        ExternFn::PrintI64 => 4,
        ExternFn::PutChar => 5,
        ExternFn::Probe => 6,
    }
}

/// splitmix64-style seed derivation.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable (FNV-1a) salt from a function name. Per-function
/// diversification RNGs are keyed by *name* rather than by function
/// index so that one function's random decisions do not depend on
/// which other functions exist in the module: adding or removing an
/// unrelated function must not reshuffle everyone else's NOPs, traps,
/// and BTDP counts. The `r2c-fuzz` divergence reducer depends on this
/// locality — with index-keyed streams, deleting any function
/// perturbed the diversification of every function after it, and
/// reduction candidates lost the very divergence they were shrinking.
pub fn name_salt(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-function diversification decisions, fixed before lowering so
/// that callers can consult their callees' choices (the caller/callee
/// cooperation of §5.1).
#[derive(Clone, Copy, Debug)]
struct FnMeta {
    /// R²C instrumentation applies.
    protected: bool,
    /// BTRA post-offset in slots (callee's choice).
    post: u32,
    /// Prolog trap count.
    traps: u32,
}

/// Compiles a module to an unlinked [`Program`].
pub fn compile(m: &Module, opts: &CompileOptions) -> Result<Program, CompileError> {
    r2c_ir::verify_module(m).map_err(CompileError::Verify)?;
    let entry = m
        .func_by_name(&opts.entry)
        .ok_or_else(|| CompileError::NoSuchFunction(opts.entry.clone()))?;
    let mut ctors = Vec::new();
    for c in &opts.ctors {
        ctors.push(
            m.func_by_name(c)
                .ok_or_else(|| CompileError::NoSuchFunction(c.clone()))?
                .0 as usize,
        );
    }

    let cfg = &opts.diversify;
    let metas = decide_metas(m, cfg, opts.seed);

    // Lower IR globals to data objects.
    let mut data: Vec<DataObject> = m
        .globals
        .iter()
        .map(|g| {
            let (bytes, relocs) = match &g.init {
                GlobalInit::Zero(n) => (vec![0u8; *n as usize], vec![]),
                GlobalInit::Words(w) => {
                    let mut b = Vec::with_capacity(w.len() * 8);
                    for x in w {
                        b.extend_from_slice(&x.to_le_bytes());
                    }
                    (b, vec![])
                }
                GlobalInit::FuncPtr(f) => (
                    vec![0u8; 8],
                    vec![DataReloc {
                        offset: 0,
                        kind: RelocKind::Func(f.0 as usize),
                    }],
                ),
            };
            DataObject {
                name: g.name.clone(),
                bytes,
                align: g.align.max(8),
                relocs,
                synthetic: false,
            }
        })
        .collect();

    let mut funcs = Vec::with_capacity(m.funcs.len());
    for (fidx, f) in m.funcs.iter().enumerate() {
        let kind = if ctors.contains(&fidx) {
            FuncKind::Constructor
        } else {
            FuncKind::Normal
        };
        let lowered = FnLowerer::new(m, cfg, opts.seed, &metas, fidx, &mut data).lower(f, kind);
        funcs.push(lowered);
    }

    Ok(Program {
        funcs,
        data,
        entry: entry.0 as usize,
        ctors,
        natives: NATIVE_ORDER.to_vec(),
        booby_trap_funcs: if cfg.uses_btra() {
            cfg.booby_trap_funcs.max(1) as u32
        } else {
            0
        },
    })
}

/// Decides per-function metadata, including the demotion of functions
/// that must keep the plain calling convention (§7.4.2): a function with
/// stack parameters that is called from unprotected code cannot use
/// offset-invariant addressing, so R²C is disabled for it.
fn decide_metas(m: &Module, cfg: &DiversifyConfig, seed: u64) -> Vec<FnMeta> {
    let total = cfg.btra.map(|b| b.total as u32).unwrap_or(0);
    let mut protected: Vec<bool> = m.funcs.iter().map(|f| !f.no_instrument).collect();
    if cfg.uses_oia() {
        // Fixpoint demotion: stack-parameter functions directly called
        // from unprotected code revert to the plain convention. An
        // unprotected function making indirect calls demotes every
        // address-taken stack-parameter function.
        loop {
            let mut changed = false;
            for (ci, f) in m.funcs.iter().enumerate() {
                if protected[ci] {
                    continue;
                }
                let demote = |callee: FuncId, protected: &mut Vec<bool>| {
                    let g = &m.funcs[callee.0 as usize];
                    if g.params > 6 && protected[callee.0 as usize] {
                        protected[callee.0 as usize] = false;
                        true
                    } else {
                        false
                    }
                };
                for (_b, (_res, inst)) in f.insts() {
                    match inst {
                        Inst::Call { callee, .. } => {
                            changed |= demote(*callee, &mut protected);
                        }
                        Inst::CallInd { .. } => {
                            // Conservative: demote all address-taken
                            // stack-parameter functions.
                            for (_b2, (_r2, i2)) in m.funcs.iter().flat_map(|f2| f2.insts()) {
                                if let Inst::FuncAddr(t) = i2 {
                                    changed |= demote(*t, &mut protected);
                                }
                            }
                            let _ = ci;
                        }
                        _ => {}
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    m.funcs
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 0xF00D ^ name_salt(&f.name)));
            let prot = protected[i];
            let post = if prot && cfg.btra.is_some() {
                2 * rng.gen_range(0..=total / 2)
            } else {
                0
            };
            let traps = match (prot, cfg.prolog_traps) {
                (true, Some((lo, hi))) => rng.gen_range(lo..=hi) as u32,
                _ => 0,
            };
            FnMeta {
                protected: prot,
                post,
                traps,
            }
        })
        .collect()
}

/// Cond mapping from IR comparisons.
fn cond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::Lt => Cond::Lt,
        CmpOp::Le => Cond::Le,
        CmpOp::Gt => Cond::Gt,
        CmpOp::Ge => Cond::Ge,
    }
}

fn alu_of(op: BinOp) -> Option<AluOp> {
    Some(match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Imul,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        BinOp::Sar => AluOp::Sar,
        BinOp::Div | BinOp::Rem => return None,
    })
}

struct FnLowerer<'a> {
    cfg: &'a DiversifyConfig,
    metas: &'a [FnMeta],
    fidx: usize,
    rng: SmallRng,
    data: &'a mut Vec<DataObject>,

    insns: Vec<Insn>,
    relocs: Vec<Reloc>,
    unwind: Vec<UnwindPoint>,
    depth: i64,
    stable_depth: i64,

    alloc: Allocation,
    frame: FrameLayout,
    alloca_index: HashMap<u32, usize>, // value id -> alloca slot index
    saves: Vec<Gpr>,
    block_first: Vec<usize>,
    pending_branches: Vec<(usize, u32)>, // (insn idx, block id)
    btra_sites: u32,
    btdp_count: u32,
    fault_armed: bool,
}

impl<'a> FnLowerer<'a> {
    fn new(
        m: &'a Module,
        cfg: &'a DiversifyConfig,
        seed: u64,
        metas: &'a [FnMeta],
        fidx: usize,
        data: &'a mut Vec<DataObject>,
    ) -> FnLowerer<'a> {
        FnLowerer {
            cfg,
            metas,
            fidx,
            // Name-keyed, not index-keyed — see `name_salt`.
            rng: SmallRng::seed_from_u64(mix_seed(seed, 0xBEEF ^ name_salt(&m.funcs[fidx].name))),
            data,
            insns: Vec::new(),
            relocs: Vec::new(),
            unwind: vec![UnwindPoint { from: 0, depth: 0 }],
            depth: 0,
            stable_depth: 0,
            alloc: Allocation {
                locs: vec![],
                used_callee_saved: vec![],
                num_slots: 0,
            },
            frame: FrameLayout {
                argstage_off: 0,
                spill_off: vec![],
                alloca_off: vec![],
                btdp_off: vec![],
                incoming_off: vec![],
                argbase_off: None,
                size: 0,
            },
            alloca_index: HashMap::new(),
            saves: vec![],
            block_first: vec![],
            pending_branches: vec![],
            btra_sites: 0,
            btdp_count: 0,
            fault_armed: cfg.inject_fault.is_some(),
        }
    }

    fn meta(&self) -> FnMeta {
        self.metas[self.fidx]
    }

    /// Emits an instruction, maintaining the unwind depth.
    fn emit(&mut self, insn: Insn) -> usize {
        let idx = self.insns.len();
        let delta = match insn {
            Insn::Push { .. } | Insn::PushImm { .. } => 8,
            Insn::Pop { .. } => -8,
            Insn::AluImm {
                op: AluOp::Sub,
                dst: Gpr::Rsp,
                imm,
            } => imm as i64,
            Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm,
            } => -(imm as i64),
            _ => 0,
        };
        self.insns.push(insn);
        if delta != 0 {
            self.depth += delta;
            self.unwind.push(UnwindPoint {
                from: idx + 1,
                depth: self.depth,
            });
        }
        idx
    }

    /// Restores the tracked depth (used after an epilogue that does not
    /// fall through).
    fn reset_depth(&mut self, depth: i64) {
        if self.depth != depth {
            self.depth = depth;
            self.unwind.push(UnwindPoint {
                from: self.insns.len(),
                depth,
            });
        }
    }

    /// Register holding value `v` for reading; loads spills into
    /// `scratch`.
    fn operand(&mut self, v: Val, scratch: Gpr) -> Gpr {
        match self.alloc.loc(v) {
            Loc::Reg(r) => r,
            Loc::Slot(s) => {
                if self.fault_armed
                    && self.cfg.inject_fault == Some(crate::config::InjectedFault::SkipSpillReload)
                {
                    // Oracle-validation defect: hand back the scratch
                    // register with stale contents instead of reloading
                    // the spilled value (first spilled read only).
                    self.fault_armed = false;
                    return scratch;
                }
                let off = self.frame.spill_off[s as usize] as i32;
                self.emit(Insn::Load {
                    dst: scratch,
                    mem: MemRef::base_disp(Gpr::Rsp, off),
                });
                scratch
            }
        }
    }

    /// Writes `src` into value `v`'s location.
    fn write_val(&mut self, v: Val, src: Gpr) {
        match self.alloc.loc(v) {
            Loc::Reg(r) => {
                if r != src {
                    self.emit(Insn::MovReg { dst: r, src });
                }
            }
            Loc::Slot(s) => {
                let off = self.frame.spill_off[s as usize] as i32;
                self.emit(Insn::Store {
                    mem: MemRef::base_disp(Gpr::Rsp, off),
                    src,
                });
            }
        }
    }

    fn lower(mut self, f: &'a Function, kind: FuncKind) -> CompiledFunc {
        let meta = self.meta();
        let regalloc_seed = if meta.protected && self.cfg.regalloc_rand {
            Some(self.rng.gen())
        } else {
            None
        };
        self.alloc = allocate(f, regalloc_seed);
        self.saves = self.alloc.used_callee_saved.clone();

        // Collect allocas in value order.
        let mut allocas = Vec::new();
        for (_b, (res, inst)) in f.insts() {
            if let Inst::Alloca { size, align } = inst {
                self.alloca_index
                    .insert(res.expect("alloca has a result").0, allocas.len());
                allocas.push((*size, *align));
            }
        }
        // Outgoing stack-argument area.
        let mut out_args: u32 = 0;
        for (_b, (_res, inst)) in f.insts() {
            let n = match inst {
                Inst::Call { args, .. } | Inst::CallInd { args, .. } => args.len(),
                _ => 0,
            };
            out_args = out_args.max(8 * n.saturating_sub(6) as u32);
        }
        // BTDPs: skipped for functions without stack allocations (§5.2).
        let has_stack = !allocas.is_empty() || self.alloc.num_slots > 0;
        self.btdp_count = match (meta.protected, self.cfg.btdp, has_stack) {
            (true, Some(b), true) if b.array_len > 0 => self.rng.gen_range(0..=b.max_per_fn) as u32,
            _ => 0,
        };
        let stack_params = f.params.saturating_sub(6);
        let argbase = stack_params > 0 && meta.protected && self.cfg.uses_oia();
        let req = FrameRequest {
            spill_slots: self.alloc.num_slots,
            allocas: allocas.clone(),
            btdp_slots: self.btdp_count,
            incoming_args: f.params.min(6),
            argbase_slot: argbase,
            out_args_bytes: out_args,
            randomize: meta.protected && self.cfg.stack_slot_rand,
        };
        // size % 16 must equal residue so the post-prologue rsp is
        // 16-aligned: entry rsp ≡ 8, then -8*post, -8*saves, -size.
        let residue =
            ((8i64 - 8 * meta.post as i64 - 8 * self.saves.len() as i64).rem_euclid(16)) as u32;
        self.frame = FrameLayout::compute(&req, residue, &mut self.rng);

        self.emit_prologue(f, meta, argbase);
        self.stable_depth = self.depth;

        // Body.
        self.block_first = vec![usize::MAX; f.blocks.len()];
        for (bi, block) in f.blocks.iter().enumerate() {
            self.block_first[bi] = self.insns.len();
            for (res, inst) in &block.insts {
                self.lower_inst(f, *res, inst, meta);
            }
            self.lower_term(f, &block.term, meta);
        }

        // Fix intra-function branches.
        for (at, bb) in std::mem::take(&mut self.pending_branches) {
            let target = self.block_first[bb as usize];
            debug_assert_ne!(target, usize::MAX);
            self.relocs.push(Reloc {
                at,
                kind: RelocKind::Insn {
                    func: self.fidx,
                    insn: target,
                },
            });
        }

        CompiledFunc {
            name: f.name.clone(),
            insns: self.insns,
            relocs: self.relocs,
            unwind: self.unwind,
            kind,
            btra_sites: self.btra_sites,
            btdp_stores: self.btdp_count,
        }
    }

    fn emit_prologue(&mut self, f: &Function, meta: FnMeta, argbase: bool) {
        // BTRA post-offset: protect the BTRAs below the return address
        // from the callee's own stack writes (step 4 of Figure 3).
        if meta.post > 0 {
            self.emit(Insn::AluImm {
                op: AluOp::Sub,
                dst: Gpr::Rsp,
                imm: 8 * meta.post as i32,
            });
        }
        // Prolog traps, jumped over by regular control flow (§4.3).
        if meta.traps > 0 {
            let jmp = self.emit(Insn::Jmp { target: 0 });
            for _ in 0..meta.traps {
                self.emit(Insn::Trap);
            }
            let after = self.insns.len();
            self.relocs.push(Reloc {
                at: jmp,
                kind: RelocKind::Insn {
                    func: self.fidx,
                    insn: after,
                },
            });
            // `after` will be the next emitted instruction; ensure one
            // exists (there is always at least the Ret path below).
        }
        for &r in &self.saves.clone() {
            self.emit(Insn::Push { src: r });
        }
        if self.frame.size > 0 {
            self.emit(Insn::AluImm {
                op: AluOp::Sub,
                dst: Gpr::Rsp,
                imm: self.frame.size as i32,
            });
        }
        if argbase {
            let off = self.frame.argbase_off.expect("argbase slot") as i32;
            self.emit(Insn::Store {
                mem: MemRef::base_disp(Gpr::Rsp, off),
                src: Gpr::Rbp,
            });
        }
        // Spill incoming register arguments.
        for i in 0..f.params.min(6) {
            let off = self.frame.incoming_off[i as usize] as i32;
            self.emit(Insn::Store {
                mem: MemRef::base_disp(Gpr::Rsp, off),
                src: Gpr::ARGS[i as usize],
            });
        }
        // BTDP stores (§5.2): read pointers from the (heap-hosted) BTDP
        // array and plant them in randomized stack slots.
        if self.btdp_count > 0 {
            let b = self.cfg.btdp.expect("btdp config");
            if b.naive_data_array {
                // Naive variant of Figure 5: array directly in .data.
                let at = self.emit(Insn::MovAbs {
                    dst: Gpr::R10,
                    imm: 0,
                });
                self.relocs.push(Reloc {
                    at,
                    kind: RelocKind::Data {
                        index: b.ptr_global as usize,
                        addend: 0,
                    },
                });
            } else {
                let at = self.emit(Insn::LoadAbs {
                    dst: Gpr::R10,
                    addr: 0,
                });
                self.relocs.push(Reloc {
                    at,
                    kind: RelocKind::Data {
                        index: b.ptr_global as usize,
                        addend: 0,
                    },
                });
            }
            for k in 0..self.btdp_count {
                let idx = self.rng.gen_range(0..b.array_len);
                if self.fault_armed
                    && self.cfg.inject_fault == Some(crate::config::InjectedFault::SkipBtdpStore)
                {
                    // Oracle-validation defect: drop the first BTDP
                    // store while `btdp_stores` metadata still counts
                    // it — exactly the mismatch the `r2c-check` BTDP
                    // pass flags.
                    self.fault_armed = false;
                    continue;
                }
                self.emit(Insn::Load {
                    dst: Gpr::R11,
                    mem: MemRef::base_disp(Gpr::R10, (8 * idx) as i32),
                });
                let off = self.frame.btdp_off[k as usize] as i32;
                self.emit(Insn::Store {
                    mem: MemRef::base_disp(Gpr::Rsp, off),
                    src: Gpr::R11,
                });
            }
        }
    }

    fn emit_epilogue(&mut self, meta: FnMeta) {
        if self.frame.size > 0 {
            self.emit(Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm: self.frame.size as i32,
            });
        }
        for &r in self.saves.clone().iter().rev() {
            self.emit(Insn::Pop { dst: r });
        }
        // Revert the post-offset to expose the true return address
        // (step 5 of Figure 3).
        if meta.post > 0 {
            self.emit(Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm: 8 * meta.post as i32,
            });
        }
        debug_assert_eq!(self.depth, 0, "epilogue must fully unwind the frame");
        self.emit(Insn::Ret);
    }

    fn lower_term(&mut self, _f: &Function, term: &Term, meta: FnMeta) {
        match term {
            Term::Br(b) => {
                let at = self.emit(Insn::Jmp { target: 0 });
                self.pending_branches.push((at, b.0));
            }
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.operand(*cond, Gpr::R10);
                self.emit(Insn::Test { a: c });
                let jcc = self.emit(Insn::Jcc {
                    cond: Cond::Ne,
                    target: 0,
                });
                self.pending_branches.push((jcc, then_bb.0));
                let jmp = self.emit(Insn::Jmp { target: 0 });
                self.pending_branches.push((jmp, else_bb.0));
            }
            Term::Ret(v) => {
                if let Some(v) = v {
                    let src = self.operand(*v, Gpr::Rax);
                    if src != Gpr::Rax {
                        self.emit(Insn::MovReg { dst: Gpr::Rax, src });
                    }
                }
                let saved = self.depth;
                self.emit_epilogue(meta);
                self.reset_depth(saved);
            }
        }
    }

    fn lower_inst(&mut self, f: &Function, res: Option<Val>, inst: &Inst, meta: FnMeta) {
        match inst {
            Inst::Const(c) => {
                let dst = res.unwrap();
                match self.alloc.loc(dst) {
                    Loc::Reg(r) => {
                        self.emit(Insn::MovImm {
                            dst: r,
                            imm: *c as u64,
                        });
                    }
                    Loc::Slot(_) => {
                        self.emit(Insn::MovImm {
                            dst: Gpr::R10,
                            imm: *c as u64,
                        });
                        self.write_val(dst, Gpr::R10);
                    }
                }
            }
            Inst::Param(n) => {
                let dst = res.unwrap();
                if *n < 6 {
                    let off = self.frame.incoming_off[*n as usize] as i32;
                    self.emit(Insn::Load {
                        dst: Gpr::R10,
                        mem: MemRef::base_disp(Gpr::Rsp, off),
                    });
                    self.write_val(dst, Gpr::R10);
                } else {
                    let k = (*n - 6) as i32;
                    if meta.protected && self.cfg.uses_oia() {
                        // Offset-invariant addressing: the caller left
                        // the argument base in rbp; the prologue saved
                        // it to a frame slot.
                        let ab = self.frame.argbase_off.expect("argbase") as i32;
                        self.emit(Insn::Load {
                            dst: Gpr::R10,
                            mem: MemRef::base_disp(Gpr::Rsp, ab),
                        });
                        self.emit(Insn::Load {
                            dst: Gpr::R10,
                            mem: MemRef::base_disp(Gpr::R10, 8 * k),
                        });
                    } else {
                        // Plain System V: static distance to the stack
                        // argument (post is 0 for unprotected code).
                        let static_off = self.stable_depth_static() + 8 + 8 * k as i64;
                        self.emit(Insn::Load {
                            dst: Gpr::R10,
                            mem: MemRef::base_disp(Gpr::Rsp, static_off as i32),
                        });
                    }
                    self.write_val(dst, Gpr::R10);
                }
            }
            Inst::Alloca { .. } => {
                let dst = res.unwrap();
                let slot = self.alloca_index[&dst.0];
                let off = self.frame.alloca_off[slot] as i32;
                self.emit(Insn::Lea {
                    dst: Gpr::R10,
                    mem: MemRef::base_disp(Gpr::Rsp, off),
                });
                self.write_val(dst, Gpr::R10);
            }
            Inst::Load { ptr, off } => {
                let dst = res.unwrap();
                let p = self.operand(*ptr, Gpr::R10);
                self.emit(Insn::Load {
                    dst: Gpr::R10,
                    mem: MemRef::base_disp(p, *off),
                });
                self.write_val(dst, Gpr::R10);
            }
            Inst::Store { ptr, off, val } => {
                let v = self.operand(*val, Gpr::R11);
                let p = self.operand(*ptr, Gpr::R10);
                self.emit(Insn::Store {
                    mem: MemRef::base_disp(p, *off),
                    src: v,
                });
            }
            Inst::Bin { op, a, b } => {
                let dst = res.unwrap();
                let bs = self.operand(*b, Gpr::R11);
                let as_ = self.operand(*a, Gpr::R10);
                if as_ != Gpr::R10 {
                    self.emit(Insn::MovReg {
                        dst: Gpr::R10,
                        src: as_,
                    });
                }
                match alu_of(*op) {
                    Some(alu) => {
                        self.emit(Insn::AluReg {
                            op: alu,
                            dst: Gpr::R10,
                            src: bs,
                        });
                    }
                    None => {
                        let i = match op {
                            BinOp::Div => Insn::Div {
                                dst: Gpr::R10,
                                src: bs,
                            },
                            BinOp::Rem => Insn::Rem {
                                dst: Gpr::R10,
                                src: bs,
                            },
                            _ => unreachable!(),
                        };
                        self.emit(i);
                    }
                }
                self.write_val(dst, Gpr::R10);
            }
            Inst::Cmp { op, a, b } => {
                let dst = res.unwrap();
                let bs = self.operand(*b, Gpr::R11);
                let as_ = self.operand(*a, Gpr::R10);
                self.emit(Insn::CmpReg { a: as_, b: bs });
                self.emit(Insn::SetCc {
                    cond: cond_of(*op),
                    dst: Gpr::R10,
                });
                self.write_val(dst, Gpr::R10);
            }
            Inst::GlobalAddr(g) => {
                let dst = res.unwrap();
                let at = self.emit(Insn::MovAbs {
                    dst: Gpr::R10,
                    imm: 0,
                });
                self.relocs.push(Reloc {
                    at,
                    kind: RelocKind::Data {
                        index: g.0 as usize,
                        addend: 0,
                    },
                });
                self.write_val(dst, Gpr::R10);
            }
            Inst::FuncAddr(fi) => {
                let dst = res.unwrap();
                let at = self.emit(Insn::MovAbs {
                    dst: Gpr::R10,
                    imm: 0,
                });
                self.relocs.push(Reloc {
                    at,
                    kind: RelocKind::Func(fi.0 as usize),
                });
                self.write_val(dst, Gpr::R10);
            }
            Inst::PtrAdd {
                base,
                idx,
                scale,
                disp,
            } => {
                let dst = res.unwrap();
                match idx {
                    Some(i) => {
                        let is = self.operand(*i, Gpr::R11);
                        let bs = self.operand(*base, Gpr::R10);
                        self.emit(Insn::Lea {
                            dst: Gpr::R10,
                            mem: MemRef::full(bs, is, *scale, *disp),
                        });
                    }
                    None => {
                        let bs = self.operand(*base, Gpr::R10);
                        self.emit(Insn::Lea {
                            dst: Gpr::R10,
                            mem: MemRef::base_disp(bs, *disp),
                        });
                    }
                }
                self.write_val(dst, Gpr::R10);
            }
            Inst::Call { callee, args } => {
                self.lower_call(f, meta, Callee::Direct(*callee), args, res);
            }
            Inst::CallInd { ptr, args } => {
                self.lower_call(f, meta, Callee::Indirect(*ptr), args, res);
            }
            Inst::CallExtern { ext, args } => {
                self.lower_call(f, meta, Callee::Native(*ext), args, res);
            }
        }
    }

    /// Distance from post-prologue rsp to the return-address slot when
    /// no BTRA post-offset applies (plain-convention stack-arg access).
    fn stable_depth_static(&self) -> i64 {
        self.frame.size as i64 + 8 * self.saves.len() as i64 + 8 * self.meta().post as i64
    }

    fn lower_call(
        &mut self,
        _f: &Function,
        meta: FnMeta,
        callee: Callee,
        args: &[Val],
        res: Option<Val>,
    ) {
        let nreg = args.len().min(6);
        let nstack = args.len().saturating_sub(6);
        // Outgoing stack arguments into the reserved area at [rsp+0..).
        for (k, &arg) in args.iter().skip(6).enumerate() {
            let s = self.operand(arg, Gpr::R10);
            self.emit(Insn::Store {
                mem: MemRef::base_disp(Gpr::Rsp, (8 * k) as i32),
                src: s,
            });
        }
        // Stage register arguments through the argstage area so that
        // argument-register contents never feed each other.
        let stage = self.frame.argstage_off as i32;
        for (i, arg) in args.iter().take(nreg).enumerate() {
            let s = self.operand(*arg, Gpr::R10);
            self.emit(Insn::Store {
                mem: MemRef::base_disp(Gpr::Rsp, stage + 8 * i as i32),
                src: s,
            });
        }
        // Indirect target into r11 *before* the argument registers are
        // loaded (the target value may itself live in an argument
        // register); neither the loads below nor the window setup
        // clobber r11.
        if let Callee::Indirect(p) = callee {
            let s = self.operand(p, Gpr::R11);
            if s != Gpr::R11 {
                self.emit(Insn::MovReg {
                    dst: Gpr::R11,
                    src: s,
                });
            }
        }
        for i in 0..nreg {
            self.emit(Insn::Load {
                dst: Gpr::ARGS[i],
                mem: MemRef::base_disp(Gpr::Rsp, stage + 8 * i as i32),
            });
        }

        // NOP insertion at the call site (§4.3): shifts the return
        // address relative to the calling function's start.
        if meta.protected {
            if let Some((lo, hi)) = self.cfg.nop_insertion {
                let n = self.rng.gen_range(lo..=hi);
                for _ in 0..n {
                    let len = self.rng.gen_range(1..=8) as u8;
                    self.emit(Insn::Nop { len });
                }
            }
        }

        // Callee post-offset (direct calls know it; indirect calls and
        // natives use the default — mismatches overwrite BTRAs below the
        // return address, which the design tolerates, §5.1).
        let callee_protected = match callee {
            Callee::Direct(fi) => self.metas[fi.0 as usize].protected,
            Callee::Indirect(_) => true,
            // Worst-case configuration of §6.2: BTRAs also for call
            // sites calling unprotected (libc-like) code.
            Callee::Native(_) => true,
        };
        let window = if meta.protected && callee_protected {
            self.cfg.btra
        } else {
            None
        };

        // Offset-invariant addressing: frame pointer prepared before
        // the varying pre-offset (§5.1.1). The setup moves from the
        // callee prologue to *every* call site of OIA-compiled code —
        // whether the callee reads stack arguments is the callee's
        // business — which is what makes the technique's isolated cost
        // measurable (§6.2.1: "the missed opportunities of the
        // frame-pointer omission optimization").
        let callee_uses_oia = match callee {
            Callee::Direct(fi) => self.metas[fi.0 as usize].protected && self.cfg.uses_oia(),
            Callee::Indirect(_) => self.cfg.uses_oia(),
            Callee::Native(_) => false,
        };
        let _ = nstack;
        if callee_uses_oia {
            self.emit(Insn::MovReg {
                dst: Gpr::Rbp,
                src: Gpr::Rsp,
            });
        }

        let win = match window {
            Some(b) => {
                self.btra_sites += 1;
                let callee_post = match callee {
                    Callee::Direct(fi) => self.metas[fi.0 as usize].post,
                    _ => 2 * ((b.total as u32 / 2) / 2),
                };
                self.emit_window(b, callee_post)
            }
            None => WindowInfo {
                pre: 0,
                ra_fixups: vec![],
                data_ra_fixup: None,
                pre_slots: vec![],
            },
        };
        let (pre, ra_fixups, data_ra_fixup) = (win.pre, win.ra_fixups, win.data_ra_fixup);

        // The call itself.
        let call_idx = match callee {
            Callee::Direct(fi) => {
                let at = self.emit(Insn::Call { target: 0 });
                self.relocs.push(Reloc {
                    at,
                    kind: RelocKind::Func(fi.0 as usize),
                });
                at
            }
            Callee::Indirect(_) => self.emit(Insn::CallInd { target: Gpr::R11 }),
            Callee::Native(ext) => self.emit(Insn::CallNative {
                native: native_index(ext),
            }),
        };
        // Resolve the return-address entries of the window now that the
        // call instruction index is known.
        for at in ra_fixups {
            self.relocs.push(Reloc {
                at,
                kind: RelocKind::RetAddr {
                    func: self.fidx,
                    insn: call_idx,
                },
            });
        }
        if let Some((data_idx, offset)) = data_ra_fixup {
            self.data[data_idx].relocs.push(DataReloc {
                offset,
                kind: RelocKind::RetAddr {
                    func: self.fidx,
                    insn: call_idx,
                },
            });
        }
        // Revert the pre-offset (step 7 of Figure 3).
        if pre > 0 {
            self.emit(Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm: 8 * pre as i32,
            });
        }
        // §7.3 hardening: re-verify a random subset of the pre-offset
        // BTRAs after the return; corruption executes a trap.
        let checks = self
            .cfg
            .btra_consistency_checks
            .min(win.pre_slots.len() as u8);
        if checks > 0 && window.is_some() {
            let mut slots: Vec<u32> = (1..=pre).collect();
            for i in (1..slots.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                slots.swap(i, j);
            }
            for &j in slots.iter().take(checks as usize) {
                let kind = win.pre_slots[(j - 1) as usize];
                let at = self.emit(Insn::MovAbs {
                    dst: Gpr::R10,
                    imm: 0,
                });
                self.relocs.push(Reloc { at, kind });
                self.emit(Insn::Load {
                    dst: Gpr::R11,
                    mem: MemRef::base_disp(Gpr::Rsp, -(8 * j as i32)),
                });
                self.emit(Insn::CmpReg {
                    a: Gpr::R10,
                    b: Gpr::R11,
                });
                let jcc = self.emit(Insn::Jcc {
                    cond: Cond::Eq,
                    target: 0,
                });
                self.emit(Insn::Trap);
                let after = self.insns.len();
                self.relocs.push(Reloc {
                    at: jcc,
                    kind: RelocKind::Insn {
                        func: self.fidx,
                        insn: after,
                    },
                });
            }
        }
        // Result.
        if let Some(dst) = res {
            self.write_val(dst, Gpr::Rax);
        }
    }

    /// Emits the BTRA window setup. Returns the window description:
    /// the pre-offset slot count for teardown, the indices of
    /// `PushImm` instructions that must receive the return-address
    /// relocation, (for AVX2 mode) the data object slot holding the
    /// return address, and the relocation kinds of the pre-offset
    /// BTRA slots (top-down) for post-return consistency checking.
    fn emit_window(&mut self, b: crate::config::BtraConfig, callee_post: u32) -> WindowInfo {
        let total = b.total as u32;
        let post = callee_post.min(total);
        let mut pre = total - post;
        if pre % 2 == 1 {
            // Keep the stack 16-byte aligned (§5.1): an extra BTRA.
            pre += 1;
        }
        let bt_count = self.cfg.booby_trap_funcs.max(1) as u32;
        let bt = |rng: &mut SmallRng| RelocKind::BoobyTrap {
            index: rng.gen_range(0..bt_count),
            offset: rng.gen_range(0..BOOBY_TRAP_RUN),
        };
        match b.mode {
            BtraMode::Push => {
                // Figure 3: push pre BTRAs, the return address, then the
                // post BTRAs; finally position rsp over the RA slot.
                let mut ra_fixups = Vec::new();
                let mut pre_slots = Vec::new();
                for _ in 0..pre {
                    let kind = bt(&mut self.rng);
                    pre_slots.push(kind);
                    let at = self.emit(Insn::PushImm { imm: 0 });
                    self.relocs.push(Reloc { at, kind });
                }
                let at = self.emit(Insn::PushImm { imm: 0 });
                ra_fixups.push(at);
                for _ in 0..post {
                    let kind = bt(&mut self.rng);
                    let at = self.emit(Insn::PushImm { imm: 0 });
                    self.relocs.push(Reloc { at, kind });
                }
                self.emit(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Gpr::Rsp,
                    imm: (8 * (post + 1)) as i32,
                });
                WindowInfo {
                    pre,
                    ra_fixups,
                    data_ra_fixup: None,
                    pre_slots,
                }
            }
            BtraMode::Avx2 => {
                // Figure 4: batched vector stores from a call-site
                // specific array. Array layout bottom→top:
                // [pad BTRAs][post BTRAs][RA][pre BTRAs].
                let w = pre + 1 + post;
                let wp = w.next_multiple_of(4);
                let pad = wp - w;
                let ra_slot = (pad + post) as usize;
                let mut obj = DataObject {
                    name: format!("__r2c_btra_{}_{}", self.fidx, self.btra_sites),
                    bytes: vec![0u8; (wp * 8) as usize],
                    align: 32,
                    relocs: Vec::new(),
                    synthetic: true,
                };
                for slot in 0..wp as usize {
                    if slot == ra_slot {
                        continue; // filled by the RetAddr fixup
                    }
                    let kind = bt(&mut self.rng);
                    obj.relocs.push(DataReloc {
                        offset: slot * 8,
                        kind,
                    });
                }
                let mut slot_kinds: Vec<Option<RelocKind>> = vec![None; wp as usize];
                for r in &obj.relocs {
                    slot_kinds[r.offset / 8] = Some(r.kind);
                }
                // Slot j from the top of the window maps to array
                // index wp - j.
                let pre_slots: Vec<RelocKind> = (1..=pre)
                    .map(|j| slot_kinds[(wp - j) as usize].expect("pre slot is a BTRA"))
                    .collect();
                let data_idx = self.data.len();
                self.data.push(obj);
                let scratch = Ymm(15);
                for k in 0..(wp / 4) {
                    let at = self.emit(Insn::VLoadAbs {
                        dst: scratch,
                        addr: 0,
                    });
                    self.relocs.push(Reloc {
                        at,
                        kind: RelocKind::Data {
                            index: data_idx,
                            addend: (32 * k) as i64,
                        },
                    });
                    self.emit(Insn::VStore {
                        mem: MemRef::base_disp(Gpr::Rsp, -((8 * wp) as i32) + (32 * k) as i32),
                        src: scratch,
                        aligned: false,
                    });
                }
                if !b.omit_vzeroupper {
                    self.emit(Insn::VZeroUpper);
                }
                if pre > 0 {
                    self.emit(Insn::AluImm {
                        op: AluOp::Sub,
                        dst: Gpr::Rsp,
                        imm: (8 * pre) as i32,
                    });
                }
                WindowInfo {
                    pre,
                    ra_fixups: vec![],
                    data_ra_fixup: Some((data_idx, ra_slot * 8)),
                    pre_slots,
                }
            }
        }
    }
}

/// Description of an emitted BTRA window (see `emit_window`).
struct WindowInfo {
    /// Pre-offset slot count (BTRAs above the return address).
    pre: u32,
    /// Indices of `PushImm` instructions awaiting the RA relocation.
    ra_fixups: Vec<usize>,
    /// AVX2 data object + byte offset of the RA slot, if any.
    data_ra_fixup: Option<(usize, usize)>,
    /// Relocation kinds of the pre-offset slots, top-down.
    pre_slots: Vec<RelocKind>,
}

#[derive(Clone, Copy)]
enum Callee {
    Direct(FuncId),
    Indirect(Val),
    Native(ExternFn),
}
