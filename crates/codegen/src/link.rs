//! Linking and loading: section layout, ASLR, function and global
//! shuffling, booby-trap generation, relocation patching, and unwind
//! table construction.
//!
//! Our pipeline links and loads in one step, so embedding absolute
//! addresses in instructions is equivalent to the paper's GOT-based
//! address loads for PIC builds — in both cases the concrete addresses
//! live in attacker-readable locations, which is safe because an
//! attacker cannot tell the return address apart from the BTRAs (§5.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use r2c_vm::mem::PAGE_SIZE;
use r2c_vm::unwind::{UnwindEntry, UnwindTable};
use r2c_vm::{Image, Insn, SectionLayout, Symbol, SymbolKind, VAddr};

use crate::lower::{mix_seed, BOOBY_TRAP_RUN};
use crate::program::{FuncKind, Program, RelocKind};

/// Link-time options (the layout-diversification half of the config).
#[derive(Clone, Copy, Debug)]
pub struct LinkOptions {
    /// Seed for ASLR slides and shuffles.
    pub seed: u64,
    /// Shuffle function order (with booby traps interspersed).
    pub func_shuffle: bool,
    /// Shuffle global order and insert random padding.
    pub global_shuffle: bool,
    /// Map text execute-only.
    pub xom: bool,
    /// Generate code-pointer-hiding trampolines.
    pub cph: bool,
    /// Heap reservation in bytes.
    pub heap_size: u64,
    /// Stack reservation in bytes.
    pub stack_size: u64,
}

impl LinkOptions {
    /// Options matching a [`DiversifyConfig`](crate::DiversifyConfig).
    pub fn from_config(cfg: &crate::DiversifyConfig, seed: u64) -> LinkOptions {
        LinkOptions {
            seed,
            func_shuffle: cfg.func_shuffle,
            global_shuffle: cfg.global_shuffle,
            xom: cfg.xom,
            cph: cfg.cph,
            heap_size: 256 * 1024 * 1024,
            stack_size: 256 * 1024,
        }
    }
}

enum TextItem {
    Func(usize),
    BoobyTrap(u32),
}

/// Links a program into a loadable image.
pub fn link(p: &Program, o: &LinkOptions) -> Image {
    let mut rng = SmallRng::seed_from_u64(mix_seed(o.seed, 0x11A4));

    // ASLR slides (page-granular, 16 bits of entropy per section, like
    // a load-time ASLR base choice).
    let text_base: VAddr = 0x0040_0000 + PAGE_SIZE * rng.gen_range(0..0x4000);
    let data_slide: VAddr = PAGE_SIZE * rng.gen_range(0..0x4000);
    let heap_base: VAddr = 0x10_0000_0000 + PAGE_SIZE * rng.gen_range(0..0x10000);
    let stack_top: VAddr = 0x7fff_f000_0000 - PAGE_SIZE * rng.gen_range(0..0x4000);

    // Booby-trap function bodies: a run of trap bytes, then a return.
    // BTRAs may point at any byte of the run, so their values carry the
    // same "arbitrary low bits" as genuine return addresses.
    let bt_insns: Vec<Insn> = std::iter::repeat_n(Insn::Trap, BOOBY_TRAP_RUN as usize)
        .chain([Insn::Ret])
        .collect();

    // Text order.
    let mut items: Vec<TextItem> = (0..p.funcs.len()).map(TextItem::Func).collect();
    items.extend((0..p.booby_trap_funcs).map(TextItem::BoobyTrap));
    if o.func_shuffle {
        for i in (1..items.len()).rev() {
            let j = rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    // Lay out the text section.
    let mut insns: Vec<Insn> = Vec::new();
    let mut insn_addrs: Vec<VAddr> = Vec::new();
    let mut cursor = text_base;
    let mut func_entry: Vec<VAddr> = vec![0; p.funcs.len()];
    let mut func_size: Vec<u64> = vec![0; p.funcs.len()];
    // First instruction index (into the concatenated stream) per
    // program function, for resolving `Insn`/`RetAddr` relocs.
    let mut func_insn_base: Vec<usize> = vec![0; p.funcs.len()];
    let mut bt_entry: Vec<VAddr> = vec![0; p.booby_trap_funcs as usize];
    for item in &items {
        match item {
            TextItem::Func(fi) => {
                // Functions are 16-byte aligned like typical compiler
                // output; return addresses and BTRAs are not.
                cursor = cursor.next_multiple_of(16);
                func_entry[*fi] = cursor;
                func_insn_base[*fi] = insns.len();
                for insn in &p.funcs[*fi].insns {
                    insns.push(*insn);
                    insn_addrs.push(cursor);
                    cursor += insn.len();
                }
                func_size[*fi] = cursor - func_entry[*fi];
            }
            TextItem::BoobyTrap(bi) => {
                // Deliberately *not* aligned: booby traps must be
                // indistinguishable from arbitrary code positions.
                bt_entry[*bi as usize] = cursor;
                for insn in &bt_insns {
                    insns.push(*insn);
                    insn_addrs.push(cursor);
                    cursor += insn.len();
                }
            }
        }
    }
    // Code-pointer-hiding trampoline table: one `jmp <entry>` per
    // function, in (execute-only) text. Address-taken relocations
    // resolve to these instead of the entries.
    let mut tramp_addr: Vec<VAddr> = vec![0; p.funcs.len()];
    if o.cph {
        cursor = cursor.next_multiple_of(16);
        for fi in 0..p.funcs.len() {
            tramp_addr[fi] = cursor;
            let j = Insn::Jmp {
                target: func_entry[fi],
            };
            insns.push(j);
            insn_addrs.push(cursor);
            cursor += j.len();
        }
    }
    let text_end = (cursor).next_multiple_of(PAGE_SIZE);

    // Lay out the data section.
    let data_base = (text_end + 0x1000_0000 + data_slide).next_multiple_of(PAGE_SIZE);
    let mut order: Vec<usize> = (0..p.data.len()).collect();
    if o.global_shuffle {
        // Only shuffle the programmer-visible globals *and* synthetic
        // objects together — everything moves.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
    }
    let mut data_addr: Vec<VAddr> = vec![0; p.data.len()];
    let mut dcursor = data_base;
    for &di in &order {
        let obj = &p.data[di];
        if o.global_shuffle {
            // Random inter-object padding (Readactor++-style global
            // padding, §4).
            dcursor += 8 * rng.gen_range(0..=4);
        }
        dcursor = dcursor.next_multiple_of(obj.align.max(8) as u64);
        data_addr[di] = dcursor;
        dcursor += obj.bytes.len().max(8) as u64;
    }
    let data_end = (dcursor + 64).next_multiple_of(PAGE_SIZE);

    // Resolve a relocation kind to an absolute address. (Lengths are
    // precomputed so the closure does not borrow `insns`, which is
    // patched below.)
    let insn_lens: Vec<u64> = insns.iter().map(|i| i.len()).collect();
    let resolve = |kind: &RelocKind| -> VAddr {
        match kind {
            RelocKind::Insn { func, insn } => insn_addrs[func_insn_base[*func] + insn],
            RelocKind::RetAddr { func, insn } => {
                let gi = func_insn_base[*func] + insn;
                insn_addrs[gi] + insn_lens[gi]
            }
            RelocKind::Func(fi) => func_entry[*fi],
            RelocKind::BoobyTrap { index, offset } => bt_entry[*index as usize] + *offset as u64,
            RelocKind::Data { index, addend } => data_addr[*index].wrapping_add_signed(*addend),
        }
    };

    // Patch instruction relocations. With CPH, *materialized* function
    // addresses (MovAbs / pushes / data slots) point at trampolines;
    // direct call/jump targets stay direct.
    for (fi, f) in p.funcs.iter().enumerate() {
        for r in &f.relocs {
            let gi = func_insn_base[fi] + r.at;
            let addr = match r.kind {
                RelocKind::Func(target)
                    if o.cph && !matches!(insns[gi], Insn::Call { .. } | Insn::Jmp { .. }) =>
                {
                    tramp_addr[target]
                }
                ref k => resolve(k),
            };
            patch(&mut insns[gi], addr);
        }
    }

    // Build data initialization (with relocated slots patched);
    // function-pointer initializers also go through the CPH table.
    let mut data_init = Vec::with_capacity(p.data.len());
    for (di, obj) in p.data.iter().enumerate() {
        let mut bytes = obj.bytes.clone();
        for r in &obj.relocs {
            let addr = match r.kind {
                RelocKind::Func(target) if o.cph => tramp_addr[target],
                ref k => resolve(k),
            };
            bytes[r.offset..r.offset + 8].copy_from_slice(&addr.to_le_bytes());
        }
        data_init.push((data_addr[di], bytes));
    }

    // Unwind table from the per-function depth runs.
    let mut unwind = UnwindTable::new();
    for (fi, f) in p.funcs.iter().enumerate() {
        let base = func_insn_base[fi];
        let end_addr = func_entry[fi] + func_size[fi];
        for (k, point) in f.unwind.iter().enumerate() {
            let start = if point.from >= f.insns.len() {
                continue;
            } else {
                insn_addrs[base + point.from]
            };
            let end = match f.unwind.get(k + 1) {
                Some(next) if next.from < f.insns.len() => insn_addrs[base + next.from],
                _ => end_addr,
            };
            if start < end {
                unwind.push(UnwindEntry {
                    start,
                    end,
                    ra_offset: point.depth,
                    caller_sp_offset: point.depth + 8,
                });
            }
        }
    }
    unwind.finish().expect("unwind entries must not overlap");

    // Symbols.
    let mut symbols = Vec::new();
    for (fi, f) in p.funcs.iter().enumerate() {
        symbols.push(Symbol {
            name: f.name.clone(),
            addr: func_entry[fi],
            size: func_size[fi],
            kind: match f.kind {
                FuncKind::BoobyTrap => SymbolKind::BoobyTrap,
                _ => SymbolKind::Function,
            },
        });
    }
    if o.cph {
        for (fi, f) in p.funcs.iter().enumerate() {
            symbols.push(Symbol {
                name: format!("__tramp_{}", f.name),
                addr: tramp_addr[fi],
                size: Insn::Jmp { target: 0 }.len(),
                kind: SymbolKind::Function,
            });
        }
    }
    for (bi, &addr) in bt_entry.iter().enumerate() {
        symbols.push(Symbol {
            name: format!("__bt_{bi}"),
            addr,
            size: BOOBY_TRAP_RUN as u64 + 1,
            kind: SymbolKind::BoobyTrap,
        });
    }
    for (di, obj) in p.data.iter().enumerate() {
        symbols.push(Symbol {
            name: obj.name.clone(),
            addr: data_addr[di],
            size: obj.bytes.len() as u64,
            kind: SymbolKind::Global,
        });
    }

    Image {
        insns,
        insn_addrs,
        layout: SectionLayout {
            text_base,
            text_end,
            data_base,
            data_end,
            heap_base,
            heap_size: o.heap_size,
            stack_top,
            stack_size: o.stack_size,
        },
        entry: func_entry[p.entry],
        constructors: p.ctors.iter().map(|&c| func_entry[c]).collect(),
        data_init,
        xom: o.xom,
        symbols,
        natives: p.natives.clone(),
        unwind,
    }
}

/// Writes a resolved address into an instruction's patchable field.
fn patch(insn: &mut Insn, addr: VAddr) {
    match insn {
        Insn::MovAbs { imm, .. } | Insn::PushImm { imm } => *imm = addr,
        Insn::Call { target } | Insn::Jmp { target } | Insn::Jcc { target, .. } => *target = addr,
        Insn::LoadAbs { addr: a, .. } | Insn::VLoadAbs { addr: a, .. } => *a = addr,
        other => panic!("relocation against non-patchable instruction {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiversifyConfig;
    use crate::lower::{compile, CompileOptions};
    use r2c_ir::parse_module;

    const SRC: &str = r#"
func @add(2) {
entry:
  %0 = param 0
  %1 = param 1
  %2 = add %0, %1
  ret %2
}
func @main(0) {
entry:
  %0 = const 40
  %1 = const 2
  %2 = call @add(%0, %1)
  ret %2
}
"#;

    fn build(cfg: DiversifyConfig, seed: u64) -> Image {
        let m = parse_module(SRC).unwrap();
        let prog = compile(&m, &CompileOptions::new(cfg, seed)).unwrap();
        link(&prog, &LinkOptions::from_config(&cfg, seed))
    }

    #[test]
    fn baseline_image_is_valid() {
        let img = build(DiversifyConfig::none(), 1);
        img.validate().unwrap();
        assert!(img.symbol("main").is_some());
        assert!(img.symbol("add").is_some());
    }

    #[test]
    fn full_image_is_valid_across_seeds() {
        for seed in 0..8 {
            let img = build(DiversifyConfig::full(), seed);
            img.validate().unwrap();
        }
    }

    #[test]
    fn aslr_moves_sections() {
        let a = build(DiversifyConfig::none(), 1);
        let b = build(DiversifyConfig::none(), 2);
        assert_ne!(a.layout.text_base, b.layout.text_base);
        assert_ne!(a.layout.data_base, b.layout.data_base);
    }

    #[test]
    fn function_shuffle_changes_relative_order() {
        let mut orders = std::collections::HashSet::new();
        for seed in 0..8 {
            let img = build(DiversifyConfig::full(), seed);
            let main = img.func_addr("main");
            let add = img.func_addr("add");
            orders.insert(main < add);
        }
        assert_eq!(orders.len(), 2, "shuffle never changed function order");
    }

    #[test]
    fn booby_traps_present_under_full_config() {
        let img = build(DiversifyConfig::full(), 3);
        let bts = img
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::BoobyTrap)
            .count();
        assert_eq!(bts, DiversifyConfig::full().booby_trap_funcs as usize);
    }

    #[test]
    fn unwind_table_nonempty() {
        let img = build(DiversifyConfig::full(), 4);
        assert!(!img.unwind.is_empty());
    }
}
