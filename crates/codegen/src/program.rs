//! Pre-link program representation: compiled functions with symbolic
//! relocations, plus data objects.

use r2c_vm::{Insn, NativeKind};

/// What a relocation resolves to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelocKind {
    /// Absolute address of instruction `insn` of function `func`
    /// (used for intra-function branches and for return-address entries
    /// in AVX2 BTRA arrays).
    Insn {
        /// Index into [`Program::funcs`].
        func: usize,
        /// Instruction index within that function.
        insn: usize,
    },
    /// Entry address of a function.
    Func(usize),
    /// An address inside booby-trap function `index`'s trap run
    /// (generated at link time and shuffled into the text section).
    /// `offset` selects a byte within the run so that BTRA values are
    /// not function-entry aligned.
    BoobyTrap {
        /// Which booby-trap function.
        index: u32,
        /// Byte offset into its trap run.
        offset: u8,
    },
    /// The return address of the call instruction `insn` of function
    /// `func` (i.e. the address of the byte after it). Used for the
    /// genuine return-address entry of a BTRA window.
    RetAddr {
        /// Index into [`Program::funcs`].
        func: usize,
        /// Instruction index of the call within that function.
        insn: usize,
    },
    /// Address of a data object plus a byte addend.
    Data {
        /// Index into [`Program::data`].
        index: usize,
        /// Byte offset added to the object's base address.
        addend: i64,
    },
}

/// A relocation against an emitted instruction: the linker patches the
/// instruction's immediate/target field with the resolved address.
#[derive(Clone, Copy, Debug)]
pub struct Reloc {
    /// Index of the instruction to patch.
    pub at: usize,
    /// What to resolve.
    pub kind: RelocKind,
}

/// A relocation inside a data object's initializer (a 64-bit slot).
#[derive(Clone, Copy, Debug)]
pub struct DataReloc {
    /// Byte offset of the 8-byte slot within the object.
    pub offset: usize,
    /// What to resolve.
    pub kind: RelocKind,
}

/// An unwind directive recorded during emission: starting at
/// instruction `from`, the callee-relative stack depth is `depth` bytes
/// (distance from `rsp` up to this function's return-address slot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnwindPoint {
    /// First instruction index at which `depth` holds.
    pub from: usize,
    /// Bytes between `rsp` and the return-address slot.
    pub depth: i64,
}

/// Function classification in the text section.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuncKind {
    /// Ordinary compiled function.
    Normal,
    /// R²C booby-trap function.
    BoobyTrap,
    /// Generated constructor (runs before `main`).
    Constructor,
}

/// One compiled function before linking.
#[derive(Clone, Debug)]
pub struct CompiledFunc {
    /// Function name.
    pub name: String,
    /// Emitted instructions (targets of relocated instructions hold 0
    /// until link).
    pub insns: Vec<Insn>,
    /// Relocations into `insns`.
    pub relocs: Vec<Reloc>,
    /// Unwind directives (monotonically increasing `from`).
    pub unwind: Vec<UnwindPoint>,
    /// Kind of function.
    pub kind: FuncKind,
    /// Static number of call sites instrumented with BTRAs (for
    /// reports).
    pub btra_sites: u32,
    /// Static number of BTDP stores inserted (for reports).
    pub btdp_stores: u32,
}

impl CompiledFunc {
    /// Total encoded size of the function in bytes.
    pub fn byte_size(&self) -> u64 {
        self.insns.iter().map(|i| i.len()).sum()
    }
}

/// A data object (global variable, GOT-like table, or BTRA address
/// array) before linking.
#[derive(Clone, Debug)]
pub struct DataObject {
    /// Object name (unique).
    pub name: String,
    /// Initial bytes (length = object size).
    pub bytes: Vec<u8>,
    /// Alignment in bytes.
    pub align: u32,
    /// Relocated 64-bit slots within the object.
    pub relocs: Vec<DataReloc>,
    /// True if the object was created by R²C itself (BTRA arrays, BTDP
    /// array pointer, decoys); used by layout analysis.
    pub synthetic: bool,
}

/// A compiled-but-unlinked program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Compiled functions, in IR order (constructors appended).
    pub funcs: Vec<CompiledFunc>,
    /// Data objects, in IR order (synthetic objects appended).
    pub data: Vec<DataObject>,
    /// Index of the entry function in `funcs`.
    pub entry: usize,
    /// Indices of constructor functions, run in order before entry.
    pub ctors: Vec<usize>,
    /// Native-function table (referenced by `Insn::CallNative`).
    pub natives: Vec<NativeKind>,
    /// Number of booby-trap functions the linker must generate.
    pub booby_trap_funcs: u32,
}

impl Program {
    /// Looks up a function index by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Total text bytes over all compiled functions (excluding
    /// generated booby traps).
    pub fn text_bytes(&self) -> u64 {
        self.funcs.iter().map(|f| f.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_vm::Gpr;

    #[test]
    fn byte_size_sums_lengths() {
        let f = CompiledFunc {
            name: "f".into(),
            insns: vec![
                Insn::Ret,
                Insn::MovImm {
                    dst: Gpr::Rax,
                    imm: 1,
                },
            ],
            relocs: vec![],
            unwind: vec![],
            kind: FuncKind::Normal,
            btra_sites: 0,
            btdp_stores: 0,
        };
        assert_eq!(f.byte_size(), 1 + 5);
    }
}
