//! # r2c-codegen — IR → machine-code backend with diversification hooks
//!
//! Lowers [`r2c_ir`] modules to [`r2c_vm`] images through a conventional
//! backend pipeline — liveness analysis, linear-scan register
//! allocation, frame layout, call lowering, linking — with the extension
//! points R²C needs built in:
//!
//! * call-site emission supports booby-trapped return-address windows
//!   (push and AVX2 setup sequences) and NOP insertion;
//! * prologue emission supports the BTRA post-offset, jumped-over trap
//!   runs, and BTDP stores;
//! * frame layout supports slot permutation and padding;
//! * register allocation supports randomized preference orders;
//! * the linker supports function shuffling with interspersed
//!   booby-trap functions, global shuffling with padding, ASLR slides
//!   and execute-only text.
//!
//! The highest-level entry point is [`build`], which compiles and links
//! in one step:
//!
//! ```
//! use r2c_codegen::{build, CompileOptions, DiversifyConfig};
//! use r2c_vm::{MachineKind, Vm, VmConfig};
//!
//! let src = "func @main(0) {\nentry:\n  %0 = const 42\n  ret %0\n}\n";
//! let module = r2c_ir::parse_module(src).unwrap();
//! let image = build(&module, &CompileOptions::new(DiversifyConfig::full(), 7)).unwrap();
//! let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
//! assert_eq!(vm.run().status, r2c_vm::ExitStatus::Exited(42));
//! ```

pub mod config;
pub mod frame;
pub mod link;
pub mod lower;
pub mod program;
pub mod regalloc;

pub use config::{BtdpConfig, BtraConfig, BtraMode, DiversifyConfig, InjectedFault};
pub use link::{link, LinkOptions};
pub use lower::{compile, mix_seed, CompileError, CompileOptions, BOOBY_TRAP_RUN, NATIVE_ORDER};
pub use program::{
    CompiledFunc, DataObject, DataReloc, FuncKind, Program, Reloc, RelocKind, UnwindPoint,
};
pub use regalloc::{allocate, Allocation, Loc};

use r2c_ir::Module;
use r2c_vm::Image;

/// Compiles and links in one step.
pub fn build(m: &Module, opts: &CompileOptions) -> Result<Image, CompileError> {
    let prog = compile(m, opts)?;
    Ok(link(
        &prog,
        &LinkOptions::from_config(&opts.diversify, opts.seed),
    ))
}
