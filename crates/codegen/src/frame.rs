//! Stack-frame layout.
//!
//! Layout (offsets from the post-prologue stack pointer, growing up):
//!
//! ```text
//! rsp + size .. (higher addresses: saved regs, post-offset BTRAs, RA)
//! +-------------------------------+
//! | locals area (shuffled):       |  spill slots, allocas, BTDP slots,
//! |                               |  incoming-arg spill, argbase slot,
//! |                               |  random padding
//! +-------------------------------+
//! | argstage (6 slots)            |  staging area for register args
//! +-------------------------------+
//! | outgoing stack args           |  [rsp + 0 ..)
//! +-------------------------------+  <- rsp after prologue
//! ```
//!
//! With stack-slot randomization enabled, the locals area is permuted
//! and padded (the paper's stack-slot randomization, which both hides
//! relative positions of stack objects and mixes BTDP slots among
//! benign pointers, §4.2/§5.2).

use rand::Rng;

/// What to allocate in the locals area.
#[derive(Clone, Debug)]
pub struct FrameRequest {
    /// Spill slot count (8 bytes each).
    pub spill_slots: u32,
    /// Alloca sizes and alignments, in value order.
    pub allocas: Vec<(u32, u32)>,
    /// Number of BTDP slots (8 bytes each).
    pub btdp_slots: u32,
    /// Number of incoming register arguments to spill (≤ 6).
    pub incoming_args: u32,
    /// Whether a slot for the caller-provided argument-base pointer is
    /// needed (offset-invariant addressing with stack parameters).
    pub argbase_slot: bool,
    /// Outgoing stack-argument bytes (max over call sites).
    pub out_args_bytes: u32,
    /// Randomize slot order and insert padding.
    pub randomize: bool,
}

/// Computed frame layout. All offsets are from the post-prologue `rsp`.
#[derive(Clone, Debug)]
pub struct FrameLayout {
    /// Offset of the argument staging area.
    pub argstage_off: u32,
    /// Offsets of spill slots (indexed by slot id).
    pub spill_off: Vec<u32>,
    /// Offsets of allocas (same order as the request).
    pub alloca_off: Vec<u32>,
    /// Offsets of BTDP slots.
    pub btdp_off: Vec<u32>,
    /// Offsets of incoming-argument spill slots (indexed by arg number).
    pub incoming_off: Vec<u32>,
    /// Offset of the argument-base save slot (if requested).
    pub argbase_off: Option<u32>,
    /// Total frame size in bytes (the prologue's `sub rsp, size`).
    pub size: u32,
}

enum Item {
    Spill(u32),
    Alloca(u32, u32, u32),
    Btdp(u32),
    Incoming(u32),
    ArgBase,
    Pad(u32),
}

impl FrameLayout {
    /// Computes a layout for `req`.
    ///
    /// `align_residue` is the value `size % 16` must equal so that the
    /// post-prologue `rsp` is 16-byte aligned (it depends on the number
    /// of saved registers and the BTRA post-offset; the caller computes
    /// it). `rng` drives slot permutation and padding when
    /// `req.randomize` is set.
    pub fn compute(req: &FrameRequest, align_residue: u32, rng: &mut impl Rng) -> FrameLayout {
        let mut items: Vec<Item> = Vec::new();
        for i in 0..req.spill_slots {
            items.push(Item::Spill(i));
        }
        for (i, &(size, align)) in req.allocas.iter().enumerate() {
            items.push(Item::Alloca(i as u32, size, align));
        }
        for i in 0..req.btdp_slots {
            items.push(Item::Btdp(i));
        }
        for i in 0..req.incoming_args {
            items.push(Item::Incoming(i));
        }
        if req.argbase_slot {
            items.push(Item::ArgBase);
        }
        if req.randomize {
            // Fisher-Yates permutation of the locals area, plus 0–3
            // random 8/16-byte paddings.
            for i in (1..items.len()).rev() {
                let j = rng.gen_range(0..=i);
                items.swap(i, j);
            }
            let pads = rng.gen_range(0..=3);
            for _ in 0..pads {
                let pos = rng.gen_range(0..=items.len());
                let bytes = if rng.gen_bool(0.5) { 8 } else { 16 };
                items.insert(pos, Item::Pad(bytes));
            }
        }

        let out = req.out_args_bytes.next_multiple_of(8);
        let argstage_off = out;
        let mut cursor = out + 6 * 8;
        let mut layout = FrameLayout {
            argstage_off,
            spill_off: vec![0; req.spill_slots as usize],
            alloca_off: vec![0; req.allocas.len()],
            btdp_off: vec![0; req.btdp_slots as usize],
            incoming_off: vec![0; req.incoming_args as usize],
            argbase_off: None,
            size: 0,
        };
        for item in &items {
            match item {
                Item::Spill(i) => {
                    layout.spill_off[*i as usize] = cursor;
                    cursor += 8;
                }
                Item::Alloca(i, size, align) => {
                    let align = (*align).max(8);
                    cursor = cursor.next_multiple_of(align);
                    layout.alloca_off[*i as usize] = cursor;
                    cursor += size.next_multiple_of(8).max(8);
                }
                Item::Btdp(i) => {
                    layout.btdp_off[*i as usize] = cursor;
                    cursor += 8;
                }
                Item::Incoming(i) => {
                    layout.incoming_off[*i as usize] = cursor;
                    cursor += 8;
                }
                Item::ArgBase => {
                    layout.argbase_off = Some(cursor);
                    cursor += 8;
                }
                Item::Pad(bytes) => cursor += bytes,
            }
        }
        // Pad the total so `size % 16 == align_residue`.
        let mut size = cursor;
        while size % 16 != align_residue % 16 {
            size += 8;
        }
        layout.size = size;
        layout
    }

    /// True if two layouts place at least one category of slot at a
    /// different offset (used by diversification tests).
    pub fn differs_from(&self, other: &FrameLayout) -> bool {
        self.spill_off != other.spill_off
            || self.alloca_off != other.alloca_off
            || self.btdp_off != other.btdp_off
            || self.size != other.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn req() -> FrameRequest {
        FrameRequest {
            spill_slots: 4,
            allocas: vec![(24, 8), (64, 16)],
            btdp_slots: 2,
            incoming_args: 3,
            argbase_slot: true,
            out_args_bytes: 16,
            randomize: false,
        }
    }

    fn all_ranges(l: &FrameLayout, r: &FrameRequest) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for &o in &l.spill_off {
            v.push((o, 8));
        }
        for (i, &o) in l.alloca_off.iter().enumerate() {
            v.push((o, r.allocas[i].0.next_multiple_of(8)));
        }
        for &o in &l.btdp_off {
            v.push((o, 8));
        }
        for &o in &l.incoming_off {
            v.push((o, 8));
        }
        if let Some(o) = l.argbase_off {
            v.push((o, 8));
        }
        v
    }

    #[test]
    fn no_overlaps_and_within_frame() {
        let r = req();
        let mut rng = SmallRng::seed_from_u64(1);
        for residue in [0u32, 8] {
            let l = FrameLayout::compute(&r, residue, &mut rng);
            assert_eq!(l.size % 16, residue);
            let mut ranges = all_ranges(&l, &r);
            ranges.sort();
            for w in ranges.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
            }
            for (o, len) in &ranges {
                assert!(o + len <= l.size);
                assert!(*o >= l.argstage_off + 48, "local below argstage");
            }
        }
    }

    #[test]
    fn alloca_alignment_respected() {
        let r = req();
        let mut rng = SmallRng::seed_from_u64(7);
        let l = FrameLayout::compute(&r, 8, &mut rng);
        assert_eq!(l.alloca_off[1] % 16, 0);
    }

    #[test]
    fn randomization_changes_layout() {
        let mut r = req();
        r.randomize = true;
        let mut a = None;
        let mut differs = false;
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let l = FrameLayout::compute(&r, 8, &mut rng);
            if let Some(prev) = &a {
                if l.differs_from(prev) {
                    differs = true;
                }
            } else {
                a = Some(l);
            }
        }
        assert!(differs, "randomized layouts never differed");
    }

    #[test]
    fn randomized_layout_still_sound() {
        let mut r = req();
        r.randomize = true;
        for seed in 0..32 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let l = FrameLayout::compute(&r, 0, &mut rng);
            let mut ranges = all_ranges(&l, &r);
            ranges.sort();
            for w in ranges.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "seed {seed} overlap: {w:?}");
            }
            assert_eq!(l.size % 16, 0);
        }
    }

    #[test]
    fn empty_frame() {
        let r = FrameRequest {
            spill_slots: 0,
            allocas: vec![],
            btdp_slots: 0,
            incoming_args: 0,
            argbase_slot: false,
            out_args_bytes: 0,
            randomize: false,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let l = FrameLayout::compute(&r, 8, &mut rng);
        assert_eq!(l.size % 16, 8);
    }
}
