//! Code-generation and diversification configuration.
//!
//! The knobs here correspond one-to-one to the R²C techniques of the
//! paper: booby-trapped return addresses (push or AVX2 setup, §5.1),
//! booby-trapped data pointers (§5.2), NOP insertion at call sites and
//! trap insertion in prologs (§4.3), stack-slot and register-allocation
//! randomization, and offset-invariant addressing (§5.1.1). All
//! randomness is drawn from a seed, so a (module, config, seed) triple
//! deterministically identifies one program variant — one "build" of the
//! diversified binary.

/// How the BTRA window is written to the stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BtraMode {
    /// One push per address (Figure 3; up to `total + 2` pushes).
    Push,
    /// Batched 256-bit stores from a call-site-specific array in the
    /// data section (Figure 4; the optimized sequence of §5.1.2).
    Avx2,
}

/// BTRA (booby-trapped return address) parameters.
#[derive(Clone, Copy, Debug)]
pub struct BtraConfig {
    /// Setup sequence.
    pub mode: BtraMode,
    /// Total BTRAs per call site (paper default: 10); split randomly
    /// between pre-offset (before/above the return address) and
    /// post-offset (after/below).
    pub total: u8,
    /// If true (pathological; for the §5.1.2 experiment only), omit the
    /// `vzeroupper` after the AVX2 setup.
    pub omit_vzeroupper: bool,
}

impl Default for BtraConfig {
    fn default() -> Self {
        BtraConfig {
            mode: BtraMode::Avx2,
            total: 10,
            omit_vzeroupper: false,
        }
    }
}

/// BTDP (booby-trapped data pointer) parameters.
#[derive(Clone, Copy, Debug)]
pub struct BtdpConfig {
    /// Maximum BTDPs written per function (uniform 0..=max, paper
    /// default 5, §6.2.2).
    pub max_per_fn: u8,
    /// Number of page-sized chunks the startup constructor allocates.
    pub pool_pages: u16,
    /// Number of chunks kept (the rest are freed); kept chunks become
    /// guard pages.
    pub kept_pages: u16,
    /// Number of decoy BTDPs placed in the data section (never written
    /// to the stack — the Figure 5 hardening).
    pub data_decoys: u8,
    /// If true (naive variant of Figure 5, for the hardening test), the
    /// BTDP array lives directly in the data section instead of on the
    /// heap.
    pub naive_data_array: bool,
    /// Index of the global holding the pointer to the BTDP array (or
    /// the array itself in the naive variant). Set by the R²C compiler
    /// front end after it creates the global and the startup
    /// constructor; 0 with `array_len == 0` disables instrumentation.
    pub ptr_global: u32,
    /// Number of entries in the BTDP array. 0 disables per-function
    /// BTDP stores (there is nothing to read yet).
    pub array_len: u32,
}

impl Default for BtdpConfig {
    fn default() -> Self {
        BtdpConfig {
            max_per_fn: 5,
            pool_pages: 64,
            kept_pages: 16,
            data_decoys: 4,
            naive_data_array: false,
            ptr_global: 0,
            array_len: 0,
        }
    }
}

/// A deliberate compiler defect, injectable for testing the testers.
///
/// The differential fuzz oracle (`r2c-fuzz`) and the `r2c-check`
/// static analyzer both claim to catch miscompiles; these knobs let a
/// test *prove* that by making the backend emit known-bad code on
/// demand. Never set outside of tests.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectedFault {
    /// Drop the first BTDP stack store of every instrumented function
    /// while still reporting the full count in the function metadata —
    /// the camouflage violation the `r2c-check` BTDP pass exists to
    /// flag.
    SkipBtdpStore,
    /// Skip the first spill-slot reload of every function: the value is
    /// read from whatever happens to be in the scratch register. A
    /// classic register-allocator bug, and a genuine (semantic)
    /// miscompile only differential execution can see.
    SkipSpillReload,
}

/// Full diversification configuration.
///
/// `DiversifyConfig::none()` is the baseline compiler ("same compiler
/// version and flags but with R²C disabled", §6.2); `full()` enables
/// everything, matching the Figure 6 configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiversifyConfig {
    /// Booby-trapped return addresses.
    pub btra: Option<BtraConfig>,
    /// Booby-trapped data pointers.
    pub btdp: Option<BtdpConfig>,
    /// NOP insertion at call sites: `Some((min, max))` inserts a uniform
    /// number of NOPs (of random 1–9 byte lengths) before each call.
    pub nop_insertion: Option<(u8, u8)>,
    /// Trap insertion in function prologs: uniform `min..=max` traps,
    /// jumped over by regular control flow.
    pub prolog_traps: Option<(u8, u8)>,
    /// Permute stack slots and insert random padding slots.
    pub stack_slot_rand: bool,
    /// Randomize the register-allocation preference order per function.
    pub regalloc_rand: bool,
    /// Shuffle function order in the text section (with booby-trap
    /// functions interspersed).
    pub func_shuffle: bool,
    /// Shuffle global-variable order and insert random padding.
    pub global_shuffle: bool,
    /// Offset-invariant addressing (caller-prepared frame pointer for
    /// stack arguments). Implied by `btra`; can be enabled alone to
    /// measure its isolated cost (§6.2.1).
    pub offset_invariant_addressing: bool,
    /// Number of booby-trap functions distributed through the text
    /// section (targets for BTRAs).
    pub booby_trap_funcs: u16,
    /// Map the text section execute-only.
    pub xom: bool,
    /// Code-pointer hiding (§2.2, Readactor-style): materialized
    /// function pointers (and function-pointer global initializers)
    /// resolve to per-function trampolines in execute-only memory
    /// instead of the function entries, so a leaked pointer reveals
    /// nothing about the code layout. Direct calls stay direct. AOCR's
    /// observation — that trampoline pointers can still be *called*
    /// for whole-function reuse — is what R²C's data diversification
    /// addresses instead.
    pub cph: bool,
    /// Number of BTRA slots re-verified after each return (0 = off).
    ///
    /// The paper's §7.3 hardening proposal against corruption-based
    /// side channels: "R²C could also deter the corruption of BTRAs by
    /// checking a random subset of BTRAs for consistency after the
    /// return". A mismatch executes a trap — the zeroing probe becomes
    /// a detection instead of free information.
    pub btra_consistency_checks: u8,
    /// Deliberate backend defect for oracle-validation tests only.
    #[doc(hidden)]
    pub inject_fault: Option<InjectedFault>,
}

impl DiversifyConfig {
    /// Baseline: no diversification, conventional R/X text.
    pub fn none() -> DiversifyConfig {
        DiversifyConfig::default()
    }

    /// Full R²C protection (the Figure 6 configuration).
    pub fn full() -> DiversifyConfig {
        DiversifyConfig {
            btra: Some(BtraConfig::default()),
            btdp: Some(BtdpConfig::default()),
            nop_insertion: Some((1, 9)),
            prolog_traps: Some((1, 5)),
            stack_slot_rand: true,
            regalloc_rand: true,
            func_shuffle: true,
            global_shuffle: true,
            offset_invariant_addressing: true,
            booby_trap_funcs: 64,
            xom: true,
            cph: false,
            btra_consistency_checks: 0,
            inject_fault: None,
        }
    }

    /// Full protection plus the §7.3 hardening: `checks` BTRA slots are
    /// re-verified after every return.
    pub fn hardened(checks: u8) -> DiversifyConfig {
        DiversifyConfig {
            btra_consistency_checks: checks,
            ..DiversifyConfig::full()
        }
    }

    /// True if any call-site BTRA instrumentation is active.
    pub fn uses_btra(&self) -> bool {
        self.btra.is_some()
    }

    /// True if stack arguments must go through the caller-prepared
    /// frame pointer.
    pub fn uses_oia(&self) -> bool {
        self.offset_invariant_addressing || self.btra.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_empty() {
        let c = DiversifyConfig::none();
        assert!(c.btra.is_none() && c.btdp.is_none() && !c.xom);
        assert!(!c.uses_oia());
    }

    #[test]
    fn full_enables_everything() {
        let c = DiversifyConfig::full();
        assert!(c.btra.is_some());
        assert!(c.btdp.is_some());
        assert!(c.func_shuffle && c.global_shuffle && c.xom);
        assert!(c.uses_oia());
    }

    #[test]
    fn btra_alone_implies_oia() {
        let c = DiversifyConfig {
            btra: Some(BtraConfig::default()),
            ..DiversifyConfig::none()
        };
        assert!(c.uses_oia());
    }
}
