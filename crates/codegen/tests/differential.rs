//! Differential correctness: every program must produce identical
//! output under the IR reference interpreter and under the compiled
//! image, for the baseline and for every diversification configuration
//! across multiple seeds.
//!
//! This is the reproduction's analogue of the paper's §6.3 claim that
//! R²C does not introduce errors into compiled software (verified there
//! by running browser test suites).

use r2c_codegen::{build, BtdpConfig, BtraConfig, BtraMode, CompileOptions, DiversifyConfig};
use r2c_ir::{interpret, parse_module, Module};
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};

const FIB: &str = r#"
func @fib(1) {
entry:
  %0 = param 0
  %1 = const 2
  %2 = cmp lt %0, %1
  condbr %2, base, rec
base:
  ret %0
rec:
  %3 = const 1
  %4 = sub %0, %3
  %5 = call @fib(%4)
  %6 = const 2
  %7 = sub %0, %6
  %8 = call @fib(%7)
  %9 = add %5, %8
  ret %9
}
func @main(0) {
entry:
  %0 = const 17
  %1 = call @fib(%0)
  %2 = extern print(%1)
  ret %1
}
"#;

const LOOPS_AND_MEMORY: &str = r#"
global @table words [3, 1, 4, 1, 5, 9, 2, 6] align 8
func @main(0) {
entry:
  %0 = alloca 32 align 8
  %1 = const 0
  store %0 + 0, %1
  store %0 + 8, %1
  %2 = addrof @table
  br loop
loop:
  %3 = load %0 + 0
  %4 = ptradd %2 + %3 * 8 + 0
  %5 = load %4 + 0
  %6 = load %0 + 8
  %7 = mul %5, %5
  %8 = add %6, %7
  store %0 + 8, %8
  %9 = const 1
  %10 = add %3, %9
  store %0 + 0, %10
  %11 = const 8
  %12 = cmp lt %10, %11
  condbr %12, loop, done
done:
  %13 = load %0 + 8
  %14 = extern print(%13)
  ret %13
}
"#;

const INDIRECT_AND_HEAP: &str = r#"
global @fp funcptr @triple align 8
func @triple(1) {
entry:
  %0 = param 0
  %1 = const 3
  %2 = mul %0, %1
  ret %2
}
func @main(0) {
entry:
  %0 = const 256
  %1 = extern malloc(%0)
  %2 = const 11
  store %1 + 64, %2
  %3 = load %1 + 64
  %4 = addrof @fp
  %5 = load %4 + 0
  %6 = callind %5(%3)
  %7 = extern print(%6)
  %8 = extern free(%1)
  ret %6
}
"#;

/// Seven register arguments forces one stack argument, exercising
/// offset-invariant addressing under BTRAs.
const STACK_ARGS: &str = r#"
func @sum8(8) {
entry:
  %0 = param 0
  %1 = param 1
  %2 = param 2
  %3 = param 3
  %4 = param 4
  %5 = param 5
  %6 = param 6
  %7 = param 7
  %8 = add %0, %1
  %9 = add %8, %2
  %10 = add %9, %3
  %11 = add %10, %4
  %12 = add %11, %5
  %13 = add %12, %6
  %14 = add %13, %7
  ret %14
}
func @mid(8) {
entry:
  %0 = param 0
  %1 = param 1
  %2 = param 2
  %3 = param 3
  %4 = param 4
  %5 = param 5
  %6 = param 6
  %7 = param 7
  %8 = call @sum8(%7, %6, %5, %4, %3, %2, %1, %0)
  %9 = param 0
  %10 = add %8, %9
  ret %10
}
func @main(0) {
entry:
  %0 = const 1
  %1 = const 2
  %2 = const 3
  %3 = const 4
  %4 = const 5
  %5 = const 6
  %6 = const 7
  %7 = const 8
  %8 = call @mid(%0, %1, %2, %3, %4, %5, %6, %7)
  %9 = extern print(%8)
  ret %8
}
"#;

const DIV_REM_SHIFTS: &str = r#"
func @main(0) {
entry:
  %0 = const -1000
  %1 = const 7
  %2 = div %0, %1
  %3 = rem %0, %1
  %4 = const 3
  %5 = shl %1, %4
  %6 = sar %0, %4
  %7 = add %2, %3
  %8 = add %7, %5
  %9 = add %8, %6
  %10 = extern print(%9)
  ret %9
}
"#;

fn programs() -> Vec<(&'static str, Module)> {
    [
        ("fib", FIB),
        ("loops_and_memory", LOOPS_AND_MEMORY),
        ("indirect_and_heap", INDIRECT_AND_HEAP),
        ("stack_args", STACK_ARGS),
        ("div_rem_shifts", DIV_REM_SHIFTS),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_module(src).unwrap()))
    .collect()
}

fn configs() -> Vec<(&'static str, DiversifyConfig)> {
    let none = DiversifyConfig::none();
    vec![
        ("baseline", none),
        (
            "btra_push",
            DiversifyConfig {
                btra: Some(BtraConfig {
                    mode: BtraMode::Push,
                    total: 10,
                    omit_vzeroupper: false,
                }),
                booby_trap_funcs: 16,
                ..none
            },
        ),
        (
            "btra_avx2",
            DiversifyConfig {
                btra: Some(BtraConfig {
                    mode: BtraMode::Avx2,
                    total: 10,
                    omit_vzeroupper: false,
                }),
                booby_trap_funcs: 16,
                ..none
            },
        ),
        (
            "layout_rand",
            DiversifyConfig {
                stack_slot_rand: true,
                regalloc_rand: true,
                func_shuffle: true,
                global_shuffle: true,
                booby_trap_funcs: 16,
                ..none
            },
        ),
        (
            "nops_and_traps",
            DiversifyConfig {
                nop_insertion: Some((1, 9)),
                prolog_traps: Some((1, 5)),
                ..none
            },
        ),
        (
            "oia_only",
            DiversifyConfig {
                offset_invariant_addressing: true,
                ..none
            },
        ),
        ("full_no_btdp", {
            let mut c = DiversifyConfig::full();
            c.btdp = None;
            c
        }),
    ]
}

#[test]
fn all_programs_match_interpreter_under_all_configs() {
    for (pname, module) in programs() {
        let expected = interpret(&module, "main", 100_000_000).unwrap();
        for (cname, cfg) in configs() {
            for seed in [1u64, 7, 42] {
                let image = build(&module, &CompileOptions::new(cfg, seed))
                    .unwrap_or_else(|e| panic!("{pname}/{cname}/{seed}: compile failed: {e}"));
                let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
                let out = vm.run();
                assert_eq!(
                    out.status,
                    ExitStatus::Exited(expected.ret),
                    "{pname}/{cname}/seed{seed}: wrong exit"
                );
                assert_eq!(
                    vm.output, expected.output,
                    "{pname}/{cname}/seed{seed}: wrong output"
                );
                assert!(
                    vm.detections().is_empty(),
                    "{pname}/{cname}: spurious detection"
                );
            }
        }
    }
}

#[test]
fn full_config_with_synthetic_btdp_global_still_correct() {
    // BTDP instrumentation normally requires the R²C front end to set up
    // the constructor; here we emulate it with a pre-filled array in the
    // data section (naive mode) to exercise the per-function stores.
    for (pname, mut module) in programs() {
        // A fake BTDP array of 8 entries in .data.
        let gid = {
            let mut mb_idx = module.globals.len() as u32;
            module.globals.push(r2c_ir::Global {
                name: "__fake_btdp".into(),
                init: r2c_ir::GlobalInit::Words(vec![0x4141; 8]),
                align: 8,
            });
            let id = mb_idx;
            mb_idx += 1;
            let _ = mb_idx;
            id
        };
        let mut cfg = DiversifyConfig::full();
        cfg.btdp = Some(BtdpConfig {
            naive_data_array: true,
            ptr_global: gid,
            array_len: 8,
            ..BtdpConfig::default()
        });
        let expected = interpret(&module, "main", 100_000_000).unwrap();
        for seed in [3u64, 9] {
            let image = build(&module, &CompileOptions::new(cfg, seed)).unwrap();
            let mut vm = Vm::new(&image, VmConfig::new(MachineKind::I9_9900K.config()));
            let out = vm.run();
            assert_eq!(
                out.status,
                ExitStatus::Exited(expected.ret),
                "{pname}/seed{seed}"
            );
            assert_eq!(vm.output, expected.output, "{pname}/seed{seed}");
        }
    }
}

#[test]
fn avx2_variant_is_cheaper_than_push_variant() {
    // Table 1's headline: the AVX2 setup reduces BTRA overhead (geomean
    // 1.06 → 1.04). At the scale of a call-heavy microbenchmark the
    // ordering push > avx2 > baseline must hold.
    let module = parse_module(FIB).unwrap();
    let cycles = |cfg: DiversifyConfig| {
        let image = build(&module, &CompileOptions::new(cfg, 5)).unwrap();
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        assert!(out.status.is_exit());
        out.stats.cycles
    };
    let base = cycles(DiversifyConfig::none());
    let push = cycles(DiversifyConfig {
        btra: Some(BtraConfig {
            mode: BtraMode::Push,
            total: 10,
            omit_vzeroupper: false,
        }),
        booby_trap_funcs: 16,
        ..DiversifyConfig::none()
    });
    let avx = cycles(DiversifyConfig {
        btra: Some(BtraConfig {
            mode: BtraMode::Avx2,
            total: 10,
            omit_vzeroupper: false,
        }),
        booby_trap_funcs: 16,
        ..DiversifyConfig::none()
    });
    assert!(base < avx, "BTRAs must cost something: {base} vs {avx}");
    assert!(avx < push, "AVX2 setup must beat pushes: {avx} vs {push}");
}

#[test]
fn omitting_vzeroupper_is_catastrophic() {
    // §5.1.2: without vzeroupper the authors saw up to 50% slowdowns.
    let module = parse_module(FIB).unwrap();
    let cycles = |omit: bool| {
        let cfg = DiversifyConfig {
            btra: Some(BtraConfig {
                mode: BtraMode::Avx2,
                total: 10,
                omit_vzeroupper: omit,
            }),
            booby_trap_funcs: 16,
            ..DiversifyConfig::none()
        };
        let image = build(&module, &CompileOptions::new(cfg, 5)).unwrap();
        let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
        let out = vm.run();
        assert!(out.status.is_exit());
        out.stats.cycles
    };
    let with = cycles(false);
    let without = cycles(true);
    assert!(
        without as f64 > with as f64 * 1.2,
        "missing vzeroupper must hurt badly: {with} vs {without}"
    );
}

#[test]
fn diversified_images_differ_but_agree() {
    // Two seeds of the full config produce different layouts (the whole
    // point of diversity) yet identical behaviour.
    let module = parse_module(LOOPS_AND_MEMORY).unwrap();
    let a = build(&module, &CompileOptions::new(DiversifyConfig::full(), 100)).unwrap();
    let b = build(&module, &CompileOptions::new(DiversifyConfig::full(), 200)).unwrap();
    assert_ne!(a.func_addr("main"), b.func_addr("main"));
    let run = |img: &r2c_vm::Image| {
        let mut vm = Vm::new(img, VmConfig::new(MachineKind::EpycRome.config()));
        let s = vm.run().status;
        (s, vm.output.clone())
    };
    assert_eq!(run(&a), run(&b));
}

#[test]
fn no_instrument_function_keeps_plain_convention() {
    // A `noinstrument` function with stack args called from protected
    // code must still work (the §7.4.2 interop case).
    let src = STACK_ARGS.replace("func @sum8(8) {", "func @sum8(8) noinstrument {");
    let module = parse_module(&src).unwrap();
    let expected = interpret(&module, "main", 1_000_000).unwrap();
    let image = build(&module, &CompileOptions::new(DiversifyConfig::full(), 11)).unwrap();
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    let out = vm.run();
    assert_eq!(out.status, ExitStatus::Exited(expected.ret));
    assert_eq!(vm.output, expected.output);
}

#[test]
fn consistency_checks_emit_and_stay_correct() {
    // §7.3 hardening: BTRA consistency checks must not alter behaviour,
    // and the check sequences (cmp + conditional skip + trap) must be
    // present in the emitted code.
    let module = parse_module(FIB).unwrap();
    let expected = interpret(&module, "main", 100_000_000).unwrap();
    let mut cfg = DiversifyConfig::full();
    cfg.btra_consistency_checks = 3;
    let opts = CompileOptions::new(cfg, 21);
    let program = r2c_codegen::compile(&module, &opts).unwrap();
    let traps_in_bodies: usize = program
        .funcs
        .iter()
        .map(|f| {
            f.insns
                .iter()
                .filter(|i| matches!(i, r2c_vm::Insn::Trap))
                .count()
        })
        .sum();
    // Prolog traps exist too, but consistency checks add at least one
    // trap per instrumented call site beyond the per-function prologs.
    let sites: u32 = program.funcs.iter().map(|f| f.btra_sites).sum();
    assert!(
        traps_in_bodies as u32 >= sites,
        "expected >= {sites} in-body traps, found {traps_in_bodies}"
    );
    let image = r2c_codegen::link(&program, &r2c_codegen::LinkOptions::from_config(&cfg, 21));
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    let out = vm.run();
    assert_eq!(out.status, ExitStatus::Exited(expected.ret));
    assert_eq!(vm.output, expected.output);
    assert!(
        vm.detections().is_empty(),
        "benign run must not trip its own checks"
    );
}

#[test]
fn code_pointer_hiding_indirects_function_pointers() {
    // §2.2 CPH model: materialized function pointers resolve to
    // trampolines, direct calls stay direct, and indirect calls through
    // the trampolines still work.
    let module = parse_module(INDIRECT_AND_HEAP).unwrap();
    let expected = interpret(&module, "main", 1_000_000).unwrap();
    let cfg = DiversifyConfig {
        func_shuffle: true,
        xom: true,
        cph: true,
        booby_trap_funcs: 8,
        ..DiversifyConfig::none()
    };
    let image = build(&module, &CompileOptions::new(cfg, 13)).unwrap();
    let triple = image.func_addr("triple");
    let tramp = image.func_addr("__tramp_triple");
    assert_ne!(triple, tramp, "trampoline must be distinct from the entry");
    // The funcptr global must hold the trampoline, not the entry.
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    let fp_global = image.func_addr("fp");
    assert_eq!(
        vm.mem.peek_u64(fp_global),
        tramp,
        "global funcptr must be hidden"
    );
    let out = vm.run();
    assert_eq!(out.status, ExitStatus::Exited(expected.ret));
    assert_eq!(vm.output, expected.output);
}
