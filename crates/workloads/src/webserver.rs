//! Web-server workload (paper §6.2.4).
//!
//! The paper benchmarks nginx 1.14.2 and Apache 2.4.54 serving 64-byte
//! pages under wrk at CPU saturation. The synthetic server processes a
//! closed loop of requests, each of which is parsed (header scan),
//! routed through a function-pointer table (module dispatch), handled
//! (writing a 64-byte response), and accounted. The Apache variant
//! allocates and frees a per-request memory pool and runs a deeper
//! handler chain (its process/filter model); the nginx variant reuses
//! static buffers (its arena model) and has the shorter path.
//!
//! Throughput is requests divided by simulated wall-clock time
//! (cycles / clock frequency), measured at "saturation" — the VM is
//! the CPU, so it is saturated by construction.

use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::{BinOp, CmpOp, ExternFn, GlobalInit, Module, ModuleBuilder};
use r2c_vm::{ExitStatus, MachineKind, Vm, VmConfig};

/// Which server the workload models.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ServerKind {
    /// nginx-like: static buffers, short handler path.
    Nginx,
    /// Apache-like: per-request pool allocation, deeper handler chain.
    Apache,
}

impl ServerKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Nginx => "nginx",
            ServerKind::Apache => "Apache",
        }
    }
}

/// Builds the server module processing `requests` requests.
pub fn webserver_module(kind: ServerKind, requests: u64) -> Module {
    let mut mb = ModuleBuilder::new(kind.name());
    let reqbuf = mb.global("request_buf", GlobalInit::Zero(192), 8);
    let respbuf = mb.global("response_buf", GlobalInit::Zero(192), 8);
    let counters = mb.global("counters", GlobalInit::Zero(32), 8);
    let n_handlers = 4usize;
    let table = mb.global("handlers", GlobalInit::Words(vec![0; n_handlers]), 8);

    // Handlers: write the 64-byte response page.
    let handler_ids: Vec<_> = (0..n_handlers)
        .map(|i| mb.declare_function(&format!("handler_{i}"), 1))
        .collect();
    let fill = mb.declare_function("fill_response", 2);
    {
        let mut f = mb.function("fill_response", 2);
        let seed = f.param(0);
        let salt = f.param(1);
        let rb = f.global_addr(respbuf);
        let mut v = f.bin(BinOp::Add, seed, salt);
        for w in 0..24 {
            let c = f.iconst(0x9E37 + w);
            v = f.bin(BinOp::Mul, v, c);
            let c2 = f.iconst(13 + w);
            v = f.bin(BinOp::Xor, v, c2);
            f.store(rb, (8 * (w % 8)) as i32, v);
        }
        f.ret(Some(v));
        f.finish();
    }
    for (i, _) in handler_ids.iter().enumerate() {
        let mut f = mb.function(&format!("handler_{i}"), 1);
        let req = f.param(0);
        let salt = f.iconst(i as i64 + 11);
        let mut v = f.call(fill, &[req, salt]);
        if kind == ServerKind::Apache {
            // Apache-like: per-request pool, content filter pass.
            let sz = f.iconst(256);
            let pool = f.call_extern(ExternFn::Malloc, &[sz]);
            for w in 0..4 {
                let x = f.bin(BinOp::Add, v, req);
                f.store(pool, 8 * w, x);
                v = x;
            }
            let filtered = f.call(fill, &[v, salt]);
            v = f.bin(BinOp::Xor, v, filtered);
            f.call_extern(ExternFn::Free, &[pool]);
        }
        f.ret(Some(v));
        f.finish();
    }

    // Header parser: scan the 8-word request buffer.
    let parse = {
        let mut f = mb.function("parse_request", 1);
        let req = f.param(0);
        let rb = f.global_addr(reqbuf);
        // Write a synthetic request first (the "network read").
        let mut v = req;
        for w in 0..16 {
            let c = f.iconst(0x47 + w); // 'G' 'E' 'T' ...
            v = f.bin(BinOp::Add, v, c);
            let r3 = f.iconst(3);
            v = f.bin(BinOp::Shl, v, r3);
            f.store(rb, (8 * w) as i32, v);
        }
        // Scan it back twice: header tokenization, then validation.
        let mut sum = f.iconst(0);
        for pass in 0..2 {
            for w in 0..16 {
                let x = f.load(rb, (8 * w) as i32);
                sum = f.bin(BinOp::Xor, sum, x);
                let c = f.iconst(pass * 31 + w + 1);
                sum = f.bin(BinOp::Mul, sum, c);
            }
        }
        f.ret(Some(sum));
        f.finish();
        f_id(&mb, "parse_request")
    };

    // Accounting.
    let account = {
        let mut f = mb.function("account", 1);
        let code = f.param(0);
        let cb = f.global_addr(counters);
        let three = f.iconst(3);
        let idx = f.bin(BinOp::And, code, three);
        let slot = f.ptr_add(cb, Some(idx), 8, 0);
        let old = f.load(slot, 0);
        let one = f.iconst(1);
        let neu = f.bin(BinOp::Add, old, one);
        f.store(slot, 0, neu);
        f.ret(Some(neu));
        f.finish();
        f_id(&mb, "account")
    };

    // Table initializer.
    let init = {
        let mut f = mb.function("init", 0);
        let tb = f.global_addr(table);
        for (i, &h) in handler_ids.iter().enumerate() {
            let fp = f.func_addr(h);
            f.store(tb, (8 * i) as i32, fp);
        }
        f.ret(None);
        f.finish();
        f_id(&mb, "init")
    };

    // Event loop.
    {
        let mut f = mb.function("main", 0);
        let state = f.alloca(16, 8);
        let zero = f.iconst(0);
        f.store(state, 0, zero);
        f.store(state, 8, zero);
        f.call(init, &[]);
        let body = f.new_block("body");
        let done = f.new_block("done");
        f.br(body);
        f.switch_to(body);
        let i = f.load(state, 8);
        let hdr = f.call(parse, &[i]);
        // Route by header hash.
        let tb = f.global_addr(table);
        let three = f.iconst(3);
        let idx = f.bin(BinOp::And, hdr, three);
        let slot = f.ptr_add(tb, Some(idx), 8, 0);
        let fp = f.load(slot, 0);
        let resp = f.call_ind(fp, &[hdr]);
        let code = f.call(account, &[resp]);
        let acc = f.load(state, 0);
        let acc2 = f.bin(BinOp::Xor, acc, resp);
        let acc3 = f.bin(BinOp::Add, acc2, code);
        f.store(state, 0, acc3);
        let one = f.iconst(1);
        let i2 = f.bin(BinOp::Add, i, one);
        f.store(state, 8, i2);
        let lim = f.iconst(requests as i64);
        let again = f.cmp(CmpOp::Lt, i2, lim);
        f.cond_br(again, body, done);
        f.switch_to(done);
        let fin = f.load(state, 0);
        let mask = f.iconst(0xFFFF_FFFF);
        let folded = f.bin(BinOp::And, fin, mask);
        f.call_extern(ExternFn::PrintI64, &[folded]);
        f.ret(Some(folded));
        f.finish();
    }
    mb.finish()
}

fn f_id(mb: &ModuleBuilder, name: &str) -> r2c_ir::FuncId {
    mb.module().func_by_name(name).expect("just defined")
}

/// Result of one measured server run.
#[derive(Clone, Copy, Debug)]
pub struct WebserverRun {
    /// Requests served.
    pub requests: u64,
    /// Simulated cycles consumed.
    pub cycles: f64,
    /// Requests per simulated second at the machine's clock.
    pub throughput_rps: f64,
    /// Maximum resident set size in bytes.
    pub max_rss_bytes: u64,
}

/// Builds, runs and measures the server under `cfg` on `machine`.
pub fn run_webserver(
    kind: ServerKind,
    requests: u64,
    cfg: R2cConfig,
    machine: MachineKind,
) -> WebserverRun {
    let module = webserver_module(kind, requests);
    let image = R2cCompiler::new(cfg)
        .build(&module)
        .expect("server must compile");
    let mut vm = Vm::new(&image, VmConfig::new(machine.config()));
    let out = vm.run();
    assert!(
        matches!(out.status, ExitStatus::Exited(_)),
        "server crashed: {:?}",
        out.status
    );
    let cycles = out.stats.cycles_f64();
    let secs = cycles / (machine.freq_ghz() * 1e9);
    WebserverRun {
        requests,
        cycles,
        throughput_rps: requests as f64 / secs,
        max_rss_bytes: out.stats.max_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::interpret;

    #[test]
    fn both_servers_verify_and_run() {
        for kind in [ServerKind::Nginx, ServerKind::Apache] {
            let m = webserver_module(kind, 50);
            r2c_ir::verify_module(&m).unwrap();
            let r = interpret(&m, "main", 50_000_000).unwrap();
            assert_eq!(r.output.len(), 1, "{}", kind.name());
        }
    }

    #[test]
    fn protected_server_matches_interpreter() {
        for kind in [ServerKind::Nginx, ServerKind::Apache] {
            let m = webserver_module(kind, 30);
            let expected = interpret(&m, "main", 50_000_000).unwrap();
            let image = R2cCompiler::new(R2cConfig::full(3)).build(&m).unwrap();
            let mut vm = Vm::new(&image, VmConfig::new(MachineKind::I9_9900K.config()));
            let out = vm.run();
            assert_eq!(out.status, ExitStatus::Exited(expected.ret));
            assert_eq!(vm.output, expected.output);
        }
    }

    #[test]
    fn full_r2c_reduces_throughput() {
        let base = run_webserver(
            ServerKind::Nginx,
            300,
            R2cConfig::baseline(1),
            MachineKind::I9_9900K,
        );
        let prot = run_webserver(
            ServerKind::Nginx,
            300,
            R2cConfig::full(1),
            MachineKind::I9_9900K,
        );
        assert!(prot.throughput_rps < base.throughput_rps);
        let drop = 1.0 - prot.throughput_rps / base.throughput_rps;
        assert!(
            drop > 0.01 && drop < 0.6,
            "throughput drop {drop} out of plausible range"
        );
    }

    #[test]
    fn btdp_guard_pages_inflate_server_rss() {
        let base = run_webserver(
            ServerKind::Apache,
            100,
            R2cConfig::baseline(1),
            MachineKind::I9_9900K,
        );
        let prot = run_webserver(
            ServerKind::Apache,
            100,
            R2cConfig::full(1),
            MachineKind::I9_9900K,
        );
        assert!(
            prot.max_rss_bytes > base.max_rss_bytes,
            "guard pages and larger text must show up in RSS"
        );
    }
}
