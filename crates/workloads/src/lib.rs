//! # r2c-workloads — synthetic benchmark programs
//!
//! The paper evaluates R²C on SPEC CPU 2017 (§6.2) and on the nginx and
//! Apache web servers (§6.2.4). SPEC is licensed and the web servers
//! are megabytes of C, so this reproduction generates *synthetic IR
//! workloads matched to each benchmark's profile*:
//!
//! * the **relative dynamic call frequency** (Table 2 — the property
//!   §7.1 identifies as the primary driver of R²C overhead), scaled by
//!   1:10⁶;
//! * the **code footprint** (number and size of functions — the
//!   instruction-cache pressure component of the overhead);
//! * the **memory behaviour** (streaming arrays, pointer chasing,
//!   recursion, indirect dispatch) characteristic of each program.
//!
//! Every workload prints a checksum, so any miscompilation under any
//! diversification configuration is caught by comparing against the IR
//! reference interpreter.

pub mod captured;
pub mod engine;
pub mod spec;
pub mod webserver;

pub use captured::captured_workloads;
pub use engine::{build_workload, Profile};
pub use spec::{spec_profiles, spec_workloads, Scale, Workload};
pub use webserver::{webserver_module, ServerKind, WebserverRun};
