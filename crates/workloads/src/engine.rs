//! Generic workload generator.
//!
//! A workload is a main loop over a *driver* function that performs a
//! chain of calls into a pool of leaf functions, optionally through an
//! indirect-dispatch table, optional recursion, inner arithmetic loops
//! and global-array traffic. The [`Profile`] parameters control the
//! dynamic call count, code footprint and memory behaviour — the axes
//! along which the paper explains R²C's overhead differences (§7.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use r2c_ir::{BinOp, CmpOp, ExternFn, FuncId, GlobalInit, Module, ModuleBuilder};

/// Workload shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Benchmark name.
    pub name: &'static str,
    /// Dynamic call count from the paper's Table 2 (median across
    /// inputs); the generator reproduces this count divided by the
    /// scale factor.
    pub table2_calls: u64,
    /// Direct/indirect calls per driver invocation.
    pub chain_len: u32,
    /// Arithmetic operations per leaf inner-loop iteration.
    pub work: u32,
    /// Inner-loop iterations per leaf call (1 = straight-line leaf).
    pub inner_loop: u32,
    /// Number of leaf functions (code footprint / i-cache pressure).
    pub funcs: u32,
    /// Global data array size in KiB (0 = no array traffic). Must be a
    /// power of two.
    pub array_kb: u32,
    /// Every `indirect_every`-th chain slot dispatches through the
    /// function-pointer table (0 = all calls direct).
    pub indirect_every: u32,
    /// Extra recursion depth per driver invocation (tree-search
    /// programs); adds `recursion` calls per iteration.
    pub recursion: u32,
    /// Pointer-chasing list length walked per driver invocation
    /// (0 = none); models mcf-style memory behaviour.
    pub chase: u32,
    /// Long-lived heap footprint in MiB, allocated at startup (the
    /// benchmark's working set; determines the maxrss baseline against
    /// which R²C's fixed guard-page/code overhead is measured, §6.2.5).
    pub heap_mb: u32,
}

impl Profile {
    /// Calls per driver invocation (the denominator for computing the
    /// iteration count from the call target).
    pub fn calls_per_iter(&self) -> u64 {
        // +1 for the driver call itself; +1 for the initial search
        // call; +1 for the chase walker call.
        1 + self.chain_len as u64
            + self.recursion as u64
            + if self.recursion > 0 { 1 } else { 0 }
            + if self.chase > 0 { 1 } else { 0 }
    }
}

/// Builds the workload module for `profile`, targeting `call_target`
/// dynamic calls (excluding the final output externs).
pub fn build_workload(profile: &Profile, call_target: u64) -> Module {
    let mut rng = SmallRng::seed_from_u64(0xBE6C_0000 ^ profile.table2_calls);
    let iters = (call_target / profile.calls_per_iter()).max(1);
    let mut mb = ModuleBuilder::new(profile.name);

    // Globals: data array, pointer-chase list, dispatch table.
    let array_words = (profile.array_kb as usize * 1024 / 8).max(8);
    assert!(
        array_words.is_power_of_two(),
        "array size must be a power of two"
    );
    let data = mb.global("data", GlobalInit::Zero((array_words * 8) as u32), 16);
    let chase_list = if profile.chase > 0 {
        Some(mb.global("chase", GlobalInit::Zero(8 * (profile.chase + 1)), 8))
    } else {
        None
    };

    // Leaf functions.
    let leaves: Vec<FuncId> = (0..profile.funcs)
        .map(|i| mb.declare_function(&format!("leaf_{i}"), 1))
        .collect();
    let table = mb.global(
        "dispatch_table",
        GlobalInit::Words(vec![0; profile.funcs as usize]),
        8,
    );
    // Function-pointer initializers are FuncPtr-per-slot; Words can't
    // express them, so the table is filled by an init function instead.
    for (i, &leaf) in leaves.iter().enumerate() {
        build_leaf(&mut mb, leaf, profile, array_words as u64, data, &mut rng);
        let _ = i;
    }

    // Table initializer (also allocates the benchmark's long-lived
    // working set).
    let init_table = {
        let mut f = mb.function("init_table", 0);
        if profile.heap_mb > 0 {
            // One leaked 1 MiB allocation per MiB of working set; the
            // pages stay resident for the benchmark's lifetime.
            let mb_size = f.iconst(1024 * 1024);
            for _ in 0..profile.heap_mb {
                f.call_extern(ExternFn::Malloc, &[mb_size]);
            }
        }
        let base = f.global_addr(table);
        for (i, &leaf) in leaves.iter().enumerate() {
            let fp = f.func_addr(leaf);
            f.store(base, (8 * i) as i32, fp);
        }
        // Chase list: a shuffled cycle through the chase nodes.
        if let Some(cl) = chase_list {
            let n = profile.chase as usize;
            let mut order: Vec<usize> = (1..=n).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let cb = f.global_addr(cl);
            let mut prev = 0usize;
            for &next in &order {
                let addr = f.ptr_add(cb, None, 1, (8 * next) as i32);
                f.store(cb, (8 * prev) as i32, addr);
                prev = next;
            }
            let back = f.ptr_add(cb, None, 1, 0);
            f.store(cb, (8 * prev) as i32, back);
        }
        let id = f.id();
        f.ret(None);
        f.finish();
        id
    };

    // Recursive search function (if requested).
    let search = if profile.recursion > 0 {
        let id = mb.declare_function("search", 1);
        let mut f = mb.function("search", 1);
        let d = f.param(0);
        let zero = f.iconst(0);
        let c = f.cmp(CmpOp::Le, d, zero);
        let base = f.new_block("base");
        let rec = f.new_block("rec");
        f.cond_br(c, base, rec);
        f.switch_to(base);
        f.ret(Some(d));
        f.switch_to(rec);
        let one = f.iconst(1);
        let d1 = f.bin(BinOp::Sub, d, one);
        let sub = f.call(id, &[d1]);
        let r = f.bin(BinOp::Add, sub, d);
        f.ret(Some(r));
        f.finish();
        Some(id)
    } else {
        None
    };

    // Chase walker.
    let walker = if let Some(cl) = chase_list {
        let id = mb.declare_function("walk", 1);
        let mut f = mb.function("walk", 1);
        let steps = f.param(0);
        let slot = f.alloca(16, 8);
        let cb = f.global_addr(cl);
        f.store(slot, 0, cb);
        let zero = f.iconst(0);
        f.store(slot, 8, zero);
        let body = f.new_block("body");
        let done = f.new_block("done");
        let c0 = f.cmp(CmpOp::Gt, steps, zero);
        f.cond_br(c0, body, done);
        f.switch_to(body);
        let cur = f.load(slot, 0);
        let next = f.load(cur, 0);
        f.store(slot, 0, next);
        let i = f.load(slot, 8);
        let one = f.iconst(1);
        let i2 = f.bin(BinOp::Add, i, one);
        f.store(slot, 8, i2);
        let more = f.cmp(CmpOp::Lt, i2, steps);
        f.cond_br(more, body, done);
        f.switch_to(done);
        let fin = f.load(slot, 0);
        f.ret(Some(fin));
        f.finish();
        Some(id)
    } else {
        None
    };

    // Driver: one request/step of the benchmark.
    let driver = {
        let id = mb.declare_function("driver", 1);
        let mut f = mb.function("driver", 1);
        let x = f.param(0);
        let tbl = f.global_addr(table);
        let mut v = x;
        for k in 0..profile.chain_len {
            let indirect = profile.indirect_every > 0 && k % profile.indirect_every == 0;
            if indirect {
                // Rotate dynamically through the table.
                let kk = f.iconst(k as i64);
                let sum = f.bin(BinOp::Add, v, kk);
                let n = f.iconst(profile.funcs as i64);
                let idx = f.bin(BinOp::Rem, sum, n);
                // `rem` can be negative for negative v; mask to a safe
                // in-range index (≤ funcs - 1 for any bit pattern).
                let m = f.iconst((profile.funcs as i64 - 1).max(0));
                let pos = f.bin(BinOp::And, idx, m);
                let fp_slot = f.ptr_add(tbl, Some(pos), 8, 0);
                let fp = f.load(fp_slot, 0);
                v = f.call_ind(fp, &[v]);
            } else {
                let leaf = leaves[((k as u64 * 7 + 3) % profile.funcs as u64) as usize];
                v = f.call(leaf, &[v]);
            }
        }
        if let Some(s) = search {
            let d = f.iconst(profile.recursion as i64);
            let r = f.call(s, &[d]);
            v = f.bin(BinOp::Add, v, r);
        }
        if let Some(w) = walker {
            let steps = f.iconst(profile.chase as i64);
            let r = f.call(w, &[steps]);
            // Mix in the low bits of the final node address... no:
            // pointer values differ between interpreter and VM. Use a
            // pointer-derived but layout-independent value instead: the
            // parity of reaching the end (always the same node), i.e.
            // just a constant contribution; the walk itself is the
            // point (memory behaviour).
            let c = f.iconst(13);
            let _ = r;
            v = f.bin(BinOp::Add, v, c);
        }
        f.ret(Some(v));
        f.finish();
        id
    };

    // Main.
    {
        let mut f = mb.function("main", 0);
        let acc = f.alloca(16, 8);
        let zero = f.iconst(0);
        f.store(acc, 0, zero);
        f.store(acc, 8, zero);
        f.call(init_table, &[]);
        let body = f.new_block("body");
        let done = f.new_block("done");
        f.br(body);
        f.switch_to(body);
        let i = f.load(acc, 8);
        let r = f.call(driver, &[i]);
        let a = f.load(acc, 0);
        let mixed = f.bin(BinOp::Xor, a, r);
        let three = f.iconst(3);
        let rot = f.bin(BinOp::Shl, mixed, three);
        let sum = f.bin(BinOp::Add, rot, r);
        f.store(acc, 0, sum);
        let one = f.iconst(1);
        let i2 = f.bin(BinOp::Add, i, one);
        f.store(acc, 8, i2);
        let lim = f.iconst(iters as i64);
        let again = f.cmp(CmpOp::Lt, i2, lim);
        f.cond_br(again, body, done);
        f.switch_to(done);
        let fin = f.load(acc, 0);
        // Fold to a bounded checksum so interpreter/VM comparison is
        // stable regardless of integer width assumptions.
        let mask = f.iconst(0xFFFF_FFFF);
        let folded = f.bin(BinOp::And, fin, mask);
        f.call_extern(ExternFn::PrintI64, &[folded]);
        f.ret(Some(folded));
        f.finish();
    }
    mb.finish()
}

fn build_leaf(
    mb: &mut ModuleBuilder,
    id: FuncId,
    profile: &Profile,
    array_words: u64,
    data: r2c_ir::GlobalId,
    rng: &mut SmallRng,
) {
    let name = mb.module().funcs[id.0 as usize].name.clone();
    let mut f = mb.function(&name, 1);
    let x = f.param(0);
    let slot = f.alloca(24, 8);
    f.store(slot, 0, x);
    let zero = f.iconst(0);
    f.store(slot, 8, zero);
    let da = f.global_addr(data);
    let use_array = profile.array_kb > 0;
    let body = f.new_block("body");
    let done = f.new_block("done");
    f.br(body);
    f.switch_to(body);
    let mut v = f.load(slot, 0);
    // `work` arithmetic operations with random constants/ops.
    for _ in 0..profile.work {
        let c = f.iconst(rng.gen_range(1..1 << 20));
        let op = match rng.gen_range(0..4) {
            0 => BinOp::Add,
            1 => BinOp::Xor,
            2 => BinOp::Mul,
            _ => BinOp::Sub,
        };
        v = f.bin(op, v, c);
    }
    if use_array {
        // One load-modify-store on the global array per inner
        // iteration, index derived from the running value.
        let mask = f.iconst((array_words - 1) as i64);
        let idx = f.bin(BinOp::And, v, mask);
        let slot_addr = f.ptr_add(da, Some(idx), 8, 0);
        let old = f.load(slot_addr, 0);
        let neu = f.bin(BinOp::Add, old, v);
        f.store(slot_addr, 0, neu);
        v = f.bin(BinOp::Xor, v, old);
    }
    f.store(slot, 0, v);
    let i = f.load(slot, 8);
    let one = f.iconst(1);
    let i2 = f.bin(BinOp::Add, i, one);
    f.store(slot, 8, i2);
    let lim = f.iconst(profile.inner_loop.max(1) as i64);
    let again = f.cmp(CmpOp::Lt, i2, lim);
    f.cond_br(again, body, done);
    f.switch_to(done);
    let fin = f.load(slot, 0);
    f.ret(Some(fin));
    f.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::{interpret, verify_module};

    fn tiny_profile() -> Profile {
        Profile {
            name: "tiny",
            table2_calls: 1,
            chain_len: 4,
            work: 6,
            inner_loop: 2,
            funcs: 5,
            array_kb: 8,
            indirect_every: 2,
            recursion: 3,
            chase: 6,
            heap_mb: 1,
        }
    }

    #[test]
    fn workload_verifies_and_runs() {
        let m = build_workload(&tiny_profile(), 200);
        verify_module(&m).unwrap();
        let r = interpret(&m, "main", 10_000_000).unwrap();
        assert_eq!(r.output.len(), 1);
    }

    #[test]
    fn call_target_respected() {
        let p = tiny_profile();
        for target in [100u64, 1000] {
            let m = build_workload(&p, target);
            let r = interpret(&m, "main", 100_000_000).unwrap();
            // Within the granularity of one iteration, plus the
            // init_table call.
            let calls = r.calls;
            assert!(
                calls >= target / 2 && calls <= target + p.calls_per_iter() + 2,
                "target {target}, got {calls}"
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = build_workload(&tiny_profile(), 100);
        let b = build_workload(&tiny_profile(), 100);
        assert_eq!(r2c_ir::print_module(&a), r2c_ir::print_module(&b));
    }

    #[test]
    fn straight_line_profile_works() {
        let p = Profile {
            name: "straight",
            table2_calls: 2,
            chain_len: 1,
            work: 10,
            inner_loop: 50,
            funcs: 1,
            array_kb: 0,
            indirect_every: 0,
            recursion: 0,
            chase: 0,
            heap_mb: 0,
        };
        let m = build_workload(&p, 50);
        verify_module(&m).unwrap();
        let r = interpret(&m, "main", 10_000_000).unwrap();
        assert_eq!(r.output.len(), 1);
    }
}
