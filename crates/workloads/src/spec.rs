//! SPEC CPU 2017-profiled workloads.
//!
//! One profile per benchmark in the paper's Table 2. The dynamic call
//! counts reproduce Table 2 (scaled); the remaining parameters encode
//! each program's published character — interpreter dispatch for
//! perlbench, pointer chasing for mcf, huge straight-line kernels for
//! lbm, discrete-event/virtual dispatch for omnetpp, a large code
//! footprint for gcc/xalancbmk, tree search for deepsjeng/leela, tiny
//! hot force-field functions for nab, and so on.

use r2c_ir::Module;

use crate::engine::{build_workload, Profile};

/// Workload scale: divisor applied to the Table 2 call counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Minutes-long aggregate (1:10⁵) — closest to the paper's runs.
    Large,
    /// Seconds-long aggregate (1:10⁶) — the default for reports.
    Bench,
    /// Milliseconds (fixed small call budget) — for unit tests.
    Test,
}

impl Scale {
    /// Scaled call target for a Table 2 call count.
    pub fn calls(self, table2: u64) -> u64 {
        match self {
            Scale::Large => (table2 / 100_000).max(50),
            Scale::Bench => (table2 / 1_000_000).max(20),
            Scale::Test => (table2 / 200_000_000).clamp(8, 60),
        }
    }
}

/// A generated workload.
pub struct Workload {
    /// Benchmark name (matching the paper's tables and Figure 6).
    pub name: &'static str,
    /// Paper Table 2 dynamic call count (unscaled).
    pub table2_calls: u64,
    /// The generated module.
    pub module: Module,
    /// The scaled dynamic call target used for generation.
    pub call_target: u64,
}

/// The 12 profiles of Table 2, in table order.
pub fn spec_profiles() -> Vec<Profile> {
    vec![
        // perlbench: interpreter — heavy indirect dispatch, mid-size
        // code, hash/array traffic.
        Profile {
            name: "perlbench",
            table2_calls: 9_435_182_963,
            chain_len: 12,
            work: 28,
            inner_loop: 3,
            funcs: 48,
            array_kb: 64,
            indirect_every: 3,
            recursion: 0,
            chase: 0,
            heap_mb: 12,
        },
        // gcc: very large code footprint, moderate call density.
        Profile {
            name: "gcc",
            table2_calls: 7_471_474_392,
            chain_len: 10,
            work: 28,
            inner_loop: 4,
            funcs: 160,
            array_kb: 128,
            indirect_every: 2,
            recursion: 2,
            chase: 0,
            heap_mb: 16,
        },
        // mcf: network simplex — pointer chasing dominates, high call
        // count of small helpers.
        Profile {
            name: "mcf",
            table2_calls: 38_657_893_688,
            chain_len: 8,
            work: 25,
            inner_loop: 6,
            funcs: 12,
            array_kb: 256,
            indirect_every: 0,
            recursion: 0,
            chase: 64,
            heap_mb: 24,
        },
        // lbm: fluid dynamics — almost no calls, enormous streaming
        // kernels.
        Profile {
            name: "lbm",
            table2_calls: 20_906_700,
            chain_len: 1,
            work: 24,
            inner_loop: 4000,
            funcs: 3,
            array_kb: 512,
            indirect_every: 0,
            recursion: 0,
            chase: 0,
            heap_mb: 32,
        },
        // omnetpp: discrete-event simulation — extremely call-heavy,
        // virtual dispatch, little work per call.
        Profile {
            name: "omnetpp",
            table2_calls: 23_536_583_520,
            chain_len: 16,
            work: 12,
            inner_loop: 2,
            funcs: 64,
            array_kb: 64,
            indirect_every: 2,
            recursion: 0,
            chase: 0,
            heap_mb: 10,
        },
        // xalancbmk: XSLT — call-heavy C++ with a big code footprint.
        Profile {
            name: "xalancbmk",
            table2_calls: 12_430_137_048,
            chain_len: 14,
            work: 15,
            inner_loop: 4,
            funcs: 256,
            array_kb: 128,
            indirect_every: 2,
            recursion: 0,
            chase: 0,
            heap_mb: 16,
        },
        // x264: video encoding — few calls, hot vectorizable kernels.
        Profile {
            name: "x264",
            table2_calls: 3_400_115_007,
            chain_len: 4,
            work: 20,
            inner_loop: 24,
            funcs: 16,
            array_kb: 256,
            indirect_every: 0,
            recursion: 0,
            chase: 0,
            heap_mb: 24,
        },
        // deepsjeng: chess search — recursion-heavy.
        Profile {
            name: "deepsjeng",
            table2_calls: 11_366_032_234,
            chain_len: 8,
            work: 24,
            inner_loop: 8,
            funcs: 32,
            array_kb: 64,
            indirect_every: 0,
            recursion: 6,
            chase: 0,
            heap_mb: 8,
        },
        // imagick: image processing — moderate calls, arithmetic-dense
        // kernels.
        Profile {
            name: "imagick",
            table2_calls: 10_441_212_712,
            chain_len: 6,
            work: 20,
            inner_loop: 10,
            funcs: 24,
            array_kb: 128,
            indirect_every: 0,
            recursion: 0,
            chase: 0,
            heap_mb: 24,
        },
        // leela: Go engine — tree search plus simulation calls.
        Profile {
            name: "leela",
            table2_calls: 13_108_456_661,
            chain_len: 10,
            work: 18,
            inner_loop: 6,
            funcs: 28,
            array_kb: 64,
            indirect_every: 0,
            recursion: 4,
            chase: 0,
            heap_mb: 8,
        },
        // nab: molecular dynamics — the highest call count in the
        // suite: tiny force-field helpers called everywhere.
        Profile {
            name: "nab",
            table2_calls: 135_237_228_510,
            chain_len: 20,
            work: 12,
            inner_loop: 3,
            funcs: 20,
            array_kb: 64,
            indirect_every: 0,
            recursion: 0,
            chase: 0,
            heap_mb: 12,
        },
        // xz: compression — few calls, bit-twiddling loops, large
        // buffers.
        Profile {
            name: "xz",
            table2_calls: 3_287_645_643,
            chain_len: 4,
            work: 18,
            inner_loop: 16,
            funcs: 12,
            array_kb: 512,
            indirect_every: 0,
            recursion: 0,
            chase: 0,
            heap_mb: 32,
        },
    ]
}

/// Generates all 12 workloads at the given scale.
pub fn spec_workloads(scale: Scale) -> Vec<Workload> {
    spec_profiles()
        .into_iter()
        .map(|p| {
            let call_target = scale.calls(p.table2_calls);
            Workload {
                name: p.name,
                table2_calls: p.table2_calls,
                module: build_workload(&p, call_target),
                call_target,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_ir::{interpret, verify_module};

    #[test]
    fn all_profiles_generate_valid_modules() {
        for w in spec_workloads(Scale::Test) {
            verify_module(&w.module).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let r = interpret(&w.module, "main", 200_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(r.output.len(), 1, "{} must print its checksum", w.name);
        }
    }

    #[test]
    fn call_ordering_matches_table2() {
        // The scaled dynamic call counts must preserve the Table 2
        // ordering (nab ≫ mcf > omnetpp > ... > lbm).
        let ws = spec_workloads(Scale::Test);
        let get = |name: &str| ws.iter().find(|w| w.name == name).unwrap().table2_calls;
        assert!(get("nab") > get("mcf"));
        assert!(get("mcf") > get("omnetpp"));
        assert!(get("omnetpp") > get("xalancbmk"));
        assert!(get("xalancbmk") > get("perlbench"));
        assert!(get("perlbench") > get("xz"));
        assert!(get("xz") > get("lbm"));
    }

    #[test]
    fn scales_are_monotonic() {
        let t = 10_000_000_000u64;
        assert!(Scale::Large.calls(t) > Scale::Bench.calls(t));
        assert!(Scale::Bench.calls(t) > Scale::Test.calls(t));
    }
}
