//! Record-replay regression tests: two exemplar schedules are checked
//! in under `tests/schedules/` together with the full monitor event
//! log each produced when recorded. Replaying must reproduce the log
//! bit-exactly — any change to the compiler, the VM, the victim, or
//! the fleet semantics that moves an address, a cycle count or a
//! reaction shows up as a diff here.
//!
//! To re-record after an intentional change:
//! `R2C_BLESS=1 cargo test -p r2c-serve --test replay`

use std::fs;
use std::path::PathBuf;

use r2c_attacks::victim::victim_module;
use r2c_core::R2cConfig;
use r2c_serve::{run_fleet, ExecMode, FleetConfig, ReactionPolicy, Schedule};

fn schedules_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/schedules")
}

fn replay(name: &str, policy: ReactionPolicy, fleet_seed: u64) {
    let sched_path = schedules_dir().join(format!("{name}.sched"));
    let golden_path = schedules_dir().join(format!("{name}.log.golden"));
    let text = fs::read_to_string(&sched_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", sched_path.display()));
    let sched = Schedule::parse(&text).expect("checked-in schedule must parse");

    let fc = FleetConfig {
        fleet_seed,
        ..FleetConfig::new(R2cConfig::full(0), policy)
    };
    // Serial here; the determinism suite pins parallel == serial.
    let run = run_fleet(&victim_module(), &fc, &sched, ExecMode::Serial);
    let got = run.log.join("\n") + "\n";

    if std::env::var_os("R2C_BLESS").is_some() {
        fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with R2C_BLESS=1 to record)",
            golden_path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "replayed monitor log diverged from {} (R2C_BLESS=1 re-records after intentional changes)",
        golden_path.display()
    );
}

/// Exemplar A: a mixed request/probe load against the Blind-ROP
/// vulnerable restart-same pool.
#[test]
fn replay_mixed_restart_same() {
    replay("mixed_restart_same", ReactionPolicy::RestartSameImage, 11);
}

/// Exemplar B: a probe-heavy load against the re-randomizing pool,
/// exercising fresh-variant respawns (and the variant pool) on replay.
#[test]
fn replay_probe_heavy_respawn_fresh() {
    replay(
        "probe_heavy_respawn_fresh",
        ReactionPolicy::RespawnFreshVariant,
        23,
    );
}

/// The checked-in schedules themselves roundtrip through the text
/// format (guards the parser against format drift).
#[test]
fn checked_in_schedules_roundtrip() {
    for name in ["mixed_restart_same", "probe_heavy_respawn_fresh"] {
        let path = schedules_dir().join(format!("{name}.sched"));
        let text = fs::read_to_string(&path).unwrap();
        let sched = Schedule::parse(&text).unwrap();
        assert_eq!(Schedule::parse(&sched.to_text()).unwrap(), sched);
        assert!(sched.probe_count() > 0, "{name} must exercise probes");
    }
}
