//! Fleet determinism and policy-separation tests.
//!
//! The contract under test (DESIGN.md §10): a fleet run is a pure
//! function of `(module, FleetConfig, Schedule)` — parallel execution,
//! the warm variant pool, and host timing must not leak into the
//! monitor event log or the metrics.

use r2c_attacks::victim::victim_module;
use r2c_core::R2cConfig;
use r2c_serve::{run_fleet, ExecMode, FleetConfig, ReactionPolicy, Schedule};

#[test]
fn parallel_log_bit_identical_to_serial() {
    let m = victim_module();
    let sched = Schedule::generate(0xD5, 3, 120, 250);
    for policy in [
        ReactionPolicy::Ignore,
        ReactionPolicy::RestartSameImage,
        ReactionPolicy::RespawnFreshVariant,
    ] {
        let fc = FleetConfig {
            fleet_seed: 7,
            ..FleetConfig::new(R2cConfig::full(0), policy)
        };
        let serial = run_fleet(&m, &fc, &sched, ExecMode::Serial);
        let parallel = run_fleet(&m, &fc, &sched, ExecMode::Parallel);
        assert_eq!(
            serial.log,
            parallel.log,
            "event log diverged under {}",
            policy.name()
        );
        assert_eq!(
            serial.metrics,
            parallel.metrics,
            "metrics diverged under {}",
            policy.name()
        );
    }
}

/// The 1000-worker scaling work must not cost determinism: at fleet
/// sizes well past the per-thread shard granularity, an open-loop
/// schedule must produce bit-identical logs, metrics and per-request
/// latencies whether the shards run serially, stolen by a thread pool,
/// or stolen with a different shard size.
///
/// Booting 256 debug-profile VMs three times takes tens of minutes, so
/// the debug suite skips this test; CI runs it in the release test job,
/// and `report_fleet --smoke --verify-determinism` (release, every CI
/// run) enforces the same serial==parallel contract at 256 workers.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "256-worker boots are too slow unoptimized; covered by the release CI job"
)]
fn open_loop_256_worker_fleet_is_deterministic() {
    let m = victim_module();
    let sched = Schedule::generate_open_loop(0xF00D, 256, 640, 150, 40_000);
    let fc = FleetConfig {
        fleet_seed: 11,
        shard_size: 8,
        ..FleetConfig::new(R2cConfig::full(0), ReactionPolicy::RespawnFreshVariant).sized_for(256)
    };
    let serial = run_fleet(&m, &fc, &sched, ExecMode::Serial);
    let parallel = run_fleet(&m, &fc, &sched, ExecMode::Parallel);
    assert_eq!(
        serial.log, parallel.log,
        "event log diverged at 256 workers"
    );
    assert_eq!(serial.metrics, parallel.metrics, "metrics diverged");
    assert_eq!(
        serial.request_latencies, parallel.request_latencies,
        "request latencies diverged"
    );
    assert!(
        !serial.request_latencies.is_empty(),
        "open-loop schedule produced no served requests"
    );
    // Shard geometry is a host-side tuning knob; an odd shard size that
    // splits workers unevenly across stealing threads must be invisible.
    let odd = run_fleet(
        &m,
        &FleetConfig {
            shard_size: 3,
            ..fc.clone()
        },
        &sched,
        ExecMode::Parallel,
    );
    assert_eq!(serial.log, odd.log, "shard size leaked into the log");
    assert_eq!(
        serial.request_latencies, odd.request_latencies,
        "shard size leaked into latencies"
    );
}

#[test]
fn pool_size_does_not_change_guest_state() {
    // Warm hits vs. cold compiles are host-side only: a pool-less fleet
    // and a pooled fleet must produce the same log.
    let m = victim_module();
    let sched = Schedule::generate(0xE4, 2, 60, 500);
    let base = FleetConfig::new(R2cConfig::full(3), ReactionPolicy::RespawnFreshVariant);
    let pooled = FleetConfig {
        pool_threads: 3,
        pool_capacity: 2,
        ..base.clone()
    };
    let unpooled = FleetConfig {
        pool_threads: 0,
        ..base
    };
    let a = run_fleet(&m, &pooled, &sched, ExecMode::Parallel);
    let b = run_fleet(&m, &unpooled, &sched, ExecMode::Serial);
    assert_eq!(a.log, b.log);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn respawn_fresh_outlasts_restart_same() {
    // The §7.3 claim at fleet level: under a pure probe load, the
    // same-image pool is compromised after finitely many probes, while
    // fresh-variant respawn survives at least as long.
    let m = victim_module();
    let probes = 400;
    let sched = Schedule::generate(1, 2, probes, 1000);
    let same = run_fleet(
        &m,
        &FleetConfig::new(R2cConfig::full(0), ReactionPolicy::RestartSameImage),
        &sched,
        ExecMode::Parallel,
    );
    let k = same
        .metrics
        .first_compromise_probe
        .expect("a non-re-randomizing pool must eventually fall to Blind ROP");
    assert!(k <= probes as u64);

    let fresh = run_fleet(
        &m,
        &FleetConfig::new(R2cConfig::full(0), ReactionPolicy::RespawnFreshVariant),
        &sched,
        ExecMode::Parallel,
    );
    match fresh.metrics.first_compromise_probe {
        None => {} // never compromised: strictly more probes than k
        Some(k_fresh) => assert!(
            k_fresh > k,
            "fresh-variant respawn fell earlier ({k_fresh}) than the restarting pool ({k})"
        ),
    }
    assert!(
        fresh.metrics.respawns > 0,
        "probes must have forced respawns"
    );
}

#[test]
fn availability_degrades_under_probe_load_but_not_to_zero() {
    let m = victim_module();
    let fc = FleetConfig::new(R2cConfig::full(0), ReactionPolicy::RespawnFreshVariant);
    let quiet = Schedule::generate(9, 4, 200, 0);
    let noisy = Schedule::generate(9, 4, 200, 200);
    let a = run_fleet(&m, &fc, &quiet, ExecMode::Parallel);
    let b = run_fleet(&m, &fc, &noisy, ExecMode::Parallel);
    assert_eq!(a.metrics.availability(), 1.0, "no probes, no drops");
    assert!(
        b.metrics.availability() < 1.0,
        "restart windows drop requests"
    );
    assert!(
        b.metrics.availability() > 0.5,
        "the fleet must keep serving"
    );
    assert_eq!(b.metrics.compromises, 0, "R2C should hold in a short run");
}

#[test]
fn variant_seed_is_injective_enough() {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    for fleet in 0..4u64 {
        for w in 0..8u32 {
            for g in 0..32u32 {
                assert!(
                    seen.insert(r2c_serve::variant_seed(fleet, w, g)),
                    "seed collision at fleet={fleet} w={w} g={g}"
                );
            }
        }
    }
}
