//! Seeded request/probe schedules with a record-replay text format.
//!
//! A [`Schedule`] is the complete, deterministic input of a fleet run:
//! an ordered list of events, each targeting one worker with either a
//! benign request or an attack probe. Schedules are generated from a
//! seed, and can be serialized to a small line-oriented on-disk format
//! so that interesting runs can be checked in and replayed bit-exactly
//! (the replay tests under `tests/schedules/` pin the full monitor
//! event log for two exemplar schedules).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a scheduled event asks a worker to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// A benign service request with an opaque payload argument.
    Request {
        /// Argument passed to the service function.
        payload: u64,
    },
    /// One attack-probe session step (a Blind-ROP-style hijack attempt
    /// against the worker's current image).
    Probe,
}

/// One scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Target worker index, `< Schedule::workers`.
    pub worker: u32,
    /// The operation.
    pub op: Op,
}

/// A deterministic fleet input: the worker count plus the full event
/// sequence. Event index in `events` is the schedule index used by the
/// monitor log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Number of fleet workers the schedule addresses.
    pub workers: u32,
    /// The interleaved request/probe stream.
    pub events: Vec<Event>,
}

impl Schedule {
    /// Generates a schedule of `len` events over `workers` workers:
    /// each event picks a uniform worker and is an attack probe with
    /// probability `probe_per_mille`/1000, otherwise a benign request
    /// with a small random payload.
    pub fn generate(seed: u64, workers: u32, len: usize, probe_per_mille: u32) -> Schedule {
        assert!(workers > 0, "schedule needs at least one worker");
        let mut rng = SmallRng::seed_from_u64(seed);
        let events = (0..len)
            .map(|_| {
                let worker = rng.gen_range(0..workers);
                let op = if rng.gen_range(0..1000) < probe_per_mille {
                    Op::Probe
                } else {
                    Op::Request {
                        payload: rng.gen_range(0..997),
                    }
                };
                Event { worker, op }
            })
            .collect();
        Schedule { workers, events }
    }

    /// The same schedule with every probe removed (requests keep their
    /// relative order): the probe-free baseline used to measure
    /// throughput degradation under attack load.
    pub fn requests_only(&self) -> Schedule {
        Schedule {
            workers: self.workers,
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| matches!(e.op, Op::Request { .. }))
                .collect(),
        }
    }

    /// Number of probe events.
    pub fn probe_count(&self) -> u64 {
        self.events.iter().filter(|e| e.op == Op::Probe).count() as u64
    }

    /// Serializes to the on-disk replay format:
    ///
    /// ```text
    /// # r2c-serve schedule v1
    /// workers 2
    /// r 0 17      # request to worker 0, payload 17
    /// p 1         # probe against worker 1
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("# r2c-serve schedule v1\n");
        out.push_str(&format!("workers {}\n", self.workers));
        for e in &self.events {
            match e.op {
                Op::Request { payload } => out.push_str(&format!("r {} {}\n", e.worker, payload)),
                Op::Probe => out.push_str(&format!("p {}\n", e.worker)),
            }
        }
        out
    }

    /// Parses the format produced by [`Schedule::to_text`]. Blank lines
    /// and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut workers: Option<u32> = None;
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kw = parts.next().unwrap();
            let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
            let mut field = |name: &str| -> Result<u64, String> {
                parts
                    .next()
                    .ok_or_else(|| err(&format!("missing {name}")))?
                    .parse::<u64>()
                    .map_err(|_| err(&format!("bad {name}")))
            };
            match kw {
                "workers" => workers = Some(field("count")? as u32),
                "r" => {
                    let worker = field("worker")? as u32;
                    let payload = field("payload")?;
                    events.push(Event {
                        worker,
                        op: Op::Request { payload },
                    });
                }
                "p" => {
                    let worker = field("worker")? as u32;
                    events.push(Event {
                        worker,
                        op: Op::Probe,
                    });
                }
                other => return Err(err(&format!("unknown keyword {other:?}"))),
            }
        }
        let workers = workers.ok_or("missing `workers` line")?;
        if workers == 0 {
            return Err("workers must be > 0".into());
        }
        if let Some(e) = events.iter().find(|e| e.worker >= workers) {
            return Err(format!(
                "event targets worker {} but only {workers} exist",
                e.worker
            ));
        }
        Ok(Schedule { workers, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = Schedule::generate(7, 4, 100, 150);
        let b = Schedule::generate(7, 4, 100, 150);
        assert_eq!(a, b);
        assert!(a.probe_count() > 0);
        assert!(a.probe_count() < 100);
        assert!(a.events.iter().all(|e| e.worker < 4));
    }

    #[test]
    fn text_roundtrip() {
        let s = Schedule::generate(99, 3, 64, 300);
        let parsed = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("r 0 1\n").is_err(), "missing workers");
        assert!(Schedule::parse("workers 1\nr 3 1\n").is_err(), "bad worker");
        assert!(Schedule::parse("workers 1\nq 0\n").is_err(), "bad keyword");
        assert!(Schedule::parse("workers 0\n").is_err(), "zero workers");
    }

    #[test]
    fn requests_only_strips_probes() {
        let s = Schedule::generate(3, 2, 50, 500);
        let r = s.requests_only();
        assert_eq!(r.probe_count(), 0);
        assert_eq!(
            r.events.len() as u64,
            s.events.len() as u64 - s.probe_count()
        );
    }
}
