//! Seeded request/probe schedules with a record-replay text format.
//!
//! A [`Schedule`] is the complete, deterministic input of a fleet run:
//! an ordered list of events, each targeting one worker with either a
//! benign request or an attack probe. Schedules are generated from a
//! seed, and can be serialized to a small line-oriented on-disk format
//! so that interesting runs can be checked in and replayed bit-exactly
//! (the replay tests under `tests/schedules/` pin the full monitor
//! event log for two exemplar schedules).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a scheduled event asks a worker to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// A benign service request with an opaque payload argument.
    Request {
        /// Argument passed to the service function.
        payload: u64,
    },
    /// One attack-probe session step (a Blind-ROP-style hijack attempt
    /// against the worker's current image).
    Probe,
}

/// One scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Target worker index, `< Schedule::workers`.
    pub worker: u32,
    /// The operation.
    pub op: Op,
    /// Arrival time in simulated guest cycles since run start. `0` for
    /// closed-loop schedules ([`Schedule::generate`] and pre-open-loop
    /// replay files), where events run back-to-back; open-loop
    /// schedules ([`Schedule::generate_open_loop`]) draw Poisson
    /// arrivals, and a worker whose simulated clock lags an arrival
    /// charges the difference as queueing latency.
    pub at: u64,
}

/// A deterministic fleet input: the worker count plus the full event
/// sequence. Event index in `events` is the schedule index used by the
/// monitor log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Number of fleet workers the schedule addresses.
    pub workers: u32,
    /// The interleaved request/probe stream.
    pub events: Vec<Event>,
}

impl Schedule {
    /// Generates a schedule of `len` events over `workers` workers:
    /// each event picks a uniform worker and is an attack probe with
    /// probability `probe_per_mille`/1000, otherwise a benign request
    /// with a small random payload.
    pub fn generate(seed: u64, workers: u32, len: usize, probe_per_mille: u32) -> Schedule {
        assert!(workers > 0, "schedule needs at least one worker");
        let mut rng = SmallRng::seed_from_u64(seed);
        let events = (0..len)
            .map(|_| {
                let worker = rng.gen_range(0..workers);
                let op = if rng.gen_range(0..1000) < probe_per_mille {
                    Op::Probe
                } else {
                    Op::Request {
                        payload: rng.gen_range(0..997),
                    }
                };
                Event { worker, op, at: 0 }
            })
            .collect();
        Schedule { workers, events }
    }

    /// Generates an *open-loop* schedule: arrivals form a Poisson
    /// process with mean inter-arrival `mean_gap_cycles` (exponential
    /// gaps, accumulated in simulated guest cycles), each event picks a
    /// uniform worker, and probes arrive with probability
    /// `probe_per_mille`/1000 like [`Schedule::generate`]. Unlike the
    /// closed-loop generator, requests do not wait for the previous
    /// response: a slow or restarting worker accumulates a backlog, and
    /// the per-request latency percentiles measure exactly that
    /// queueing.
    pub fn generate_open_loop(
        seed: u64,
        workers: u32,
        len: usize,
        probe_per_mille: u32,
        mean_gap_cycles: u64,
    ) -> Schedule {
        assert!(workers > 0, "schedule needs at least one worker");
        assert!(mean_gap_cycles > 0, "open-loop schedule needs a mean gap");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t: u64 = 0;
        let events = (0..len)
            .map(|_| {
                // Exponential inter-arrival via inversion sampling;
                // `1.0 - u` keeps the argument of ln strictly positive.
                let u: f64 = rng.gen::<f64>();
                let gap = -(1.0 - u).ln() * mean_gap_cycles as f64;
                t = t.saturating_add(gap as u64);
                let worker = rng.gen_range(0..workers);
                let op = if rng.gen_range(0..1000) < probe_per_mille {
                    Op::Probe
                } else {
                    Op::Request {
                        payload: rng.gen_range(0..997),
                    }
                };
                Event { worker, op, at: t }
            })
            .collect();
        Schedule { workers, events }
    }

    /// The same schedule with every probe removed (requests keep their
    /// relative order): the probe-free baseline used to measure
    /// throughput degradation under attack load.
    pub fn requests_only(&self) -> Schedule {
        Schedule {
            workers: self.workers,
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| matches!(e.op, Op::Request { .. }))
                .collect(),
        }
    }

    /// Number of probe events.
    pub fn probe_count(&self) -> u64 {
        self.events.iter().filter(|e| e.op == Op::Probe).count() as u64
    }

    /// Serializes to the on-disk replay format:
    ///
    /// ```text
    /// # r2c-serve schedule v1
    /// workers 2
    /// r 0 17      # request to worker 0, payload 17
    /// p 1         # probe against worker 1
    /// r 1 3 9000  # open-loop: arrival at simulated cycle 9000
    /// ```
    ///
    /// The trailing arrival-time field is omitted when zero, so
    /// closed-loop schedules serialize exactly as they did before the
    /// open-loop generator existed (the checked-in replay goldens keep
    /// parsing and re-serializing byte-identically).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# r2c-serve schedule v1\n");
        out.push_str(&format!("workers {}\n", self.workers));
        for e in &self.events {
            match e.op {
                Op::Request { payload } => out.push_str(&format!("r {} {}", e.worker, payload)),
                Op::Probe => out.push_str(&format!("p {}", e.worker)),
            }
            if e.at != 0 {
                out.push_str(&format!(" {}", e.at));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the format produced by [`Schedule::to_text`]. Blank lines
    /// and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut workers: Option<u32> = None;
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kw = parts.next().unwrap();
            let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
            let mut field = |name: &str| -> Result<u64, String> {
                parts
                    .next()
                    .ok_or_else(|| err(&format!("missing {name}")))?
                    .parse::<u64>()
                    .map_err(|_| err(&format!("bad {name}")))
            };
            match kw {
                "workers" => workers = Some(field("count")? as u32),
                "r" => {
                    let worker = field("worker")? as u32;
                    let payload = field("payload")?;
                    let at = opt_field(&mut parts, &err, "arrival")?;
                    events.push(Event {
                        worker,
                        op: Op::Request { payload },
                        at,
                    });
                }
                "p" => {
                    let worker = field("worker")? as u32;
                    let at = opt_field(&mut parts, &err, "arrival")?;
                    events.push(Event {
                        worker,
                        op: Op::Probe,
                        at,
                    });
                }
                other => return Err(err(&format!("unknown keyword {other:?}"))),
            }
        }
        let workers = workers.ok_or("missing `workers` line")?;
        if workers == 0 {
            return Err("workers must be > 0".into());
        }
        if let Some(e) = events.iter().find(|e| e.worker >= workers) {
            return Err(format!(
                "event targets worker {} but only {workers} exist",
                e.worker
            ));
        }
        Ok(Schedule { workers, events })
    }
}

/// Parses the optional trailing arrival-time field of an `r`/`p` line;
/// absent means 0 (a pre-open-loop closed-loop line).
fn opt_field(
    parts: &mut std::str::SplitWhitespace<'_>,
    err: &impl Fn(&str) -> String,
    name: &str,
) -> Result<u64, String> {
    match parts.next() {
        None => Ok(0),
        Some(s) => s.parse::<u64>().map_err(|_| err(&format!("bad {name}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = Schedule::generate(7, 4, 100, 150);
        let b = Schedule::generate(7, 4, 100, 150);
        assert_eq!(a, b);
        assert!(a.probe_count() > 0);
        assert!(a.probe_count() < 100);
        assert!(a.events.iter().all(|e| e.worker < 4));
    }

    #[test]
    fn text_roundtrip() {
        let s = Schedule::generate(99, 3, 64, 300);
        let parsed = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("r 0 1\n").is_err(), "missing workers");
        assert!(Schedule::parse("workers 1\nr 3 1\n").is_err(), "bad worker");
        assert!(Schedule::parse("workers 1\nq 0\n").is_err(), "bad keyword");
        assert!(Schedule::parse("workers 0\n").is_err(), "zero workers");
    }

    #[test]
    fn open_loop_arrivals_are_monotone_and_deterministic() {
        let a = Schedule::generate_open_loop(11, 8, 200, 100, 50_000);
        let b = Schedule::generate_open_loop(11, 8, 200, 100, 50_000);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events.last().unwrap().at > 0);
        // The empirical mean gap should land near the configured mean
        // (exponential with n=200: a loose 2x window avoids flakes).
        let span = a.events.last().unwrap().at - a.events[0].at;
        let mean = span / (a.events.len() as u64 - 1);
        assert!(
            (25_000..100_000).contains(&mean),
            "empirical mean gap {mean} implausible for 50k target"
        );
    }

    #[test]
    fn open_loop_text_roundtrip() {
        let s = Schedule::generate_open_loop(5, 4, 64, 250, 10_000);
        let parsed = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn closed_loop_text_has_no_arrival_field() {
        let s = Schedule::generate(99, 3, 64, 300);
        for line in s.to_text().lines().skip(2) {
            let n = line.split_whitespace().count();
            assert!(n == 2 || n == 3, "unexpected field count in {line:?}");
        }
        // And an explicit zero parses back to the same closed-loop text.
        let roundtrip = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(roundtrip.to_text(), s.to_text());
    }

    #[test]
    fn parse_rejects_bad_arrival() {
        assert!(Schedule::parse("workers 1\nr 0 1 xyz\n").is_err());
        assert!(Schedule::parse("workers 1\np 0 xyz\n").is_err());
    }

    #[test]
    fn requests_only_strips_probes() {
        let s = Schedule::generate(3, 2, 50, 500);
        let r = s.requests_only();
        assert_eq!(r.probe_count(), 0);
        assert_eq!(
            r.events.len() as u64,
            s.events.len() as u64 - s.probe_count()
        );
    }
}
