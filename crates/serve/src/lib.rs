//! # r2c-serve — the reactive serving fleet
//!
//! Closes the paper's detect → react → re-diversify loop (§4.1, §7.3)
//! as a deterministic serving-fleet simulation: each worker is a
//! [`r2c_vm::Vm`] running its own diversified variant, a seeded
//! [`Schedule`] interleaves benign requests with attack-probe sessions
//! built on the `r2c-attacks` threat model, and a monitor reacts to
//! worker deaths under a configurable [`ReactionPolicy`]:
//!
//! | policy | restart image | models |
//! |---|---|---|
//! | [`ReactionPolicy::Ignore`] | same | no monitoring at all |
//! | [`ReactionPolicy::RestartSameImage`] | same | crash-restarting pool (Blind-ROP-vulnerable, §4.1) |
//! | [`ReactionPolicy::RespawnFreshVariant`] | fresh seed | load-time re-randomization (§7.3) |
//!
//! Fresh-variant respawns draw from the warm
//! [`r2c_core::pool::VariantPool`] so re-randomization is
//! production-plausible (background pre-compilation, bounded cache;
//! the `report_serve` benchmark compares warm and cold respawn
//! latency). Fleet runs are bit-identical between serial and parallel
//! execution for a fixed seed — see the determinism contract in
//! [`fleet`]'s module docs — and schedules serialize to a small text
//! format for record-replay regression tests.

pub mod fleet;
pub mod schedule;

pub use fleet::{
    run_fleet, variant_seed, ExecMode, FleetConfig, FleetMetrics, FleetRun, ReactionPolicy,
    RespawnLatency,
};
pub use schedule::{Event, Op, Schedule};
