//! The serving fleet: workers, the monitor, and reaction policies.
//!
//! A fleet is a set of independent workers, each a [`Vm`] running its
//! own diversified variant of the served module. A [`Schedule`] drives
//! the fleet: benign requests call the service function, attack-probe
//! events run one step of a Blind-ROP-style campaign against the
//! targeted worker (reusing the `r2c-attacks` threat model: hijack a
//! candidate address with the magic argument, watch the output for the
//! privileged marker). The **monitor** observes every worker death and
//! applies the configured [`ReactionPolicy`]:
//!
//! * [`ReactionPolicy::Ignore`] — detections are discarded; the plain
//!   supervisor restarts the worker on the same image.
//! * [`ReactionPolicy::RestartSameImage`] — the monitor reacts (the
//!   restart shows up as a reaction in the event log) but restarts on
//!   the **same** image: the Blind-ROP-vulnerable pool of paper §4.1.
//! * [`ReactionPolicy::RespawnFreshVariant`] — load-time
//!   re-randomization (§7.3): every restart boots a freshly
//!   diversified variant, served warm from the [`VariantPool`] when
//!   background pre-compilation won the race.
//!
//! ## Determinism contract
//!
//! Workers share no guest-visible state, every variant seed is derived
//! from `(fleet_seed, worker, generation)`, and warm-vs-cold pool
//! outcomes change only host-side latency. Therefore the monitor event
//! log and [`FleetMetrics`] of a run are a pure function of
//! `(module, FleetConfig, Schedule)` — [`ExecMode::Parallel`] must
//! produce bit-identical logs to [`ExecMode::Serial`], which the tests
//! and the `report_serve --smoke` CI step enforce.

use std::time::Duration;

use r2c_attacks::victim::{MAGIC_ARG, PRIV_MARKER};
use r2c_core::pool::{TakeKind, VariantPool};
use r2c_core::{R2cCompiler, R2cConfig};
use r2c_ir::Module;
use r2c_vm::image::Region;
use r2c_vm::{ExitStatus, Image, MachineKind, VAddr, Vm, VmConfig};

use crate::schedule::{Event, Op, Schedule};

/// What the monitor does when a worker dies (crash or detection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReactionPolicy {
    /// No monitor: the supervisor silently restarts on the same image.
    Ignore,
    /// Monitor reacts, but the pool restarts workers on the same image
    /// (crash-restarting pool, vulnerable to Blind ROP — §4.1).
    RestartSameImage,
    /// Monitor respawns a freshly diversified variant (load-time
    /// re-randomization — §7.3).
    RespawnFreshVariant,
}

impl ReactionPolicy {
    /// Stable short name used in logs, JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            ReactionPolicy::Ignore => "ignore",
            ReactionPolicy::RestartSameImage => "restart-same",
            ReactionPolicy::RespawnFreshVariant => "respawn-fresh",
        }
    }
}

/// Serial or parallel fleet execution (guest-identical by contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Workers run one after another on the calling thread.
    Serial,
    /// A fixed pool of host threads work-steals shards of
    /// [`FleetConfig::shard_size`] workers each. Scales to 1000+
    /// workers where the previous thread-per-worker design exhausted
    /// host threads.
    Parallel,
}

/// Fleet configuration.
#[derive(Clone)]
pub struct FleetConfig {
    /// Base build configuration; the seed is overridden per variant.
    pub build: R2cConfig,
    /// Monitor reaction policy.
    pub policy: ReactionPolicy,
    /// Root of the per-`(worker, generation)` variant-seed derivation.
    pub fleet_seed: u64,
    /// Function called per benign request; the image entry if `None`.
    pub service: Option<String>,
    /// Argument attack probes smuggle into hijacked calls.
    pub probe_arg: u64,
    /// Output pair that proves a probe compromised the worker.
    pub compromise_marker: (i64, i64),
    /// Cost model for all workers.
    pub machine: MachineKind,
    /// Per-event instruction watchdog (requests and probes).
    pub event_budget: u64,
    /// Instruction budget for a worker boot (constructors + warmup).
    pub boot_budget: u64,
    /// Background compile threads in the variant pool (0 = no
    /// background pre-compilation; every respawn compiles cold).
    pub pool_threads: usize,
    /// Bounded capacity of the variant pool's ready cache.
    pub pool_capacity: usize,
    /// Workers per work-stealing shard in [`ExecMode::Parallel`]. Small
    /// enough to balance load, large enough to amortize the steal.
    pub shard_size: usize,
    /// Debug knob: boot and reset workers with copy-on-write page
    /// sharing disabled (the pre-CoW deep-copy path). Guest-visible
    /// behavior and monitor logs must be bit-identical either way —
    /// `report_fleet` proves it per seed. Defaults from `R2C_NO_COW`
    /// like [`VmConfig::new`].
    pub no_cow: bool,
}

impl FleetConfig {
    /// Defaults tuned for the `r2c-attacks` victim served by
    /// `handler`: probes carry [`MAGIC_ARG`] and a compromise is
    /// `privileged` printing [`PRIV_MARKER`] followed by it.
    pub fn new(build: R2cConfig, policy: ReactionPolicy) -> FleetConfig {
        FleetConfig {
            build,
            policy,
            fleet_seed: 0,
            service: Some("handler".into()),
            probe_arg: MAGIC_ARG as u64,
            compromise_marker: (PRIV_MARKER, MAGIC_ARG),
            machine: MachineKind::EpycRome,
            event_budget: 2_000_000,
            boot_budget: 2_000_000_000,
            pool_threads: 2,
            pool_capacity: 8,
            shard_size: 8,
            no_cow: std::env::var_os("R2C_NO_COW").is_some(),
        }
    }

    /// Scales the variant pool for a fleet of `workers` workers: under
    /// a respawn storm every worker can have a respawn in flight, so
    /// the ready cache grows to hold one variant per 8 workers (at
    /// least the default 8) and the background compile pool gains a
    /// thread per 256 workers. Latency only — determinism is
    /// unaffected by pool sizing.
    pub fn sized_for(mut self, workers: u32) -> FleetConfig {
        self.pool_capacity = self.pool_capacity.max((workers as usize).div_ceil(8));
        self.pool_threads = self.pool_threads.max((workers as usize).div_ceil(256));
        self
    }

    /// Serve via the image entry point instead of a named function
    /// (generated fuzz modules have no `handler`).
    pub fn entry_service(mut self) -> FleetConfig {
        self.service = None;
        self
    }
}

/// Deterministic per-run counters (bit-identical serial vs. parallel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Benign requests scheduled.
    pub requests: u64,
    /// Requests served to a clean exit.
    pub served: u64,
    /// Requests dropped because the worker was restarting.
    pub dropped: u64,
    /// Requests that faulted (corrupted worker state).
    pub request_faults: u64,
    /// Simulated cycles spent serving successful requests.
    pub request_cycles: u64,
    /// Probe events executed.
    pub probes: u64,
    /// Probes that crashed the worker without detection.
    pub probe_crashes: u64,
    /// Probes caught by a booby trap or guard page.
    pub detections: u64,
    /// Probes that ran the privileged function with the magic argument.
    pub compromises: u64,
    /// Same-image worker restarts (Ignore / RestartSameImage).
    pub restarts: u64,
    /// Fresh-variant respawns (RespawnFreshVariant).
    pub respawns: u64,
    /// 1-based ordinal, among probe events in schedule order, of the
    /// first compromising probe. `None` when the fleet was never
    /// compromised — the probes-to-compromise of the golden table.
    pub first_compromise_probe: Option<u64>,
}

impl FleetMetrics {
    /// Fraction of scheduled requests that were served.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        self.served as f64 / self.requests as f64
    }

    /// Mean simulated cycles per served request.
    pub fn cycles_per_request(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.request_cycles as f64 / self.served as f64
    }
}

/// Host-side latency of one fresh-variant respawn.
#[derive(Clone, Copy, Debug)]
pub struct RespawnLatency {
    /// Worker that respawned.
    pub worker: u32,
    /// Generation booted.
    pub generation: u32,
    /// Warm cache hit, in-flight wait, or cold inline compile.
    pub kind: TakeKind,
    /// Wall-clock time to obtain the image.
    pub latency: Duration,
}

/// Result of a fleet run.
pub struct FleetRun {
    /// The monitor event log: per-worker boot lines (worker order)
    /// followed by per-event lines in schedule order. Bit-identical
    /// between [`ExecMode::Serial`] and [`ExecMode::Parallel`].
    pub log: Vec<String>,
    /// Deterministic counters.
    pub metrics: FleetMetrics,
    /// Per-served-request latency in simulated cycles (queueing behind
    /// the worker's backlog + service), in schedule order. Deterministic
    /// — a pure function of guest cycles and arrival times, so serial
    /// and parallel runs produce identical vectors. All-zero queueing
    /// for closed-loop schedules (`at == 0` means latency equals the
    /// worker-clock completion time and only relative comparisons are
    /// meaningful); percentile reporting targets open-loop schedules.
    pub request_latencies: Vec<u64>,
    /// Host-side: image-acquisition latency of every fresh-variant
    /// respawn (warm and cold).
    pub respawn_latencies: Vec<RespawnLatency>,
    /// Host-side: wall-clock compile time of each worker's initial
    /// (generation-0) variant — the cold-boot reference.
    pub boot_compiles: Vec<Duration>,
}

/// splitmix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The diversification seed of `(worker, generation)` under
/// `fleet_seed`. Pure function: parallel and serial runs, and the
/// background pool, all agree on which variant a respawn boots.
pub fn variant_seed(fleet_seed: u64, worker: u32, generation: u32) -> u64 {
    mix(fleet_seed ^ mix(((worker as u64) << 32) | (generation as u64 + 1)))
}

/// Why a worker died (drives the monitor's reaction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeathCause {
    Detected,
    Crashed,
}

struct Worker<'a> {
    id: u32,
    fc: &'a FleetConfig,
    module: &'a Module,
    pool: Option<&'a VariantPool>,
    image: Image,
    vm: Vm,
    generation: u32,
    dead: Option<DeathCause>,
    service_addr: Option<VAddr>,
    attack_start: Option<VAddr>,
    attack_step: i64,
    checked_output: usize,
    boot_line: String,
    entries: Vec<(u64, String)>,
    metrics: FleetMetrics,
    first_compromise_idx: Option<u64>,
    respawn_latencies: Vec<RespawnLatency>,
    boot_compile: Duration,
    /// Simulated-cycle clock: when this worker finishes its current
    /// backlog. Advanced by boots, restarts, requests and probes; an
    /// event arriving at `at > clock` idles the worker forward.
    clock: u64,
    /// `(event idx, latency)` of every served request, in simulated
    /// cycles from arrival to completion.
    latencies: Vec<(u64, u64)>,
}

/// Worker VM config: the fleet's machine model plus the CoW toggle.
fn vm_config(fc: &FleetConfig) -> VmConfig {
    VmConfig {
        no_cow: fc.no_cow,
        ..VmConfig::new(fc.machine.config())
    }
}

impl<'a> Worker<'a> {
    /// Compiles generation 0, boots it, and records the boot line.
    fn spawn(
        id: u32,
        module: &'a Module,
        fc: &'a FleetConfig,
        pool: Option<&'a VariantPool>,
    ) -> Worker<'a> {
        let seed = variant_seed(fc.fleet_seed, id, 0);
        let t0 = std::time::Instant::now();
        let image = R2cCompiler::new(fc.build.with_seed(seed))
            .build(module)
            .expect("fleet variant must compile");
        let boot_compile = t0.elapsed();
        let mut w = Worker {
            id,
            fc,
            module,
            pool,
            vm: Vm::new(&image, vm_config(fc)),
            image,
            generation: 0,
            dead: None,
            service_addr: None,
            attack_start: None,
            attack_step: 0,
            checked_output: 0,
            boot_line: String::new(),
            entries: Vec::new(),
            metrics: FleetMetrics::default(),
            first_compromise_idx: None,
            respawn_latencies: Vec::new(),
            boot_compile,
            clock: 0,
            latencies: Vec::new(),
        };
        let status = w.boot();
        w.boot_line = format!("boot w{id} g0 seed={seed} status={status}");
        w
    }

    /// Runs constructors + entry as worker warmup; resolves the service
    /// function against the (possibly fresh) image.
    fn boot(&mut self) -> String {
        self.service_addr = match &self.fc.service {
            Some(name) => self.image.symbol(name).map(|s| s.addr),
            None => None,
        };
        self.checked_output = 0;
        self.vm.set_insn_budget(self.fc.boot_budget);
        let before = self.vm.stats().cycles;
        let out = self.vm.run();
        // Booting occupies the worker: requests arriving meanwhile
        // queue behind it (restart windows show up in tail latency).
        self.clock += out.stats.cycles - before;
        // Boot output is not request output; skip it when scanning for
        // compromise markers.
        self.checked_output = self.vm.output.len();
        match out.status {
            ExitStatus::Exited(_) => "ok".into(),
            ExitStatus::Faulted(f) => format!("fault:{f:?}"),
            ExitStatus::Probed => "probed".into(),
        }
    }

    /// Monitor/supervisor reaction to a dead worker, performed when the
    /// scheduler next touches it (the restart window).
    fn restart(&mut self, idx: u64) {
        let cause = self.dead.take().expect("restart of a live worker");
        self.generation += 1;
        let g = self.generation;
        let line;
        match self.fc.policy {
            ReactionPolicy::Ignore | ReactionPolicy::RestartSameImage => {
                self.vm.reset_to_image();
                self.metrics.restarts += 1;
                let status = self.boot();
                let kind = if self.fc.policy == ReactionPolicy::Ignore {
                    // Plain supervisor restart: the monitor saw nothing.
                    "restart"
                } else {
                    "react restart-same"
                };
                line = format!(
                    "#{idx} w{} {kind} g{g} cause={cause:?} boot={status}",
                    self.id
                );
            }
            ReactionPolicy::RespawnFreshVariant => {
                let seed = variant_seed(self.fc.fleet_seed, self.id, g);
                let (image, kind, latency) = match self.pool {
                    Some(pool) => {
                        let v = pool.take(seed);
                        // Announce the *next* respawn so the background
                        // threads stay ahead of the monitor.
                        pool.prefetch(variant_seed(self.fc.fleet_seed, self.id, g + 1));
                        (v.image, v.kind, v.latency)
                    }
                    None => {
                        let t0 = std::time::Instant::now();
                        let image = R2cCompiler::new(self.fc.build.with_seed(seed))
                            .build(self.module)
                            .expect("fleet variant must compile");
                        (image, TakeKind::Cold, t0.elapsed())
                    }
                };
                self.respawn_latencies.push(RespawnLatency {
                    worker: self.id,
                    generation: g,
                    kind,
                    latency,
                });
                self.vm = Vm::new(&image, vm_config(self.fc));
                self.image = image;
                self.metrics.respawns += 1;
                let status = self.boot();
                line = format!(
                    "#{idx} w{} react respawn-fresh g{g} seed={seed} cause={cause:?} boot={status}",
                    self.id
                );
            }
        }
        self.entries.push((idx, line));
    }

    /// True if the compromise marker appeared in output produced since
    /// the last check.
    fn compromised_since(&mut self) -> bool {
        let (m0, m1) = self.fc.compromise_marker;
        let start = self.checked_output.saturating_sub(1);
        let hit = self.vm.output[start..].windows(2).any(|w| w == [m0, m1]);
        self.checked_output = self.vm.output.len();
        hit
    }

    /// The attacker's scan anchor: a code pointer leaked from the most
    /// recent stack-probe snapshot (or the text base as a fallback).
    /// Leaked once per campaign — restarts do not refresh it, which is
    /// exactly why same-image restarts are vulnerable and fresh-variant
    /// respawns are not.
    fn ensure_attack_start(&mut self) -> VAddr {
        if let Some(s) = self.attack_start {
            return s;
        }
        let layout = self.image.layout;
        let start = self
            .vm
            .probes
            .last()
            .and_then(|snap| {
                snap.bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .find(|&w| layout.region_of(w) == Some(Region::Text))
            })
            .unwrap_or(layout.text_base);
        self.attack_start = Some(start);
        start
    }

    fn handle(&mut self, idx: u64, ev: Event) {
        if self.dead.is_some() {
            self.restart(idx);
            if let Op::Request { .. } = ev.op {
                // The restart window swallows this request.
                self.metrics.requests += 1;
                self.metrics.dropped += 1;
                self.entries.push((
                    idx,
                    format!("#{idx} w{} g{} request dropped", self.id, self.generation),
                ));
                return;
            }
        }
        let g = self.generation;
        let id = self.id;
        // Open-loop clock: the event starts when the worker drains its
        // backlog or when it arrives, whichever is later.
        let begin = self.clock.max(ev.at);
        self.vm
            .set_insn_budget(self.vm.stats().instructions + self.fc.event_budget);
        match ev.op {
            Op::Request { payload } => {
                self.metrics.requests += 1;
                let target = self.service_addr.unwrap_or(self.image.entry);
                let before = self.vm.stats().cycles;
                let out = self.vm.call(target, &[payload]);
                let cycles = out.stats.cycles - before;
                self.clock = begin + cycles;
                match out.status {
                    ExitStatus::Exited(_) => {
                        self.metrics.served += 1;
                        self.metrics.request_cycles += cycles;
                        self.latencies.push((idx, self.clock - ev.at));
                        self.entries.push((
                            idx,
                            format!("#{idx} w{id} g{g} request served cycles={cycles}"),
                        ));
                        // A benign request must never fire the marker;
                        // keep the scan window bounded anyway.
                        self.checked_output = self.vm.output.len();
                    }
                    ExitStatus::Faulted(f) => {
                        self.metrics.request_faults += 1;
                        self.dead = Some(if f.is_detection() {
                            DeathCause::Detected
                        } else {
                            DeathCause::Crashed
                        });
                        self.entries
                            .push((idx, format!("#{idx} w{id} g{g} request fault={f:?}")));
                    }
                    ExitStatus::Probed => unreachable!("break_on_probe is off"),
                }
            }
            Op::Probe => {
                self.metrics.probes += 1;
                let start = self.ensure_attack_start();
                let candidate = (start & !15).wrapping_add_signed(16 * self.attack_step);
                self.attack_step = if self.attack_step >= 0 {
                    -(self.attack_step + 1)
                } else {
                    -self.attack_step
                };
                let before = self.vm.stats().cycles;
                let out = self.vm.call(candidate, &[self.fc.probe_arg]);
                // Probes occupy the worker too — requests queued behind
                // an attack session pay for it in the tail.
                self.clock = begin + (out.stats.cycles - before);
                let outcome = match out.status {
                    ExitStatus::Exited(_) if self.compromised_since() => {
                        self.metrics.compromises += 1;
                        self.first_compromise_idx.get_or_insert(idx);
                        "compromised".to_string()
                    }
                    ExitStatus::Exited(_) => {
                        // Survived without the marker: nothing learned.
                        "miss".to_string()
                    }
                    ExitStatus::Faulted(f) if f.is_detection() => {
                        self.metrics.detections += 1;
                        self.dead = Some(DeathCause::Detected);
                        format!("detected fault={f:?}")
                    }
                    ExitStatus::Faulted(f) => {
                        self.metrics.probe_crashes += 1;
                        self.dead = Some(DeathCause::Crashed);
                        format!("crash fault={f:?}")
                    }
                    ExitStatus::Probed => unreachable!("break_on_probe is off"),
                };
                self.entries.push((
                    idx,
                    format!("#{idx} w{id} g{g} probe target={candidate:#x} outcome={outcome}"),
                ));
            }
        }
    }
}

/// Runs `schedule` against a fleet serving `module` and returns the
/// merged monitor log plus metrics. See the module docs for the
/// determinism contract between the two [`ExecMode`]s.
pub fn run_fleet(
    module: &Module,
    fc: &FleetConfig,
    schedule: &Schedule,
    mode: ExecMode,
) -> FleetRun {
    let pool = (fc.policy == ReactionPolicy::RespawnFreshVariant && fc.pool_threads > 0)
        .then(|| VariantPool::new(module, fc.build, fc.pool_capacity, fc.pool_threads));
    let pool = pool.as_ref();

    // Partition the schedule per worker; workers share nothing, so each
    // can run its slice independently in any interleaving.
    let mut per_worker: Vec<Vec<(u64, Event)>> = vec![Vec::new(); schedule.workers as usize];
    for (i, e) in schedule.events.iter().enumerate() {
        per_worker[e.worker as usize].push((i as u64, *e));
    }
    // Announce every worker's first respawn before the run starts.
    if let Some(p) = pool {
        for w in 0..schedule.workers {
            p.prefetch(variant_seed(fc.fleet_seed, w, 1));
        }
    }

    let run_one = |id: u32, events: &[(u64, Event)]| -> Worker<'_> {
        let mut w = Worker::spawn(id, module, fc, pool);
        for &(idx, ev) in events {
            w.handle(idx, ev);
        }
        w
    };

    let workers: Vec<Worker<'_>> = match mode {
        ExecMode::Serial => per_worker
            .iter()
            .enumerate()
            .map(|(id, evs)| run_one(id as u32, evs))
            .collect(),
        ExecMode::Parallel => {
            // Work stealing over shards: a 1000-worker fleet cannot
            // afford a host thread per worker, so a fixed pool of
            // threads claims `shard_size`-worker shards off a shared
            // cursor. Workers share nothing, so any thread may run any
            // shard; results land in per-shard slots and are
            // reassembled in worker order, keeping the merged log
            // bit-identical to the serial run.
            use std::sync::atomic::{AtomicUsize, Ordering};
            let shard = fc.shard_size.max(1);
            let nshards = per_worker.len().div_ceil(shard);
            let cursor = AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<Option<Vec<Worker<'_>>>>> =
                (0..nshards).map(|_| std::sync::Mutex::new(None)).collect();
            let nthreads = std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(nshards.max(1));
            std::thread::scope(|s| {
                for _ in 0..nthreads {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= nshards {
                            break;
                        }
                        let lo = i * shard;
                        let hi = (lo + shard).min(per_worker.len());
                        let ws: Vec<Worker<'_>> = (lo..hi)
                            .map(|id| run_one(id as u32, &per_worker[id]))
                            .collect();
                        *slots[i].lock().unwrap() = Some(ws);
                    });
                }
            });
            slots
                .into_iter()
                .flat_map(|slot| {
                    slot.into_inner()
                        .unwrap()
                        .expect("every shard claimed and completed")
                })
                .collect()
        }
    };

    // Merge: boot header in worker order, then event lines in schedule
    // order (indices are disjoint across workers).
    let mut log: Vec<String> = workers.iter().map(|w| w.boot_line.clone()).collect();
    let mut entries: Vec<(u64, String)> = Vec::new();
    let mut metrics = FleetMetrics::default();
    let mut first_idx: Option<u64> = None;
    let mut respawn_latencies = Vec::new();
    let mut boot_compiles = Vec::new();
    let mut latencies: Vec<(u64, u64)> = Vec::new();
    for w in workers {
        entries.extend(w.entries);
        latencies.extend(w.latencies);
        metrics.requests += w.metrics.requests;
        metrics.served += w.metrics.served;
        metrics.dropped += w.metrics.dropped;
        metrics.request_faults += w.metrics.request_faults;
        metrics.request_cycles += w.metrics.request_cycles;
        metrics.probes += w.metrics.probes;
        metrics.probe_crashes += w.metrics.probe_crashes;
        metrics.detections += w.metrics.detections;
        metrics.compromises += w.metrics.compromises;
        metrics.restarts += w.metrics.restarts;
        metrics.respawns += w.metrics.respawns;
        if let Some(i) = w.first_compromise_idx {
            first_idx = Some(first_idx.map_or(i, |j: u64| j.min(i)));
        }
        respawn_latencies.extend(w.respawn_latencies);
        boot_compiles.push(w.boot_compile);
    }
    entries.sort_by_key(|(i, _)| *i);
    log.extend(entries.into_iter().map(|(_, line)| line));
    latencies.sort_by_key(|(i, _)| *i);

    // Probes-to-compromise: the ordinal of the compromising probe among
    // all probe events, counted in schedule order.
    metrics.first_compromise_probe = first_idx.map(|i| {
        schedule.events[..=i as usize]
            .iter()
            .filter(|e| e.op == Op::Probe)
            .count() as u64
    });

    FleetRun {
        log,
        metrics,
        request_latencies: latencies.into_iter().map(|(_, l)| l).collect(),
        respawn_latencies,
        boot_compiles,
    }
}
