//! Differential suite for the decoded execution engine: every program
//! runs twice from the same [`Image`] — once with superinstruction
//! fusion and block runs (`no_fuse: false`), once on per-instruction
//! decoding (`no_fuse: true`) — and everything observable must be
//! bit-identical: exit status, [`ExecStats`] (instructions, cycles,
//! icache hits/misses, rss), printed output, all sixteen GPRs, the
//! data section's bytes, and heap/rss accounting.
//!
//! The programs are built to pin the tricky corners of the fused
//! engine, not just the happy path: every pattern in the fusion
//! catalogue, the 4-instruction lowerer template that becomes a quad
//! superinstruction, faults in the middle of a fused pair and in the
//! middle of a block run (exercising the batch-charge rollback),
//! budget exhaustion inside a run, and indirect jumps into the middle
//! of fused pairs and runs (which must fall back to standalone member
//! execution).

use r2c_vm::insn::AluOp;
use r2c_vm::unwind::UnwindTable;
use r2c_vm::{
    Cond, ExitStatus, Fault, Gpr, Image, Insn, MachineKind, MemRef, NativeKind, SectionLayout,
    Symbol, SymbolKind, Vm, VmConfig, PAGE_SIZE,
};

const TEXT_BASE: u64 = 0x40_0000;
const DATA_BASE: u64 = 0x60_0000;
const DATA_END: u64 = 0x60_4000;

/// Hand-assembles an image from instructions laid out contiguously,
/// mirroring the compiler's section layout.
fn asm(insns: Vec<Insn>, natives: Vec<NativeKind>) -> Image {
    let mut addrs = Vec::new();
    let mut a = TEXT_BASE;
    for i in &insns {
        addrs.push(a);
        a += i.len();
    }
    let text_end = a.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    Image {
        insns,
        insn_addrs: addrs,
        layout: SectionLayout {
            text_base: TEXT_BASE,
            text_end,
            data_base: DATA_BASE,
            data_end: DATA_END,
            heap_base: 0x10_0000_0000,
            heap_size: 16 * 1024 * 1024,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 1024 * 1024,
        },
        entry: TEXT_BASE,
        constructors: vec![],
        data_init: vec![],
        xom: true,
        symbols: vec![Symbol {
            name: "main".into(),
            addr: TEXT_BASE,
            size: 0,
            kind: SymbolKind::Function,
        }],
        natives,
        unwind: UnwindTable::default(),
    }
}

/// Address of instruction `i` under the contiguous layout `asm` uses.
fn addr_of(insns: &[Insn], i: usize) -> u64 {
    TEXT_BASE + insns[..i].iter().map(|x| x.len()).sum::<u64>()
}

/// Runs `insns` on a fused and an unfused VM and asserts every
/// observable agrees. Returns the shared outcome for extra assertions.
fn run_both(insns: Vec<Insn>, natives: Vec<NativeKind>) -> (ExitStatus, r2c_vm::ExecStats) {
    run_both_with(insns, natives, |_| {})
}

/// [`run_both`] with a configuration hook (budget, etc.) applied to
/// both VMs before running.
fn run_both_with(
    insns: Vec<Insn>,
    natives: Vec<NativeKind>,
    prep: impl Fn(&mut Vm),
) -> (ExitStatus, r2c_vm::ExecStats) {
    let image = asm(insns, natives);
    let cfg = VmConfig::new(MachineKind::EpycRome.config());
    let mut fused = Vm::new(
        &image,
        VmConfig {
            no_fuse: false,
            ..cfg
        },
    );
    let mut unfused = Vm::new(
        &image,
        VmConfig {
            no_fuse: true,
            ..cfg
        },
    );
    assert!(fused.fusion_enabled());
    assert!(!unfused.fusion_enabled());
    assert_ne!(
        fused.decoded_program_id(),
        unfused.decoded_program_id(),
        "fused and unfused must decode to distinct programs"
    );
    prep(&mut fused);
    prep(&mut unfused);
    let a = fused.run();
    let b = unfused.run();
    assert_eq!(a.status, b.status, "exit status diverged");
    assert_eq!(a.stats, b.stats, "ExecStats diverged");
    assert_eq!(fused.output, unfused.output, "printed output diverged");
    for g in Gpr::ALL {
        assert_eq!(
            fused.regs.get(g),
            unfused.regs.get(g),
            "register {g:?} diverged"
        );
    }
    let mut da = vec![0u8; (DATA_END - DATA_BASE) as usize];
    let mut db = da.clone();
    fused.mem.peek(DATA_BASE, &mut da);
    unfused.mem.peek(DATA_BASE, &mut db);
    assert_eq!(da, db, "data section diverged");
    assert_eq!(
        fused.mem.resident_pages(),
        unfused.mem.resident_pages(),
        "resident page count diverged"
    );
    assert_eq!(fused.heap.in_use(), unfused.heap.in_use());
    (a.status, a.stats)
}

/// One long function exercising every pattern in the fusion catalogue:
/// the eight straight-line pairs (which land inside block runs), the
/// four compare-and-branch / flag pairs and the stack pairs (which fuse
/// at the top level), and a callee whose epilogue is the `pop; ret`
/// pair.
#[test]
fn every_fusion_pattern_agrees() {
    let data = MemRef::base(Gpr::Rsi);
    let data8 = MemRef {
        base: Gpr::Rsi,
        index: None,
        disp: 8,
    };
    let mut insns = vec![
        Insn::MovImm {
            dst: Gpr::Rax,
            imm: 0,
        },
        Insn::MovImm {
            dst: Gpr::Rcx,
            imm: 7,
        },
        Insn::MovImm {
            dst: Gpr::Rdx,
            imm: 9,
        },
        Insn::MovAbs {
            dst: Gpr::Rsi,
            imm: DATA_BASE,
        },
        Insn::MovImm {
            dst: Gpr::Rdi,
            imm: 5,
        },
        // MovReg + AluReg, then AluReg + MovReg (the two ~22% pairs).
        Insn::MovReg {
            dst: Gpr::Rbx,
            src: Gpr::Rcx,
        },
        Insn::AluReg {
            op: AluOp::Add,
            dst: Gpr::Rax,
            src: Gpr::Rbx,
        },
        Insn::AluReg {
            op: AluOp::Add,
            dst: Gpr::Rax,
            src: Gpr::Rdx,
        },
        Insn::MovReg {
            dst: Gpr::R8,
            src: Gpr::Rax,
        },
        // MovImm + MovReg and MovReg + MovImm.
        Insn::MovImm {
            dst: Gpr::R9,
            imm: 0x1234,
        },
        Insn::MovReg {
            dst: Gpr::R10,
            src: Gpr::R9,
        },
        Insn::MovReg {
            dst: Gpr::R11,
            src: Gpr::Rax,
        },
        Insn::MovImm {
            dst: Gpr::R12,
            imm: 42,
        },
        // MovReg + Store, Load + MovReg, Store + Load (spill/reload).
        Insn::MovReg {
            dst: Gpr::R13,
            src: Gpr::Rdx,
        },
        Insn::Store {
            mem: data,
            src: Gpr::R13,
        },
        Insn::Load {
            dst: Gpr::R14,
            mem: data,
        },
        Insn::MovReg {
            dst: Gpr::R15,
            src: Gpr::R14,
        },
        Insn::Store {
            mem: data8,
            src: Gpr::Rax,
        },
        Insn::Load {
            dst: Gpr::Rbx,
            mem: data8,
        },
        // Lea + MovReg.
        Insn::Lea {
            dst: Gpr::Rcx,
            mem: MemRef {
                base: Gpr::Rsi,
                index: Some((Gpr::Rdi, 1)),
                disp: 16,
            },
        },
        Insn::MovReg {
            dst: Gpr::Rdx,
            src: Gpr::Rcx,
        },
        // CmpReg + SetCc (boolean materialization makes the flag state
        // an architecturally visible register value).
        Insn::CmpReg {
            a: Gpr::Rax,
            b: Gpr::R8,
        },
        Insn::SetCc {
            cond: Cond::Le,
            dst: Gpr::R9,
        },
        // Push + Push then Pop + Pop (values deliberately swap).
        Insn::Push { src: Gpr::Rax },
        Insn::Push { src: Gpr::Rcx },
        Insn::Pop { dst: Gpr::Rax },
        Insn::Pop { dst: Gpr::Rcx },
    ];
    // The three compare-and-branch pairs, each jumping over a poison
    // instruction that would corrupt Rax if the branch misbehaved.
    for (cmp, cond, poison) in [
        (
            Insn::CmpReg {
                a: Gpr::R14,
                b: Gpr::R15,
            },
            Cond::Eq,
            1000,
        ),
        (
            Insn::CmpImm {
                a: Gpr::Rdi,
                imm: 5,
            },
            Cond::Eq,
            2000,
        ),
        (Insn::Test { a: Gpr::Rdi }, Cond::Ne, 3000),
    ] {
        let here = insns.len();
        let skip_to = {
            // cmp (len) + jcc (len) + poison AluImm — compute after
            // pushing, using placeholder targets first.
            let mut probe = insns.clone();
            probe.push(cmp);
            probe.push(Insn::Jcc { cond, target: 0 });
            probe.push(Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rax,
                imm: poison,
            });
            addr_of(&probe, here + 3)
        };
        insns.push(cmp);
        insns.push(Insn::Jcc {
            cond,
            target: skip_to,
        });
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rax,
            imm: poison,
        });
    }
    // Call a function whose epilogue is the Pop + Ret pair.
    let call_at = insns.len();
    // main tail: call f; ret — f sits right after main's ret.
    let f_addr = {
        let mut probe = insns.clone();
        probe.push(Insn::Call { target: 0 });
        probe.push(Insn::Ret);
        addr_of(&probe, call_at + 2)
    };
    insns.push(Insn::Call { target: f_addr });
    insns.push(Insn::Ret);
    insns.push(Insn::Push { src: Gpr::Rbp });
    insns.push(Insn::MovImm {
        dst: Gpr::Rbp,
        imm: 0x77,
    });
    insns.push(Insn::Pop { dst: Gpr::Rbp });
    insns.push(Insn::Ret);

    let (status, _) = run_both(insns, vec![]);
    // Rax: the pop-swap leaves it holding the Lea result
    // (`data + rdi + 16`), untouched by the branch poison.
    assert_eq!(status, ExitStatus::Exited((DATA_BASE + 5 + 16) as i64));
}

/// The lowerer's 4-instruction ALU-with-immediate template, both in
/// the operand-chained shape that collapses to a single ALU-immediate
/// quad and in the generic shape, repeated inside a counted loop so
/// the quads execute as run members (and chain into quad pairs).
#[test]
fn quad_template_agrees() {
    let mut insns = vec![
        Insn::MovImm {
            dst: Gpr::R10,
            imm: 11,
        },
        Insn::MovImm {
            dst: Gpr::R13,
            imm: 5,
        },
        Insn::MovImm {
            dst: Gpr::Rsi,
            imm: 3,
        },
        Insn::MovImm {
            dst: Gpr::Rcx,
            imm: 0,
        },
    ];
    let loop_head = addr_of(&insns, insns.len());
    for (op, imm) in [
        (AluOp::Add, 3u64),
        (AluOp::Xor, 0x5a),
        (AluOp::And, 0xff),
        (AluOp::Sub, 1),
    ] {
        // Chained shape (specializes): a=R8, scratch=R9, src=R10,
        // dst=R11 — `bd == cd`, `cs == a`, `ds == cd`.
        insns.push(Insn::MovImm { dst: Gpr::R8, imm });
        insns.push(Insn::MovReg {
            dst: Gpr::R9,
            src: Gpr::R10,
        });
        insns.push(Insn::AluReg {
            op,
            dst: Gpr::R9,
            src: Gpr::R8,
        });
        insns.push(Insn::MovReg {
            dst: Gpr::R11,
            src: Gpr::R9,
        });
        // Generic shape (stays a 4-register quad): the final move
        // copies an unrelated register.
        insns.push(Insn::MovImm {
            dst: Gpr::Rax,
            imm: 7,
        });
        insns.push(Insn::MovReg {
            dst: Gpr::Rbx,
            src: Gpr::Rdx,
        });
        insns.push(Insn::AluReg {
            op,
            dst: Gpr::R12,
            src: Gpr::R13,
        });
        insns.push(Insn::MovReg {
            dst: Gpr::R14,
            src: Gpr::Rsi,
        });
    }
    insns.push(Insn::AluImm {
        op: AluOp::Add,
        dst: Gpr::Rcx,
        imm: 1,
    });
    insns.push(Insn::CmpImm {
        a: Gpr::Rcx,
        imm: 50,
    });
    insns.push(Insn::Jcc {
        cond: Cond::Lt,
        target: loop_head,
    });
    insns.push(Insn::MovReg {
        dst: Gpr::Rax,
        src: Gpr::R11,
    });
    insns.push(Insn::Ret);

    let (status, stats) = run_both(insns, vec![]);
    assert_eq!(status, ExitStatus::Exited(10)); // (11 - 1) from the last template
    assert!(stats.instructions > 1000, "loop actually ran");
}

/// A store to an unmapped page in the middle of a long straight-line
/// block: the fused engine batch-charges the whole run up front and
/// must roll back exactly the members that never executed.
#[test]
fn mid_run_fault_agrees() {
    let mut insns = vec![Insn::MovAbs {
        dst: Gpr::R15,
        imm: 0x1000,
    }];
    for i in 0..6 {
        insns.push(Insn::MovImm {
            dst: Gpr::Rax,
            imm: i,
        });
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rbx,
            imm: 1,
        });
    }
    insns.push(Insn::Store {
        mem: MemRef::base(Gpr::R15),
        src: Gpr::Rax,
    });
    for _ in 0..6 {
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rcx,
            imm: 1,
        });
    }
    insns.push(Insn::Ret);
    let (status, _) = run_both(insns, vec![]);
    assert!(
        matches!(status, ExitStatus::Faulted(_)),
        "expected the mid-run store to fault, got {status:?}"
    );
}

/// A `store; load` pair whose *second* half faults: the rollback must
/// attribute one completed instruction to the pair (`half = 1`), both
/// at top level and inside a run.
#[test]
fn mid_pair_second_half_fault_agrees() {
    // Inside a run: enough straight-line context around the pair.
    let mut insns = vec![
        Insn::MovAbs {
            dst: Gpr::Rsi,
            imm: DATA_BASE,
        },
        Insn::MovAbs {
            dst: Gpr::R15,
            imm: 0x1000,
        },
        Insn::MovImm {
            dst: Gpr::Rax,
            imm: 1,
        },
        Insn::MovImm {
            dst: Gpr::Rbx,
            imm: 2,
        },
        Insn::Store {
            mem: MemRef::base(Gpr::Rsi),
            src: Gpr::Rax,
        },
        Insn::Load {
            dst: Gpr::Rcx,
            mem: MemRef::base(Gpr::R15),
        },
        Insn::MovImm {
            dst: Gpr::Rdx,
            imm: 3,
        },
        Insn::Ret,
    ];
    let (status, _) = run_both(insns.clone(), vec![]);
    assert!(matches!(
        status,
        ExitStatus::Faulted(Fault::Unmapped { .. } | Fault::Protection { .. })
    ));

    // Top level: a two-instruction stretch (below the run threshold)
    // ending in a jump, so the pair fuses outside any run.
    insns = vec![
        Insn::MovAbs {
            dst: Gpr::Rsi,
            imm: DATA_BASE,
        },
        Insn::MovAbs {
            dst: Gpr::R15,
            imm: 0x1000,
        },
        Insn::Jmp { target: 0 }, // patched below
        Insn::Store {
            mem: MemRef::base(Gpr::Rsi),
            src: Gpr::Rax,
        },
        Insn::Load {
            dst: Gpr::Rcx,
            mem: MemRef::base(Gpr::R15),
        },
        Insn::Ret,
    ];
    let tgt = addr_of(&insns, 3);
    insns[2] = Insn::Jmp { target: tgt };
    let (status, _) = run_both(insns, vec![]);
    assert!(matches!(status, ExitStatus::Faulted(_)));
}

/// Budget exhaustion landing in the middle of a block run: the fused
/// engine must hand the tail to the reference engine and stop at
/// exactly the same instruction count.
#[test]
fn budget_exhaustion_mid_run_agrees() {
    let mut insns = vec![Insn::MovImm {
        dst: Gpr::Rcx,
        imm: 0,
    }];
    let loop_head = addr_of(&insns, insns.len());
    for _ in 0..10 {
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rax,
            imm: 1,
        });
    }
    insns.push(Insn::AluImm {
        op: AluOp::Add,
        dst: Gpr::Rcx,
        imm: 1,
    });
    insns.push(Insn::CmpImm {
        a: Gpr::Rcx,
        imm: 1000,
    });
    insns.push(Insn::Jcc {
        cond: Cond::Lt,
        target: loop_head,
    });
    insns.push(Insn::Ret);
    // 47 lands mid-run on the fourth iteration, not at a boundary.
    for budget in [47u64, 48, 53, 200] {
        let (status, stats) = run_both_with(insns.clone(), vec![], |vm| {
            vm.set_insn_budget(budget);
        });
        assert_eq!(status, ExitStatus::Faulted(Fault::BudgetExhausted));
        assert_eq!(stats.instructions, budget);
    }
}

/// An indirect jump into the middle of a block run (a non-leader
/// member): the decoded program keeps members standalone-decodable,
/// so execution falls back to per-instruction dispatch for the tail.
#[test]
fn indirect_jump_into_run_middle_agrees() {
    let mut insns = vec![
        Insn::MovAbs {
            dst: Gpr::R15,
            imm: 0,
        }, // patched: mid-run target
        Insn::JmpInd { target: Gpr::R15 },
    ];
    let body_start = insns.len();
    for i in 0..12 {
        insns.push(Insn::MovImm {
            dst: Gpr::ALL[(i % 8) + 8],
            imm: i as u64,
        });
    }
    insns.push(Insn::MovImm {
        dst: Gpr::Rax,
        imm: 99,
    });
    insns.push(Insn::Ret);
    // Land on the 6th member of the straight-line body — with fusion
    // that address is the middle of a run (and of a fused pair).
    let tgt = addr_of(&insns, body_start + 5);
    insns[0] = Insn::MovAbs {
        dst: Gpr::R15,
        imm: tgt,
    };
    let (status, stats) = run_both(insns, vec![]);
    assert_eq!(status, ExitStatus::Exited(99));
    // Entry movabs + jmp + members 6..12 + tail mov + ret.
    assert_eq!(stats.instructions, 2 + 7 + 2);
}

/// The `R2C_NO_FUSE` environment knob feeds [`VmConfig::new`]'s
/// default; explicit struct updates override it either way.
#[test]
fn no_fuse_env_knob_controls_default() {
    // Serialized with other env-reading tests by being the only one in
    // this binary that touches the variable.
    std::env::set_var("R2C_NO_FUSE", "1");
    assert!(VmConfig::new(MachineKind::EpycRome.config()).no_fuse);
    std::env::remove_var("R2C_NO_FUSE");
    assert!(!VmConfig::new(MachineKind::EpycRome.config()).no_fuse);
}

// --- Static/dynamic agreement: every corruption class in the decode
// --- translation validator's mutation corpus, demonstrated live.
//
// The validator (`r2c_check::check_decoded_program`) claims its static
// verdicts predict dynamic behavior: a flagged decode really executes
// differently from the reference, and a clean decode doesn't. These
// tests close the loop by running each corrupted `DecodedProgram` on a
// real VM (via the `Vm::from_decoded` test hook, which bypasses the
// self-verifying decode cache) and asserting the static finding and
// the observed divergence appear together.

use r2c_vm::decode_inspect::{decode_program, DecodedProgram, Op};
use std::sync::Arc;

/// Everything observable about one run of a decoded program.
#[derive(Debug, PartialEq)]
struct Observed {
    status: ExitStatus,
    stats: r2c_vm::ExecStats,
    output: Vec<i64>,
    regs: Vec<u64>,
}

fn run_decoded(prog: DecodedProgram) -> Observed {
    let cfg = VmConfig::new(MachineKind::EpycRome.config());
    let mut vm = Vm::from_decoded(Arc::new(prog), cfg);
    let out = vm.run();
    Observed {
        status: out.status,
        stats: out.stats,
        output: vm.output.clone(),
        regs: Gpr::ALL.iter().map(|&g| vm.regs.get(g)).collect(),
    }
}

/// Decodes `image` (EPYC Rome, fused), asserts the pristine decode is
/// statically clean and captures its behavior, then applies `corrupt`
/// and asserts BOTH that the validator flags the result statically AND
/// that the corrupted program observably diverges when executed.
fn assert_static_dynamic_agree(image: &Image, corrupt: impl FnOnce(&mut DecodedProgram)) {
    let machine = MachineKind::EpycRome.config();
    let clean = decode_program(image, &machine, true);
    assert_eq!(
        r2c_check::check_decoded_program(&clean, image),
        vec![],
        "pristine decode must validate cleanly"
    );
    let baseline = run_decoded(clean);

    let mut bad = decode_program(image, &machine, true);
    corrupt(&mut bad);
    let findings = r2c_check::check_decoded_program(&bad, image);
    assert!(
        !findings.is_empty(),
        "static validator missed a dynamically observable corruption"
    );
    let observed = run_decoded(bad);
    assert_ne!(
        baseline, observed,
        "statically flagged corruption must be dynamically observable"
    );
}

/// Straight-line body (leader + MovReg/AluReg pair inside a run) ending
/// in a fused compare-and-branch over a poison instruction.
fn tv_branch_program() -> Image {
    let mut insns = vec![
        Insn::MovAbs {
            dst: Gpr::Rsi,
            imm: DATA_BASE,
        },
        Insn::MovImm {
            dst: Gpr::Rax,
            imm: 0,
        },
        Insn::MovImm {
            dst: Gpr::Rcx,
            imm: 7,
        },
        Insn::MovImm {
            dst: Gpr::Rdx,
            imm: 9,
        },
        // Separator: AluImm fuses with nothing, so the MovReg+AluReg
        // pair below forms regardless of pairing parity.
        Insn::AluImm {
            op: AluOp::Or,
            dst: Gpr::Rbp,
            imm: 0,
        },
        Insn::MovReg {
            dst: Gpr::Rbx,
            src: Gpr::Rcx,
        },
        Insn::AluReg {
            op: AluOp::Add,
            dst: Gpr::Rax,
            src: Gpr::Rbx,
        },
        Insn::MovImm {
            dst: Gpr::R8,
            imm: 1,
        },
        Insn::MovImm {
            dst: Gpr::R9,
            imm: 2,
        },
        Insn::MovImm {
            dst: Gpr::R10,
            imm: 3,
        },
        Insn::CmpImm {
            a: Gpr::Rcx,
            imm: 7,
        },
        Insn::Jcc {
            cond: Cond::Eq,
            target: 0, // patched: skip the poison
        },
        Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rax,
            imm: 1000,
        },
        Insn::Ret,
    ];
    let tgt = addr_of(&insns, 13);
    insns[11] = Insn::Jcc {
        cond: Cond::Eq,
        target: tgt,
    };
    let image = asm(insns, vec![]);
    // The corpus below relies on these decode shapes existing.
    let prog = decode_program(&image, &MachineKind::EpycRome.config(), true);
    assert!(
        prog.run_ops
            .iter()
            .any(|e| matches!(e.op, Op::MovRegAluReg { .. })),
        "MovReg+AluReg pair must land in a run"
    );
    assert!(
        prog.ops
            .iter()
            .any(|d| matches!(d.op, Op::CmpImmJcc { .. })),
        "CmpImm+Jcc pair must fuse at top level"
    );
    image
}

/// Mid-run store fault: exercises the positional rollback metadata.
fn tv_fault_program() -> Image {
    let mut insns = vec![Insn::MovAbs {
        dst: Gpr::R15,
        imm: 0x1000,
    }];
    for i in 0..6 {
        insns.push(Insn::MovImm {
            dst: Gpr::Rax,
            imm: i,
        });
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rbx,
            imm: 1,
        });
    }
    insns.push(Insn::Store {
        mem: MemRef::base(Gpr::R15),
        src: Gpr::Rax,
    });
    for _ in 0..6 {
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rcx,
            imm: 1,
        });
    }
    insns.push(Insn::Ret);
    asm(insns, vec![])
}

/// Mid-run divide-by-zero: the fault carries the *instruction* address
/// rebuilt from the entry's segment line + offset, so fault-attribution
/// corruption is observable in the exit status.
fn tv_div_program() -> Image {
    let mut insns = vec![
        Insn::MovImm {
            dst: Gpr::Rax,
            imm: 5,
        },
        Insn::MovImm {
            dst: Gpr::Rbx,
            imm: 0,
        },
        Insn::MovImm {
            dst: Gpr::Rcx,
            imm: 1,
        },
        Insn::Div {
            dst: Gpr::Rax,
            src: Gpr::Rbx,
        },
    ];
    for _ in 0..4 {
        insns.push(Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rcx,
            imm: 1,
        });
    }
    insns.push(Insn::Ret);
    asm(insns, vec![])
}

/// Corrupted operand chaining in an in-run fused pair: the ALU half
/// reads the wrong source register.
#[test]
fn tv_agreement_pair_operand_chaining() {
    assert_static_dynamic_agree(&tv_branch_program(), |prog| {
        let src2 = prog
            .run_ops
            .iter_mut()
            .find_map(|e| match &mut e.op {
                Op::MovRegAluReg { src2, .. } => Some(src2),
                _ => None,
            })
            .expect("no MovRegAluReg in any run");
        *src2 = Gpr::Rdx; // adds 9 instead of 7
    });
}

/// Skipped rollback slot on the faulting member: the batch-charge
/// rollback unwinds one member too few, inflating the instruction
/// count at the fault.
#[test]
fn tv_agreement_rollback_slot() {
    assert_static_dynamic_agree(&tv_fault_program(), |prog| {
        let e = prog
            .run_ops
            .iter_mut()
            .find(|e| matches!(e.op, Op::Store { .. }))
            .expect("faulting store must be a run member");
        e.k += 1;
    });
}

/// Off-by-one batched run cost: the single batched `cycles` add no
/// longer equals the per-member sum.
#[test]
fn tv_agreement_members_cost() {
    assert_static_dynamic_agree(&tv_branch_program(), |prog| {
        prog.runs[0].members_cost += 1;
    });
}

/// Mis-resolved direct branch: the pre-resolved taken target of the
/// fused compare-and-branch points at the poison instruction.
#[test]
fn tv_agreement_branch_target() {
    assert_static_dynamic_agree(&tv_branch_program(), |prog| {
        let (tgt_ref, want) = prog
            .ops
            .iter_mut()
            .enumerate()
            .find_map(|(i, d)| match &mut d.op {
                Op::CmpImmJcc { tgt, .. } => Some((tgt, i)),
                _ => None,
            })
            .expect("no top-level CmpImmJcc");
        // Redirect the taken edge to the instruction right after the
        // pair — the poison AluImm.
        *tgt_ref = want as u32 + 2;
    });
}

/// Wrong pre-baked second-half cost on a top-level fused pair: the
/// `second!` charge diverges from the reference interpreter's.
#[test]
fn tv_agreement_second_half_cost() {
    assert_static_dynamic_agree(&tv_branch_program(), |prog| {
        let f2 = prog
            .ops
            .iter_mut()
            .find_map(|d| match &mut d.op {
                Op::CmpImmJcc { f2, .. } => Some(f2),
                _ => None,
            })
            .expect("no top-level CmpImmJcc");
        f2.cost2 += 1;
    });
}

/// Corrupted fault-attribution offset on a fallible run member: the
/// divide-by-zero fault reports the wrong instruction address.
#[test]
fn tv_agreement_fault_attribution() {
    assert_static_dynamic_agree(&tv_div_program(), |prog| {
        let e = prog
            .run_ops
            .iter_mut()
            .find(|e| matches!(e.op, Op::Div { .. }))
            .expect("div must be a run member");
        e.off += 1;
    });
}

/// Off-by-one pre-baked leader cost: the dispatch preamble charges the
/// wrong base cycles.
#[test]
fn tv_agreement_prebaked_cost() {
    assert_static_dynamic_agree(&tv_branch_program(), |prog| {
        prog.ops[0].cost += 1;
    });
}
