//! Regression suite for heap page lifetime: free churn must not grow
//! the resident set beyond the live set (plus the small quarantine),
//! use-after-free must fault instead of silently succeeding, and the
//! VM monitor must classify a dangling dereference of a quarantined
//! page as a guard-page detection.

use r2c_vm::heap::{Heap, DEFAULT_QUARANTINE_PAGES};
use r2c_vm::image::{Image, NativeKind, SectionLayout, Symbol, SymbolKind};
use r2c_vm::machine::MachineKind;
use r2c_vm::{Detection, Fault, Insn, Memory, Perms, Vm, VmConfig, PAGE_SIZE};

const HEAP_BASE: u64 = 0x10_0000_0000;
const HEAP_SIZE: u64 = 64 * 1024 * 1024;

fn setup() -> (Memory, Heap) {
    (Memory::new(), Heap::new(HEAP_BASE, HEAP_SIZE))
}

/// The headline regression: a malloc/free loop used to leave every
/// touched page resident forever, driving `max_resident_pages` toward
/// the arena size. Now the peak is bounded by the peak live set plus
/// the quarantine.
#[test]
fn churn_loop_does_not_drive_maxrss_to_arena_size() {
    let (mut mem, mut heap) = setup();
    let sizes = [256u64, 4096, 64 * 1024, 1536, 8 * 4096];
    for i in 0..500 {
        let sz = sizes[i % sizes.len()];
        let p = heap.malloc(&mut mem, sz).unwrap();
        mem.write_u64(p, i as u64).unwrap();
        heap.free(&mut mem, p).unwrap();
    }
    let peak_live_pages = (64 * 1024 / PAGE_SIZE) as usize + 1;
    assert!(
        mem.max_resident_pages() <= peak_live_pages + DEFAULT_QUARANTINE_PAGES,
        "max_resident_pages = {} but peak live is only {} pages",
        mem.max_resident_pages(),
        peak_live_pages
    );
    heap.check_invariants(&mem).unwrap();
}

/// Interleaved churn with a few long-lived allocations: residency stays
/// within live + quarantine, never accumulating freed pages.
#[test]
fn interleaved_churn_residency_tracks_live_bytes() {
    let (mut mem, mut heap) = setup();
    let keep: Vec<u64> = (0..4)
        .map(|_| heap.malloc(&mut mem, 2 * PAGE_SIZE).unwrap())
        .collect();
    for round in 0..100u64 {
        let a = heap.malloc(&mut mem, 16 * PAGE_SIZE).unwrap();
        let b = heap.malloc(&mut mem, 3 * PAGE_SIZE + 24).unwrap();
        mem.write_u64(a, round).unwrap();
        mem.write_u64(b, round).unwrap();
        heap.free(&mut mem, a).unwrap();
        heap.free(&mut mem, b).unwrap();
        // Steady state: live pages (the kept allocations) + quarantine.
        let live_pages = heap
            .live_allocations()
            .map(|(a, s)| ((a + s).div_ceil(PAGE_SIZE) - a / PAGE_SIZE) as usize)
            .sum::<usize>();
        assert!(
            mem.resident_pages() <= live_pages + DEFAULT_QUARANTINE_PAGES + 1,
            "round {round}: resident {} pages for {live_pages} live pages",
            mem.resident_pages()
        );
    }
    for k in keep {
        assert!(mem.read_u64(k).is_ok(), "long-lived allocation unreadable");
    }
    heap.check_invariants(&mem).unwrap();
}

/// `Memory::restore` used to clobber the lifetime rss high-water mark
/// with the snapshot's value, so a long-lived restart-same worker
/// under-reported the §6.2.5 maxrss metric after every
/// `reset_to_image`. The mark must ratchet monotonically over the
/// address space's whole life, surviving resets.
#[test]
fn restore_preserves_lifetime_maxrss_high_water_mark() {
    let (mut mem, mut heap) = setup();
    let p = heap.malloc(&mut mem, 4 * PAGE_SIZE).unwrap();
    mem.write_u64(p, 1).unwrap();
    let snap = mem.snapshot();
    let at_snap = mem.max_resident_pages();
    // A later generation touches far more memory than the image…
    let big = heap.malloc(&mut mem, 512 * PAGE_SIZE).unwrap();
    for i in 0..512 {
        mem.write_u64(big + i * PAGE_SIZE, i).unwrap();
    }
    let peak = mem.max_resident_pages();
    assert!(peak > at_snap + 400, "workload failed to push the peak");
    // …and the worker reset must keep the lifetime peak, not rewind it.
    mem.restore(&snap);
    assert_eq!(
        mem.max_resident_pages(),
        peak,
        "restore clobbered the maxrss high-water mark"
    );
    assert_eq!(mem.resident_pages(), snap.resident_pages());
    // The ratchet keeps working after the reset.
    mem.map(0x9000_0000, 4 * PAGE_SIZE, Perms::RW);
    assert_eq!(mem.max_resident_pages(), peak);
}

/// Classic use-after-free: reads and writes through a dangling pointer
/// fault (quarantined page → protection fault on the no-access page;
/// after eviction → unmapped fault). Either way the access no longer
/// silently succeeds.
#[test]
fn uaf_faults_instead_of_reading_stale_bytes() {
    let (mut mem, mut heap) = setup();
    let p = heap.malloc(&mut mem, PAGE_SIZE).unwrap();
    mem.write_u64(p, 0x5ec2e7).unwrap();
    heap.free(&mut mem, p).unwrap();
    assert!(matches!(
        mem.read_u64(p),
        Err(Fault::Protection { perms, .. }) if perms == Perms::NONE
    ));
    assert!(mem.write_u64(p, 1).is_err());
    // Push the page out of quarantine with more churn; the dangling
    // pointer then hits unmapped memory.
    for _ in 0..4 {
        let q = heap
            .malloc(&mut mem, (DEFAULT_QUARANTINE_PAGES as u64 + 2) * PAGE_SIZE)
            .unwrap();
        heap.free(&mut mem, q).unwrap();
    }
    assert!(matches!(mem.read_u64(p), Err(Fault::Unmapped { .. })));
}

/// `in_use`/`live_allocations` accounting stays aligned with what is
/// actually mapped across an exhaustion-heavy memalign workload
/// (the historical leak: padding extents around failed or page-aligned
/// requests).
#[test]
fn memalign_exhaustion_accounting() {
    let mut mem = Memory::new();
    let mut heap = Heap::new(HEAP_BASE, 16 * PAGE_SIZE);
    let mut live = Vec::new();
    // Alternate page-aligned and tiny requests until exhaustion.
    while let Some(p) = heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE) {
        live.push(p);
        if heap.malloc(&mut mem, 24).is_none() {
            break;
        }
    }
    // Oversized and overflowing requests must fail cleanly.
    assert!(heap.memalign(&mut mem, PAGE_SIZE, 32 * PAGE_SIZE).is_none());
    assert!(heap.memalign(&mut mem, 1 << 62, PAGE_SIZE).is_none());
    assert!(heap.malloc(&mut mem, u64::MAX - 8).is_none());
    heap.check_invariants(&mem).unwrap();
    let total: u64 = heap.live_allocations().map(|(_, s)| s).sum();
    assert_eq!(heap.in_use(), total);
    for p in live {
        heap.free(&mut mem, p).unwrap();
    }
    heap.check_invariants(&mem).unwrap();
}

/// A hand-assembled guest whose dangling dereference is classified by
/// the VM monitor as a guard-page detection — the reactive R²C path
/// now covers use-after-free.
#[test]
fn vm_records_guard_page_detection_for_uaf() {
    let text_base = 0x40_0000u64;
    let insns = vec![Insn::Ret];
    let image = Image {
        insns: insns.clone(),
        insn_addrs: vec![text_base],
        layout: SectionLayout {
            text_base,
            text_end: text_base + PAGE_SIZE,
            data_base: 0x60_0000,
            data_end: 0x60_4000,
            heap_base: HEAP_BASE,
            heap_size: 16 * 1024 * 1024,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 1024 * 1024,
        },
        entry: text_base,
        constructors: vec![],
        data_init: vec![],
        xom: true,
        symbols: vec![Symbol {
            name: "main".into(),
            addr: text_base,
            size: 0,
            kind: SymbolKind::Function,
        }],
        natives: vec![NativeKind::Malloc, NativeKind::Free],
        unwind: Default::default(),
    };
    let mut vm = Vm::new(&image, VmConfig::new(MachineKind::EpycRome.config()));
    let p = vm.heap.malloc(&mut vm.mem, PAGE_SIZE).unwrap();
    vm.mem.write_u64(p, 42).unwrap();
    vm.heap.free(&mut vm.mem, p).unwrap();
    // The attacker's dangling read hits the quarantined page and is
    // recorded exactly like a BTDP guard-page hit.
    assert!(vm.attacker_read_u64(p).is_err());
    assert!(
        matches!(vm.detections(), [Detection::GuardPage { addr }] if *addr == p),
        "expected a guard-page detection, got {:?}",
        vm.detections()
    );
}
