//! Regression tests for the decoded-program cache: VMs built from the
//! same image share one decoded program, while any change to the image
//! — a mutated instruction, a different module loaded into a reused VM
//! — must produce a fresh decode. Stale decoded blocks executing after
//! an image change is the classic predecoded-interpreter bug this file
//! pins.

use r2c_vm::decode_inspect::{decode_program, DecodeMismatch};
use r2c_vm::unwind::UnwindTable;
use r2c_vm::{
    decode_cache_live_entries, ExitStatus, Gpr, Image, Insn, MachineKind, NativeKind,
    SectionLayout, Symbol, SymbolKind, Vm, VmConfig, PAGE_SIZE,
};

const TEXT_BASE: u64 = 0x40_0000;

fn asm(insns: Vec<Insn>, natives: Vec<NativeKind>) -> Image {
    let mut addrs = Vec::new();
    let mut a = TEXT_BASE;
    for i in &insns {
        addrs.push(a);
        a += i.len();
    }
    let text_end = a.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    Image {
        insns,
        insn_addrs: addrs,
        layout: SectionLayout {
            text_base: TEXT_BASE,
            text_end,
            data_base: 0x60_0000,
            data_end: 0x60_4000,
            heap_base: 0x10_0000_0000,
            heap_size: 16 * 1024 * 1024,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 1024 * 1024,
        },
        entry: TEXT_BASE,
        constructors: vec![],
        data_init: vec![],
        xom: true,
        symbols: vec![Symbol {
            name: "main".into(),
            addr: TEXT_BASE,
            size: 0,
            kind: SymbolKind::Function,
        }],
        natives,
        unwind: UnwindTable::default(),
    }
}

fn exits_with(insns: Vec<Insn>) -> Image {
    asm(insns, vec![])
}

fn cfg() -> VmConfig {
    VmConfig {
        no_fuse: false,
        ..VmConfig::new(MachineKind::EpycRome.config())
    }
}

/// A straight-line body long enough to form a block run, returning
/// `tag` so the executed program version is observable in the exit
/// code.
fn tagged_program(tag: u64) -> Vec<Insn> {
    let mut insns = Vec::new();
    for i in 0..8 {
        insns.push(Insn::MovImm {
            dst: Gpr::ALL[(i % 8) + 8],
            imm: i as u64,
        });
    }
    insns.push(Insn::MovImm {
        dst: Gpr::Rax,
        imm: tag,
    });
    insns.push(Insn::Ret);
    insns
}

#[test]
fn same_image_shares_one_decode() {
    let image = exits_with(tagged_program(1));
    let a = Vm::new(&image, cfg());
    let b = Vm::new(&image, cfg());
    assert_eq!(a.decoded_program_id(), b.decoded_program_id());
}

/// Mutating an [`Image`] after a VM was built from it must give the
/// next VM a fresh decode — the cache verifies field-by-field instead
/// of trusting its hash key, so even a colliding fingerprint cannot
/// resurrect stale decoded blocks.
#[test]
fn mutated_image_gets_fresh_decode_and_fresh_semantics() {
    let mut image = exits_with(tagged_program(1));
    let mut a = Vm::new(&image, cfg());
    assert_eq!(a.run().status, ExitStatus::Exited(1));

    // Change the tag instruction in place; `a` keeps running the old
    // program (its decode is pinned), a new VM must see the new one.
    let stale = decode_program(&image, &MachineKind::EpycRome.config(), true);
    let n = image.insns.len();
    image.insns[n - 2] = Insn::MovImm {
        dst: Gpr::Rax,
        imm: 2,
    };
    // The cache's verification sees not just *that* the old decode went
    // stale but *which* field diverged — the mutated instruction slot.
    assert_eq!(
        stale.mismatch(&image, &MachineKind::EpycRome.config(), true),
        Some(DecodeMismatch {
            field: "insns",
            index: Some(n - 2),
        })
    );
    assert!(!stale.matches(&image, &MachineKind::EpycRome.config(), true));
    let mut b = Vm::new(&image, cfg());
    assert_ne!(
        a.decoded_program_id(),
        b.decoded_program_id(),
        "mutated image must not reuse the stale decoded program"
    );
    assert_eq!(b.run().status, ExitStatus::Exited(2));
    a.reset_to_image();
    assert_eq!(
        a.run().status,
        ExitStatus::Exited(1),
        "existing VM keeps its own (pinned) decode"
    );
}

/// Loading a different module into a reused VM replaces the decoded
/// program wholesale; no block decoded from the first module can run.
#[test]
fn reused_vm_never_executes_stale_blocks() {
    let first = exits_with(tagged_program(10));
    let second = exits_with(tagged_program(20));
    let mut vm = Vm::new(&first, cfg());
    let id_first = vm.decoded_program_id();
    assert_eq!(vm.run().status, ExitStatus::Exited(10));

    vm.load_image(&second);
    assert_ne!(vm.decoded_program_id(), id_first);
    assert_eq!(vm.run().status, ExitStatus::Exited(20));

    // And back: the original image decodes to the original program
    // semantics (possibly the cached object, if still alive).
    vm.load_image(&first);
    assert_eq!(vm.run().status, ExitStatus::Exited(10));
}

/// Cache entries are weak: dropping every VM on an image releases its
/// decoded program instead of accumulating one entry per image ever
/// seen (the serve fleet builds thousands of variant images per hour).
#[test]
fn dropped_vms_release_cache_entries() {
    let before = decode_cache_live_entries();
    let images: Vec<Image> = (100..108).map(|t| exits_with(tagged_program(t))).collect();
    let vms: Vec<Vm> = images.iter().map(|im| Vm::new(im, cfg())).collect();
    assert!(
        decode_cache_live_entries() >= before + images.len(),
        "each distinct image holds one live entry"
    );
    let during = decode_cache_live_entries();
    drop(vms);
    assert!(
        decode_cache_live_entries() <= during - images.len(),
        "dropping the VMs must release their decoded programs"
    );
}
