//! Property-based tests of the guest heap allocator: arbitrary
//! malloc/memalign/free sequences must never hand out overlapping
//! memory, must respect alignment, and must never recycle live
//! allocations (the invariant the BTDP guard pages rely on, §5.2).

use proptest::prelude::*;

use r2c_vm::heap::{Heap, MIN_ALIGN};
use r2c_vm::{Memory, Perms, PAGE_SIZE};

#[derive(Clone, Debug)]
enum Op {
    Malloc(u64),
    Memalign(u64, u64),
    FreeNth(usize),
    Guard(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..10_000).prop_map(Op::Malloc),
            (0u32..5u32, 1u64..8192).prop_map(|(a, s)| Op::Memalign(1 << (4 + a), s)),
            Just(Op::Memalign(4096, 4096)),
            (0usize..64).prop_map(Op::FreeNth),
            (0usize..64).prop_map(Op::Guard),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 16 } else { 64 } })]

    #[test]
    fn allocator_invariants(ops in ops()) {
        let mut mem = Memory::new();
        let mut heap = Heap::new(0x10_0000_0000, 64 * 1024 * 1024);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut guards: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Malloc(size) => {
                    if let Some(p) = heap.malloc(&mut mem, size) {
                        prop_assert_eq!(p % MIN_ALIGN, 0);
                        live.push((p, size.max(1).next_multiple_of(MIN_ALIGN)));
                    }
                }
                Op::Memalign(align, size) => {
                    if let Some(p) = heap.memalign(&mut mem, align, size) {
                        prop_assert_eq!(p % align.max(MIN_ALIGN), 0);
                        live.push((p, size.max(1).next_multiple_of(MIN_ALIGN)));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(n % live.len());
                        // Never free a guard-bearing allocation in this
                        // model (guards stay allocated, as in R²C).
                        if !guards.contains(&p) {
                            heap.free(&mut mem, p).unwrap();
                        } else {
                            live.push((p, 0));
                        }
                    }
                }
                Op::Guard(n) => {
                    // Turn an existing page-aligned, page-sized
                    // allocation into a guard page (the exact R²C
                    // pattern, §5.2: `memalign(4096, 4096)` chunks, so
                    // no other allocation can share the guarded page).
                    if !live.is_empty() {
                        let (p, sz) = live[n % live.len()];
                        if p % PAGE_SIZE == 0 && sz >= PAGE_SIZE && !guards.contains(&p) {
                            mem.protect(p, PAGE_SIZE, Perms::NONE).unwrap();
                            guards.push(p);
                        }
                    }
                }
            }
            // No two live allocations overlap.
            let mut sorted: Vec<(u64, u64)> =
                live.iter().copied().filter(|&(_, s)| s > 0).collect();
            sorted.sort();
            for w in sorted.windows(2) {
                prop_assert!(
                    w[0].0 + w[0].1 <= w[1].0,
                    "overlap: {:x?} and {:x?}",
                    w[0],
                    w[1]
                );
            }
            // Bookkeeping matches what is actually mapped: live pages
            // mapped, in_use == Σ live sizes, quarantined pages are
            // no-access, and nothing stays resident-writable without a
            // live owner.
            if let Err(e) = heap.check_invariants(&mem) {
                prop_assert!(false, "heap invariant violated: {e}");
            }
        }
        // Guard pages still guarded at the end (no allocation un-guarded
        // them).
        for &g in &guards {
            prop_assert_eq!(mem.perms_at(g), Some(Perms::NONE));
        }
        // Live allocations not sharing a guarded page are readable.
        for &(p, sz) in &live {
            let shares_guard = guards
                .iter()
                .any(|&g| p < g + PAGE_SIZE && g < p + sz.max(8));
            if sz > 0 && !shares_guard {
                prop_assert!(mem.read_u64(p).is_ok(), "live allocation unreadable at {p:#x}");
            }
        }
    }
}
