//! Differential property test for copy-on-write snapshot sharing.
//!
//! CoW must be invisible: a memory built from a snapshot with
//! [`Memory::from_snapshot`] (shared regions + shared frames, pages
//! un-shared lazily on write) and one built with
//! [`Memory::from_snapshot_deep`] (the pre-CoW eager deep copy) must
//! be indistinguishable under *any* op sequence — same results, same
//! fault kinds, same per-page permissions and bytes, same rss
//! accounting. Afterwards, rolling the mutated CoW memory back with
//! [`Memory::restore`] must reproduce exactly the state a fresh
//! `from_snapshot` yields (perms, bytes, resident count; the rss
//! high-water mark deliberately differs — it ratchets over the
//! address space's lifetime and survives resets).
//!
//! The op universe spans two 2 MiB regions so region-level `Arc`
//! sharing and frame-level `SHARED_BIT` sharing both get broken and
//! re-established, and addresses cluster near page boundaries so the
//! word fast paths cross pages while the TLB is warm with shared
//! translations.

use proptest::prelude::*;

use r2c_vm::{Memory, Perms, PAGE_SIZE};

/// Two clusters of pages in different 2 MiB regions.
const REGION_PAGES: u64 = 512;
const NPAGES: u64 = 8;

#[derive(Clone, Debug)]
enum Op {
    Map { addr: u64, len: u64, perms: Perms },
    Unmap { addr: u64, len: u64 },
    Protect { addr: u64, len: u64, perms: Perms },
    Read { addr: u64, len: u64 },
    Write { addr: u64, data: Vec<u8> },
    ReadU64 { addr: u64 },
    WriteU64 { addr: u64, val: u64 },
}

fn perms_strategy() -> impl Strategy<Value = Perms> {
    prop_oneof![
        Just(Perms::NONE),
        Just(Perms::R),
        Just(Perms::RW),
        Just(Perms::RX),
        Just(Perms::XO),
    ]
}

/// Addresses near page boundaries, alternating between the two regions.
fn addr_strategy() -> impl Strategy<Value = u64> {
    (
        prop_oneof![0u64..NPAGES, REGION_PAGES..REGION_PAGES + NPAGES],
        prop_oneof![0u64..16, PAGE_SIZE - 16..PAGE_SIZE, 0u64..PAGE_SIZE],
    )
        .prop_map(|(p, off)| p * PAGE_SIZE + off)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (addr_strategy(), 1u64..3 * PAGE_SIZE, perms_strategy())
            .prop_map(|(addr, len, perms)| Op::Map { addr, len, perms }),
        (addr_strategy(), 1u64..3 * PAGE_SIZE).prop_map(|(addr, len)| Op::Unmap { addr, len }),
        (addr_strategy(), 1u64..3 * PAGE_SIZE, perms_strategy())
            .prop_map(|(addr, len, perms)| Op::Protect { addr, len, perms }),
        (addr_strategy(), 1u64..64).prop_map(|(addr, len)| Op::Read { addr, len }),
        (
            addr_strategy(),
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(addr, data)| Op::Write { addr, data }),
        addr_strategy().prop_map(|addr| Op::ReadU64 { addr }),
        (addr_strategy(), any::<u64>()).prop_map(|(addr, val)| Op::WriteU64 { addr, val }),
    ]
}

/// Applies one op to a memory, returning a comparable result digest.
fn apply(mem: &mut Memory, op: &Op) -> Result<Vec<u8>, String> {
    match op.clone() {
        Op::Map { addr, len, perms } => {
            mem.map(addr, len, perms);
            Ok(Vec::new())
        }
        Op::Unmap { addr, len } => {
            mem.unmap(addr, len);
            Ok(Vec::new())
        }
        Op::Protect { addr, len, perms } => mem
            .protect(addr, len, perms)
            .map(|()| Vec::new())
            .map_err(|f| format!("{f:?}")),
        Op::Read { addr, len } => {
            let mut buf = vec![0u8; len as usize];
            mem.read(addr, &mut buf)
                .map(|()| buf)
                .map_err(|f| format!("{f:?}"))
        }
        Op::Write { addr, data } => mem
            .write(addr, &data)
            .map(|()| Vec::new())
            .map_err(|f| format!("{f:?}")),
        Op::ReadU64 { addr } => mem
            .read_u64(addr)
            .map(|v| v.to_le_bytes().to_vec())
            .map_err(|f| format!("{f:?}")),
        Op::WriteU64 { addr, val } => mem
            .write_u64(addr, val)
            .map(|()| Vec::new())
            .map_err(|f| format!("{f:?}")),
    }
}

/// Every page of the two-region universe.
fn universe() -> impl Iterator<Item = u64> {
    (0..NPAGES).chain(REGION_PAGES..REGION_PAGES + NPAGES)
}

/// Per-page equality: perms and full byte contents, plus the resident
/// count. `check_max` additionally compares the rss high-water mark
/// (valid for the CoW-vs-deep pair, not across a restore).
fn assert_pages_equal(a: &Memory, b: &Memory, check_max: bool, ctx: &str) {
    for p in universe() {
        let addr = p * PAGE_SIZE;
        prop_assert_eq!(
            a.perms_at(addr),
            b.perms_at(addr),
            "perms diverged at page {:#x} ({})",
            p,
            ctx
        );
        let mut ba = vec![0u8; PAGE_SIZE as usize];
        let mut bb = vec![0u8; PAGE_SIZE as usize];
        a.peek(addr, &mut ba);
        b.peek(addr, &mut bb);
        prop_assert_eq!(ba, bb, "bytes diverged at page {:#x} ({})", p, ctx);
    }
    prop_assert_eq!(
        a.resident_pages(),
        b.resident_pages(),
        "resident count diverged ({})",
        ctx
    );
    if check_max {
        prop_assert_eq!(
            a.max_resident_pages(),
            b.max_resident_pages(),
            "rss high-water diverged ({})",
            ctx
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 24 } else { 96 } })]

    #[test]
    fn cow_is_indistinguishable_from_deep_copy(
        setup in proptest::collection::vec(op_strategy(), 1..40),
        suffix in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        // Build an arbitrary image and snapshot it.
        let mut base = Memory::new();
        for op in &setup {
            let _ = apply(&mut base, op);
        }
        let snap = base.snapshot();

        // Run the same suffix on a CoW build and a deep-copy build.
        let mut cow = Memory::from_snapshot(&snap);
        let mut deep = Memory::from_snapshot_deep(&snap);
        for (i, op) in suffix.iter().enumerate() {
            let ra = apply(&mut cow, op);
            let rb = apply(&mut deep, op);
            prop_assert_eq!(ra, rb, "op {} result diverged: {:?}", i, op);
        }
        assert_pages_equal(&cow, &deep, true, "cow vs deep after suffix");

        // Rolling the dirty CoW memory back must reproduce exactly what
        // a fresh from_snapshot yields — restore is the fork path's
        // worker-reset twin. (The high-water mark is excluded: restore
        // deliberately keeps the lifetime peak.)
        cow.restore(&snap);
        let fresh = Memory::from_snapshot(&snap);
        assert_pages_equal(&cow, &fresh, false, "restore vs fresh");
        prop_assert!(
            cow.max_resident_pages() >= fresh.max_resident_pages(),
            "restore may only ratchet the high-water mark upward"
        );

        // And the snapshot itself must have been left untouched by all
        // of the above: a third build still matches the pristine deep
        // copy of the original.
        let again = Memory::from_snapshot_deep(&snap);
        assert_pages_equal(&fresh, &again, true, "snapshot immutability");
    }
}
