//! Differential property test of the paged [`Memory`] against a naive
//! byte-at-a-time reference model.
//!
//! `Memory` carries several host-side fast paths — a per-access-class
//! software TLB, lazily materialized page frames, and whole-word
//! load/store shortcuts. None of them may be observable: every result
//! (values read, fault kinds, rss accounting) must match a model that
//! implements the documented semantics in the most literal way
//! possible, one byte and one page at a time. The op sequences
//! deliberately interleave reads (which warm the TLB) with `protect`,
//! `unmap` and remapping (which must invalidate it), and include
//! page-crossing word accesses at every offset near a boundary.

use std::collections::HashMap;

use proptest::prelude::*;

use r2c_vm::{Fault, Memory, Perms, PAGE_SIZE};

/// The literal reference: a hash map of individually boxed pages,
/// no TLB, no laziness, no word fast paths.
#[derive(Default)]
struct RefMem {
    pages: HashMap<u64, (Perms, Vec<u8>)>,
    max_pages: usize,
}

impl RefMem {
    fn page_range(addr: u64, len: u64) -> std::ops::RangeInclusive<u64> {
        (addr / PAGE_SIZE)..=((addr + len - 1) / PAGE_SIZE)
    }

    fn map(&mut self, addr: u64, len: u64, perms: Perms) {
        if len == 0 {
            return;
        }
        for p in Self::page_range(addr, len) {
            self.pages
                .entry(p)
                .and_modify(|e| e.0 = perms)
                .or_insert_with(|| (perms, vec![0u8; PAGE_SIZE as usize]));
        }
        self.max_pages = self.max_pages.max(self.pages.len());
    }

    fn unmap(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        for p in Self::page_range(addr, len) {
            self.pages.remove(&p);
        }
    }

    fn protect(&mut self, addr: u64, len: u64, perms: Perms) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        // Mirrors the real implementation: pages before the first
        // unmapped one are updated even when the call then faults.
        for p in Self::page_range(addr, len) {
            match self.pages.get_mut(&p) {
                Some(e) => e.0 = perms,
                None => {
                    return Err(Fault::Unmapped {
                        addr: p * PAGE_SIZE,
                    })
                }
            }
        }
        Ok(())
    }

    fn check(&self, addr: u64, len: u64, need: Perms, write: bool) -> Result<(), Fault> {
        for p in Self::page_range(addr, len) {
            match self.pages.get(&p) {
                None => return Err(Fault::Unmapped { addr }),
                Some(&(perms, _)) => {
                    if !perms.allows(need) {
                        return Err(Fault::Protection { addr, perms, write });
                    }
                }
            }
        }
        Ok(())
    }

    fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, Fault> {
        self.check(addr, len, Perms::R, false)?;
        Ok((0..len).map(|i| self.peek_byte(addr + i)).collect())
    }

    fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::W, true)?;
        for (i, &b) in buf.iter().enumerate() {
            self.poke_byte(addr + i as u64, b);
        }
        Ok(())
    }

    fn read_u64(&self, addr: u64) -> Result<u64, Fault> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn write_u64(&mut self, addr: u64, val: u64) -> Result<(), Fault> {
        self.write(addr, &val.to_le_bytes())
    }

    fn check_exec(&self, addr: u64) -> Result<(), Fault> {
        self.check(addr, 1, Perms::X, false)
    }

    fn peek_byte(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some((_, data)) => data[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    fn poke_byte(&mut self, addr: u64, b: u8) {
        let e = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| (Perms::NONE, vec![0u8; PAGE_SIZE as usize]));
        e.1[(addr % PAGE_SIZE) as usize] = b;
        self.max_pages = self.max_pages.max(self.pages.len());
    }

    fn poke(&mut self, addr: u64, buf: &[u8]) {
        for (i, &b) in buf.iter().enumerate() {
            self.poke_byte(addr + i as u64, b);
        }
    }

    fn peek(&self, addr: u64, len: u64) -> Vec<u8> {
        (0..len).map(|i| self.peek_byte(addr + i)).collect()
    }
}

/// Operations over a small page universe so sequences collide: remap
/// mapped pages, revoke freshly cached translations, unmap and remap.
#[derive(Clone, Debug)]
enum Op {
    Map { addr: u64, len: u64, perms: Perms },
    Unmap { addr: u64, len: u64 },
    Protect { addr: u64, len: u64, perms: Perms },
    Read { addr: u64, len: u64 },
    Write { addr: u64, data: Vec<u8> },
    ReadU64 { addr: u64 },
    WriteU64 { addr: u64, val: u64 },
    CheckExec { addr: u64 },
    PermsAt { addr: u64 },
    Poke { addr: u64, data: Vec<u8> },
    Peek { addr: u64, len: u64 },
}

const NPAGES: u64 = 12;

fn perms_strategy() -> impl Strategy<Value = Perms> {
    prop_oneof![
        Just(Perms::NONE),
        Just(Perms::R),
        Just(Perms::W),
        Just(Perms::RW),
        Just(Perms::RX),
        Just(Perms::XO),
    ]
}

/// Addresses concentrated near page boundaries so word accesses cross
/// them regularly.
fn addr_strategy() -> impl Strategy<Value = u64> {
    (
        0..NPAGES,
        prop_oneof![0u64..16, PAGE_SIZE - 16..PAGE_SIZE, 0u64..PAGE_SIZE],
    )
        .prop_map(|(p, off)| p * PAGE_SIZE + off)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (addr_strategy(), 1u64..3 * PAGE_SIZE, perms_strategy())
            .prop_map(|(addr, len, perms)| Op::Map { addr, len, perms }),
        (addr_strategy(), 1u64..3 * PAGE_SIZE).prop_map(|(addr, len)| Op::Unmap { addr, len }),
        (addr_strategy(), 1u64..3 * PAGE_SIZE, perms_strategy())
            .prop_map(|(addr, len, perms)| Op::Protect { addr, len, perms }),
        (addr_strategy(), 1u64..64).prop_map(|(addr, len)| Op::Read { addr, len }),
        (
            addr_strategy(),
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(addr, data)| Op::Write { addr, data }),
        addr_strategy().prop_map(|addr| Op::ReadU64 { addr }),
        (addr_strategy(), any::<u64>()).prop_map(|(addr, val)| Op::WriteU64 { addr, val }),
        addr_strategy().prop_map(|addr| Op::CheckExec { addr }),
        addr_strategy().prop_map(|addr| Op::PermsAt { addr }),
        (
            addr_strategy(),
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(addr, data)| Op::Poke { addr, data }),
        (addr_strategy(), 1u64..64).prop_map(|(addr, len)| Op::Peek { addr, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 24 } else { 128 } })]

    #[test]
    fn memory_matches_naive_reference(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut mem = Memory::new();
        let mut reference = RefMem::default();
        for (i, op) in ops.iter().enumerate() {
            match op.clone() {
                Op::Map { addr, len, perms } => {
                    mem.map(addr, len, perms);
                    reference.map(addr, len, perms);
                }
                Op::Unmap { addr, len } => {
                    mem.unmap(addr, len);
                    reference.unmap(addr, len);
                }
                Op::Protect { addr, len, perms } => {
                    prop_assert_eq!(
                        mem.protect(addr, len, perms),
                        reference.protect(addr, len, perms),
                        "protect diverged at op {}", i
                    );
                }
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; len as usize];
                    let got = mem.read(addr, &mut buf).map(|()| buf);
                    prop_assert_eq!(got, reference.read(addr, len), "read diverged at op {}", i);
                }
                Op::Write { addr, data } => {
                    prop_assert_eq!(
                        mem.write(addr, &data),
                        reference.write(addr, &data),
                        "write diverged at op {}", i
                    );
                }
                Op::ReadU64 { addr } => {
                    prop_assert_eq!(
                        mem.read_u64(addr),
                        reference.read_u64(addr),
                        "read_u64 diverged at op {}", i
                    );
                }
                Op::WriteU64 { addr, val } => {
                    prop_assert_eq!(
                        mem.write_u64(addr, val),
                        reference.write_u64(addr, val),
                        "write_u64 diverged at op {}", i
                    );
                }
                Op::CheckExec { addr } => {
                    prop_assert_eq!(
                        mem.check_exec(addr),
                        reference.check_exec(addr),
                        "check_exec diverged at op {}", i
                    );
                }
                Op::PermsAt { addr } => {
                    let expect = reference.pages.get(&(addr / PAGE_SIZE)).map(|&(p, _)| p);
                    prop_assert_eq!(mem.perms_at(addr), expect, "perms_at diverged at op {}", i);
                }
                Op::Poke { addr, data } => {
                    // `poke` into unmapped memory is a debug-assert in
                    // the real implementation; keep the differential
                    // run within its contract.
                    if reference.check(addr, data.len() as u64, Perms::NONE, true).is_ok() {
                        mem.poke(addr, &data);
                        reference.poke(addr, &data);
                    }
                }
                Op::Peek { addr, len } => {
                    let mut buf = vec![0u8; len as usize];
                    mem.peek(addr, &mut buf);
                    prop_assert_eq!(buf, reference.peek(addr, len), "peek diverged at op {}", i);
                }
            }
            prop_assert_eq!(
                mem.resident_pages(),
                reference.pages.len(),
                "resident pages diverged at op {}", i
            );
            prop_assert_eq!(
                mem.max_resident_pages(),
                reference.max_pages,
                "rss high-water diverged at op {}", i
            );
        }
    }
}
