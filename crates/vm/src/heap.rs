//! A glibc-like guest heap allocator.
//!
//! The paper's BTDP constructor leans on concrete allocator behaviour
//! (§5.2): it `memalign`s page-aligned page-sized chunks, frees all but a
//! random subset, and relies on the kept chunks staying out of circulation
//! so their pages can be turned into guards. This allocator provides the
//! needed semantics: first-fit with splitting and coalescing over a
//! dedicated heap region, page mapping on demand, and no page recycling
//! for live allocations.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::fault::Fault;
use crate::mem::{Memory, Perms, PAGE_SIZE};
use crate::VAddr;

/// Minimum allocation alignment, like glibc malloc.
pub const MIN_ALIGN: u64 = 16;

/// Guest heap state.
///
/// Chunk metadata is kept host-side (a hardened allocator would do the
/// same out-of-line bookkeeping); the payload bytes live in guest memory
/// and are fully visible to value-range analysis and heap leaks.
pub struct Heap {
    base: VAddr,
    size: u64,
    /// Free extents, keyed by start address.
    free: BTreeMap<VAddr, u64>,
    /// Live allocations: start → size.
    live: HashMap<VAddr, u64>,
    /// Total bytes currently allocated.
    in_use: u64,
    /// Number of successful allocations, for stats.
    pub alloc_count: u64,
}

impl Heap {
    /// Creates a heap spanning `[base, base + size)`.
    pub fn new(base: VAddr, size: u64) -> Heap {
        debug_assert_eq!(base % PAGE_SIZE, 0);
        let mut free = BTreeMap::new();
        free.insert(base, size);
        Heap {
            base,
            size,
            free,
            live: HashMap::new(),
            in_use: 0,
            alloc_count: 0,
        }
    }

    /// Start of the heap region.
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// Size of the heap region in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// `malloc(size)`: returns a 16-byte-aligned allocation, mapping the
    /// backing pages read-write on demand.
    pub fn malloc(&mut self, mem: &mut Memory, size: u64) -> Option<VAddr> {
        self.memalign(mem, MIN_ALIGN, size)
    }

    /// `memalign(align, size)`.
    ///
    /// `align` must be a power of two; it is raised to [`MIN_ALIGN`].
    pub fn memalign(&mut self, mem: &mut Memory, align: u64, size: u64) -> Option<VAddr> {
        let align = align.max(MIN_ALIGN);
        if !align.is_power_of_two() {
            return None;
        }
        let size = size.max(1).next_multiple_of(MIN_ALIGN);
        // First fit over free extents.
        let mut found: Option<(VAddr, u64, VAddr)> = None;
        for (&start, &len) in &self.free {
            let aligned = start.next_multiple_of(align);
            let pad = aligned - start;
            if len >= pad + size {
                found = Some((start, len, aligned));
                break;
            }
        }
        let (start, len, aligned) = found?;
        self.free.remove(&start);
        let pad = aligned - start;
        if pad > 0 {
            self.free.insert(start, pad);
        }
        let tail = len - pad - size;
        if tail > 0 {
            self.free.insert(aligned + size, tail);
        }
        self.live.insert(aligned, size);
        self.in_use += size;
        self.alloc_count += 1;
        // Map backing pages read-write. Pages may already be mapped from
        // earlier allocations sharing them; `map` preserves contents but
        // resets permissions, so skip pages that are already mapped
        // (e.g. a neighbouring guard page must stay a guard).
        let first = aligned / PAGE_SIZE;
        let last = (aligned + size - 1) / PAGE_SIZE;
        // Map contiguous runs of unmapped pages with one `map` call per
        // run, not one per page; already-mapped pages are skipped so a
        // neighbouring guard page keeps its permissions.
        let mut run_start: Option<u64> = None;
        for p in first..=last + 1 {
            let unmapped = p <= last && !mem.is_mapped(p * PAGE_SIZE);
            match (run_start, unmapped) {
                (None, true) => run_start = Some(p),
                (Some(s), false) => {
                    mem.map(s * PAGE_SIZE, (p - s) * PAGE_SIZE, Perms::RW);
                    run_start = None;
                }
                _ => {}
            }
        }
        Some(aligned)
    }

    /// `free(ptr)`. Freeing a null pointer is a no-op; freeing an unknown
    /// pointer is reported as a fault (heap corruption).
    pub fn free(&mut self, ptr: VAddr) -> Result<(), Fault> {
        if ptr == 0 {
            return Ok(());
        }
        let size = self
            .live
            .remove(&ptr)
            .ok_or(Fault::Unmapped { addr: ptr })?;
        self.in_use -= size;
        // Insert and coalesce with neighbours.
        let mut start = ptr;
        let mut len = size;
        if let Some((&prev_start, &prev_len)) = self.free.range(..ptr).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        if let Some((&next_start, &next_len)) = self.free.range(ptr + size..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                len += next_len;
            }
        }
        self.free.insert(start, len);
        Ok(())
    }

    /// Size of a live allocation, if `ptr` is one.
    pub fn allocation_size(&self, ptr: VAddr) -> Option<u64> {
        self.live.get(&ptr).copied()
    }

    /// Iterates over live allocations as `(addr, size)`.
    pub fn live_allocations(&self) -> impl Iterator<Item = (VAddr, u64)> + '_ {
        self.live.iter().map(|(&a, &s)| (a, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Memory, Heap) {
        (Memory::new(), Heap::new(0x10_0000_0000, 64 * 1024 * 1024))
    }

    #[test]
    fn malloc_returns_aligned_usable_memory() {
        let (mut mem, mut heap) = setup();
        let p = heap.malloc(&mut mem, 100).unwrap();
        assert_eq!(p % MIN_ALIGN, 0);
        mem.write_u64(p, 42).unwrap();
        assert_eq!(mem.read_u64(p).unwrap(), 42);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, mut heap) = setup();
        let mut ptrs = Vec::new();
        for i in 1..50u64 {
            ptrs.push((heap.malloc(&mut mem, i * 8).unwrap(), i * 8));
        }
        let mut sorted = ptrs.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn free_and_reuse() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        heap.free(a).unwrap();
        let b = heap.malloc(&mut mem, 64).unwrap();
        assert_eq!(a, b, "first-fit must reuse the freed block");
    }

    #[test]
    fn coalescing_allows_large_realloc() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 4096).unwrap();
        let b = heap.malloc(&mut mem, 4096).unwrap();
        // A sentinel allocation after b so the tail extent is separate.
        let _c = heap.malloc(&mut mem, 16).unwrap();
        heap.free(a).unwrap();
        heap.free(b).unwrap();
        let d = heap.malloc(&mut mem, 8192).unwrap();
        assert_eq!(d, a, "coalesced block must satisfy the large request");
    }

    #[test]
    fn memalign_page_aligned() {
        let (mut mem, mut heap) = setup();
        let _pad = heap.malloc(&mut mem, 24).unwrap();
        let p = heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(p % PAGE_SIZE, 0);
    }

    #[test]
    fn double_free_detected() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        heap.free(a).unwrap();
        assert!(heap.free(a).is_err());
    }

    #[test]
    fn free_null_is_noop() {
        let (_, mut heap) = setup();
        assert!(heap.free(0).is_ok());
    }

    #[test]
    fn kept_allocation_not_recycled() {
        // The BTDP pattern: allocate many page chunks, free some, and the
        // kept ones must never be handed out again.
        let (mut mem, mut heap) = setup();
        let chunks: Vec<_> = (0..16)
            .map(|_| heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap())
            .collect();
        for (i, &c) in chunks.iter().enumerate() {
            if i % 2 == 0 {
                heap.free(c).unwrap();
            }
        }
        for _ in 0..64 {
            let p = heap.malloc(&mut mem, 512).unwrap();
            for (i, &c) in chunks.iter().enumerate() {
                if i % 2 == 1 {
                    assert!(p + 512 <= c || p >= c + PAGE_SIZE, "kept chunk recycled");
                }
            }
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut mem = Memory::new();
        let mut heap = Heap::new(0x10_0000_0000, 4096);
        assert!(heap.malloc(&mut mem, 8192).is_none());
    }

    #[test]
    fn guard_page_perms_survive_neighbour_allocation() {
        let (mut mem, mut heap) = setup();
        let g = heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap();
        mem.protect(g, PAGE_SIZE, Perms::NONE).unwrap();
        // Subsequent allocations land elsewhere and must not undo the guard.
        for _ in 0..32 {
            heap.malloc(&mut mem, 4096).unwrap();
        }
        assert_eq!(mem.perms_at(g), Some(Perms::NONE));
    }
}
