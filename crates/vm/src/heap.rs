//! A glibc-like guest heap allocator.
//!
//! The paper's BTDP constructor leans on concrete allocator behaviour
//! (§5.2): it `memalign`s page-aligned page-sized chunks, frees all but a
//! random subset, and relies on the kept chunks staying out of circulation
//! so their pages can be turned into guards. This allocator provides the
//! needed semantics: first-fit with splitting and coalescing over a
//! dedicated heap region, page mapping on demand, and no page recycling
//! for live allocations.
//!
//! ## Page lifetime
//!
//! `free` gives backing pages their lifetime back instead of leaving them
//! resident and writable forever (which would make the `maxrss` analogue
//! of §6.2.5 measure allocation churn rather than live memory, and would
//! let use-after-free sail through the fault model):
//!
//! * a page **fully covered** by the coalesced free extent holds no live
//!   bytes and is taken out of circulation — first re-protected to
//!   [`Perms::NONE`] and parked on a small FIFO *quarantine*, so a
//!   dangling access faults like a guard-page hit (the reactive R²C
//!   detection path), then unmapped once the quarantine overflows, so
//!   [`Memory::resident_pages`] actually drops after free churn;
//! * pages **shared** with a live allocation keep their mapping and
//!   permissions;
//! * pages the guest already turned into guards (`mprotect` to no
//!   access) are left untouched — a kept BTDP chunk's guard must survive
//!   any neighbouring free.
//!
//! Allocation knows how to take a page back out of quarantine: reusing a
//! quarantined page re-protects it to read-write, while an unmapped page
//! is simply mapped fresh (and therefore reads as zeros).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;

use crate::fault::Fault;
use crate::mem::{Memory, Perms, PAGE_SIZE};
use crate::VAddr;

/// Minimum allocation alignment, like glibc malloc.
pub const MIN_ALIGN: u64 = 16;

/// Default number of fully-freed pages held in the no-access quarantine
/// before the oldest is unmapped for good. Small on purpose: it bounds
/// how far resident memory may exceed live memory after free churn.
pub const DEFAULT_QUARANTINE_PAGES: usize = 8;

/// Guest heap state.
///
/// Chunk metadata is kept host-side (a hardened allocator would do the
/// same out-of-line bookkeeping); the payload bytes live in guest memory
/// and are fully visible to value-range analysis and heap leaks.
pub struct Heap {
    base: VAddr,
    size: u64,
    /// Free extents, keyed by start address.
    free: BTreeMap<VAddr, u64>,
    /// Live allocations: start → size.
    live: HashMap<VAddr, u64>,
    /// Total bytes currently allocated.
    in_use: u64,
    /// Number of successful allocations, for stats.
    pub alloc_count: u64,
    /// Number of successful frees, for stats.
    pub free_count: u64,
    /// Total pages unmapped after falling out of quarantine, for stats.
    pub released_pages: u64,
    /// Fully-freed pages currently mapped with no access, oldest first.
    quarantine: VecDeque<u64>,
    quarantine_cap: usize,
}

impl Heap {
    /// Creates a heap spanning `[base, base + size)`.
    pub fn new(base: VAddr, size: u64) -> Heap {
        debug_assert_eq!(base % PAGE_SIZE, 0);
        let mut free = BTreeMap::new();
        free.insert(base, size);
        Heap {
            base,
            size,
            free,
            live: HashMap::new(),
            in_use: 0,
            alloc_count: 0,
            free_count: 0,
            released_pages: 0,
            quarantine: VecDeque::new(),
            quarantine_cap: DEFAULT_QUARANTINE_PAGES,
        }
    }

    /// Start of the heap region.
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// Size of the heap region in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of pages currently parked in the no-access quarantine.
    pub fn quarantined_pages(&self) -> usize {
        self.quarantine.len()
    }

    /// Resizes the quarantine, unmapping the oldest entries if the new
    /// capacity is smaller than the current population. Capacity 0
    /// unmaps fully-freed pages immediately.
    pub fn set_quarantine_capacity(&mut self, mem: &mut Memory, cap: usize) {
        self.quarantine_cap = cap;
        self.evict_quarantine_overflow(mem);
    }

    /// `malloc(size)`: returns a 16-byte-aligned allocation, mapping the
    /// backing pages read-write on demand.
    pub fn malloc(&mut self, mem: &mut Memory, size: u64) -> Option<VAddr> {
        self.memalign(mem, MIN_ALIGN, size)
    }

    /// `memalign(align, size)`.
    ///
    /// `align` must be a power of two; it is raised to [`MIN_ALIGN`].
    /// Requests the region cannot hold (including degenerate
    /// guest-controlled values whose rounding would overflow) return
    /// `None` without mutating any state — an exhausted `memalign` must
    /// not leak its padding extent or map pages it cannot hand out.
    pub fn memalign(&mut self, mem: &mut Memory, align: u64, size: u64) -> Option<VAddr> {
        let align = align.max(MIN_ALIGN);
        if !align.is_power_of_two() {
            return None;
        }
        let size = size.max(1).checked_next_multiple_of(MIN_ALIGN)?;
        // First fit over free extents. All arithmetic is overflow-checked:
        // `align` and `size` come straight from guest registers.
        let mut found: Option<(VAddr, u64, VAddr)> = None;
        for (&start, &len) in &self.free {
            let Some(aligned) = start.checked_next_multiple_of(align) else {
                continue;
            };
            let pad = aligned - start;
            if pad <= len && len - pad >= size {
                found = Some((start, len, aligned));
                break;
            }
        }
        let (start, len, aligned) = found?;
        self.free.remove(&start);
        let pad = aligned - start;
        if pad > 0 {
            self.free.insert(start, pad);
        }
        let tail = len - pad - size;
        if tail > 0 {
            self.free.insert(aligned + size, tail);
        }
        self.live.insert(aligned, size);
        self.in_use += size;
        self.alloc_count += 1;
        // Map backing pages read-write. Pages may already be mapped from
        // earlier allocations sharing them; those keep their contents
        // *and* permissions (a neighbouring guard page must stay a
        // guard) — except quarantined ones, which are rescued back to
        // read-write. The rescue scans the (small, bounded) quarantine,
        // and `map_missing` fills the holes in bulk, so a huge malloc
        // never pays per-page probes here.
        let first = aligned / PAGE_SIZE;
        let last = (aligned + size - 1) / PAGE_SIZE;
        let mut qi = 0;
        while qi < self.quarantine.len() {
            let q = self.quarantine[qi];
            if (first..=last).contains(&q) {
                self.quarantine.remove(qi);
                mem.protect(q * PAGE_SIZE, PAGE_SIZE, Perms::RW)
                    .expect("quarantined page is mapped");
            } else {
                qi += 1;
            }
        }
        mem.map_missing(aligned, size, Perms::RW);
        Some(aligned)
    }

    /// `free(ptr)`. Freeing a null pointer is a no-op; freeing an unknown
    /// pointer is reported as a fault (heap corruption).
    ///
    /// Pages left without any live bytes are quarantined (no access) and
    /// eventually unmapped — see the module docs on page lifetime.
    pub fn free(&mut self, mem: &mut Memory, ptr: VAddr) -> Result<(), Fault> {
        if ptr == 0 {
            return Ok(());
        }
        let size = self
            .live
            .remove(&ptr)
            .ok_or(Fault::Unmapped { addr: ptr })?;
        self.in_use -= size;
        self.free_count += 1;
        // Insert and coalesce with neighbours.
        let mut start = ptr;
        let mut len = size;
        if let Some((&prev_start, &prev_len)) = self.free.range(..ptr).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        if let Some((&next_start, &next_len)) = self.free.range(ptr + size..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                len += next_len;
            }
        }
        self.free.insert(start, len);
        // Retire pages that no longer back any live allocation. Only
        // pages intersecting the freed chunk can have changed state: a
        // page becomes fully free exactly when this free supplies its
        // last live bytes, and the coalesced extent contains the chunk.
        // The candidates are the chunk's pages fully covered by the
        // coalesced extent — a contiguous range, retired in bulk.
        // `retire_accessible` skips exactly what the old per-page walk
        // skipped: unmapped pages (already released), no-access pages
        // (quarantined earlier, or guest-made guards — both must stay
        // exactly as they are).
        let first = ptr / PAGE_SIZE;
        let lo = first.max(start.div_ceil(PAGE_SIZE));
        let hi = ((ptr + size - 1) / PAGE_SIZE + 1).min((start + len) / PAGE_SIZE);
        if lo < hi {
            let quarantine = &mut self.quarantine;
            mem.retire_accessible(lo * PAGE_SIZE, (hi - lo) * PAGE_SIZE, |p| {
                quarantine.push_back(p)
            });
            self.evict_quarantine_overflow(mem);
        }
        Ok(())
    }

    fn evict_quarantine_overflow(&mut self, mem: &mut Memory) {
        while self.quarantine.len() > self.quarantine_cap {
            let q = self.quarantine.pop_front().expect("len checked");
            mem.unmap(q * PAGE_SIZE, PAGE_SIZE);
            self.released_pages += 1;
        }
    }

    /// Size of a live allocation, if `ptr` is one.
    pub fn allocation_size(&self, ptr: VAddr) -> Option<u64> {
        self.live.get(&ptr).copied()
    }

    /// Iterates over live allocations as `(addr, size)`.
    pub fn live_allocations(&self) -> impl Iterator<Item = (VAddr, u64)> + '_ {
        self.live.iter().map(|(&a, &s)| (a, s))
    }

    /// Verifies the allocator/memory bookkeeping invariants, returning a
    /// description of the first violation. Diagnostic use (proptests and
    /// debugging); cost is O(resident heap pages + live allocations).
    ///
    /// The invariants:
    /// 1. every page backing a live allocation is mapped;
    /// 2. `in_use` equals the sum of live allocation sizes;
    /// 3. quarantined pages are mapped with no access and hold no live
    ///    bytes;
    /// 4. an accessible (non-`NONE`) mapped heap page backs at least one
    ///    live allocation — nothing stays resident and writable without
    ///    a live owner.
    pub fn check_invariants(&self, mem: &Memory) -> Result<(), String> {
        let mut live: Vec<(VAddr, u64)> = self.live.iter().map(|(&a, &s)| (a, s)).collect();
        live.sort_unstable();
        let mut total = 0u64;
        for &(a, s) in &live {
            total += s;
            for p in a / PAGE_SIZE..=(a + s - 1) / PAGE_SIZE {
                if !mem.is_mapped(p * PAGE_SIZE) {
                    return Err(format!(
                        "live allocation {a:#x}+{s:#x} has unmapped page {:#x}",
                        p * PAGE_SIZE
                    ));
                }
            }
        }
        if total != self.in_use {
            return Err(format!(
                "in_use {} != sum of live sizes {total}",
                self.in_use
            ));
        }
        // Live allocations never overlap, so sorting by start also sorts
        // by end: the last allocation starting below the page's end is
        // the only candidate overlap.
        let overlaps_live = |p: u64| -> bool {
            let (lo, hi) = (p * PAGE_SIZE, (p + 1) * PAGE_SIZE);
            let i = live.partition_point(|&(a, _)| a < hi);
            i > 0 && live[i - 1].0 + live[i - 1].1 > lo
        };
        for (p, perms) in mem.mapped_pages_in(self.base, self.size) {
            let quarantined = self.quarantine.contains(&p);
            let live_here = overlaps_live(p);
            if quarantined {
                if perms != Perms::NONE {
                    return Err(format!(
                        "quarantined page {:#x} is {perms}, not no-access",
                        p * PAGE_SIZE
                    ));
                }
                if live_here {
                    return Err(format!(
                        "quarantined page {:#x} overlaps a live allocation",
                        p * PAGE_SIZE
                    ));
                }
            } else if !live_here && perms != Perms::NONE {
                return Err(format!(
                    "page {:#x} is resident {perms} with no live owner",
                    p * PAGE_SIZE
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Memory, Heap) {
        (Memory::new(), Heap::new(0x10_0000_0000, 64 * 1024 * 1024))
    }

    #[test]
    fn malloc_returns_aligned_usable_memory() {
        let (mut mem, mut heap) = setup();
        let p = heap.malloc(&mut mem, 100).unwrap();
        assert_eq!(p % MIN_ALIGN, 0);
        mem.write_u64(p, 42).unwrap();
        assert_eq!(mem.read_u64(p).unwrap(), 42);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, mut heap) = setup();
        let mut ptrs = Vec::new();
        for i in 1..50u64 {
            ptrs.push((heap.malloc(&mut mem, i * 8).unwrap(), i * 8));
        }
        let mut sorted = ptrs.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn free_and_reuse() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        heap.free(&mut mem, a).unwrap();
        let b = heap.malloc(&mut mem, 64).unwrap();
        assert_eq!(a, b, "first-fit must reuse the freed block");
        mem.write_u64(b, 7).unwrap();
        assert_eq!(mem.read_u64(b).unwrap(), 7);
    }

    #[test]
    fn coalescing_allows_large_realloc() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 4096).unwrap();
        let b = heap.malloc(&mut mem, 4096).unwrap();
        // A sentinel allocation after b so the tail extent is separate.
        let _c = heap.malloc(&mut mem, 16).unwrap();
        heap.free(&mut mem, a).unwrap();
        heap.free(&mut mem, b).unwrap();
        let d = heap.malloc(&mut mem, 8192).unwrap();
        assert_eq!(d, a, "coalesced block must satisfy the large request");
    }

    #[test]
    fn memalign_page_aligned() {
        let (mut mem, mut heap) = setup();
        let _pad = heap.malloc(&mut mem, 24).unwrap();
        let p = heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(p % PAGE_SIZE, 0);
    }

    #[test]
    fn double_free_detected() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        heap.free(&mut mem, a).unwrap();
        assert!(heap.free(&mut mem, a).is_err());
    }

    #[test]
    fn free_null_is_noop() {
        let (mut mem, mut heap) = setup();
        assert!(heap.free(&mut mem, 0).is_ok());
    }

    #[test]
    fn kept_allocation_not_recycled() {
        // The BTDP pattern: allocate many page chunks, free some, and the
        // kept ones must never be handed out again.
        let (mut mem, mut heap) = setup();
        let chunks: Vec<_> = (0..16)
            .map(|_| heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap())
            .collect();
        for (i, &c) in chunks.iter().enumerate() {
            if i % 2 == 0 {
                heap.free(&mut mem, c).unwrap();
            }
        }
        for _ in 0..64 {
            let p = heap.malloc(&mut mem, 512).unwrap();
            for (i, &c) in chunks.iter().enumerate() {
                if i % 2 == 1 {
                    assert!(p + 512 <= c || p >= c + PAGE_SIZE, "kept chunk recycled");
                }
            }
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut mem = Memory::new();
        let mut heap = Heap::new(0x10_0000_0000, 4096);
        assert!(heap.malloc(&mut mem, 8192).is_none());
    }

    #[test]
    fn degenerate_requests_do_not_panic_or_leak() {
        let (mut mem, mut heap) = setup();
        // Guest-controlled values whose rounding would overflow u64.
        assert!(heap.malloc(&mut mem, u64::MAX).is_none());
        assert!(heap.memalign(&mut mem, 1 << 63, 16).is_none());
        assert!(heap.memalign(&mut mem, u64::MAX, 16).is_none());
        assert!(heap.memalign(&mut mem, 16, u64::MAX - 7).is_none());
        // Nothing leaked: the whole region is still one free extent and
        // a normal allocation still succeeds at the base.
        assert_eq!(heap.in_use(), 0);
        let p = heap.malloc(&mut mem, 64).unwrap();
        assert_eq!(p, heap.base());
        heap.check_invariants(&mem).unwrap();
    }

    #[test]
    fn guard_page_perms_survive_neighbour_allocation() {
        let (mut mem, mut heap) = setup();
        let g = heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap();
        mem.protect(g, PAGE_SIZE, Perms::NONE).unwrap();
        // Subsequent allocations land elsewhere and must not undo the guard.
        for _ in 0..32 {
            heap.malloc(&mut mem, 4096).unwrap();
        }
        assert_eq!(mem.perms_at(g), Some(Perms::NONE));
    }

    #[test]
    fn guard_page_survives_neighbour_free() {
        // A kept BTDP chunk turned guard must stay a guard (mapped, no
        // access) even when everything around it is freed and retired.
        let (mut mem, mut heap) = setup();
        let chunks: Vec<_> = (0..4)
            .map(|_| heap.memalign(&mut mem, PAGE_SIZE, PAGE_SIZE).unwrap())
            .collect();
        mem.protect(chunks[1], PAGE_SIZE, Perms::NONE).unwrap();
        for &c in &[chunks[0], chunks[2], chunks[3]] {
            heap.free(&mut mem, c).unwrap();
        }
        assert_eq!(mem.perms_at(chunks[1]), Some(Perms::NONE));
        assert!(mem.is_mapped(chunks[1]));
        heap.check_invariants(&mem).unwrap();
    }

    #[test]
    fn freed_pages_are_quarantined_then_released() {
        let (mut mem, mut heap) = setup();
        heap.set_quarantine_capacity(&mut mem, 2);
        let chunk = 4 * PAGE_SIZE;
        let p = heap.malloc(&mut mem, chunk).unwrap();
        assert_eq!(mem.resident_pages(), 4);
        heap.free(&mut mem, p).unwrap();
        // Two newest pages quarantined (no access), two oldest unmapped.
        assert_eq!(heap.quarantined_pages(), 2);
        assert_eq!(mem.resident_pages(), 2);
        assert_eq!(mem.perms_at(p + 3 * PAGE_SIZE), Some(Perms::NONE));
        assert!(!mem.is_mapped(p));
        assert_eq!(heap.released_pages, 2);
        heap.check_invariants(&mem).unwrap();
    }

    #[test]
    fn dangling_access_faults_after_free() {
        let (mut mem, mut heap) = setup();
        let p = heap.malloc(&mut mem, PAGE_SIZE).unwrap();
        mem.write_u64(p, 0xdead).unwrap();
        heap.free(&mut mem, p).unwrap();
        // Classic use-after-free: the quarantined page denies everything.
        assert!(matches!(
            mem.read_u64(p),
            Err(Fault::Protection { perms, .. }) if perms == Perms::NONE
        ));
        assert!(matches!(
            mem.write_u64(p, 1),
            Err(Fault::Protection { write: true, .. })
        ));
    }

    #[test]
    fn shared_page_stays_mapped_until_both_sides_free() {
        let (mut mem, mut heap) = setup();
        // Two small allocations share the first heap page.
        let a = heap.malloc(&mut mem, 64).unwrap();
        let b = heap.malloc(&mut mem, 64).unwrap();
        assert_eq!(a / PAGE_SIZE, b / PAGE_SIZE, "test premise: same page");
        heap.free(&mut mem, a).unwrap();
        // b is still live on that page: it must stay readable/writable.
        mem.write_u64(b, 5).unwrap();
        assert_eq!(mem.read_u64(b).unwrap(), 5);
        heap.free(&mut mem, b).unwrap();
        // Now the page holds no live bytes and is retired.
        assert!(mem.read_u64(b).is_err());
        heap.check_invariants(&mem).unwrap();
    }

    #[test]
    fn churn_does_not_grow_residency() {
        let (mut mem, mut heap) = setup();
        let chunk_pages = 16u64;
        for _ in 0..200 {
            let p = heap.malloc(&mut mem, chunk_pages * PAGE_SIZE).unwrap();
            mem.write_u64(p, 1).unwrap();
            heap.free(&mut mem, p).unwrap();
        }
        // Peak residency is bounded by peak live pages plus the
        // quarantine, not by 200 × chunk (let alone the arena size).
        assert!(
            mem.max_resident_pages() <= chunk_pages as usize + DEFAULT_QUARANTINE_PAGES,
            "max_resident_pages {} escaped the live-set bound",
            mem.max_resident_pages()
        );
        heap.check_invariants(&mem).unwrap();
    }
}
