//! `.eh_frame`-style unwind tables.
//!
//! R²C must keep exception handling and stack unwinding working even
//! though BTRAs move the return address inside the frame (paper §7.2.4).
//! As in DWARF CFI, entries are keyed by program-counter ranges — not by
//! function symbols — and record where the canonical frame address (CFA)
//! and return address live relative to the current stack pointer. The
//! code generator emits an entry whenever the stack-pointer delta
//! changes (prologue, BTRA post-offset, frame allocation, call-site
//! setup windows).

use crate::VAddr;

/// One row of the unwind table: valid for `pc` in `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnwindEntry {
    /// First covered pc.
    pub start: VAddr,
    /// One past the last covered pc.
    pub end: VAddr,
    /// Offset added to `rsp` to find the slot holding the return
    /// address (in bytes).
    pub ra_offset: i64,
    /// Offset added to `rsp` to compute the caller's `rsp` right after
    /// the `ret` would have executed (i.e. CFA).
    pub caller_sp_offset: i64,
}

/// The unwind table for an image.
#[derive(Clone, Debug, Default)]
pub struct UnwindTable {
    entries: Vec<UnwindEntry>,
}

impl UnwindTable {
    /// Creates an empty table.
    pub fn new() -> UnwindTable {
        UnwindTable::default()
    }

    /// Adds an entry. Entries may be pushed in any order; [`finish`]
    /// sorts them.
    ///
    /// [`finish`]: UnwindTable::finish
    pub fn push(&mut self, e: UnwindEntry) {
        debug_assert!(e.start < e.end, "empty unwind range");
        self.entries.push(e);
    }

    /// Sorts entries by start pc and checks they do not overlap.
    pub fn finish(&mut self) -> Result<(), String> {
        self.entries.sort_by_key(|e| e.start);
        for w in self.entries.windows(2) {
            if w[0].end > w[1].start {
                return Err(format!(
                    "overlapping unwind entries: [{:#x},{:#x}) and [{:#x},{:#x})",
                    w[0].start, w[0].end, w[1].start, w[1].end
                ));
            }
        }
        Ok(())
    }

    /// Looks up the entry covering `pc`.
    pub fn lookup(&self, pc: VAddr) -> Option<&UnwindEntry> {
        let idx = self.entries.partition_point(|e| e.start <= pc);
        if idx == 0 {
            return None;
        }
        let e = &self.entries[idx - 1];
        (pc < e.end).then_some(e)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries (sorted after [`finish`]).
    ///
    /// [`finish`]: UnwindTable::finish
    pub fn iter(&self) -> impl Iterator<Item = &UnwindEntry> {
        self.entries.iter()
    }
}

/// One frame produced by the unwinder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Program counter in this frame (return address for caller frames).
    pub pc: VAddr,
    /// Stack pointer on entry to the *next* unwind step.
    pub sp: VAddr,
}

/// Walks the stack using the unwind table.
///
/// `read_word` abstracts stack memory access so both the VM and tests
/// can drive the unwinder. Returns the frames from innermost outward;
/// stops when no table entry covers the pc (e.g. reached `main`'s caller)
/// or after `max_frames`.
pub fn unwind<F>(
    table: &UnwindTable,
    mut pc: VAddr,
    mut sp: VAddr,
    read_word: F,
    max_frames: usize,
) -> Vec<Frame>
where
    F: Fn(VAddr) -> Option<u64>,
{
    let mut frames = vec![Frame { pc, sp }];
    while frames.len() < max_frames {
        let Some(entry) = table.lookup(pc) else { break };
        let ra_slot = sp.wrapping_add_signed(entry.ra_offset);
        let Some(ra) = read_word(ra_slot) else { break };
        let caller_sp = sp.wrapping_add_signed(entry.caller_sp_offset);
        if ra == 0 {
            break;
        }
        pc = ra;
        sp = caller_sp;
        frames.push(Frame { pc, sp });
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> UnwindTable {
        let mut t = UnwindTable::new();
        // A leaf function whose RA sits 16 bytes above rsp (post-offset 16).
        t.push(UnwindEntry {
            start: 0x100,
            end: 0x200,
            ra_offset: 16,
            caller_sp_offset: 24,
        });
        // Its caller: RA directly at rsp.
        t.push(UnwindEntry {
            start: 0x300,
            end: 0x400,
            ra_offset: 0,
            caller_sp_offset: 8,
        });
        t.finish().unwrap();
        t
    }

    #[test]
    fn lookup_respects_ranges() {
        let t = table();
        assert!(t.lookup(0x100).is_some());
        assert!(t.lookup(0x1ff).is_some());
        assert!(t.lookup(0x200).is_none());
        assert!(t.lookup(0x50).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut t = UnwindTable::new();
        t.push(UnwindEntry {
            start: 0x100,
            end: 0x200,
            ra_offset: 0,
            caller_sp_offset: 8,
        });
        t.push(UnwindEntry {
            start: 0x180,
            end: 0x280,
            ra_offset: 0,
            caller_sp_offset: 8,
        });
        assert!(t.finish().is_err());
    }

    #[test]
    fn unwind_through_offset_frames() {
        let t = table();
        // Stack: at sp+16 the leaf's RA (0x350, inside the caller); the
        // caller's frame has its RA (0) at its sp — which terminates.
        let stack = move |addr: VAddr| -> Option<u64> {
            match addr {
                0x7f10 => Some(0x350), // leaf RA slot (sp 0x7f00 + 16)
                0x7f18 => Some(0),     // caller RA slot (caller sp 0x7f18 + 0)
                _ => None,
            }
        };
        let frames = unwind(&t, 0x150, 0x7f00, stack, 16);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].pc, 0x350);
        assert_eq!(frames[1].sp, 0x7f18);
    }

    #[test]
    fn unwind_stops_at_uncovered_pc() {
        let t = table();
        let frames = unwind(&t, 0x900, 0x7f00, |_| Some(0x1234), 16);
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn unwind_respects_max_frames() {
        let mut t = UnwindTable::new();
        t.push(UnwindEntry {
            start: 0x100,
            end: 0x200,
            ra_offset: 0,
            caller_sp_offset: 8,
        });
        t.finish().unwrap();
        // Self-referential stack that would loop forever.
        let frames = unwind(&t, 0x150, 0x7000, |_| Some(0x150), 5);
        assert_eq!(frames.len(), 5);
    }
}
