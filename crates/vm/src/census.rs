//! Dynamic instruction-class pair census (DESIGN.md §11/§14).
//!
//! The fusion catalogue of the decoded execution engine was sized from
//! a census of *executed fall-through-adjacent instruction pairs* over
//! the 12 SPEC-style workloads: the four register-shuffle pairs alone
//! cover ~84% of dynamic pairs, which is what justifies a 15-pattern
//! catalogue. Every time the workload family grows (the `r2c-replay`
//! captured archetypes being the first such growth), the census must be
//! re-run to check that the catalogue still covers enough of the new
//! dynamic mix — this module is that instrument.
//!
//! A [`PairCensus`] attaches to a [`Tracer`](crate::Tracer) (census
//! runs are trace runs: they take the reference `exec_slow` path, so
//! counting cannot perturb the measured execution) and observes the
//! per-instruction `step` stream. A pair is counted when two
//! consecutively executed instructions are *adjacent in memory*
//! (`index == prev_index + 1`) — exactly the adjacency the fusion pass
//! requires — and classified by the same instruction classes the
//! catalogue patterns are written in.

use std::collections::HashMap;

use crate::image::Image;
use crate::insn::Insn;
use crate::VAddr;

/// Instruction classes, one per [`Insn`] variant.
pub const CLASS_NAMES: &[&str] = &[
    "MovImm",
    "MovAbs",
    "MovReg",
    "Load",
    "Store",
    "StoreImm",
    "Lea",
    "Push",
    "PushImm",
    "Pop",
    "AluReg",
    "AluImm",
    "Div",
    "Rem",
    "CmpReg",
    "CmpImm",
    "Test",
    "SetCc",
    "LoadAbs",
    "VLoadAbs",
    "Call",
    "CallInd",
    "CallNative",
    "Ret",
    "Jmp",
    "JmpInd",
    "Jcc",
    "Nop",
    "Trap",
    "VLoad",
    "VStore",
    "VZeroUpper",
    "Halt",
];

/// Class index of one instruction (an index into [`CLASS_NAMES`]).
pub fn class_of(insn: &Insn) -> u8 {
    match insn {
        Insn::MovImm { .. } => 0,
        Insn::MovAbs { .. } => 1,
        Insn::MovReg { .. } => 2,
        Insn::Load { .. } => 3,
        Insn::Store { .. } => 4,
        Insn::StoreImm { .. } => 5,
        Insn::Lea { .. } => 6,
        Insn::Push { .. } => 7,
        Insn::PushImm { .. } => 8,
        Insn::Pop { .. } => 9,
        Insn::AluReg { .. } => 10,
        Insn::AluImm { .. } => 11,
        Insn::Div { .. } => 12,
        Insn::Rem { .. } => 13,
        Insn::CmpReg { .. } => 14,
        Insn::CmpImm { .. } => 15,
        Insn::Test { .. } => 16,
        Insn::SetCc { .. } => 17,
        Insn::LoadAbs { .. } => 18,
        Insn::VLoadAbs { .. } => 19,
        Insn::Call { .. } => 20,
        Insn::CallInd { .. } => 21,
        Insn::CallNative { .. } => 22,
        Insn::Ret => 23,
        Insn::Jmp { .. } => 24,
        Insn::JmpInd { .. } => 25,
        Insn::Jcc { .. } => 26,
        Insn::Nop { .. } => 27,
        Insn::Trap => 28,
        Insn::VLoad { .. } => 29,
        Insn::VStore { .. } => 30,
        Insn::VZeroUpper => 31,
        Insn::Halt => 32,
    }
}

/// The 15 class pairs of the fusion catalogue (`decode::fuse_pair`), in
/// catalogue order. Kept in sync by
/// [`tests::catalogue_matches_fuse_pair`].
pub const CATALOGUE_PAIRS: &[(&str, &str)] = &[
    ("MovReg", "AluReg"),
    ("AluReg", "MovReg"),
    ("MovImm", "MovReg"),
    ("MovReg", "MovImm"),
    ("MovReg", "Store"),
    ("Load", "MovReg"),
    ("Store", "Load"),
    ("Lea", "MovReg"),
    ("CmpReg", "Jcc"),
    ("CmpImm", "Jcc"),
    ("Test", "Jcc"),
    ("CmpReg", "SetCc"),
    ("Push", "Push"),
    ("Pop", "Pop"),
    ("Pop", "Ret"),
];

fn class_index(name: &str) -> u8 {
    CLASS_NAMES
        .iter()
        .position(|&n| n == name)
        .expect("catalogue names a known class") as u8
}

/// Census accumulator: executed fall-through-adjacent class pairs.
#[derive(Clone, Debug)]
pub struct PairCensus {
    /// Instruction start addresses, sorted (the image's `insn_addrs`).
    addrs: Vec<VAddr>,
    /// Class of each instruction, parallel to `addrs`.
    classes: Vec<u8>,
    /// (class, class) → executed adjacent-pair count.
    counts: HashMap<(u8, u8), u64>,
    /// Index of the previously executed instruction.
    prev: Option<u32>,
    /// Total executed adjacent pairs.
    total: u64,
}

impl PairCensus {
    /// Builds a census keyed to `image`'s instruction stream.
    pub fn new(image: &Image) -> PairCensus {
        PairCensus {
            addrs: image.insn_addrs.clone(),
            classes: image.insns.iter().map(class_of).collect(),
            counts: HashMap::new(),
            prev: None,
            total: 0,
        }
    }

    /// Observes the next executed instruction (by start address).
    #[inline]
    pub fn note(&mut self, addr: VAddr) {
        let Ok(idx) = self.addrs.binary_search(&addr) else {
            // Not an instruction start this census knows (e.g. an image
            // swapped under the tracer) — break the adjacency chain.
            self.prev = None;
            return;
        };
        let idx = idx as u32;
        if let Some(p) = self.prev {
            if idx == p + 1 {
                let key = (self.classes[p as usize], self.classes[idx as usize]);
                *self.counts.entry(key).or_insert(0) += 1;
                self.total += 1;
            }
        }
        self.prev = Some(idx);
    }

    /// Merges another census (same class universe) into this one.
    pub fn merge(&mut self, other: &PairCensus) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
    }

    /// Total executed fall-through-adjacent pairs.
    pub fn total_pairs(&self) -> u64 {
        self.total
    }

    /// Executed adjacent pairs whose class pair is in the fusion
    /// catalogue.
    pub fn covered_pairs(&self) -> u64 {
        CATALOGUE_PAIRS
            .iter()
            .map(|&(a, b)| {
                self.counts
                    .get(&(class_index(a), class_index(b)))
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Catalogue coverage in [0, 1] (1.0 for an empty census: nothing
    /// executed means nothing uncovered).
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered_pairs() as f64 / self.total as f64
        }
    }

    /// All pair rows as `("A->B", count, in_catalogue)`, sorted by
    /// descending count then name.
    pub fn rows(&self) -> Vec<(String, u64, bool)> {
        let catalogue: Vec<(u8, u8)> = CATALOGUE_PAIRS
            .iter()
            .map(|&(a, b)| (class_index(a), class_index(b)))
            .collect();
        let mut rows: Vec<(String, u64, bool)> = self
            .counts
            .iter()
            .map(|(&(a, b), &n)| {
                (
                    format!("{}->{}", CLASS_NAMES[a as usize], CLASS_NAMES[b as usize]),
                    n,
                    catalogue.contains(&(a, b)),
                )
            })
            .collect();
        rows.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{Image, SectionLayout};
    use crate::insn::{AluOp, Gpr};

    fn image_with(insns: Vec<Insn>) -> Image {
        let mut addr = 0x40_0000u64;
        let insn_addrs: Vec<VAddr> = insns
            .iter()
            .map(|i| {
                let a = addr;
                addr += i.len();
                a
            })
            .collect();
        Image {
            insns,
            insn_addrs,
            layout: SectionLayout {
                text_base: 0x40_0000,
                text_end: 0x40_1000,
                data_base: 0x60_0000,
                data_end: 0x60_1000,
                heap_base: 0x10_0000_0000,
                heap_size: 1 << 20,
                stack_top: 0x7fff_ffff_f000,
                stack_size: 1 << 20,
            },
            entry: 0x40_0000,
            constructors: vec![],
            data_init: vec![],
            xom: true,
            symbols: vec![],
            natives: vec![],
            unwind: Default::default(),
        }
    }

    #[test]
    fn counts_only_fall_through_adjacent_pairs() {
        let img = image_with(vec![
            Insn::MovReg {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
            },
            Insn::AluReg {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            Insn::Ret,
        ]);
        let mut c = PairCensus::new(&img);
        // Execute 0 -> 1 (adjacent), then jump back to 0 (not adjacent),
        // then 0 -> 1 -> 2 (two adjacent pairs).
        for &i in &[0usize, 1, 0, 1, 2] {
            c.note(img.insn_addrs[i]);
        }
        assert_eq!(c.total_pairs(), 3);
        assert_eq!(c.covered_pairs(), 2, "MovReg->AluReg is catalogued");
        let rows = c.rows();
        assert_eq!(rows[0].0, "MovReg->AluReg");
        assert_eq!(rows[0].1, 2);
        assert!(rows[0].2);
        assert!((c.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_address_breaks_the_chain() {
        let img = image_with(vec![
            Insn::MovReg {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
            },
            Insn::Ret,
        ]);
        let mut c = PairCensus::new(&img);
        c.note(img.insn_addrs[0]);
        c.note(0xdead_beef); // not an instruction start
        c.note(img.insn_addrs[1]);
        assert_eq!(c.total_pairs(), 0);
        assert_eq!(c.coverage(), 1.0, "empty census counts as covered");
    }

    #[test]
    fn catalogue_matches_fuse_pair() {
        // Every catalogue entry must actually fuse, pinning this table
        // to `decode::fuse_pair`. (The reverse direction — fuse_pair
        // having no pattern outside this table — is covered by the
        // catalogue size: 15 entries, 15 fused pair forms.)
        assert_eq!(CATALOGUE_PAIRS.len(), 15);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in CATALOGUE_PAIRS {
            assert!(seen.insert((a, b)), "duplicate catalogue pair {a}->{b}");
            // Names must resolve to classes.
            let _ = (class_index(a), class_index(b));
        }
    }

    #[test]
    fn merge_accumulates() {
        let img = image_with(vec![
            Insn::Push { src: Gpr::Rbp },
            Insn::Push { src: Gpr::Rbx },
        ]);
        let mut a = PairCensus::new(&img);
        a.note(img.insn_addrs[0]);
        a.note(img.insn_addrs[1]);
        let mut b = PairCensus::new(&img);
        b.note(img.insn_addrs[0]);
        b.note(img.insn_addrs[1]);
        a.merge(&b);
        assert_eq!(a.total_pairs(), 2);
        assert_eq!(a.covered_pairs(), 2, "Push->Push is catalogued");
    }
}
