//! # r2c-vm — simulated x86-64-style machine
//!
//! This crate provides the hardware substrate for the R²C reproduction: a
//! byte-addressed, paged virtual machine that is close enough to x86-64 /
//! System V for the paper's mechanisms to be meaningful:
//!
//! * **Paged memory with R/W/X permissions** ([`mem::Memory`]), including
//!   execute-only text mappings (fetch checks X, data reads check R) and
//!   guard pages with all permissions revoked. Dereferencing a
//!   booby-trapped data pointer therefore faults exactly as in the paper.
//! * **A register file** ([`regs`]) with the 16 general-purpose registers
//!   and 16 YMM vector registers used by the AVX2 BTRA setup sequence.
//! * **An instruction set** ([`insn::Insn`]) with byte-accurate encoded
//!   lengths, so code-layout diversification (NOP insertion, prolog traps,
//!   function shuffling) genuinely moves addresses.
//! * **An interpreter** ([`Vm`]) with fault handling, booby-trap
//!   detection events, call counting and a cycle cost model.
//! * **A glibc-like heap allocator** ([`heap::Heap`]) exposed to guest code
//!   through native-function hypercalls (`malloc`, `free`, `memalign`,
//!   `mprotect`), which the R²C startup constructor uses to place BTDP
//!   guard pages.
//! * **Machine cost models** ([`machine::MachineConfig`]) for the four
//!   evaluation machines of the paper (i9-9900K, EPYC Rome, TR 3970X,
//!   Xeon 8358), consisting of per-instruction-class costs plus an
//!   instruction-cache simulator.
//! * **Unwind tables** ([`unwind`]) in the spirit of `.eh_frame`, covering
//!   the stack-pointer adjustments performed by the BTRA setup so that
//!   stack unwinding keeps working under R²C (paper §7.2.4).

pub mod census;
pub mod disasm;
pub mod fault;
pub mod heap;
pub mod image;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod regs;
pub mod stats;
pub mod trace;
pub mod unwind;

mod decode;
mod exec;

#[doc(hidden)]
pub use decode::decode_cache_live_entries;

/// Inspection surface for the decoded execution engine, consumed by the
/// translation validator in `r2c-check` and by white-box tests. Not a
/// stable API: the decoded representation changes whenever the fusion
/// catalogue or the dispatch scheme does, and the validator is expected
/// to change with it.
#[doc(hidden)]
pub mod decode_inspect {
    pub use crate::decode::{
        decode_program, DOp, DecodeMismatch, DecodedProgram, Op, ROp, RunInfo, RunSeg, F2, NO_INSN,
    };
}
pub use census::PairCensus;
pub use exec::{ExitStatus, RunOutcome, StackSnapshot, Vm, VmConfig, EXIT_SENTINEL};
pub use fault::{Detection, Fault};
pub use image::{Image, NativeKind, SectionLayout, Symbol, SymbolKind};
pub use insn::{Cond, Insn, MemRef};
pub use machine::{ICacheConfig, MachineConfig, MachineKind};
pub use mem::{MemSnapshot, Memory, Perms, PAGE_SIZE};
pub use regs::{Gpr, RegFile, Ymm};
pub use stats::{EdgeStats, ExecStats};
pub use trace::{
    BoundaryEvent, CaptureLog, ExecProfile, FuncProfile, HeapTelemetry, TraceConfig, TraceEvent,
    Tracer,
};

/// A guest virtual address.
pub type VAddr = u64;

/// Size of one machine word in bytes.
pub const WORD: u64 = 8;
