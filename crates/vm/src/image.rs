//! Loadable program images.
//!
//! An [`Image`] is the fully linked, relocated form of a program: absolute
//! instruction addresses, initialized data, symbols, constructors and an
//! unwind table. The code generator (crate `r2c-codegen`) produces images;
//! the [`Vm`](crate::Vm) executes them.

use std::collections::HashMap;

use crate::insn::Insn;
use crate::unwind::UnwindTable;
use crate::VAddr;

/// Address-space layout of a loaded image.
///
/// The bases are chosen by the linker's ASLR pass; the attacker does not
/// get this structure (it is ground truth for evaluation, e.g. to score a
/// value-range clustering as "correctly identified a heap pointer").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SectionLayout {
    /// Start of the text section.
    pub text_base: VAddr,
    /// One past the last text byte.
    pub text_end: VAddr,
    /// Start of the data section (globals + GOT).
    pub data_base: VAddr,
    /// One past the last data byte.
    pub data_end: VAddr,
    /// Start of the heap region (grows upward).
    pub heap_base: VAddr,
    /// Maximum heap size in bytes.
    pub heap_size: u64,
    /// Highest stack address (stack grows downward from here).
    pub stack_top: VAddr,
    /// Stack reservation in bytes.
    pub stack_size: u64,
}

impl SectionLayout {
    /// Classifies an address by the region it falls into, if any.
    pub fn region_of(&self, addr: VAddr) -> Option<Region> {
        if (self.text_base..self.text_end).contains(&addr) {
            Some(Region::Text)
        } else if (self.data_base..self.data_end).contains(&addr) {
            Some(Region::Data)
        } else if (self.heap_base..self.heap_base + self.heap_size).contains(&addr) {
            Some(Region::Heap)
        } else if (self.stack_top - self.stack_size..self.stack_top).contains(&addr) {
            Some(Region::Stack)
        } else {
            None
        }
    }
}

/// A coarse memory region, as used in AOCR's pointer-cluster analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum Region {
    Text,
    Data,
    Heap,
    Stack,
}

/// What a symbol denotes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymbolKind {
    /// An ordinary function (entry address).
    Function,
    /// A booby-trap function inserted by R²C.
    BoobyTrap,
    /// A global variable in the data section.
    Global,
}

/// A named address in the image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Absolute address.
    pub addr: VAddr,
    /// Size in bytes (function body or global).
    pub size: u64,
    /// Kind of symbol.
    pub kind: SymbolKind,
}

/// Native (hypercall) functions the VM runtime provides to guest code.
///
/// These stand in for the pieces of glibc the paper links against
/// unprotected (§6.2): the allocator and minimal I/O.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NativeKind {
    /// `rax = malloc(rdi)`
    Malloc,
    /// `free(rdi)`
    Free,
    /// `rax = memalign(rdi /* align */, rsi /* size */)`
    Memalign,
    /// `rax = mprotect(rdi, rsi, rdx /* perms bits R=1,W=2,X=4 */)`
    Mprotect,
    /// Appends `rdi` (as i64) to the guest's output stream.
    PrintI64,
    /// Appends byte `rdi & 0xff` to the guest's output stream (as a
    /// separate channel entry, tagged as a byte).
    PutChar,
    /// Records a stack snapshot (the Malicious-Thread-Blocking hook):
    /// the guest "blocks" here and the attacker observes its stack
    /// (paper §2.3). No observable effect on guest state.
    StackProbe,
}

/// A fully linked, loadable program.
#[derive(Clone)]
pub struct Image {
    /// Decoded instructions in layout order.
    pub insns: Vec<Insn>,
    /// Absolute start address of each instruction; parallel to `insns`
    /// and strictly increasing.
    pub insn_addrs: Vec<VAddr>,
    /// Section layout (ASLR already applied).
    pub layout: SectionLayout,
    /// Entry-point address (`main`).
    pub entry: VAddr,
    /// Constructor functions run (in order) before `entry`, like
    /// `.init_array`. R²C's BTDP setup registers itself here (§5.2).
    pub constructors: Vec<VAddr>,
    /// Initial contents of the data section: `(addr, bytes)` runs.
    pub data_init: Vec<(VAddr, Vec<u8>)>,
    /// Whether the text section is mapped execute-only.
    pub xom: bool,
    /// Symbols, for tests/analysis (a stripped attacker does not get
    /// these; attacks only use them where the paper's threat model grants
    /// the knowledge, e.g. "the attacker knows the binary").
    pub symbols: Vec<Symbol>,
    /// Native-function table referenced by `Insn::CallNative`.
    pub natives: Vec<NativeKind>,
    /// Unwind table covering prologue/epilogue and BTRA adjustments.
    pub unwind: UnwindTable,
}

impl Image {
    /// Builds the address → instruction-index map used for control
    /// transfers.
    pub fn build_index(&self) -> HashMap<VAddr, u32> {
        self.insn_addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect()
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Address of the function with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not exist — this is a test/evaluation
    /// convenience, not an attacker capability.
    pub fn func_addr(&self, name: &str) -> VAddr {
        self.symbol(name)
            .unwrap_or_else(|| panic!("no symbol named {name:?}"))
            .addr
    }

    /// Total text size in bytes.
    pub fn text_size(&self) -> u64 {
        self.layout.text_end - self.layout.text_base
    }

    /// Iterates over function symbols (including booby traps).
    pub fn functions(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols
            .iter()
            .filter(|s| matches!(s.kind, SymbolKind::Function | SymbolKind::BoobyTrap))
    }

    /// Validates internal consistency (addresses strictly increasing and
    /// consistent with instruction lengths within contiguous runs).
    pub fn validate(&self) -> Result<(), String> {
        if self.insns.len() != self.insn_addrs.len() {
            return Err("insns and insn_addrs length mismatch".into());
        }
        for w in self.insn_addrs.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "instruction addresses not increasing: {:#x} then {:#x}",
                    w[0], w[1]
                ));
            }
        }
        for (i, (&addr, insn)) in self.insn_addrs.iter().zip(&self.insns).enumerate() {
            if addr < self.layout.text_base || addr + insn.len() > self.layout.text_end {
                return Err(format!("instruction {i} at {addr:#x} outside text section"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;

    fn tiny_image() -> Image {
        let layout = SectionLayout {
            text_base: 0x40_0000,
            text_end: 0x40_1000,
            data_base: 0x60_0000,
            data_end: 0x60_1000,
            heap_base: 0x10_0000_0000,
            heap_size: 0x100_0000,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 0x10_0000,
        };
        Image {
            insns: vec![
                Insn::MovImm {
                    dst: crate::Gpr::Rdi,
                    imm: 0,
                },
                Insn::Halt,
            ],
            insn_addrs: vec![0x40_0000, 0x40_0005],
            layout,
            entry: 0x40_0000,
            constructors: vec![],
            data_init: vec![],
            xom: true,
            symbols: vec![Symbol {
                name: "main".into(),
                addr: 0x40_0000,
                size: 7,
                kind: SymbolKind::Function,
            }],
            natives: vec![],
            unwind: UnwindTable::default(),
        }
    }

    #[test]
    fn region_classification() {
        let l = tiny_image().layout;
        assert_eq!(l.region_of(0x40_0010), Some(Region::Text));
        assert_eq!(l.region_of(0x60_0010), Some(Region::Data));
        assert_eq!(l.region_of(0x10_0000_1000), Some(Region::Heap));
        assert_eq!(l.region_of(0x7fff_ffff_e000), Some(Region::Stack));
        assert_eq!(l.region_of(0xdead_0000_0000), None);
    }

    #[test]
    fn validate_accepts_consistent_image() {
        assert!(tiny_image().validate().is_ok());
    }

    #[test]
    fn validate_rejects_disordered_addresses() {
        let mut img = tiny_image();
        img.insn_addrs.swap(0, 1);
        assert!(img.validate().is_err());
    }

    #[test]
    fn symbol_lookup() {
        let img = tiny_image();
        assert_eq!(img.func_addr("main"), 0x40_0000);
        assert!(img.symbol("nope").is_none());
    }
}
