//! Pre-decoded execution engine: fused superinstruction IR with
//! block-closure-style dispatch over decoded ops.
//!
//! The per-step interpreter in [`crate::Vm`] used to pattern-match raw
//! [`Insn`] enums, re-resolve operands, and re-derive per-machine costs
//! on every dynamically executed instruction. This module performs all
//! of that work **once per (image, machine)**:
//!
//! * every instruction is decoded into a compact [`Op`] with its
//!   per-machine base cost pre-baked ([`DOp::cost`]),
//! * direct control transfers (`call`/`jmp`/`jcc`) carry their target
//!   *instruction index* instead of a virtual address, so taken
//!   branches dispatch without a jump-table lookup (indirect targets,
//!   returns, and attacker-driven transfers still resolve through the
//!   dense dispatch table),
//! * adjacent instruction pairs that dominate the dynamic pair
//!   histogram are **fused into superinstructions** executed under a
//!   single dispatch (see the catalogue below), and
//! * the load-time memory image ([`DecodedProgram::init_mem`]) is built
//!   once and shared, so constructing a [`crate::Vm`] is a snapshot
//!   clone instead of a map-and-poke rebuild.
//!
//! ## Fusion catalogue
//!
//! Candidates were picked empirically from the dynamic adjacent-pair
//! histogram over the `Scale::Test` SPEC workloads (baseline + full
//! presets, EPYC Rome; see DESIGN.md §11 for the table). The dominant
//! pairs are register-shuffle chains around ALU ops produced by the
//! lowerer (`MovReg→AluReg` / `AluReg→MovReg` ≈ 22% of all adjacent
//! pairs each, `MovImm→MovReg` / `MovReg→MovImm` ≈ 20% each), followed
//! by load/store traffic (`MovReg→Store`, `Load→MovReg`, `Store→Load`)
//! and the classic compare-and-branch shapes (`Test→Jcc`,
//! `CmpReg→SetCc`, `Cmp*→Jcc`). Push/pop runs from call
//! prologues/epilogues round out the catalogue: they are rare in the
//! loop-dominated SPEC profiles but are exactly what the call-heavy
//! gcc/xalancbmk cells execute between loops.
//!
//! ## Exactness contract
//!
//! Decoding and fusion are **host-side only**: simulated [`ExecStats`]
//! (instructions, deci-cycles, calls/rets, icache hits/misses, AVX
//! transitions, max-rss) stay bit-identical per seed to the pre-decode
//! interpreter on every workload × config × machine cell. Fused ops
//! re-check the instruction budget and touch the simulated icache once
//! per *original* instruction, in original order, so even a fault or
//! budget exhaustion between the two halves of a pair produces the
//! exact partial stats the unfused interpreter would.
//!
//! ## Cache keying and invalidation
//!
//! Decoded programs are cached globally, keyed by a content hash of
//! every execution-relevant image field plus the machine cost model and
//! the fusion flag. A cache hit is **verified field-by-field** against
//! the image being loaded ([`DecodedProgram::matches`]), so a mutated
//! image — or a hash collision — can never execute stale decoded
//! blocks; the entry is simply rebuilt. Entries are weak: a decoded
//! program lives exactly as long as some [`crate::Vm`] uses it.
//!
//! [`ExecStats`]: crate::stats::ExecStats

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::image::{Image, NativeKind, SectionLayout};
use crate::insn::{AluOp, Cond, Insn, MemRef};
use crate::machine::MachineConfig;
use crate::mem::{MemSnapshot, Memory, Perms};
use crate::regs::{Gpr, Ymm};
use crate::VAddr;

/// Sentinel instruction index marking an unresolvable direct branch
/// target (outside the text section or between instruction starts);
/// jumping through it raises `Fault::InvalidJump` with the original
/// target address, recovered from the undecoded instruction.
pub const NO_INSN: u32 = u32::MAX;

/// Second-half metadata of a fused superinstruction: the pre-baked base
/// cost of the second instruction and its address offset from the
/// first (the pair is only fused when laid out contiguously).
#[derive(Clone, Copy, Debug)]
pub struct F2 {
    /// Base cost of instruction #2 in deci-cycles.
    pub cost2: u16,
    /// `addr2 - addr1` (the encoded length of instruction #1).
    pub a2off: u8,
}

/// One decoded operation. `ops[i]` executes instruction `i` — and, for
/// fused variants, instruction `i + 1` as well, continuing at `i + 2`.
/// The array stays parallel to `Image::insns`, so a branch *into* the
/// second half of a fused pair simply lands on that instruction's own
/// standalone op; fusion never constrains the control-flow graph.
#[derive(Clone, Copy, Debug)]
pub struct DOp {
    /// Pre-baked base cost of the (first) instruction, deci-cycles.
    pub cost: u32,
    /// Address of the (first) instruction — simulated icache key and
    /// fault attribution.
    pub addr: VAddr,
    /// The operation.
    pub op: Op,
}

/// Decoded operations. Single-instruction variants mirror [`Insn`] with
/// operands resolved (direct targets as instruction indices, return
/// addresses precomputed, native probe-ness pre-checked); fused
/// variants execute two adjacent instructions under one dispatch.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    MovImm {
        dst: Gpr,
        imm: u64,
    },
    MovReg {
        dst: Gpr,
        src: Gpr,
    },
    Load {
        dst: Gpr,
        mem: MemRef,
    },
    Store {
        mem: MemRef,
        src: Gpr,
    },
    StoreImm {
        mem: MemRef,
        imm: i32,
    },
    Lea {
        dst: Gpr,
        mem: MemRef,
    },
    Push {
        src: Gpr,
    },
    PushImm {
        imm: u64,
    },
    Pop {
        dst: Gpr,
    },
    AluReg {
        op: AluOp,
        dst: Gpr,
        src: Gpr,
    },
    AluImm {
        op: AluOp,
        dst: Gpr,
        imm: i32,
    },
    Div {
        dst: Gpr,
        src: Gpr,
    },
    Rem {
        dst: Gpr,
        src: Gpr,
    },
    CmpReg {
        a: Gpr,
        b: Gpr,
    },
    CmpImm {
        a: Gpr,
        imm: i32,
    },
    Test {
        a: Gpr,
    },
    SetCc {
        cond: Cond,
        dst: Gpr,
    },
    LoadAbs {
        dst: Gpr,
        addr: VAddr,
    },
    VLoadAbs {
        dst: Ymm,
        addr: VAddr,
    },
    Call {
        tgt: u32,
        ra: VAddr,
    },
    CallInd {
        target: Gpr,
        ra: VAddr,
    },
    CallNative {
        native: u16,
        is_probe: bool,
    },
    Ret,
    Jmp {
        tgt: u32,
    },
    JmpInd {
        target: Gpr,
    },
    Jcc {
        cond: Cond,
        tgt: u32,
        taken_extra: u16,
    },
    Nop,
    Trap,
    VLoad {
        dst: Ymm,
        mem: MemRef,
        aligned: bool,
    },
    VStore {
        mem: MemRef,
        src: Ymm,
        aligned: bool,
    },
    VZeroUpper,
    Halt,
    // --- fused superinstructions (dynamic-pair evidence in DESIGN.md
    // §11; every variant re-checks the budget and touches the icache
    // between its halves, so stats stay bit-identical) ---
    /// `mov dst1, src1; op dst2, src2` — the #1 dynamic pair (~22%).
    MovRegAluReg {
        dst1: Gpr,
        src1: Gpr,
        op: AluOp,
        dst2: Gpr,
        src2: Gpr,
        f2: F2,
    },
    /// `op dst1, src1; mov dst2, src2` — the mirrored shuffle (~22%).
    AluRegMovReg {
        op: AluOp,
        dst1: Gpr,
        src1: Gpr,
        dst2: Gpr,
        src2: Gpr,
        f2: F2,
    },
    /// `mov dst1, imm; mov dst2, src2` (~20%).
    MovImmMovReg {
        dst1: Gpr,
        imm: u64,
        dst2: Gpr,
        src2: Gpr,
        f2: F2,
    },
    /// `mov dst1, src1; mov dst2, imm` (~20%).
    MovRegMovImm {
        dst1: Gpr,
        src1: Gpr,
        dst2: Gpr,
        imm: u64,
        f2: F2,
    },
    /// `mov dst1, src1; mov [mem], src2` — store feed (~2.6%).
    MovRegStore {
        dst1: Gpr,
        src1: Gpr,
        mem: MemRef,
        src2: Gpr,
        f2: F2,
    },
    /// `mov dst1, [mem]; mov dst2, src2` — load-op shuffle (~2.5%).
    LoadMovReg {
        dst1: Gpr,
        mem: MemRef,
        dst2: Gpr,
        src2: Gpr,
        f2: F2,
    },
    /// `mov [smem], src; mov dst, [lmem]` — spill/reload traffic.
    StoreLoad {
        smem: MemRef,
        src: Gpr,
        dst: Gpr,
        lmem: MemRef,
        f2: F2,
    },
    /// `lea dst1, [mem]; mov dst2, src2` — address-gen + move.
    LeaMovReg {
        dst1: Gpr,
        mem: MemRef,
        dst2: Gpr,
        src2: Gpr,
        f2: F2,
    },
    /// `cmp a, b; jcc target` — compare-and-branch.
    CmpRegJcc {
        a: Gpr,
        b: Gpr,
        cond: Cond,
        tgt: u32,
        taken_extra: u16,
        f2: F2,
    },
    /// `cmp a, imm; jcc target` — loop back-edges.
    CmpImmJcc {
        a: Gpr,
        imm: i32,
        cond: Cond,
        tgt: u32,
        taken_extra: u16,
        f2: F2,
    },
    /// `test a, a; jcc target` — null checks.
    TestJcc {
        a: Gpr,
        cond: Cond,
        tgt: u32,
        taken_extra: u16,
        f2: F2,
    },
    /// `cmp a, b; setcc dst` — boolean materialization.
    CmpRegSetCc {
        a: Gpr,
        b: Gpr,
        cond: Cond,
        dst: Gpr,
        f2: F2,
    },
    /// `push s1; push s2` — call-prologue runs.
    PushPush {
        s1: Gpr,
        s2: Gpr,
        f2: F2,
    },
    /// `pop d1; pop d2` — epilogue runs.
    PopPop {
        d1: Gpr,
        d2: Gpr,
        f2: F2,
    },
    /// `pop d1; ret` — epilogue tail.
    PopRet {
        d1: Gpr,
        f2: F2,
    },
    /// `mov a, imm; mov bd, bs; op cd, cs; mov dd, ds` — the
    /// lowerer's 4-instruction ALU-with-immediate template, the
    /// dominant straight-line unit in the loop-heavy SPEC cells.
    /// Effect-only (registers and flags; cannot fault), so it appears
    /// only in run effect streams where accounting is batched.
    MovImmAluQuad {
        imm: u64,
        a: Gpr,
        bd: Gpr,
        bs: Gpr,
        op: AluOp,
        cd: Gpr,
        cs: Gpr,
        dd: Gpr,
        ds: Gpr,
    },
    /// A [`Op::MovImmAluQuad`] (this entry's own fields) that is
    /// immediately followed, in the same segment's effect stream, by
    /// another quad: the run loop executes both under one dispatch.
    MovImmAluQuadPair {
        imm: u64,
        a: Gpr,
        bd: Gpr,
        bs: Gpr,
        op: AluOp,
        cd: Gpr,
        cs: Gpr,
        dd: Gpr,
        ds: Gpr,
    },
    /// The common operand-chained shape of [`Op::MovImmAluQuad`]
    /// (`scratch` is both ALU destination and the final move's source,
    /// the ALU's right operand is the just-set `a`): algebraically one
    /// immediate ALU op — one register read, three writes — instead of
    /// four moves through the scratch register.
    AluImmQuad {
        imm: u64,
        a: Gpr,
        scratch: Gpr,
        op: AluOp,
        src: Gpr,
        dst: Gpr,
    },
    /// An [`Op::AluImmQuad`] immediately followed by another quad
    /// entry in the same segment: both execute under one dispatch.
    AluImmQuadPair {
        imm: u64,
        a: Gpr,
        scratch: Gpr,
        op: AluOp,
        src: Gpr,
        dst: Gpr,
    },
    /// Block run: this instruction plus the following
    /// `runs[run].n - 1` straight-line instructions execute under a
    /// single dispatch with batched instruction/cycle/icache
    /// accounting (see the `Op::Run` arm in exec.rs for the exactness
    /// argument). The member ops stay standalone-decodable, so any
    /// control transfer into the middle of a run just executes the
    /// members individually.
    Run {
        run: u32,
    },
}

impl Op {
    /// Stable name of the decoded-op kind (the fusion pattern or
    /// lowering template this op came from). Consumed by the
    /// coverage-guided fuzzer as a compile-side coverage feature:
    /// which fusion patterns and lowering shapes a case actually
    /// exercises.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::MovImm { .. } => "MovImm",
            Op::MovReg { .. } => "MovReg",
            Op::Load { .. } => "Load",
            Op::Store { .. } => "Store",
            Op::StoreImm { .. } => "StoreImm",
            Op::Lea { .. } => "Lea",
            Op::Push { .. } => "Push",
            Op::PushImm { .. } => "PushImm",
            Op::Pop { .. } => "Pop",
            Op::AluReg { .. } => "AluReg",
            Op::AluImm { .. } => "AluImm",
            Op::Div { .. } => "Div",
            Op::Rem { .. } => "Rem",
            Op::CmpReg { .. } => "CmpReg",
            Op::CmpImm { .. } => "CmpImm",
            Op::Test { .. } => "Test",
            Op::SetCc { .. } => "SetCc",
            Op::LoadAbs { .. } => "LoadAbs",
            Op::VLoadAbs { .. } => "VLoadAbs",
            Op::Call { .. } => "Call",
            Op::CallInd { .. } => "CallInd",
            Op::CallNative { .. } => "CallNative",
            Op::Ret => "Ret",
            Op::Jmp { .. } => "Jmp",
            Op::JmpInd { .. } => "JmpInd",
            Op::Jcc { .. } => "Jcc",
            Op::Nop => "Nop",
            Op::Trap => "Trap",
            Op::VLoad { .. } => "VLoad",
            Op::VStore { .. } => "VStore",
            Op::VZeroUpper => "VZeroUpper",
            Op::Halt => "Halt",
            Op::MovRegAluReg { .. } => "MovRegAluReg",
            Op::AluRegMovReg { .. } => "AluRegMovReg",
            Op::MovImmMovReg { .. } => "MovImmMovReg",
            Op::MovRegMovImm { .. } => "MovRegMovImm",
            Op::MovRegStore { .. } => "MovRegStore",
            Op::LoadMovReg { .. } => "LoadMovReg",
            Op::StoreLoad { .. } => "StoreLoad",
            Op::LeaMovReg { .. } => "LeaMovReg",
            Op::CmpRegJcc { .. } => "CmpRegJcc",
            Op::CmpImmJcc { .. } => "CmpImmJcc",
            Op::TestJcc { .. } => "TestJcc",
            Op::CmpRegSetCc { .. } => "CmpRegSetCc",
            Op::PushPush { .. } => "PushPush",
            Op::PopPop { .. } => "PopPop",
            Op::PopRet { .. } => "PopRet",
            Op::MovImmAluQuad { .. } => "MovImmAluQuad",
            Op::MovImmAluQuadPair { .. } => "MovImmAluQuadPair",
            Op::AluImmQuad { .. } => "AluImmQuad",
            Op::AluImmQuadPair { .. } => "AluImmQuadPair",
            Op::Run { .. } => "Run",
        }
    }
}

/// One icache segment of a block run: `count` consecutive member
/// instructions whose addresses fall on the same icache line, charged
/// with a single [`crate::machine::ICache::access_span`] call and
/// executed from the effect stream `run_ops[first .. first + n_ops]`.
#[derive(Clone, Copy, Debug)]
pub struct RunSeg {
    /// Icache line number — the same `addr / line_size` arithmetic the
    /// simulator's tag computation uses.
    pub line: u64,
    /// Member instructions on that line.
    pub count: u16,
    /// Number of effect-stream entries covering those members (pairs
    /// count two members per entry).
    pub n_ops: u16,
    /// First effect-stream entry, an index into `run_segs`' companion
    /// array `DecodedProgram::run_ops`.
    pub first: u32,
}

/// One entry of a run's effect stream: a single member instruction or
/// a fused adjacent pair, executed with **no** per-instruction
/// accounting (the run batch-charges counts, cycles, and icache
/// spans). Pairing inside a run therefore needs neither address
/// contiguity nor an icache touch between halves — any adjacent member
/// pair in the fusion catalogue qualifies.
#[derive(Clone, Copy, Debug)]
pub struct ROp {
    /// The effect: a straight-line single or a non-control fused pair.
    pub op: Op,
    /// Byte offset of the (first) instruction from the start of its
    /// segment's icache line; `seg.line * line_size + off` rebuilds the
    /// full address for fault attribution without an 8-byte field per
    /// entry.
    pub off: u16,
    /// Member offset within the run (0 = first member after the
    /// leader); locates the faulting instruction for exact rollback.
    pub k: u16,
}

/// A block run: the straight-line tail of a basic block, from its
/// leader to the last instruction before the block's control transfer.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo {
    /// Original instructions covered (leader + members).
    pub n: u16,
    /// Sum of the members' pre-baked base costs (deci-cycles); the
    /// leader's own cost is charged by the generic dispatch preamble.
    pub members_cost: u64,
    /// The leader's standalone op, executed before the members.
    pub leader: Op,
    /// Member segments: `run_segs[seg_start .. seg_start + seg_count]`.
    pub seg_start: u32,
    /// Number of segments.
    pub seg_count: u16,
}

/// A fully decoded, machine-specialized program plus its load-time
/// memory image — everything about a [`crate::Vm`] that is a pure
/// function of `(Image, MachineConfig, fuse)` and therefore shareable
/// between VMs (bench repetitions, `reset_to_image` workers, fleet
/// members on the same variant).
pub struct DecodedProgram {
    /// Machine model the costs were baked for.
    pub machine: MachineConfig,
    /// Whether superinstruction fusion was applied.
    pub fused: bool,
    /// Verbatim instruction copy (slow path, disassembly, fault
    /// recovery of unresolved branch targets).
    pub insns: Vec<Insn>,
    /// Absolute instruction addresses, parallel to `insns`.
    pub insn_addrs: Vec<VAddr>,
    /// Decoded ops, parallel to `insns`.
    pub ops: Vec<DOp>,
    /// Block runs referenced by [`Op::Run`].
    pub runs: Vec<RunInfo>,
    /// Flattened per-run icache segments (see [`RunInfo::seg_start`]).
    pub run_segs: Vec<RunSeg>,
    /// Flattened effect streams (see [`RunSeg::first`]).
    pub run_ops: Vec<ROp>,
    /// Dense text-offset → instruction-index table for indirect
    /// transfers (`dispatch[addr - text_base]`, [`NO_INSN`] on holes).
    pub dispatch: Vec<u32>,
    /// Base of the text section.
    pub text_base: VAddr,
    /// Native-function table.
    pub natives: Vec<NativeKind>,
    /// Entry point.
    pub entry: VAddr,
    /// Constructor addresses.
    pub constructors: Vec<VAddr>,
    /// Section layout.
    pub layout: SectionLayout,
    /// Whether text is execute-only.
    pub xom: bool,
    /// Initial data contents (kept for cache-hit verification).
    pub data_init: Vec<(VAddr, Vec<u8>)>,
    /// The address space exactly as [`crate::Vm::new`] maps it, before
    /// any constructor runs. Shared by every VM on this program.
    pub init_mem: MemSnapshot,
}

/// The first field on which a decoded program diverged from the image
/// it is being verified against: the field name plus, for per-element
/// fields, the index of the first diverging element (for length
/// mismatches, the length of the shorter side). Produced by
/// [`DecodedProgram::mismatch`] so cache-verification failures and test
/// assertions can say *what* went stale instead of a bare `false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeMismatch {
    /// Name of the diverging field.
    pub field: &'static str,
    /// Index of the first diverging element for sequence fields.
    pub index: Option<usize>,
}

impl std::fmt::Display for DecodeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.field, i),
            None => write!(f, "{}", self.field),
        }
    }
}

/// First diverging index between two sequences, treating a length
/// mismatch as a divergence at the shorter length.
fn seq_mismatch<T: PartialEq>(field: &'static str, a: &[T], b: &[T]) -> Option<DecodeMismatch> {
    let i = a
        .iter()
        .zip(b)
        .position(|(x, y)| x != y)
        .or_else(|| (a.len() != b.len()).then_some(a.len().min(b.len())))?;
    Some(DecodeMismatch {
        field,
        index: Some(i),
    })
}

impl DecodedProgram {
    /// Histogram of decoded-op kinds over the whole program, including
    /// the effect-stream entries inside block runs (where the quad
    /// superinstructions live). This is the lowering-template /
    /// fusion-pattern coverage surface the fuzzer's coverage map feeds
    /// on: a case "covers" a pattern when the decoder emitted it for
    /// the case's image.
    pub fn op_kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for dop in &self.ops {
            *counts.entry(dop.op.kind_name()).or_insert(0) += 1;
        }
        for rop in &self.run_ops {
            *counts.entry(rop.op.kind_name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Field-by-field verification that this decoded program was built
    /// from an image identical to `image` under the same machine model
    /// and fusion setting. This is what makes the cache safe against
    /// both hash collisions and callers mutating an `Image` after a VM
    /// was built from it: stale decoded blocks can never run.
    pub fn matches(&self, image: &Image, machine: &MachineConfig, fuse: bool) -> bool {
        self.mismatch(image, machine, fuse).is_none()
    }

    /// Like [`DecodedProgram::matches`], but reports *which* field
    /// diverged first (and at which element, for sequence fields).
    pub fn mismatch(
        &self,
        image: &Image,
        machine: &MachineConfig,
        fuse: bool,
    ) -> Option<DecodeMismatch> {
        let scalar = |field| Some(DecodeMismatch { field, index: None });
        if self.fused != fuse {
            return scalar("fused");
        }
        if self.machine != *machine {
            return scalar("machine");
        }
        if self.entry != image.entry {
            return scalar("entry");
        }
        if self.xom != image.xom {
            return scalar("xom");
        }
        if self.layout != image.layout {
            return scalar("layout");
        }
        seq_mismatch("insns", &self.insns, &image.insns)
            .or_else(|| seq_mismatch("insn_addrs", &self.insn_addrs, &image.insn_addrs))
            .or_else(|| seq_mismatch("natives", &self.natives, &image.natives))
            .or_else(|| seq_mismatch("constructors", &self.constructors, &image.constructors))
            .or_else(|| seq_mismatch("data_init", &self.data_init, &image.data_init))
    }
}

type Cache = Mutex<HashMap<u64, Weak<DecodedProgram>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

/// Content hash over every execution-relevant image field plus the
/// machine cost model and fusion flag. Collisions are harmless — a hit
/// is always verified with [`DecodedProgram::matches`] — but make the
/// two images thrash one cache slot, so the hash covers everything.
fn fingerprint(image: &Image, machine: &MachineConfig, fuse: bool) -> u64 {
    let mut h = DefaultHasher::new();
    image.insns.hash(&mut h);
    image.insn_addrs.hash(&mut h);
    image.entry.hash(&mut h);
    image.constructors.hash(&mut h);
    image.layout.hash(&mut h);
    image.xom.hash(&mut h);
    image.natives.hash(&mut h);
    image.data_init.hash(&mut h);
    machine.hash(&mut h);
    fuse.hash(&mut h);
    h.finish()
}

/// Returns the decoded program for `(image, machine, fuse)`, reusing a
/// cached one when an identical image was decoded before (bench reps,
/// fleet workers, repeated `Vm::new` on a pooled variant). Cache
/// entries are weak; dead ones are collected on insert.
pub(crate) fn decoded(image: &Image, machine: &MachineConfig, fuse: bool) -> Arc<DecodedProgram> {
    let fp = fingerprint(image, machine, fuse);
    if let Some(hit) = cache()
        .lock()
        .unwrap()
        .get(&fp)
        .and_then(Weak::upgrade)
        .filter(|p| p.matches(image, machine, fuse))
    {
        return hit;
    }
    // Build outside the lock: decoding is the expensive part, and two
    // threads racing on the same image both produce identical programs.
    let built = Arc::new(build(image, machine, fuse));
    let mut map = cache().lock().unwrap();
    map.retain(|_, w| w.strong_count() > 0);
    map.insert(fp, Arc::downgrade(&built));
    built
}

/// Decodes `image` for `(machine, fuse)` from scratch, bypassing the
/// cache. This is the entry point for the translation validator in
/// `r2c-check` (via `crate::decode_inspect`): a fresh, uncached build
/// whose every table can be inspected without perturbing — or being
/// perturbed by — programs other VMs are executing.
pub fn decode_program(image: &Image, machine: &MachineConfig, fuse: bool) -> DecodedProgram {
    build(image, machine, fuse)
}

/// Exposed for tests: number of live entries in the decode cache.
#[doc(hidden)]
pub fn decode_cache_live_entries() -> usize {
    cache()
        .lock()
        .unwrap()
        .values()
        .filter(|w| w.strong_count() > 0)
        .count()
}

/// Builds the load-time address space exactly as the pre-decode
/// `Vm::new` did: text (0xCC fill, XO/RX), initialized data, stack.
fn build_init_mem(image: &Image) -> MemSnapshot {
    let l = image.layout;
    let mut mem = Memory::new();
    let text_len = l.text_end - l.text_base;
    mem.map(
        l.text_base,
        text_len,
        if image.xom { Perms::XO } else { Perms::RX },
    );
    mem.poke(l.text_base, &vec![0xCCu8; text_len as usize]);
    mem.map(l.data_base, l.data_end - l.data_base, Perms::RW);
    for (addr, bytes) in &image.data_init {
        mem.poke(*addr, bytes);
    }
    mem.map(l.stack_top - l.stack_size, l.stack_size, Perms::RW);
    mem.snapshot()
}

fn build(image: &Image, machine: &MachineConfig, fuse: bool) -> DecodedProgram {
    image.validate().expect("invalid image");
    let l = image.layout;
    let text_len = (l.text_end - l.text_base) as usize;
    let mut dispatch = vec![NO_INSN; text_len];
    for (i, &a) in image.insn_addrs.iter().enumerate() {
        dispatch[(a - l.text_base) as usize] = i as u32;
    }
    let resolve = |target: VAddr| -> u32 {
        let off = target.wrapping_sub(l.text_base);
        if off < dispatch.len() as u64 {
            dispatch[off as usize]
        } else {
            NO_INSN
        }
    };
    let taken_extra = (machine.taken_branch_cost - machine.branch_cost) as u16;

    let n = image.insns.len();
    // Fuse only contiguously laid-out pairs: the icache must see the
    // second instruction at its real address.
    let try_fuse = |i: usize| -> Option<Op> {
        if !fuse {
            return None;
        }
        let insn = &image.insns[i];
        let next = image.insns.get(i + 1)?;
        if image.insn_addrs[i + 1] != image.insn_addrs[i] + insn.len() {
            return None;
        }
        let f2 = F2 {
            cost2: u16::try_from(machine.base_cost(next)).ok()?,
            a2off: u8::try_from(insn.len()).ok()?,
        };
        fuse_pair(insn, next, f2, &resolve, taken_extra)
    };

    // --- Pass A: block runs ------------------------------------------
    //
    // A "stretch" is a maximal sequence of straight-line (non-control,
    // non-trapping) instructions; control can only *enter* a stretch at
    // a branch target and only *leave* it at the end. Every stretch
    // start — and every direct-branch target inside one, i.e. every
    // loop head — leads a run covering the rest of the stretch,
    // executed under a single dispatch with batched accounting. When
    // the stretch's last instruction would pair-fuse with the control
    // instruction ending the block (cmp+jcc, test+jcc, pop+ret), the
    // run stops one short so that fusion — which saves a dispatch on
    // the branch itself — still forms.
    const RUN_MIN: usize = 3;
    let is_straight = |insn: &Insn| {
        !matches!(
            insn,
            Insn::Call { .. }
                | Insn::CallInd { .. }
                | Insn::CallNative { .. }
                | Insn::Ret
                | Insn::Jmp { .. }
                | Insn::JmpInd { .. }
                | Insn::Jcc { .. }
                | Insn::Trap
                | Insn::Halt
        )
    };
    let mut is_target = vec![false; n];
    for insn in &image.insns {
        if let Insn::Call { target } | Insn::Jmp { target } | Insn::Jcc { target, .. } = *insn {
            let t = resolve(target);
            if t != NO_INSN {
                is_target[t as usize] = true;
            }
        }
    }
    let mut run_at = vec![NO_INSN; n];
    let mut covered = vec![false; n];
    let mut runs = Vec::new();
    let mut run_segs: Vec<RunSeg> = Vec::new();
    let mut run_ops: Vec<ROp> = Vec::new();
    let line_size = machine.icache.line as u64;
    let mut s = 0usize;
    while fuse && s < n {
        if !is_straight(&image.insns[s]) {
            s += 1;
            continue;
        }
        let mut e = s;
        while e < n && is_straight(&image.insns[e]) {
            e += 1;
        }
        // Trailing-pair shrink (see above).
        let cov_end = if e < n && e > s && try_fuse(e - 1).is_some() {
            e - 1
        } else {
            e
        };
        for lead in s..cov_end {
            if lead != s && !is_target[lead] {
                continue;
            }
            let end = cov_end.min(lead + u16::MAX as usize);
            if end - lead < RUN_MIN {
                continue;
            }
            let seg_start = run_segs.len() as u32;
            let mut members_cost = 0u64;
            for t in lead + 1..end {
                members_cost += machine.base_cost(&image.insns[t]);
            }
            // Same-line segments of members: purely the icache charging
            // schedule (one access_span per segment at execution time).
            let mut seg_member_start: Vec<usize> = Vec::new();
            let mut m = lead + 1;
            while m < end {
                let line = image.insn_addrs[m] / line_size;
                let mut e2 = m + 1;
                while e2 < end && image.insn_addrs[e2] / line_size == line {
                    e2 += 1;
                }
                seg_member_start.push(m);
                run_segs.push(RunSeg {
                    line,
                    count: (e2 - m) as u16,
                    n_ops: 0,
                    first: 0,
                });
                m = e2;
            }
            // Effect stream for the whole member range: adjacent
            // members in the fusion catalogue fuse (effects only — no
            // accounting between halves, so no contiguity needed); the
            // rest decode standalone. A member that leads a nested run
            // still contributes just its own insn here. Entry
            // boundaries are independent of segment boundaries with one
            // exception: a fallible pair stays within one icache line,
            // so fault rollback stays segment-local. The fault-free
            // quad may straddle lines — its register effects commute
            // with span charges.
            //
            // Quad template first (strictly more members per dispatch
            // than two pairs), then pairs, then singles. If a quad
            // starts one insn ahead, emit a single now to resync —
            // greedy pairing would otherwise stay phase-shifted for the
            // rest of the stretch and never form another quad.
            let stream_base = run_ops.len();
            let mut starts: Vec<usize> = Vec::new();
            let quad_at = |q: usize| -> Option<Op> {
                if q + 3 >= end {
                    return None;
                }
                if let (
                    Insn::MovImm { dst: a, imm } | Insn::MovAbs { dst: a, imm },
                    Insn::MovReg { dst: bd, src: bs },
                    Insn::AluReg {
                        op,
                        dst: cd,
                        src: cs,
                    },
                    Insn::MovReg { dst: dd, src: ds },
                ) = (
                    image.insns[q],
                    image.insns[q + 1],
                    image.insns[q + 2],
                    image.insns[q + 3],
                ) {
                    // The chained-operand shape collapses; the gates
                    // (`bs != a`, distinct scratch) keep the collapsed
                    // write set identical to the four-instruction
                    // original.
                    if bd == cd && cs == a && ds == cd && bs != a && bd != a {
                        Some(Op::AluImmQuad {
                            imm,
                            a,
                            scratch: bd,
                            op,
                            src: bs,
                            dst: dd,
                        })
                    } else {
                        Some(Op::MovImmAluQuad {
                            imm,
                            a,
                            bd,
                            bs,
                            op,
                            cd,
                            cs,
                            dd,
                            ds,
                        })
                    }
                } else {
                    None
                }
            };
            let mut j = lead + 1;
            while j < end {
                let addr = image.insn_addrs[j];
                let off = (addr - (addr / line_size) * line_size) as u16;
                let k = (j - (lead + 1)) as u16;
                if let Some(op) = quad_at(j) {
                    starts.push(j);
                    run_ops.push(ROp { op, off, k });
                    j += 4;
                    continue;
                }
                let resync = quad_at(j + 1).is_some();
                let same_line =
                    j + 1 < end && image.insn_addrs[j + 1] / line_size == addr / line_size;
                let fused_pair = (!resync && same_line)
                    .then(|| {
                        let f2 = F2 {
                            cost2: u16::try_from(machine.base_cost(&image.insns[j + 1]))
                                .unwrap_or(0),
                            a2off: u8::try_from(image.insn_addrs[j + 1].wrapping_sub(addr))
                                .unwrap_or(0),
                        };
                        fuse_pair(
                            &image.insns[j],
                            &image.insns[j + 1],
                            f2,
                            &resolve,
                            taken_extra,
                        )
                    })
                    .flatten();
                starts.push(j);
                match fused_pair {
                    Some(op) => {
                        run_ops.push(ROp { op, off, k });
                        j += 2;
                    }
                    None => {
                        run_ops.push(ROp {
                            op: single(&image.insns[j], addr, image, &resolve, taken_extra),
                            off,
                            k,
                        });
                        j += 1;
                    }
                }
            }
            // Assign each entry to the segment containing its start
            // member. A segment fully consumed by a straddling quad
            // keeps zero entries (its span is still charged).
            let mut ei = 0usize;
            for (si, seg) in run_segs[seg_start as usize..].iter_mut().enumerate() {
                let mend = seg_member_start[si] + seg.count as usize;
                seg.first = (stream_base + ei) as u32;
                while ei < starts.len() && starts[ei] < mend {
                    ei += 1;
                }
                seg.n_ops = (stream_base + ei - seg.first as usize) as u16;
                // Chain adjacent quads: the first of two neighbouring
                // quad entries becomes a pair head, executed together
                // with its successor under one dispatch. Confined to
                // one segment so the run loop's per-segment entry
                // slices stay self-contained.
                let mut q = seg.first as usize;
                let seg_end = seg.first as usize + seg.n_ops as usize;
                let is_quad =
                    |o: &Op| matches!(o, Op::MovImmAluQuad { .. } | Op::AluImmQuad { .. });
                while q + 1 < seg_end {
                    if is_quad(&run_ops[q].op) && is_quad(&run_ops[q + 1].op) {
                        run_ops[q].op = match run_ops[q].op {
                            Op::MovImmAluQuad {
                                imm,
                                a,
                                bd,
                                bs,
                                op,
                                cd,
                                cs,
                                dd,
                                ds,
                            } => Op::MovImmAluQuadPair {
                                imm,
                                a,
                                bd,
                                bs,
                                op,
                                cd,
                                cs,
                                dd,
                                ds,
                            },
                            Op::AluImmQuad {
                                imm,
                                a,
                                scratch,
                                op,
                                src,
                                dst,
                            } => Op::AluImmQuadPair {
                                imm,
                                a,
                                scratch,
                                op,
                                src,
                                dst,
                            },
                            _ => unreachable!(),
                        };
                        q += 2;
                    } else {
                        q += 1;
                    }
                }
            }
            run_at[lead] = runs.len() as u32;
            runs.push(RunInfo {
                n: (end - lead) as u16,
                members_cost,
                leader: single(
                    &image.insns[lead],
                    image.insn_addrs[lead],
                    image,
                    &resolve,
                    taken_extra,
                ),
                seg_start,
                seg_count: (run_segs.len() as u32 - seg_start) as u16,
            });
            covered[lead..end].iter_mut().for_each(|c| *c = true);
        }
        s = e;
    }

    // --- Pass B: decoded ops -----------------------------------------
    //
    // Run members must stay standalone-decodable (the run executes them
    // one original instruction at a time, and indirect transfers can
    // land on any of them), so pair fusion is gated on neither half
    // being covered by a run.
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let insn = &image.insns[i];
        let addr = image.insn_addrs[i];
        let cost = u32::try_from(machine.base_cost(insn)).expect("base cost fits u32");
        let op = if run_at[i] != NO_INSN {
            Op::Run { run: run_at[i] }
        } else if !covered[i] && !covered.get(i + 1).copied().unwrap_or(false) {
            try_fuse(i).unwrap_or_else(|| single(insn, addr, image, &resolve, taken_extra))
        } else {
            single(insn, addr, image, &resolve, taken_extra)
        };
        ops.push(DOp { cost, addr, op });
    }

    DecodedProgram {
        machine: *machine,
        fused: fuse,
        insns: image.insns.clone(),
        insn_addrs: image.insn_addrs.clone(),
        ops,
        runs,
        run_segs,
        run_ops,
        dispatch,
        text_base: l.text_base,
        natives: image.natives.clone(),
        entry: image.entry,
        constructors: image.constructors.clone(),
        layout: l,
        xom: image.xom,
        data_init: image.data_init.clone(),
        init_mem: build_init_mem(image),
    }
}

/// Decodes one instruction into its standalone op.
fn single(
    insn: &Insn,
    addr: VAddr,
    image: &Image,
    resolve: &impl Fn(VAddr) -> u32,
    taken_extra: u16,
) -> Op {
    match *insn {
        // MovAbs is semantically MovImm; only its encoded length (and
        // therefore `addr` progression, already laid out) differs.
        Insn::MovImm { dst, imm } | Insn::MovAbs { dst, imm } => Op::MovImm { dst, imm },
        Insn::MovReg { dst, src } => Op::MovReg { dst, src },
        Insn::Load { dst, mem } => Op::Load { dst, mem },
        Insn::Store { mem, src } => Op::Store { mem, src },
        Insn::StoreImm { mem, imm } => Op::StoreImm { mem, imm },
        Insn::Lea { dst, mem } => Op::Lea { dst, mem },
        Insn::Push { src } => Op::Push { src },
        Insn::PushImm { imm } => Op::PushImm { imm },
        Insn::Pop { dst } => Op::Pop { dst },
        Insn::AluReg { op, dst, src } => Op::AluReg { op, dst, src },
        Insn::AluImm { op, dst, imm } => Op::AluImm { op, dst, imm },
        Insn::Div { dst, src } => Op::Div { dst, src },
        Insn::Rem { dst, src } => Op::Rem { dst, src },
        Insn::CmpReg { a, b } => Op::CmpReg { a, b },
        Insn::CmpImm { a, imm } => Op::CmpImm { a, imm },
        Insn::Test { a } => Op::Test { a },
        Insn::SetCc { cond, dst } => Op::SetCc { cond, dst },
        Insn::LoadAbs { dst, addr } => Op::LoadAbs { dst, addr },
        Insn::VLoadAbs { dst, addr } => Op::VLoadAbs { dst, addr },
        Insn::Call { target } => Op::Call {
            tgt: resolve(target),
            ra: addr + insn.len(),
        },
        Insn::CallInd { target } => Op::CallInd {
            target,
            ra: addr + insn.len(),
        },
        Insn::CallNative { native } => Op::CallNative {
            native,
            is_probe: image.natives.get(native as usize) == Some(&NativeKind::StackProbe),
        },
        Insn::Ret => Op::Ret,
        Insn::Jmp { target } => Op::Jmp {
            tgt: resolve(target),
        },
        Insn::JmpInd { target } => Op::JmpInd { target },
        Insn::Jcc { cond, target } => Op::Jcc {
            cond,
            tgt: resolve(target),
            taken_extra,
        },
        Insn::Nop { .. } => Op::Nop,
        Insn::Trap => Op::Trap,
        Insn::VLoad { dst, mem, aligned } => Op::VLoad { dst, mem, aligned },
        Insn::VStore { mem, src, aligned } => Op::VStore { mem, src, aligned },
        Insn::VZeroUpper => Op::VZeroUpper,
        Insn::Halt => Op::Halt,
    }
}

/// The fusion catalogue: returns the fused op for an adjacent pair, or
/// `None` when the pair is not a candidate.
fn fuse_pair(
    i1: &Insn,
    i2: &Insn,
    f2: F2,
    resolve: &impl Fn(VAddr) -> u32,
    taken_extra: u16,
) -> Option<Op> {
    Some(match (*i1, *i2) {
        (
            Insn::MovReg {
                dst: dst1,
                src: src1,
            },
            Insn::AluReg { op, dst, src },
        ) => Op::MovRegAluReg {
            dst1,
            src1,
            op,
            dst2: dst,
            src2: src,
            f2,
        },
        (
            Insn::AluReg {
                op,
                dst: dst1,
                src: src1,
            },
            Insn::MovReg { dst, src },
        ) => Op::AluRegMovReg {
            op,
            dst1,
            src1,
            dst2: dst,
            src2: src,
            f2,
        },
        (Insn::MovImm { dst: dst1, imm }, Insn::MovReg { dst, src }) => Op::MovImmMovReg {
            dst1,
            imm,
            dst2: dst,
            src2: src,
            f2,
        },
        (
            Insn::MovReg {
                dst: dst1,
                src: src1,
            },
            Insn::MovImm { dst, imm },
        ) => Op::MovRegMovImm {
            dst1,
            src1,
            dst2: dst,
            imm,
            f2,
        },
        (
            Insn::MovReg {
                dst: dst1,
                src: src1,
            },
            Insn::Store { mem, src },
        ) => Op::MovRegStore {
            dst1,
            src1,
            mem,
            src2: src,
            f2,
        },
        (Insn::Load { dst: dst1, mem }, Insn::MovReg { dst, src }) => Op::LoadMovReg {
            dst1,
            mem,
            dst2: dst,
            src2: src,
            f2,
        },
        (Insn::Store { mem: smem, src }, Insn::Load { dst, mem: lmem }) => Op::StoreLoad {
            smem,
            src,
            dst,
            lmem,
            f2,
        },
        (Insn::Lea { dst: dst1, mem }, Insn::MovReg { dst, src }) => Op::LeaMovReg {
            dst1,
            mem,
            dst2: dst,
            src2: src,
            f2,
        },
        (Insn::CmpReg { a, b }, Insn::Jcc { cond, target }) => Op::CmpRegJcc {
            a,
            b,
            cond,
            tgt: resolve(target),
            taken_extra,
            f2,
        },
        (Insn::CmpImm { a, imm }, Insn::Jcc { cond, target }) => Op::CmpImmJcc {
            a,
            imm,
            cond,
            tgt: resolve(target),
            taken_extra,
            f2,
        },
        (Insn::Test { a }, Insn::Jcc { cond, target }) => Op::TestJcc {
            a,
            cond,
            tgt: resolve(target),
            taken_extra,
            f2,
        },
        (Insn::CmpReg { a, b }, Insn::SetCc { cond, dst }) => Op::CmpRegSetCc {
            a,
            b,
            cond,
            dst,
            f2,
        },
        (Insn::Push { src: s1 }, Insn::Push { src: s2 }) => Op::PushPush { s1, s2, f2 },
        (Insn::Pop { dst: d1 }, Insn::Pop { dst: d2 }) => Op::PopPop { d1, d2, f2 },
        (Insn::Pop { dst: d1 }, Insn::Ret) => Op::PopRet { d1, f2 },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_catalogue_covers_expected_pairs() {
        let f2 = F2 { cost2: 3, a2off: 3 };
        let resolve = |_t: VAddr| 7u32;
        let pairs: &[(Insn, Insn)] = &[
            (
                Insn::MovReg {
                    dst: Gpr::Rax,
                    src: Gpr::Rbx,
                },
                Insn::AluReg {
                    op: AluOp::Add,
                    dst: Gpr::Rax,
                    src: Gpr::Rcx,
                },
            ),
            (
                Insn::CmpImm {
                    a: Gpr::Rcx,
                    imm: 10,
                },
                Insn::Jcc {
                    cond: Cond::Le,
                    target: 0x40_0000,
                },
            ),
            (Insn::Push { src: Gpr::Rbp }, Insn::Push { src: Gpr::Rbx }),
            (Insn::Pop { dst: Gpr::Rbp }, Insn::Ret),
        ];
        for (a, b) in pairs {
            assert!(
                fuse_pair(a, b, f2, &resolve, 2).is_some(),
                "{a:?} + {b:?} must fuse"
            );
        }
        // Calls and natives never fuse (probe/resume and tracer seams).
        assert!(fuse_pair(
            &Insn::Call { target: 0x40_0000 },
            &Insn::Ret,
            f2,
            &resolve,
            2
        )
        .is_none());
    }
}
