//! Execution statistics collected by the VM.

/// Counters accumulated during a run.
///
/// `cycles` is the cost-model output (deci-cycles internally, exposed in
/// deci-cycles so overhead ratios keep full precision); `calls` counts
/// executed `call` instructions the way the paper's Table 2
/// instrumentation does (tail calls never appear because the code
/// generator does not emit them — the paper likewise excludes tail calls
/// since they push no return address).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamically executed instructions.
    pub instructions: u64,
    /// Accumulated cost in deci-cycles.
    pub cycles: u64,
    /// Executed `call`/`callind` instructions (native hypercalls are
    /// counted separately).
    pub calls: u64,
    /// Executed native (hypercall) invocations.
    pub native_calls: u64,
    /// Executed `ret` instructions.
    pub rets: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Instruction-cache hits.
    pub icache_hits: u64,
    /// Maximum resident set size in pages (maxrss analogue, §6.2.5).
    pub max_rss_pages: usize,
    /// AVX/SSE transition penalties incurred (missing `vzeroupper`).
    pub avx_transitions: u64,
}

impl ExecStats {
    /// Cycles as a floating-point number of core cycles.
    pub fn cycles_f64(&self) -> f64 {
        self.cycles as f64 / 10.0
    }

    /// Maximum resident set size in bytes.
    pub fn max_rss_bytes(&self) -> u64 {
        self.max_rss_pages as u64 * crate::mem::PAGE_SIZE
    }

    /// Instruction-cache miss rate in [0, 1].
    pub fn icache_miss_rate(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            0.0
        } else {
            self.icache_misses as f64 / total as f64
        }
    }
}

/// Execution-*edge* telemetry: which engine paths a run took, exported
/// for the coverage-guided fuzzer.
///
/// Deliberately **not** part of [`ExecStats`]: `ExecStats` is the
/// bit-identical semantic contract (fused == unfused == traced,
/// enforced by the differential suites), whereas edge counters describe
/// which *implementation* paths ran — a fused run legitimately takes
/// block runs and rollbacks an unfused run never sees. Keeping them
/// separate preserves the equality contracts while still letting the
/// fuzzer observe rare engine edges (mid-run fault rollback, budget
/// handoff to the reference engine) as coverage features.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Block runs entered by the decoded engine (`Op::Run` dispatches).
    pub runs_entered: u64,
    /// Mid-run faults that took the positional rollback path (member
    /// charges un-booked, icache pending rolled back).
    pub run_rollbacks: u64,
    /// Budget-edge handoffs from the decoded engine to the reference
    /// per-instruction engine (`exec_slow`).
    pub slow_path_handoffs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = ExecStats {
            cycles: 125,
            icache_hits: 90,
            icache_misses: 10,
            max_rss_pages: 3,
            ..Default::default()
        };
        assert!((s.cycles_f64() - 12.5).abs() < 1e-9);
        assert!((s.icache_miss_rate() - 0.1).abs() < 1e-9);
        assert_eq!(s.max_rss_bytes(), 3 * 4096);
    }

    #[test]
    fn zero_accesses_zero_miss_rate() {
        assert_eq!(ExecStats::default().icache_miss_rate(), 0.0);
    }
}
