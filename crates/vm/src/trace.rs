//! Execution tracing: per-function cycle attribution, heap telemetry
//! and a bounded event trace.
//!
//! The tracer is the VM half of the `r2c-trace` observability layer. It
//! answers "where did the cycles of this run go, and what did the heap
//! do while they went there" — per function, with flamegraph-ready
//! folded stacks — without perturbing the run:
//!
//! * **Zero-overhead-when-off contract.** A [`Vm`](crate::Vm) without a
//!   tracer executes exactly the code it executed before tracing
//!   existed: every hook is behind an `Option` that is `None` by
//!   default. With a tracer attached, the tracer *observes* the cost
//!   model — it never feeds back into it. Cycle counts, instruction
//!   counts, icache behaviour, heap layout and program output are
//!   bit-identical between traced and untraced runs; the profiler smoke
//!   in CI asserts this on every machine model.
//! * **Attribution is exact, not sampled.** The interpreter calls
//!   [`Tracer::step`] once per executed instruction with the cycle and
//!   icache-miss counters *before* the instruction is charged; the delta
//!   since the previous step is the full cost of the previous
//!   instruction (base cost, icache miss, taken-branch extra, AVX
//!   transition penalty — whatever the cost model added), attributed to
//!   the function that executed it. Function identity comes from the
//!   image's symbol table; a shadow call stack maintained from the
//!   interpreter's own call/ret stream keys the folded-stack map.
//! * **Bounded memory.** The event ring keeps the newest
//!   [`TraceConfig::event_capacity`] events (dropping the oldest, and
//!   counting drops); the heap timeline adaptively halves its sampling
//!   rate when it reaches [`TraceConfig::heap_timeline_capacity`], so
//!   arbitrarily long runs cannot grow the tracer without bound.
//! * **Capture mode is lossless.** With [`TraceConfig::capture`] set,
//!   the tracer is the *record* half of the record-reduce-replay
//!   pipeline (`r2c-replay`): the event ring grows instead of evicting
//!   (a silently thinned trace cannot be replayed), and a
//!   [`CaptureLog`] additionally records every environment-boundary
//!   event a replay needs — extern (native) calls with their argument
//!   registers and results, resolved indirect-call targets, and
//!   call/return crossings of caller-declared boundary functions
//!   (`no_instrument` spans).

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::census::PairCensus;
use crate::fault::Fault;
use crate::image::{Image, NativeKind, SymbolKind};
use crate::mem::Perms;
use crate::stats::ExecStats;
use crate::VAddr;

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Capacity of the bounded event ring; the newest events win and
    /// evicted ones are counted in [`ExecProfile::dropped_events`].
    ///
    /// Ignored in capture mode: a replayable trace must be complete, so
    /// [`TraceConfig::capture`] makes the ring grow without bound and
    /// guarantees `dropped_events == 0`.
    pub event_capacity: usize,
    /// Maximum retained heap-timeline samples. When full, every other
    /// sample is dropped and the sampling stride doubles.
    pub heap_timeline_capacity: usize,
    /// Record mode for `r2c-replay`: keep *every* event (the ring grows
    /// instead of evicting) and additionally log environment-boundary
    /// events into a [`CaptureLog`].
    pub capture: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            event_capacity: 1024,
            heap_timeline_capacity: 2048,
            capture: false,
        }
    }
}

/// One environment-boundary event recorded in capture mode: exactly the
/// information a standalone replay needs to stub the environment with
/// recorded answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryEvent {
    /// A native (extern) call completed. `args` are the System V
    /// argument registers the native reads (`rdi`, `rsi`, `rdx`; unused
    /// ones carry whatever the register held) and `ret` is `rax` after
    /// the call — the recorded answer a replay stub serves back.
    Extern {
        /// Which native ran.
        kind: NativeKind,
        /// `[rdi, rsi, rdx]` at the call.
        args: [u64; 3],
        /// `rax` after the call.
        ret: u64,
    },
    /// An indirect call at `at` resolved to `target`.
    Indirect {
        /// Address of the `callind` instruction.
        at: VAddr,
        /// The runtime-resolved callee address.
        target: VAddr,
    },
    /// A direct or indirect call crossed into a declared boundary
    /// function (a `no_instrument` span — code the diversifier leaves
    /// alone, the moral equivalent of an uninstrumented library).
    BoundaryCall {
        /// Address of the call instruction.
        at: VAddr,
        /// Entry address of the boundary function.
        target: VAddr,
    },
    /// A `ret` executed inside a declared boundary function.
    BoundaryRet {
        /// Address of the `ret` instruction.
        at: VAddr,
    },
}

/// The environment-boundary log a capture-mode run accumulates
/// ([`TraceConfig::capture`]); consumed by `r2c-replay` to build its
/// versioned on-disk trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CaptureLog {
    /// Boundary events in execution order.
    pub boundary: Vec<BoundaryEvent>,
}

/// One entry of the bounded event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TraceEvent {
    /// A `call`/`callind` executed at `at`, targeting `target`.
    Call { at: VAddr, target: VAddr },
    /// A `ret` executed at `at`.
    Ret { at: VAddr },
    /// A heap allocation returned `ptr` (0 on exhaustion).
    Alloc { ptr: VAddr, size: u64 },
    /// A heap free of `ptr`.
    Free { ptr: VAddr },
    /// A guest `mprotect` changed page permissions.
    Protect { addr: VAddr, len: u64, perms: Perms },
    /// The run ended with a fault (rendered via its `Display`).
    Fault { desc: String },
}

/// One heap-telemetry sample, taken at allocator activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapSample {
    /// Dynamic instruction count at the sample.
    pub instructions: u64,
    /// Bytes live in the allocator.
    pub live_bytes: u64,
    /// Pages resident in the whole address space.
    pub resident_pages: u64,
}

/// Heap telemetry accumulated over a traced run.
#[derive(Clone, Debug, Default)]
pub struct HeapTelemetry {
    /// Successful allocations observed (malloc + memalign).
    pub allocs: u64,
    /// Frees observed.
    pub frees: u64,
    /// High-water mark of live heap bytes at allocator events.
    pub peak_live_bytes: u64,
    /// High-water mark of resident pages at allocator events.
    pub peak_resident_pages: u64,
    /// Live heap bytes when the profile was taken.
    pub end_live_bytes: u64,
    /// Resident pages when the profile was taken.
    pub end_resident_pages: u64,
    /// Pages the heap unmapped after quarantine (cumulative).
    pub released_pages: u64,
    /// Pages sitting in the no-access quarantine at profile time.
    pub quarantined_pages: u64,
    /// High-water timeline (possibly thinned — see [`TraceConfig`]).
    pub timeline: Vec<HeapSample>,
}

/// Per-function attribution row.
#[derive(Clone, Debug)]
pub struct FuncProfile {
    /// Function (or booby-trap) symbol name; `"?"` for addresses
    /// outside any known function span.
    pub name: String,
    /// Deci-cycles attributed to instructions of this function.
    pub self_cycles: u64,
    /// Instructions executed inside this function.
    pub instructions: u64,
    /// Icache misses charged while executing this function.
    pub icache_misses: u64,
    /// Calls issued from this function.
    pub calls: u64,
}

/// Snapshot of everything a traced run learned.
#[derive(Clone, Debug)]
pub struct ExecProfile {
    /// The run's execution statistics (identical to the untraced run).
    pub totals: ExecStats,
    /// Per-function rows, sorted by descending self cycles.
    pub funcs: Vec<FuncProfile>,
    /// Folded call stacks (`"main;f;g"`) → deci-cycles, sorted by
    /// descending cycles. One line each in [`ExecProfile::folded_stacks`].
    pub folded: Vec<(String, u64)>,
    /// Heap telemetry.
    pub heap: HeapTelemetry,
    /// Newest events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring.
    pub dropped_events: u64,
}

impl ExecProfile {
    /// Renders the folded-stack map in the `stackcollapse` format
    /// consumed by `flamegraph.pl` and compatible viewers: one
    /// `frame;frame;frame count` line per stack.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for (stack, cycles) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Serializes the profile as JSON (hand-rolled; the workspace has no
    /// serialization dependency by design).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"totals\": {");
        let t = &self.totals;
        s.push_str(&format!(
            "\"instructions\": {}, \"cycles_deci\": {}, \"calls\": {}, \
             \"native_calls\": {}, \"rets\": {}, \"icache_misses\": {}, \
             \"icache_hits\": {}, \"max_rss_pages\": {}, \"avx_transitions\": {}",
            t.instructions,
            t.cycles,
            t.calls,
            t.native_calls,
            t.rets,
            t.icache_misses,
            t.icache_hits,
            t.max_rss_pages,
            t.avx_transitions
        ));
        s.push_str("},\n  \"functions\": [");
        for (i, f) in self.funcs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"self_cycles_deci\": {}, \
                 \"instructions\": {}, \"icache_misses\": {}, \"calls\": {}}}",
                json_escape(&f.name),
                f.self_cycles,
                f.instructions,
                f.icache_misses,
                f.calls
            ));
        }
        s.push_str("\n  ],\n  \"folded\": [");
        for (i, (stack, cycles)) in self.folded.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\n    {{\"stack\": \"{}\", \"cycles_deci\": {cycles}}}",
                json_escape(stack)
            ));
        }
        let h = &self.heap;
        s.push_str("\n  ],\n  \"heap\": {");
        s.push_str(&format!(
            "\"allocs\": {}, \"frees\": {}, \"peak_live_bytes\": {}, \
             \"peak_resident_pages\": {}, \"end_live_bytes\": {}, \
             \"end_resident_pages\": {}, \"released_pages\": {}, \
             \"quarantined_pages\": {}, \"timeline\": [",
            h.allocs,
            h.frees,
            h.peak_live_bytes,
            h.peak_resident_pages,
            h.end_live_bytes,
            h.end_resident_pages,
            h.released_pages,
            h.quarantined_pages
        ));
        for (i, sm) in h.timeline.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"instructions\": {}, \"live_bytes\": {}, \"resident_pages\": {}}}",
                sm.instructions, sm.live_bytes, sm.resident_pages
            ));
        }
        s.push_str("]},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str("\n    ");
            s.push_str(&event_json(e));
        }
        s.push_str(&format!(
            "\n  ],\n  \"dropped_events\": {}\n}}\n",
            self.dropped_events
        ));
        s
    }
}

fn event_json(e: &TraceEvent) -> String {
    match e {
        TraceEvent::Call { at, target } => {
            format!("{{\"kind\": \"call\", \"at\": {at}, \"target\": {target}}}")
        }
        TraceEvent::Ret { at } => format!("{{\"kind\": \"ret\", \"at\": {at}}}"),
        TraceEvent::Alloc { ptr, size } => {
            format!("{{\"kind\": \"alloc\", \"ptr\": {ptr}, \"size\": {size}}}")
        }
        TraceEvent::Free { ptr } => format!("{{\"kind\": \"free\", \"ptr\": {ptr}}}"),
        TraceEvent::Protect { addr, len, perms } => format!(
            "{{\"kind\": \"protect\", \"addr\": {addr}, \"len\": {len}, \"perms\": \"{perms}\"}}"
        ),
        TraceEvent::Fault { desc } => {
            format!(
                "{{\"kind\": \"fault\", \"desc\": \"{}\"}}",
                json_escape(desc)
            )
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Index of the pseudo-function covering addresses outside every known
/// function span.
const UNKNOWN: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq)]
enum PendingStack {
    None,
    Push,
    Pop,
}

/// The live tracer state attached to a [`Vm`](crate::Vm).
///
/// All hooks are called *by* the interpreter and only ever read VM
/// state — the tracer cannot change the execution it observes.
pub struct Tracer {
    cfg: TraceConfig,
    /// Function span starts, sorted; span `i` covers
    /// `[starts[i], starts[i+1])` (the last one ends at `text_end`).
    /// Padding between functions is attributed to the preceding one.
    starts: Vec<VAddr>,
    names: Vec<String>,
    text_end: VAddr,
    // --- attribution state -------------------------------------------
    cur: usize,
    last_cycles: u64,
    last_misses: u64,
    /// Deci-cycles attributed to the current folded stack but not yet
    /// flushed into `folded` (flushed on any stack/function change).
    pending_fold: u64,
    pending_stack: PendingStack,
    stack: Vec<usize>,
    folded: HashMap<String, u64>,
    // Per-function accumulators, parallel to `starts`, plus one trailing
    // slot for UNKNOWN.
    self_cycles: Vec<u64>,
    insns: Vec<u64>,
    misses: Vec<u64>,
    calls: Vec<u64>,
    // --- heap telemetry ----------------------------------------------
    allocs: u64,
    frees: u64,
    peak_live: u64,
    peak_resident: u64,
    timeline: Vec<HeapSample>,
    timeline_stride: u64,
    heap_events: u64,
    // --- event ring --------------------------------------------------
    events: VecDeque<TraceEvent>,
    dropped_events: u64,
    // --- capture mode ------------------------------------------------
    capture: Option<CaptureLog>,
    /// Sorted `(start, end)` spans of declared boundary functions
    /// (capture mode only; empty otherwise).
    boundary_spans: Vec<(VAddr, VAddr)>,
    // --- dynamic-pair census -----------------------------------------
    census: Option<Box<PairCensus>>,
}

impl Tracer {
    /// Builds a tracer for `image`, deriving function spans from its
    /// symbol table (functions and booby traps).
    pub fn new(image: &Image, cfg: TraceConfig) -> Tracer {
        let mut funcs: Vec<(VAddr, String)> = image
            .symbols
            .iter()
            .filter(|s| matches!(s.kind, SymbolKind::Function | SymbolKind::BoobyTrap))
            .map(|s| (s.addr, s.name.clone()))
            .collect();
        funcs.sort_unstable_by_key(|&(a, _)| a);
        funcs.dedup_by_key(|&mut (a, _)| a);
        let (starts, names): (Vec<_>, Vec<_>) = funcs.into_iter().unzip();
        let slots = starts.len() + 1;
        Tracer {
            cfg,
            starts,
            names,
            text_end: image.layout.text_end,
            cur: UNKNOWN,
            last_cycles: 0,
            last_misses: 0,
            pending_fold: 0,
            pending_stack: PendingStack::None,
            stack: Vec::with_capacity(64),
            folded: HashMap::new(),
            self_cycles: vec![0; slots],
            insns: vec![0; slots],
            misses: vec![0; slots],
            calls: vec![0; slots],
            allocs: 0,
            frees: 0,
            peak_live: 0,
            peak_resident: 0,
            timeline: Vec::new(),
            timeline_stride: 1,
            heap_events: 0,
            events: VecDeque::new(),
            dropped_events: 0,
            capture: if cfg.capture {
                Some(CaptureLog::default())
            } else {
                None
            },
            boundary_spans: Vec::new(),
            census: None,
        }
    }

    /// Declares the boundary-function spans capture mode reports
    /// call/return crossings for (sorted by start address). `r2c-replay`
    /// derives these from the module's `no_instrument` functions and the
    /// image symbol table. No effect outside capture mode.
    pub fn set_capture_boundaries(&mut self, mut spans: Vec<(VAddr, VAddr)>) {
        spans.sort_unstable_by_key(|&(s, _)| s);
        self.boundary_spans = spans;
    }

    /// The capture-mode boundary log, if capture is on.
    pub fn capture_log(&self) -> Option<&CaptureLog> {
        self.capture.as_ref()
    }

    /// Attaches a dynamic-pair census (DESIGN.md §11/§14) counting
    /// executed fall-through-adjacent instruction-class pairs against
    /// the fusion catalogue. The census observes [`Tracer::step`], so it
    /// shares the tracer's exactness and zero-feedback properties.
    pub fn enable_pair_census(&mut self, image: &Image) {
        self.census = Some(Box::new(PairCensus::new(image)));
    }

    /// The attached dynamic-pair census, if any.
    pub fn pair_census(&self) -> Option<&PairCensus> {
        self.census.as_deref()
    }

    /// True when a boundary span contains `addr`.
    fn in_boundary(&self, addr: VAddr) -> bool {
        match self.boundary_spans.partition_point(|&(s, _)| s <= addr) {
            0 => false,
            i => addr < self.boundary_spans[i - 1].1,
        }
    }

    fn span_of(&self, addr: VAddr) -> usize {
        if addr >= self.text_end {
            return UNKNOWN;
        }
        match self.starts.partition_point(|&s| s <= addr) {
            0 => UNKNOWN,
            i => i - 1,
        }
    }

    fn slot(&self, idx: usize) -> usize {
        if idx == UNKNOWN {
            self.names.len()
        } else {
            idx
        }
    }

    fn name(&self, idx: usize) -> &str {
        if idx == UNKNOWN {
            "?"
        } else {
            &self.names[idx]
        }
    }

    fn fold_key(&self) -> String {
        let mut key = String::new();
        for &f in &self.stack {
            key.push_str(self.name(f));
            key.push(';');
        }
        key.push_str(self.name(self.cur));
        key
    }

    fn flush_fold(&mut self) {
        if self.pending_fold > 0 {
            let key = self.fold_key();
            *self.folded.entry(key).or_insert(0) += self.pending_fold;
            self.pending_fold = 0;
        }
    }

    /// Per-instruction hook: called with the address of the instruction
    /// about to execute and the cycle/miss counters *before* it is
    /// charged, so the delta since the last call is the full cost of the
    /// previously executed instruction.
    #[inline]
    pub fn step(&mut self, addr: VAddr, cycles: u64, icache_misses: u64) {
        if let Some(c) = &mut self.census {
            c.note(addr);
        }
        let dc = cycles - self.last_cycles;
        let dm = icache_misses - self.last_misses;
        self.last_cycles = cycles;
        self.last_misses = icache_misses;
        let slot = self.slot(self.cur);
        self.self_cycles[slot] += dc;
        self.misses[slot] += dm;
        self.pending_fold += dc;
        match self.pending_stack {
            PendingStack::Push => {
                self.flush_fold();
                self.stack.push(self.cur);
            }
            PendingStack::Pop => {
                self.flush_fold();
                self.stack.pop();
            }
            PendingStack::None => {}
        }
        self.pending_stack = PendingStack::None;
        let f = self.span_of(addr);
        if f != self.cur {
            self.flush_fold();
            self.cur = f;
        }
        let fslot = self.slot(f);
        self.insns[fslot] += 1;
    }

    /// Hook for an executed `call`/`callind` at `at` targeting `target`.
    /// The shadow-stack push takes effect at the next [`Tracer::step`]
    /// (the callee's first instruction), after the call instruction's
    /// own cost lands on the caller.
    pub fn on_call(&mut self, at: VAddr, target: VAddr) {
        let slot = self.slot(self.cur);
        self.calls[slot] += 1;
        self.pending_stack = PendingStack::Push;
        self.record_event(TraceEvent::Call { at, target });
        if self.capture.is_some()
            && self
                .boundary_spans
                .binary_search_by_key(&target, |&(s, _)| s)
                .is_ok()
        {
            if let Some(c) = &mut self.capture {
                c.boundary.push(BoundaryEvent::BoundaryCall { at, target });
            }
        }
    }

    /// Hook for an executed `ret` at `at`.
    pub fn on_ret(&mut self, at: VAddr) {
        self.pending_stack = PendingStack::Pop;
        self.record_event(TraceEvent::Ret { at });
        if self.capture.is_some() && self.in_boundary(at) {
            if let Some(c) = &mut self.capture {
                c.boundary.push(BoundaryEvent::BoundaryRet { at });
            }
        }
    }

    /// Capture hook for a resolved indirect call (called alongside
    /// [`Tracer::on_call`] for `callind`). No-op outside capture mode.
    pub fn on_indirect(&mut self, at: VAddr, target: VAddr) {
        if let Some(c) = &mut self.capture {
            c.boundary.push(BoundaryEvent::Indirect { at, target });
        }
    }

    /// Capture hook for a completed native (extern) call: the argument
    /// registers it could have read and its `rax` answer. No-op outside
    /// capture mode.
    pub fn on_extern(&mut self, kind: NativeKind, args: [u64; 3], ret: u64) {
        if let Some(c) = &mut self.capture {
            c.boundary.push(BoundaryEvent::Extern { kind, args, ret });
        }
    }

    /// Hook for the start of an activation (entry call, constructor,
    /// attacker-driven call): resets the shadow stack.
    pub fn on_activation(&mut self) {
        self.flush_fold();
        self.stack.clear();
        self.pending_stack = PendingStack::None;
        self.cur = UNKNOWN;
    }

    /// Attributes all outstanding cost (called when a run finishes, so
    /// the final instruction's cost is not lost).
    pub fn sync(&mut self, cycles: u64, icache_misses: u64) {
        let dc = cycles - self.last_cycles;
        let dm = icache_misses - self.last_misses;
        self.last_cycles = cycles;
        self.last_misses = icache_misses;
        let slot = self.slot(self.cur);
        self.self_cycles[slot] += dc;
        self.misses[slot] += dm;
        self.pending_fold += dc;
        self.flush_fold();
    }

    /// Hook for a successful allocation (`ptr` is 0 on exhaustion).
    pub fn on_alloc(&mut self, ptr: VAddr, size: u64, live: u64, resident: u64, insns: u64) {
        if ptr != 0 {
            self.allocs += 1;
        }
        self.record_event(TraceEvent::Alloc { ptr, size });
        self.heap_sample(live, resident, insns);
    }

    /// Hook for a free.
    pub fn on_free(&mut self, ptr: VAddr, live: u64, resident: u64, insns: u64) {
        self.frees += 1;
        self.record_event(TraceEvent::Free { ptr });
        self.heap_sample(live, resident, insns);
    }

    /// Hook for a guest `mprotect`.
    pub fn on_protect(&mut self, addr: VAddr, len: u64, perms: Perms) {
        self.record_event(TraceEvent::Protect { addr, len, perms });
    }

    /// Hook for a fault ending the run.
    pub fn on_fault(&mut self, f: &Fault) {
        self.record_event(TraceEvent::Fault {
            desc: f.to_string(),
        });
    }

    fn heap_sample(&mut self, live: u64, resident: u64, insns: u64) {
        self.peak_live = self.peak_live.max(live);
        self.peak_resident = self.peak_resident.max(resident);
        self.heap_events += 1;
        if !self.heap_events.is_multiple_of(self.timeline_stride) {
            return;
        }
        self.timeline.push(HeapSample {
            instructions: insns,
            live_bytes: live,
            resident_pages: resident,
        });
        if self.timeline.len() >= self.cfg.heap_timeline_capacity.max(2) {
            // Thin: keep every other sample and sample half as often.
            let mut i = 0;
            self.timeline.retain(|_| {
                i += 1;
                i % 2 == 1
            });
            self.timeline_stride *= 2;
        }
    }

    fn record_event(&mut self, e: TraceEvent) {
        // Capture mode is lossless: the ring grows past `event_capacity`
        // instead of silently evicting (a thinned trace cannot be
        // replayed), and `dropped_events` provably stays 0 — the replay
        // recorder fails loudly on any nonzero count.
        if self.capture.is_some() {
            self.events.push_back(e);
            return;
        }
        if self.cfg.event_capacity == 0 {
            self.dropped_events += 1;
            return;
        }
        if self.events.len() >= self.cfg.event_capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(e);
    }

    /// Builds the profile snapshot. `totals` are the run's statistics
    /// (taken from the VM, identical to an untraced run).
    pub fn profile(&self, totals: ExecStats) -> ExecProfile {
        let mut funcs: Vec<FuncProfile> = Vec::new();
        for slot in 0..self.self_cycles.len() {
            if self.self_cycles[slot] == 0 && self.insns[slot] == 0 && self.calls[slot] == 0 {
                continue;
            }
            let name = if slot == self.names.len() {
                "?".to_string()
            } else {
                self.names[slot].clone()
            };
            funcs.push(FuncProfile {
                name,
                self_cycles: self.self_cycles[slot],
                instructions: self.insns[slot],
                icache_misses: self.misses[slot],
                calls: self.calls[slot],
            });
        }
        funcs.sort_by(|a, b| b.self_cycles.cmp(&a.self_cycles).then(a.name.cmp(&b.name)));
        let mut folded: Vec<(String, u64)> =
            self.folded.iter().map(|(k, &v)| (k.clone(), v)).collect();
        // Any cost not yet flushed belongs to the current stack.
        if self.pending_fold > 0 {
            let key = self.fold_key();
            match folded.iter_mut().find(|(k, _)| *k == key) {
                Some(row) => row.1 += self.pending_fold,
                None => folded.push((key, self.pending_fold)),
            }
        }
        folded.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ExecProfile {
            totals,
            funcs,
            folded,
            heap: HeapTelemetry {
                allocs: self.allocs,
                frees: self.frees,
                peak_live_bytes: self.peak_live,
                peak_resident_pages: self.peak_resident,
                end_live_bytes: 0,
                end_resident_pages: 0,
                released_pages: 0,
                quarantined_pages: 0,
                timeline: self.timeline.clone(),
            },
            events: self.events.iter().cloned().collect(),
            dropped_events: self.dropped_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{Image, SectionLayout};
    use crate::insn::Insn;

    fn tiny_image() -> Image {
        Image {
            insns: vec![Insn::Ret],
            insn_addrs: vec![0x40_0000],
            layout: SectionLayout {
                text_base: 0x40_0000,
                text_end: 0x40_1000,
                data_base: 0x60_0000,
                data_end: 0x60_1000,
                heap_base: 0x10_0000_0000,
                heap_size: 1 << 20,
                stack_top: 0x7fff_ffff_f000,
                stack_size: 1 << 20,
            },
            entry: 0x40_0000,
            constructors: vec![],
            data_init: vec![],
            xom: true,
            symbols: vec![],
            natives: vec![],
            unwind: Default::default(),
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn event_ring_is_bounded() {
        let mut t = Tracer::new(
            &tiny_image(),
            TraceConfig {
                event_capacity: 4,
                ..Default::default()
            },
        );
        for i in 0..10 {
            t.on_ret(i);
        }
        let p = t.profile(ExecStats::default());
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.dropped_events, 6);
        assert_eq!(p.events[0], TraceEvent::Ret { at: 6 });
    }

    #[test]
    fn capture_mode_ring_grows_instead_of_dropping() {
        // Regression: before capture mode existed, a full ring silently
        // evicted the oldest events. A capture-mode trace must keep all
        // of them — overflow the configured capacity by 25x and assert
        // nothing was lost.
        let mut t = Tracer::new(
            &tiny_image(),
            TraceConfig {
                event_capacity: 4,
                capture: true,
                ..Default::default()
            },
        );
        for i in 0..100 {
            t.on_ret(i);
        }
        let p = t.profile(ExecStats::default());
        assert_eq!(p.events.len(), 100, "capture ring must not evict");
        assert_eq!(p.dropped_events, 0, "capture mode must not drop");
        assert_eq!(p.events[0], TraceEvent::Ret { at: 0 });
        assert_eq!(p.events[99], TraceEvent::Ret { at: 99 });
    }

    #[test]
    fn capture_mode_overrides_zero_capacity() {
        // Even the "events off" configuration keeps everything once
        // capture is requested: replay correctness beats ring tuning.
        let mut t = Tracer::new(
            &tiny_image(),
            TraceConfig {
                event_capacity: 0,
                capture: true,
                ..Default::default()
            },
        );
        for i in 0..10 {
            t.on_ret(i);
        }
        let p = t.profile(ExecStats::default());
        assert_eq!(p.events.len(), 10);
        assert_eq!(p.dropped_events, 0);
    }

    #[test]
    fn capture_log_records_boundary_events() {
        let mut t = Tracer::new(
            &tiny_image(),
            TraceConfig {
                capture: true,
                ..Default::default()
            },
        );
        t.set_capture_boundaries(vec![(0x40_0100, 0x40_0200)]);
        t.on_call(0x40_0000, 0x40_0100); // into a boundary span
        t.on_call(0x40_0010, 0x40_0300); // ordinary call: ring only
        t.on_indirect(0x40_0020, 0x40_0300);
        t.on_ret(0x40_0150); // inside the boundary span
        t.on_ret(0x40_0030); // outside
        t.on_extern(NativeKind::Malloc, [64, 0, 0], 0x10_0000_0000);
        let log = t.capture_log().unwrap();
        assert_eq!(
            log.boundary,
            vec![
                BoundaryEvent::BoundaryCall {
                    at: 0x40_0000,
                    target: 0x40_0100
                },
                BoundaryEvent::Indirect {
                    at: 0x40_0020,
                    target: 0x40_0300
                },
                BoundaryEvent::BoundaryRet { at: 0x40_0150 },
                BoundaryEvent::Extern {
                    kind: NativeKind::Malloc,
                    args: [64, 0, 0],
                    ret: 0x10_0000_0000
                },
            ]
        );
        // Outside capture mode the same hooks log nothing.
        let mut off = Tracer::new(&tiny_image(), TraceConfig::default());
        off.on_extern(NativeKind::Malloc, [64, 0, 0], 1);
        off.on_indirect(1, 2);
        assert!(off.capture_log().is_none());
    }

    #[test]
    fn heap_timeline_thins_but_keeps_peaks() {
        let mut t = Tracer::new(
            &tiny_image(),
            TraceConfig {
                event_capacity: 0,
                heap_timeline_capacity: 8,
                capture: false,
            },
        );
        for i in 0..1000u64 {
            t.on_alloc(16, 16, i * 10, i, i);
        }
        assert!(
            t.timeline.len() < 8,
            "timeline kept {} samples",
            t.timeline.len()
        );
        assert_eq!(t.peak_live, 999 * 10);
        assert_eq!(t.peak_resident, 999);
    }
}
