//! The virtual-machine interpreter.
//!
//! [`Vm`] loads an [`Image`], runs its constructors and entry point, and
//! accounts per-instruction costs against a [`MachineConfig`]. It also
//! exposes the *attacker primitives* the paper's threat model grants
//! (§3): permission-checked arbitrary read/write (a memory-corruption
//! vulnerability), stack-frame leaks, and control-flow hijacking. Every
//! booby-trap execution and guard-page access is recorded as a
//! [`Detection`] event for the reactive-defense monitor.
//!
//! Execution has two engines sharing one semantic contract:
//!
//! * **the fast path** ([`Vm::exec_fast`]) runs the pre-decoded,
//!   superinstruction-fused IR from [`crate::decode`] — this is what
//!   untraced runs use;
//! * **the slow path** ([`Vm::exec_slow`]) is the original per-[`Insn`]
//!   interpreter, kept verbatim for trace-enabled runs (every tracer
//!   hook lives here) and as the semantic reference the differential
//!   suites compare the fast path against.
//!
//! Simulated [`ExecStats`] are bit-identical between the two, per seed,
//! on every workload — the decoded engine re-checks the instruction
//! budget and touches the simulated icache once per *original*
//! instruction in original order, even inside fused pairs.

use std::sync::Arc;

use crate::decode::{self, DecodedProgram, Op, NO_INSN};
use crate::fault::{Detection, Fault};
use crate::heap::Heap;
use crate::image::{Image, NativeKind};
use crate::insn::{AluOp, Cond, Insn, MemRef};
use crate::machine::{ICache, MachineConfig};
use crate::mem::{Memory, Perms};
use crate::regs::{Gpr, RegFile, Ymm};
use crate::stats::ExecStats;
use crate::trace::{CaptureLog, ExecProfile, TraceConfig, Tracer};
use crate::VAddr;

/// Sentinel return address: `ret`ing to it ends the current activation
/// (used for the entry point, constructors, and attacker-driven calls).
pub const EXIT_SENTINEL: VAddr = 0xE0D0_0000_0000;

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// The guest exited normally with this status value.
    Exited(i64),
    /// The guest died with a fault.
    Faulted(Fault),
    /// Execution paused at a `StackProbe` (only with
    /// [`VmConfig::break_on_probe`]); resume with [`Vm::resume`].
    /// This models Malicious Thread Blocking precisely: the victim
    /// thread is *held* at a known point while the attacker reads and
    /// writes its memory, then released (§2.3).
    Probed,
}

impl ExitStatus {
    /// True for a normal exit.
    pub fn is_exit(&self) -> bool {
        matches!(self, ExitStatus::Exited(_))
    }
}

/// A stack snapshot captured at a `StackProbe` hypercall: the state a
/// Malicious-Thread-Blocking attacker observes while the victim thread
/// is blocked.
#[derive(Clone, Debug)]
pub struct StackSnapshot {
    /// Program counter of the probe call (where the thread "blocks").
    pub pc: VAddr,
    /// Stack pointer at the probe.
    pub rsp: VAddr,
    /// Contents of `[rsp, rsp + 2 pages)`.
    pub bytes: Vec<u8>,
}

/// Result of running a guest activation to completion.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Exit status or fault.
    pub status: ExitStatus,
    /// Statistics accumulated so far (cumulative over the VM lifetime).
    pub stats: ExecStats,
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Cost model.
    pub machine: MachineConfig,
    /// Maximum dynamically executed instructions before the run is
    /// aborted with [`Fault::BudgetExhausted`].
    pub insn_budget: u64,
    /// Pause execution (returning [`ExitStatus::Probed`]) at every
    /// `StackProbe` native, so a Malicious-Thread-Blocking attacker can
    /// act on the live frame before [`Vm::resume`] releases the thread.
    pub break_on_probe: bool,
    /// Debug knob: disable superinstruction fusion in the decoded
    /// engine. [`VmConfig::new`] defaults it from the `R2C_NO_FUSE`
    /// environment variable; the fused-vs-unfused differential suites
    /// flip it programmatically. Fusion is a pure host-side
    /// optimization, so this must never change guest-visible behavior
    /// or [`ExecStats`] — that is exactly what the suites assert.
    pub no_fuse: bool,
    /// Debug knob: disable copy-on-write page sharing, so building or
    /// resetting a VM deep-copies the load-time image
    /// ([`Memory::from_snapshot_deep`] / [`Memory::restore_deep`]) the
    /// way the pre-CoW implementation did. [`VmConfig::new`] defaults
    /// it from the `R2C_NO_COW` environment variable. CoW is a pure
    /// host-side optimization — guest-visible behavior, [`ExecStats`]
    /// and monitor logs must be bit-identical either way, which the
    /// CoW differential suites and `report_fleet` assert.
    pub no_cow: bool,
}

impl VmConfig {
    /// Config with the given machine and a generous default budget.
    /// Fusion is on unless the `R2C_NO_FUSE` environment variable is
    /// set (to anything).
    pub fn new(machine: MachineConfig) -> VmConfig {
        VmConfig {
            machine,
            insn_budget: 2_000_000_000,
            break_on_probe: false,
            no_fuse: std::env::var_os("R2C_NO_FUSE").is_some(),
            no_cow: std::env::var_os("R2C_NO_COW").is_some(),
        }
    }
}

/// The virtual machine.
pub struct Vm {
    cfg: VmConfig,
    /// The decoded program: instructions, pre-decoded ops, dispatch
    /// table, native table, layout and the load-time memory image —
    /// shared (via the decode cache) with every other VM running the
    /// same image on the same machine model.
    prog: Arc<DecodedProgram>,
    /// Guest memory. Public for tests and analysis tooling; attacks must
    /// use the permission-checked primitives instead.
    pub mem: Memory,
    /// Architectural registers.
    pub regs: RegFile,
    /// Guest heap allocator state.
    pub heap: Heap,
    icache: ICache,
    stats: ExecStats,
    edges: crate::stats::EdgeStats,
    stack_limit: VAddr,
    /// Values printed by the guest (`PrintI64` / `PutChar` natives), the
    /// "program output" used for differential correctness checks.
    pub output: Vec<i64>,
    detections: Vec<Detection>,
    /// Stack snapshots taken at `StackProbe` natives — the window
    /// Malicious Thread Blocking lets an attacker observe (§2.3).
    /// AOCR's analysis uses two pages of stack values, so that is what
    /// each snapshot covers.
    pub probes: Vec<StackSnapshot>,
    ymm_dirty: bool,
    pending_resume: Option<u32>,
    /// Execution tracer (`None` by default). A traced VM runs the slow
    /// path, where every hook lives; an untraced VM runs the decoded
    /// fast path. Tracing only *observes* state — cycle counts stay
    /// bit-identical either way, which the `profile` binary enforces.
    tracer: Option<Box<Tracer>>,
}

impl Vm {
    /// Loads an image into a fresh address space.
    ///
    /// Decoding is cached: constructing many VMs from the same image on
    /// the same machine (bench repetitions, fleet workers, pool
    /// variants) decodes once and clones the load-time memory snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the image fails [`Image::validate`].
    pub fn new(image: &Image, cfg: VmConfig) -> Vm {
        let prog = decode::decoded(image, &cfg.machine, !cfg.no_fuse);
        Vm::from_decoded(prog, cfg)
    }

    /// Builds a VM directly on an already-decoded program, bypassing
    /// the decode cache. Test hook for the translation validator's
    /// mutation corpus: a deliberately corrupted [`DecodedProgram`] can
    /// be executed to demonstrate the dynamic divergence the static
    /// verdict predicts (a corrupted program could never come out of
    /// the cache, which verifies field-by-field against the image).
    #[doc(hidden)]
    pub fn from_decoded(prog: Arc<DecodedProgram>, cfg: VmConfig) -> Vm {
        let mem = if cfg.no_cow {
            Memory::from_snapshot_deep(&prog.init_mem)
        } else {
            Memory::from_snapshot(&prog.init_mem)
        };
        let l = prog.layout;
        let heap = Heap::new(l.heap_base, l.heap_size);
        let mut regs = RegFile::new();
        regs.set(Gpr::Rsp, l.stack_top - 64);
        Vm {
            cfg,
            prog,
            mem,
            regs,
            heap,
            icache: ICache::new(cfg.machine.icache),
            stats: ExecStats::default(),
            edges: crate::stats::EdgeStats::default(),
            stack_limit: l.stack_top - l.stack_size,
            output: Vec::new(),
            detections: Vec::new(),
            probes: Vec::new(),
            ymm_dirty: false,
            pending_resume: None,
            tracer: None,
        }
    }

    /// Replaces the loaded module: semantically identical to building a
    /// fresh `Vm::new(image, cfg)` with this VM's config. The previous
    /// program (and anything decoded from it) is unreachable afterwards
    /// — a reused VM can never execute stale decoded blocks from the
    /// module it ran before.
    pub fn load_image(&mut self, image: &Image) {
        *self = Vm::new(image, self.cfg);
    }

    /// Resets the VM to the state [`Vm::new`] left it in, without
    /// rebuilding the image: memory is rolled back to the load-time
    /// snapshot (constructors have *not* run again), the heap allocator
    /// and register file are reinitialized, and every piece of observable
    /// run state — [`ExecStats`], recorded [`Detection`]s, stack-probe
    /// snapshots, guest output, the icache — is cleared. The decoded
    /// program is untouched (it is a pure function of the image).
    ///
    /// This is the fast worker-restart primitive for crash-restarting
    /// server pools: restarting on the *same* image preserves the layout
    /// an attacker has been probing (the Blind-ROP-vulnerable
    /// configuration), while a re-randomizing pool builds a fresh image
    /// and a fresh `Vm` instead. A reset VM is indistinguishable from a
    /// newly constructed one; nothing leaks across the restart (an
    /// attached tracer is dropped).
    pub fn reset_to_image(&mut self) {
        if self.cfg.no_cow {
            self.mem.restore_deep(&self.prog.init_mem);
        } else {
            self.mem.restore(&self.prog.init_mem);
        }
        self.heap = Heap::new(self.prog.layout.heap_base, self.prog.layout.heap_size);
        self.regs = RegFile::new();
        self.regs.set(Gpr::Rsp, self.prog.layout.stack_top - 64);
        self.icache = ICache::new(self.cfg.machine.icache);
        self.stats = ExecStats::default();
        self.edges = crate::stats::EdgeStats::default();
        self.output.clear();
        self.detections.clear();
        self.probes.clear();
        self.ymm_dirty = false;
        self.pending_resume = None;
        self.tracer = None;
    }

    /// Forks a fresh worker off this VM's load-time image: a new VM in
    /// the exact state [`Vm::new`] would produce for the same image and
    /// config, sharing the decoded program and — copy-on-write — every
    /// untouched page of the image with its parent. O(regions), not
    /// O(image): a fleet spinning up 1000 workers from one loaded
    /// template VM copies no page bytes at all. Nothing of the parent's
    /// *run* state (registers, heap, stats, output, probes) carries
    /// over.
    pub fn fork_from_image(&self) -> Vm {
        Vm::from_decoded(Arc::clone(&self.prog), self.cfg)
    }

    /// Attaches an execution tracer built from `image`'s symbol table.
    /// Call before [`Vm::run`]; tracing observes execution without
    /// changing it (cycle counts stay bit-identical to untraced runs).
    pub fn enable_trace(&mut self, image: &Image, cfg: TraceConfig) {
        self.tracer = Some(Box::new(Tracer::new(image, cfg)));
    }

    /// Mutable access to the attached tracer (for capture-mode setup:
    /// boundary spans, the dynamic-pair census), or `None` if tracing is
    /// off.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// The capture-mode boundary log, or `None` when tracing is off or
    /// [`TraceConfig::capture`] was not set.
    pub fn capture_log(&self) -> Option<&CaptureLog> {
        self.tracer.as_deref()?.capture_log()
    }

    /// The dynamic-pair census accumulated by a traced run, if one was
    /// enabled via [`Tracer::enable_pair_census`].
    pub fn pair_census(&self) -> Option<&crate::census::PairCensus> {
        self.tracer.as_deref()?.pair_census()
    }

    /// Snapshot of the traced run, or `None` if tracing is off.
    pub fn trace_profile(&self) -> Option<ExecProfile> {
        let tr = self.tracer.as_deref()?;
        let mut p = tr.profile(self.stats());
        p.heap.end_live_bytes = self.heap.in_use();
        p.heap.end_resident_pages = self.mem.resident_pages() as u64;
        p.heap.released_pages = self.heap.released_pages;
        p.heap.quarantined_pages = self.heap.quarantined_pages() as u64;
        // The allocator-event samples can miss the true residency peak;
        // the address-space high-water mark never does.
        p.heap.peak_resident_pages = p
            .heap
            .peak_resident_pages
            .max(self.mem.max_resident_pages() as u64);
        Some(p)
    }

    /// Runs constructors, then the entry point, to completion.
    pub fn run(&mut self) -> RunOutcome {
        for i in 0..self.prog.constructors.len() {
            let ctor = self.prog.constructors[i];
            let out = self.call(ctor, &[]);
            if let ExitStatus::Faulted(_) = out.status {
                return out;
            }
        }
        self.call(self.prog.entry, &[])
    }

    /// Adjusts the instruction budget. The budget is cumulative over
    /// the VM's lifetime (and reset together with [`ExecStats`] by
    /// [`Vm::reset_to_image`]), so a long-lived server worker that
    /// wants a *per-request* watchdog sets
    /// `stats().instructions + per_request_budget` before each call.
    pub fn set_insn_budget(&mut self, budget: u64) {
        self.cfg.insn_budget = budget;
    }

    /// Resumes execution after an [`ExitStatus::Probed`] pause (the
    /// blocked thread is released).
    ///
    /// # Panics
    ///
    /// Panics if the VM is not paused at a probe.
    pub fn resume(&mut self) -> RunOutcome {
        let idx = self
            .pending_resume
            .take()
            .expect("resume without a pending probe");
        self.exec_from(idx)
    }

    /// True if the VM is paused at a probe.
    pub fn paused_at_probe(&self) -> bool {
        self.pending_resume.is_some()
    }

    /// Calls the function at `target` with up to six integer arguments,
    /// running until it returns (to the sentinel) or faults.
    ///
    /// This doubles as the whole-function-reuse primitive: an attacker
    /// who has hijacked control flow calls an arbitrary address with
    /// arbitrary arguments.
    pub fn call(&mut self, target: VAddr, args: &[u64]) -> RunOutcome {
        assert!(args.len() <= 6, "register arguments only");
        if let Some(tr) = &mut self.tracer {
            // A fresh activation: the shadow call stack starts over
            // (resuming from a probe does not come through here and
            // keeps its stack).
            tr.on_activation();
        }
        for (i, &a) in args.iter().enumerate() {
            self.regs.set(Gpr::ARGS[i], a);
        }
        // Align rsp so the callee sees the ABI-mandated rsp % 16 == 8.
        let rsp = self.regs.get(Gpr::Rsp) & !15;
        self.regs.set(Gpr::Rsp, rsp - 8);
        if let Err(f) = self.mem.write_u64(rsp - 8, EXIT_SENTINEL) {
            return self.finish(ExitStatus::Faulted(f));
        }
        match self.index_of(target) {
            Some(idx) => self.exec_from(idx),
            None => self.finish(ExitStatus::Faulted(Fault::InvalidJump { target })),
        }
    }

    /// Resolves a jump target to its instruction index via the dense
    /// dispatch table. `None` exactly when the old `HashMap` lookup
    /// missed: outside the text section or between instruction starts.
    #[inline]
    fn index_of(&self, target: VAddr) -> Option<u32> {
        let off = target.wrapping_sub(self.prog.text_base);
        if off < self.prog.dispatch.len() as u64 {
            let idx = self.prog.dispatch[off as usize];
            if idx != NO_INSN {
                return Some(idx);
            }
        }
        None
    }

    fn finish(&mut self, status: ExitStatus) -> RunOutcome {
        if let ExitStatus::Faulted(f) = status {
            self.note_fault(&f);
        }
        let (h, m) = self.icache.stats();
        if let Some(tr) = &mut self.tracer {
            if let ExitStatus::Faulted(f) = &status {
                tr.on_fault(f);
            }
            // Attribute the final instruction's cost; after this the
            // folded map accounts for every cycle charged so far.
            tr.sync(self.stats.cycles, m);
        }
        self.stats.icache_hits = h;
        self.stats.icache_misses = m;
        self.stats.max_rss_pages = self.mem.max_resident_pages();
        RunOutcome {
            status,
            stats: self.stats,
        }
    }

    fn note_fault(&mut self, f: &Fault) {
        match f {
            Fault::BoobyTrap { addr } => self.detections.push(Detection::BoobyTrap { addr: *addr }),
            Fault::Protection { addr, perms, .. } if *perms == Perms::NONE => {
                self.detections.push(Detection::GuardPage { addr: *addr })
            }
            _ => {}
        }
    }

    /// Detection events recorded so far (booby traps, guard pages).
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats;
        let (h, m) = self.icache.stats();
        s.icache_hits = h;
        s.icache_misses = m;
        s.max_rss_pages = self.mem.max_resident_pages();
        s
    }

    /// Execution-edge telemetry snapshot (engine-path counters for the
    /// coverage-guided fuzzer; see [`crate::stats::EdgeStats`] for why
    /// these live outside [`ExecStats`]).
    pub fn edge_stats(&self) -> crate::stats::EdgeStats {
        self.edges
    }

    /// Decoded-op kind histogram of the program this VM executes —
    /// the fusion-pattern / lowering-template coverage surface. See
    /// [`DecodedProgram::op_kind_counts`].
    pub fn op_kind_counts(&self) -> Vec<(&'static str, u64)> {
        self.prog.op_kind_counts()
    }

    /// Whether the decoded program this VM executes was built with
    /// superinstruction fusion. Test hook for the fused-vs-unfused
    /// differential suites.
    #[doc(hidden)]
    pub fn fusion_enabled(&self) -> bool {
        self.prog.fused
    }

    /// Identity of the decoded program (stable for its lifetime). Test
    /// hook: two VMs share decode work iff this is equal, and a reload
    /// with a mutated image must change it.
    #[doc(hidden)]
    pub fn decoded_program_id(&self) -> usize {
        Arc::as_ptr(&self.prog) as usize
    }

    #[inline]
    fn ea(&self, m: &MemRef) -> VAddr {
        let mut a = self.regs.get(m.base);
        if let Some((idx, scale)) = m.index {
            a = a.wrapping_add(self.regs.get(idx).wrapping_mul(scale as u64));
        }
        a.wrapping_add_signed(m.disp as i64)
    }

    #[inline]
    fn push_word(&mut self, val: u64) -> Result<(), Fault> {
        let rsp = self.regs.get(Gpr::Rsp).wrapping_sub(8);
        if rsp < self.stack_limit {
            return Err(Fault::StackOverflow { rsp });
        }
        self.mem.write_u64(rsp, val)?;
        self.regs.set(Gpr::Rsp, rsp);
        Ok(())
    }

    #[inline]
    fn pop_word(&mut self) -> Result<u64, Fault> {
        let rsp = self.regs.get(Gpr::Rsp);
        let v = self.mem.read_u64(rsp)?;
        self.regs.set(Gpr::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    #[inline]
    fn cond_holds(&self, c: Cond) -> bool {
        let f = self.regs.flags;
        match c {
            Cond::Eq => f.zf,
            Cond::Ne => !f.zf,
            Cond::Lt => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::Gt => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
        }
    }

    /// Executes starting at instruction index `idx` until the activation
    /// returns to the sentinel, the guest halts, or a fault occurs.
    /// Trace-enabled runs take the slow path (all tracer hooks live
    /// there); everything else runs the decoded engine.
    fn exec_from(&mut self, idx: u32) -> RunOutcome {
        if self.tracer.is_some() {
            self.exec_slow(idx)
        } else {
            self.exec_fast(idx)
        }
    }

    /// The decoded-IR engine: pre-baked costs, pre-resolved direct
    /// branch targets, fused superinstructions.
    ///
    /// Exactness protocol (audited against [`Vm::exec_slow`], enforced
    /// by the differential suites): per original instruction, in
    /// original order — budget check, then `instructions += 1`, then
    /// `cycles += base_cost + icache.access(insn_addr)`, then the
    /// instruction's effect (which may fault, ending the run with
    /// exactly the partial stats the slow path would report). Fused
    /// pairs run this sequence twice under a single dispatch.
    fn exec_fast(&mut self, mut idx: u32) -> RunOutcome {
        let prog = Arc::clone(&self.prog);
        let ops = &prog.ops[..];
        loop {
            if self.stats.instructions >= self.cfg.insn_budget {
                return self.finish(ExitStatus::Faulted(Fault::BudgetExhausted));
            }
            let dop = &ops[idx as usize];
            self.stats.instructions += 1;
            self.stats.cycles += dop.cost as u64 + self.icache.access(dop.addr);

            macro_rules! fault {
                ($f:expr) => {
                    return self.finish(ExitStatus::Faulted($f))
                };
            }
            macro_rules! try_mem {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(f) => fault!(f),
                    }
                };
            }
            // Indirect transfer: resolve through the dispatch table.
            macro_rules! jump_to {
                ($t:expr) => {{
                    let t = $t;
                    match self.index_of(t) {
                        Some(i) => {
                            idx = i;
                            continue;
                        }
                        None => fault!(Fault::InvalidJump { target: t }),
                    }
                }};
            }
            // Direct transfer: the target index was resolved at decode
            // time; NO_INSN recovers the faulting address from the
            // undecoded instruction at `$src` (cold path).
            macro_rules! direct_jump {
                ($tgt:expr, $src:expr) => {{
                    let t = $tgt;
                    if t == NO_INSN {
                        fault!(Fault::InvalidJump {
                            target: prog.insns[$src as usize]
                                .branch_target()
                                .expect("unresolved target is a direct branch"),
                        });
                    }
                    idx = t;
                    continue;
                }};
            }
            // Charges the second half of a fused pair, exactly as the
            // slow path would at the top of its next iteration: budget
            // check, instruction count, base cost + icache at the
            // second instruction's own address.
            macro_rules! second {
                ($f2:expr) => {{
                    if self.stats.instructions >= self.cfg.insn_budget {
                        return self.finish(ExitStatus::Faulted(Fault::BudgetExhausted));
                    }
                    self.stats.instructions += 1;
                    self.stats.cycles +=
                        $f2.cost2 as u64 + self.icache.access(dop.addr + $f2.a2off as u64);
                }};
            }

            match dop.op {
                Op::MovImm { dst, imm } => self.regs.set(dst, imm),
                Op::MovReg { dst, src } => {
                    let v = self.regs.get(src);
                    self.regs.set(dst, v);
                }
                Op::Load { dst, mem } => {
                    let a = self.ea(&mem);
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                }
                Op::Store { mem, src } => {
                    let a = self.ea(&mem);
                    let v = self.regs.get(src);
                    try_mem!(self.mem.write_u64(a, v));
                }
                Op::StoreImm { mem, imm } => {
                    let a = self.ea(&mem);
                    try_mem!(self.mem.write_u64(a, imm as i64 as u64));
                }
                Op::Lea { dst, mem } => {
                    let a = self.ea(&mem);
                    self.regs.set(dst, a);
                }
                Op::Push { src } => {
                    let v = self.regs.get(src);
                    try_mem!(self.push_word(v));
                }
                Op::PushImm { imm } => try_mem!(self.push_word(imm)),
                Op::Pop { dst } => {
                    let v = try_mem!(self.pop_word());
                    self.regs.set(dst, v);
                }
                Op::AluReg { op, dst, src } => {
                    let a = self.regs.get(dst);
                    let b = self.regs.get(src);
                    let r = alu(op, a, b);
                    self.regs.set(dst, r);
                    self.regs.flags.set_result(r);
                }
                Op::AluImm { op, dst, imm } => {
                    let a = self.regs.get(dst);
                    let r = alu(op, a, imm as i64 as u64);
                    self.regs.set(dst, r);
                    self.regs.flags.set_result(r);
                }
                Op::Div { dst, src } => {
                    let b = self.regs.get(src) as i64;
                    if b == 0 {
                        fault!(Fault::DivideByZero { addr: dop.addr });
                    }
                    let a = self.regs.get(dst) as i64;
                    self.regs.set(dst, a.wrapping_div(b) as u64);
                }
                Op::Rem { dst, src } => {
                    let b = self.regs.get(src) as i64;
                    if b == 0 {
                        fault!(Fault::DivideByZero { addr: dop.addr });
                    }
                    let a = self.regs.get(dst) as i64;
                    self.regs.set(dst, a.wrapping_rem(b) as u64);
                }
                Op::CmpReg { a, b } => {
                    let (x, y) = (self.regs.get(a), self.regs.get(b));
                    self.regs.flags.set_cmp(x, y);
                }
                Op::CmpImm { a, imm } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_cmp(x, imm as i64 as u64);
                }
                Op::Test { a } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_test(x, x);
                }
                Op::SetCc { cond, dst } => {
                    let v = self.cond_holds(cond) as u64;
                    self.regs.set(dst, v);
                }
                Op::LoadAbs { dst, addr: a } => {
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                }
                Op::VLoadAbs { dst, addr: a } => {
                    if a % 32 != 0 {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let mut buf = [0u8; 32];
                    try_mem!(self.mem.read(a, &mut buf));
                    self.regs.set_ymm(dst, buf);
                    self.ymm_dirty = true;
                }
                Op::Call { tgt, ra } => {
                    self.charge_avx_transition();
                    self.stats.calls += 1;
                    try_mem!(self.push_word(ra));
                    direct_jump!(tgt, idx);
                }
                Op::CallInd { target, ra } => {
                    self.charge_avx_transition();
                    self.stats.calls += 1;
                    let t = self.regs.get(target);
                    try_mem!(self.push_word(ra));
                    jump_to!(t);
                }
                Op::CallNative { native, is_probe } => {
                    self.stats.native_calls += 1;
                    if let Err(f) = self.do_native(native, dop.addr) {
                        fault!(f);
                    }
                    if self.cfg.break_on_probe && is_probe {
                        self.pending_resume = Some(idx + 1);
                        return self.finish(ExitStatus::Probed);
                    }
                }
                Op::Ret => {
                    self.charge_avx_transition();
                    self.stats.rets += 1;
                    let ra = try_mem!(self.pop_word());
                    if ra == EXIT_SENTINEL {
                        let rax = self.regs.get(Gpr::Rax);
                        return self.finish(ExitStatus::Exited(rax as i64));
                    }
                    jump_to!(ra);
                }
                Op::Jmp { tgt } => direct_jump!(tgt, idx),
                Op::JmpInd { target } => {
                    let t = self.regs.get(target);
                    jump_to!(t);
                }
                Op::Jcc {
                    cond,
                    tgt,
                    taken_extra,
                } => {
                    if self.cond_holds(cond) {
                        self.stats.cycles += taken_extra as u64;
                        direct_jump!(tgt, idx);
                    }
                }
                Op::Nop => {}
                Op::Trap => fault!(Fault::BoobyTrap { addr: dop.addr }),
                Op::VLoad { dst, mem, aligned } => {
                    let a = self.ea(&mem);
                    if aligned && !a.is_multiple_of(32) {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let mut buf = [0u8; 32];
                    try_mem!(self.mem.read(a, &mut buf));
                    self.regs.set_ymm(dst, buf);
                    self.ymm_dirty = true;
                }
                Op::VStore { mem, src, aligned } => {
                    let a = self.ea(&mem);
                    if aligned && !a.is_multiple_of(32) {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let buf = self.regs.get_ymm(src);
                    try_mem!(self.mem.write(a, &buf));
                    self.ymm_dirty = true;
                }
                Op::VZeroUpper => {
                    self.regs.vzeroupper();
                    self.ymm_dirty = false;
                }
                Op::Halt => {
                    let code = self.regs.get(Gpr::Rdi);
                    return self.finish(ExitStatus::Exited(code as i64));
                }

                // --- fused superinstructions -------------------------
                Op::MovRegAluReg {
                    dst1,
                    src1,
                    op,
                    dst2,
                    src2,
                    f2,
                } => {
                    let v = self.regs.get(src1);
                    self.regs.set(dst1, v);
                    second!(f2);
                    let a = self.regs.get(dst2);
                    let b = self.regs.get(src2);
                    let r = alu(op, a, b);
                    self.regs.set(dst2, r);
                    self.regs.flags.set_result(r);
                    idx += 1;
                }
                Op::AluRegMovReg {
                    op,
                    dst1,
                    src1,
                    dst2,
                    src2,
                    f2,
                } => {
                    let a = self.regs.get(dst1);
                    let b = self.regs.get(src1);
                    let r = alu(op, a, b);
                    self.regs.set(dst1, r);
                    self.regs.flags.set_result(r);
                    second!(f2);
                    let v = self.regs.get(src2);
                    self.regs.set(dst2, v);
                    idx += 1;
                }
                Op::MovImmMovReg {
                    dst1,
                    imm,
                    dst2,
                    src2,
                    f2,
                } => {
                    self.regs.set(dst1, imm);
                    second!(f2);
                    let v = self.regs.get(src2);
                    self.regs.set(dst2, v);
                    idx += 1;
                }
                Op::MovRegMovImm {
                    dst1,
                    src1,
                    dst2,
                    imm,
                    f2,
                } => {
                    let v = self.regs.get(src1);
                    self.regs.set(dst1, v);
                    second!(f2);
                    self.regs.set(dst2, imm);
                    idx += 1;
                }
                Op::MovRegStore {
                    dst1,
                    src1,
                    mem,
                    src2,
                    f2,
                } => {
                    let v = self.regs.get(src1);
                    self.regs.set(dst1, v);
                    second!(f2);
                    let a = self.ea(&mem);
                    let v = self.regs.get(src2);
                    try_mem!(self.mem.write_u64(a, v));
                    idx += 1;
                }
                Op::LoadMovReg {
                    dst1,
                    mem,
                    dst2,
                    src2,
                    f2,
                } => {
                    let a = self.ea(&mem);
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst1, v);
                    second!(f2);
                    let v = self.regs.get(src2);
                    self.regs.set(dst2, v);
                    idx += 1;
                }
                Op::StoreLoad {
                    smem,
                    src,
                    dst,
                    lmem,
                    f2,
                } => {
                    let a = self.ea(&smem);
                    let v = self.regs.get(src);
                    try_mem!(self.mem.write_u64(a, v));
                    second!(f2);
                    let a = self.ea(&lmem);
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                    idx += 1;
                }
                Op::LeaMovReg {
                    dst1,
                    mem,
                    dst2,
                    src2,
                    f2,
                } => {
                    let a = self.ea(&mem);
                    self.regs.set(dst1, a);
                    second!(f2);
                    let v = self.regs.get(src2);
                    self.regs.set(dst2, v);
                    idx += 1;
                }
                Op::CmpRegJcc {
                    a,
                    b,
                    cond,
                    tgt,
                    taken_extra,
                    f2,
                } => {
                    let (x, y) = (self.regs.get(a), self.regs.get(b));
                    self.regs.flags.set_cmp(x, y);
                    second!(f2);
                    if self.cond_holds(cond) {
                        self.stats.cycles += taken_extra as u64;
                        direct_jump!(tgt, idx + 1);
                    }
                    idx += 1;
                }
                Op::CmpImmJcc {
                    a,
                    imm,
                    cond,
                    tgt,
                    taken_extra,
                    f2,
                } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_cmp(x, imm as i64 as u64);
                    second!(f2);
                    if self.cond_holds(cond) {
                        self.stats.cycles += taken_extra as u64;
                        direct_jump!(tgt, idx + 1);
                    }
                    idx += 1;
                }
                Op::TestJcc {
                    a,
                    cond,
                    tgt,
                    taken_extra,
                    f2,
                } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_test(x, x);
                    second!(f2);
                    if self.cond_holds(cond) {
                        self.stats.cycles += taken_extra as u64;
                        direct_jump!(tgt, idx + 1);
                    }
                    idx += 1;
                }
                Op::CmpRegSetCc {
                    a,
                    b,
                    cond,
                    dst,
                    f2,
                } => {
                    let (x, y) = (self.regs.get(a), self.regs.get(b));
                    self.regs.flags.set_cmp(x, y);
                    second!(f2);
                    let v = self.cond_holds(cond) as u64;
                    self.regs.set(dst, v);
                    idx += 1;
                }
                Op::PushPush { s1, s2, f2 } => {
                    let v = self.regs.get(s1);
                    try_mem!(self.push_word(v));
                    second!(f2);
                    let v = self.regs.get(s2);
                    try_mem!(self.push_word(v));
                    idx += 1;
                }
                Op::PopPop { d1, d2, f2 } => {
                    let v = try_mem!(self.pop_word());
                    self.regs.set(d1, v);
                    second!(f2);
                    let v = try_mem!(self.pop_word());
                    self.regs.set(d2, v);
                    idx += 1;
                }
                Op::PopRet { d1, f2 } => {
                    let v = try_mem!(self.pop_word());
                    self.regs.set(d1, v);
                    second!(f2);
                    self.charge_avx_transition();
                    self.stats.rets += 1;
                    let ra = try_mem!(self.pop_word());
                    if ra == EXIT_SENTINEL {
                        let rax = self.regs.get(Gpr::Rax);
                        return self.finish(ExitStatus::Exited(rax as i64));
                    }
                    jump_to!(ra);
                }

                // --- block run: the straight-line tail of a basic
                // block under one dispatch ---------------------------
                Op::MovImmAluQuad { .. }
                | Op::MovImmAluQuadPair { .. }
                | Op::AluImmQuad { .. }
                | Op::AluImmQuadPair { .. } => {
                    unreachable!("quad entries exist only in run effect streams")
                }
                Op::Run { run } => {
                    self.edges.runs_entered += 1;
                    let ri = &prog.runs[run as usize];
                    // The loop preamble charged the leader like any
                    // other op; execute its (standalone) effect.
                    if let Err((f, _)) = self.exec_member(&ri.leader, dop.addr) {
                        fault!(f);
                    }
                    let m = ri.n as u64 - 1;
                    // Budget edge: the members would cross the budget
                    // mark mid-run. Let the reference engine finish the
                    // block instruction by instruction (cold — reached
                    // at most once per execution).
                    if self.stats.instructions + m > self.cfg.insn_budget {
                        self.edges.slow_path_handoffs += 1;
                        return self.exec_slow(idx + 1);
                    }
                    // Batch-charge every member up front, and touch the
                    // icache once per same-line segment as that segment
                    // is reached. Both are exact: intermediate stamp
                    // values inside a same-line span are dead, and the
                    // (rare) fault path below un-books precisely the
                    // charges of members that were never reached.
                    self.stats.instructions += m;
                    self.stats.cycles += ri.members_cost;
                    let base = idx as usize + 1;
                    let segs = &prog.run_segs
                        [ri.seg_start as usize..ri.seg_start as usize + ri.seg_count as usize];
                    let line_size = self.icache.line_size();
                    let mut done = 0u64;
                    for seg in segs {
                        self.stats.cycles += self.icache.access_span(seg.line, seg.count as u64);
                        let seg_base = seg.line * line_size;
                        let entries = &prog.run_ops
                            [seg.first as usize..seg.first as usize + seg.n_ops as usize];
                        let mut rest = entries;
                        while let [e, tail @ ..] = rest {
                            match e.op {
                                // Pair head: this quad plus the next
                                // entry's quad, one dispatch. Neither
                                // can fault. A pair head always has its
                                // partner entry behind it.
                                Op::AluImmQuadPair { .. } => {
                                    self.alu_imm_quad_effects(&e.op);
                                    self.quad_effects(&tail[0].op);
                                    rest = &tail[1..];
                                    continue;
                                }
                                Op::MovImmAluQuadPair { .. } => {
                                    self.quad_effects(&e.op);
                                    self.quad_effects(&tail[0].op);
                                    rest = &tail[1..];
                                    continue;
                                }
                                _ => {}
                            }
                            rest = tail;
                            if let Err((f, half)) = self.exec_member(&e.op, seg_base + e.off as u64)
                            {
                                // Un-book the members past the faulting
                                // one — they never ran. Its own charges
                                // stay: the reference engine charges
                                // count/cost/icache before the effect.
                                let k = e.k as u64 + half;
                                self.edges.run_rollbacks += 1;
                                self.stats.instructions -= m - (k + 1);
                                for u in &ops[base + k as usize + 1..base + m as usize] {
                                    self.stats.cycles -= u.cost as u64;
                                }
                                self.icache
                                    .rollback_pending(seg.count as u64 - 1 - (k - done));
                                fault!(f);
                            }
                        }
                        done += seg.count as u64;
                    }
                    idx += ri.n as u32 - 1;
                }
            }
            idx += 1;
            if idx as usize >= ops.len() {
                // Fell off the end of text: the faulting "target" is one
                // past the last *executed* instruction (the second half
                // for fused ops, since they advanced `idx` once already).
                let last = (idx - 1) as usize;
                return self.finish(ExitStatus::Faulted(Fault::InvalidJump {
                    target: prog.insn_addrs[last] + prog.insns[last].len(),
                }));
            }
        }
    }

    /// Register/flag effects of a [`Op::MovImmAluQuad`] (or a pair
    /// head, whose own fields are an identical quad). Cannot fault.
    #[inline(always)]
    fn quad_effects(&mut self, op: &Op) {
        let (Op::MovImmAluQuad {
            imm,
            a,
            bd,
            bs,
            op,
            cd,
            cs,
            dd,
            ds,
        }
        | Op::MovImmAluQuadPair {
            imm,
            a,
            bd,
            bs,
            op,
            cd,
            cs,
            dd,
            ds,
        }) = *op
        else {
            return self.alu_imm_quad_effects(op);
        };
        self.regs.set(a, imm);
        let v = self.regs.get(bs);
        self.regs.set(bd, v);
        let x = self.regs.get(cd);
        let y = self.regs.get(cs);
        let r = alu(op, x, y);
        self.regs.set(cd, r);
        self.regs.flags.set_result(r);
        let v = self.regs.get(ds);
        self.regs.set(dd, v);
    }

    /// Effects of the operand-chained quad: same final register, flag,
    /// and write-order-visible state as the four-instruction original
    /// (`a` then `scratch` then `dst`), with the dead intermediate
    /// moves folded away. Cannot fault.
    #[inline(always)]
    fn alu_imm_quad_effects(&mut self, op: &Op) {
        let (Op::AluImmQuad {
            imm,
            a,
            scratch,
            op,
            src,
            dst,
        }
        | Op::AluImmQuadPair {
            imm,
            a,
            scratch,
            op,
            src,
            dst,
        }) = *op
        else {
            unreachable!("quad_effects on a non-quad entry")
        };
        let r = alu(op, self.regs.get(src), imm);
        self.regs.set(a, imm);
        self.regs.set(scratch, r);
        self.regs.flags.set_result(r);
        self.regs.set(dst, r);
    }

    /// Executes the effect of one entry of a block run: a straight-line
    /// single or a non-control fused pair. No budget, instruction-count,
    /// cycle, or icache accounting happens here — the `Op::Run` arm
    /// batch-charges those — so this is exactly the effect half of the
    /// corresponding `exec_fast` arm(s). On a fault, the second tuple
    /// element is the number of the entry's instructions that completed
    /// before it (0, or 1 when the second half of a pair faulted), so
    /// the caller can attribute rollback to the exact member.
    #[inline(always)]
    fn exec_member(&mut self, op: &Op, addr: VAddr) -> Result<(), (Fault, u64)> {
        macro_rules! try_at {
            ($e:expr, $half:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(f) => return Err((f, $half)),
                }
            };
        }
        match *op {
            Op::MovImm { dst, imm } => self.regs.set(dst, imm),
            Op::MovReg { dst, src } => {
                let v = self.regs.get(src);
                self.regs.set(dst, v);
            }
            Op::Load { dst, mem } => {
                let a = self.ea(&mem);
                let v = try_at!(self.mem.read_u64(a), 0);
                self.regs.set(dst, v);
            }
            Op::Store { mem, src } => {
                let a = self.ea(&mem);
                let v = self.regs.get(src);
                try_at!(self.mem.write_u64(a, v), 0);
            }
            Op::StoreImm { mem, imm } => {
                let a = self.ea(&mem);
                try_at!(self.mem.write_u64(a, imm as i64 as u64), 0);
            }
            Op::Lea { dst, mem } => {
                let a = self.ea(&mem);
                self.regs.set(dst, a);
            }
            Op::Push { src } => {
                let v = self.regs.get(src);
                try_at!(self.push_word(v), 0);
            }
            Op::PushImm { imm } => try_at!(self.push_word(imm), 0),
            Op::Pop { dst } => {
                let v = try_at!(self.pop_word(), 0);
                self.regs.set(dst, v);
            }
            Op::AluReg { op, dst, src } => {
                let a = self.regs.get(dst);
                let b = self.regs.get(src);
                let r = alu(op, a, b);
                self.regs.set(dst, r);
                self.regs.flags.set_result(r);
            }
            Op::AluImm { op, dst, imm } => {
                let a = self.regs.get(dst);
                let r = alu(op, a, imm as i64 as u64);
                self.regs.set(dst, r);
                self.regs.flags.set_result(r);
            }
            Op::Div { dst, src } => {
                let b = self.regs.get(src) as i64;
                if b == 0 {
                    return Err((Fault::DivideByZero { addr }, 0));
                }
                let a = self.regs.get(dst) as i64;
                self.regs.set(dst, a.wrapping_div(b) as u64);
            }
            Op::Rem { dst, src } => {
                let b = self.regs.get(src) as i64;
                if b == 0 {
                    return Err((Fault::DivideByZero { addr }, 0));
                }
                let a = self.regs.get(dst) as i64;
                self.regs.set(dst, a.wrapping_rem(b) as u64);
            }
            Op::CmpReg { a, b } => {
                let (x, y) = (self.regs.get(a), self.regs.get(b));
                self.regs.flags.set_cmp(x, y);
            }
            Op::CmpImm { a, imm } => {
                let x = self.regs.get(a);
                self.regs.flags.set_cmp(x, imm as i64 as u64);
            }
            Op::Test { a } => {
                let x = self.regs.get(a);
                self.regs.flags.set_test(x, x);
            }
            Op::SetCc { cond, dst } => {
                let v = self.cond_holds(cond) as u64;
                self.regs.set(dst, v);
            }
            Op::LoadAbs { dst, addr: a } => {
                let v = try_at!(self.mem.read_u64(a), 0);
                self.regs.set(dst, v);
            }
            Op::VLoadAbs { dst, addr: a } => {
                if a % 32 != 0 {
                    return Err((Fault::Misaligned { addr: a, align: 32 }, 0));
                }
                let mut buf = [0u8; 32];
                try_at!(self.mem.read(a, &mut buf), 0);
                self.regs.set_ymm(dst, buf);
                self.ymm_dirty = true;
            }
            Op::VLoad { dst, mem, aligned } => {
                let a = self.ea(&mem);
                if aligned && !a.is_multiple_of(32) {
                    return Err((Fault::Misaligned { addr: a, align: 32 }, 0));
                }
                let mut buf = [0u8; 32];
                try_at!(self.mem.read(a, &mut buf), 0);
                self.regs.set_ymm(dst, buf);
                self.ymm_dirty = true;
            }
            Op::VStore { mem, src, aligned } => {
                let a = self.ea(&mem);
                if aligned && !a.is_multiple_of(32) {
                    return Err((Fault::Misaligned { addr: a, align: 32 }, 0));
                }
                let buf = self.regs.get_ymm(src);
                try_at!(self.mem.write(a, &buf), 0);
                self.ymm_dirty = true;
            }
            Op::VZeroUpper => {
                self.regs.vzeroupper();
                self.ymm_dirty = false;
            }
            Op::Nop => {}
            // --- effect-only pair/quad entries (run streams fuse
            // adjacent members with no accounting between halves) ---
            Op::MovImmAluQuad { .. } | Op::AluImmQuad { .. } => self.quad_effects(op),
            Op::MovImmAluQuadPair { .. } | Op::AluImmQuadPair { .. } => {
                unreachable!("quad pair heads are handled by the run entry loop")
            }
            // --- effect-only pair entries (run streams pair adjacent
            // members with no accounting between halves) ---
            Op::MovRegAluReg {
                dst1,
                src1,
                op,
                dst2,
                src2,
                ..
            } => {
                let v = self.regs.get(src1);
                self.regs.set(dst1, v);
                let a = self.regs.get(dst2);
                let b = self.regs.get(src2);
                let r = alu(op, a, b);
                self.regs.set(dst2, r);
                self.regs.flags.set_result(r);
            }
            Op::AluRegMovReg {
                op,
                dst1,
                src1,
                dst2,
                src2,
                ..
            } => {
                let a = self.regs.get(dst1);
                let b = self.regs.get(src1);
                let r = alu(op, a, b);
                self.regs.set(dst1, r);
                self.regs.flags.set_result(r);
                let v = self.regs.get(src2);
                self.regs.set(dst2, v);
            }
            Op::MovImmMovReg {
                dst1,
                imm,
                dst2,
                src2,
                ..
            } => {
                self.regs.set(dst1, imm);
                let v = self.regs.get(src2);
                self.regs.set(dst2, v);
            }
            Op::MovRegMovImm {
                dst1,
                src1,
                dst2,
                imm,
                ..
            } => {
                let v = self.regs.get(src1);
                self.regs.set(dst1, v);
                self.regs.set(dst2, imm);
            }
            Op::MovRegStore {
                dst1,
                src1,
                mem,
                src2,
                ..
            } => {
                let v = self.regs.get(src1);
                self.regs.set(dst1, v);
                let a = self.ea(&mem);
                let v = self.regs.get(src2);
                try_at!(self.mem.write_u64(a, v), 1);
            }
            Op::LoadMovReg {
                dst1,
                mem,
                dst2,
                src2,
                ..
            } => {
                let a = self.ea(&mem);
                let v = try_at!(self.mem.read_u64(a), 0);
                self.regs.set(dst1, v);
                let v = self.regs.get(src2);
                self.regs.set(dst2, v);
            }
            Op::StoreLoad {
                smem,
                src,
                dst,
                lmem,
                ..
            } => {
                let a = self.ea(&smem);
                let v = self.regs.get(src);
                try_at!(self.mem.write_u64(a, v), 0);
                let a = self.ea(&lmem);
                let v = try_at!(self.mem.read_u64(a), 1);
                self.regs.set(dst, v);
            }
            Op::LeaMovReg {
                dst1,
                mem,
                dst2,
                src2,
                ..
            } => {
                let a = self.ea(&mem);
                self.regs.set(dst1, a);
                let v = self.regs.get(src2);
                self.regs.set(dst2, v);
            }
            Op::CmpRegSetCc {
                a, b, cond, dst, ..
            } => {
                let (x, y) = (self.regs.get(a), self.regs.get(b));
                self.regs.flags.set_cmp(x, y);
                let v = self.cond_holds(cond) as u64;
                self.regs.set(dst, v);
            }
            Op::PushPush { s1, s2, .. } => {
                let v = self.regs.get(s1);
                try_at!(self.push_word(v), 0);
                let v = self.regs.get(s2);
                try_at!(self.push_word(v), 1);
            }
            Op::PopPop { d1, d2, .. } => {
                let v = try_at!(self.pop_word(), 0);
                self.regs.set(d1, v);
                let v = try_at!(self.pop_word(), 1);
                self.regs.set(d2, v);
            }
            _ => unreachable!("control op inside a block run"),
        }
        Ok(())
    }

    /// The reference engine: the original per-[`Insn`] interpreter,
    /// unchanged. Runs trace-enabled VMs (all tracer hooks are here)
    /// and serves as the semantic baseline for the fast path.
    fn exec_slow(&mut self, mut idx: u32) -> RunOutcome {
        let prog = Arc::clone(&self.prog);
        loop {
            if self.stats.instructions >= self.cfg.insn_budget {
                return self.finish(ExitStatus::Faulted(Fault::BudgetExhausted));
            }
            let insn = prog.insns[idx as usize];
            let addr = prog.insn_addrs[idx as usize];
            if let Some(tr) = &mut self.tracer {
                // Counters *before* this instruction is charged: the
                // delta since the previous step is the full cost of the
                // previously executed instruction, extras included.
                tr.step(addr, self.stats.cycles, self.icache.stats().1);
            }
            self.stats.instructions += 1;
            self.stats.cycles += self.cfg.machine.base_cost(&insn) + self.icache.access(addr);

            macro_rules! fault {
                ($f:expr) => {
                    return self.finish(ExitStatus::Faulted($f))
                };
            }
            macro_rules! try_mem {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(f) => fault!(f),
                    }
                };
            }
            macro_rules! jump_to {
                ($t:expr) => {{
                    let t = $t;
                    match self.index_of(t) {
                        Some(i) => {
                            idx = i;
                            continue;
                        }
                        None => fault!(Fault::InvalidJump { target: t }),
                    }
                }};
            }

            match insn {
                Insn::MovImm { dst, imm } | Insn::MovAbs { dst, imm } => self.regs.set(dst, imm),
                Insn::MovReg { dst, src } => {
                    let v = self.regs.get(src);
                    self.regs.set(dst, v);
                }
                Insn::Load { dst, mem } => {
                    let a = self.ea(&mem);
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                }
                Insn::Store { mem, src } => {
                    let a = self.ea(&mem);
                    let v = self.regs.get(src);
                    try_mem!(self.mem.write_u64(a, v));
                }
                Insn::StoreImm { mem, imm } => {
                    let a = self.ea(&mem);
                    try_mem!(self.mem.write_u64(a, imm as i64 as u64));
                }
                Insn::Lea { dst, mem } => {
                    let a = self.ea(&mem);
                    self.regs.set(dst, a);
                }
                Insn::Push { src } => {
                    let v = self.regs.get(src);
                    try_mem!(self.push_word(v));
                }
                Insn::PushImm { imm } => try_mem!(self.push_word(imm)),
                Insn::Pop { dst } => {
                    let v = try_mem!(self.pop_word());
                    self.regs.set(dst, v);
                }
                Insn::AluReg { op, dst, src } => {
                    let a = self.regs.get(dst);
                    let b = self.regs.get(src);
                    let r = alu(op, a, b);
                    self.regs.set(dst, r);
                    self.regs.flags.set_result(r);
                }
                Insn::AluImm { op, dst, imm } => {
                    let a = self.regs.get(dst);
                    let r = alu(op, a, imm as i64 as u64);
                    self.regs.set(dst, r);
                    self.regs.flags.set_result(r);
                }
                Insn::Div { dst, src } => {
                    let b = self.regs.get(src) as i64;
                    if b == 0 {
                        fault!(Fault::DivideByZero { addr });
                    }
                    let a = self.regs.get(dst) as i64;
                    self.regs.set(dst, a.wrapping_div(b) as u64);
                }
                Insn::Rem { dst, src } => {
                    let b = self.regs.get(src) as i64;
                    if b == 0 {
                        fault!(Fault::DivideByZero { addr });
                    }
                    let a = self.regs.get(dst) as i64;
                    self.regs.set(dst, a.wrapping_rem(b) as u64);
                }
                Insn::CmpReg { a, b } => {
                    let (x, y) = (self.regs.get(a), self.regs.get(b));
                    self.regs.flags.set_cmp(x, y);
                }
                Insn::CmpImm { a, imm } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_cmp(x, imm as i64 as u64);
                }
                Insn::Test { a } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_test(x, x);
                }
                Insn::SetCc { cond, dst } => {
                    let v = self.cond_holds(cond) as u64;
                    self.regs.set(dst, v);
                }
                Insn::LoadAbs { dst, addr: a } => {
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                }
                Insn::VLoadAbs { dst, addr: a } => {
                    if a % 32 != 0 {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let mut buf = [0u8; 32];
                    try_mem!(self.mem.read(a, &mut buf));
                    self.regs.set_ymm(dst, buf);
                    self.ymm_dirty = true;
                }
                Insn::Call { target } => {
                    self.charge_avx_transition();
                    self.stats.calls += 1;
                    let ra = addr + insn.len();
                    try_mem!(self.push_word(ra));
                    if let Some(tr) = &mut self.tracer {
                        tr.on_call(addr, target);
                    }
                    jump_to!(target);
                }
                Insn::CallInd { target } => {
                    self.charge_avx_transition();
                    self.stats.calls += 1;
                    let t = self.regs.get(target);
                    let ra = addr + insn.len();
                    try_mem!(self.push_word(ra));
                    if let Some(tr) = &mut self.tracer {
                        tr.on_call(addr, t);
                        tr.on_indirect(addr, t);
                    }
                    jump_to!(t);
                }
                Insn::CallNative { native } => {
                    self.stats.native_calls += 1;
                    if let Err(f) = self.do_native(native, addr) {
                        fault!(f);
                    }
                    if self.tracer.is_some() {
                        self.trace_native(native);
                    }
                    if self.cfg.break_on_probe
                        && prog.natives.get(native as usize) == Some(&NativeKind::StackProbe)
                    {
                        self.pending_resume = Some(idx + 1);
                        return self.finish(ExitStatus::Probed);
                    }
                }
                Insn::Ret => {
                    self.charge_avx_transition();
                    self.stats.rets += 1;
                    let ra = try_mem!(self.pop_word());
                    if let Some(tr) = &mut self.tracer {
                        tr.on_ret(addr);
                    }
                    if ra == EXIT_SENTINEL {
                        let rax = self.regs.get(Gpr::Rax);
                        return self.finish(ExitStatus::Exited(rax as i64));
                    }
                    jump_to!(ra);
                }
                Insn::Jmp { target } => jump_to!(target),
                Insn::JmpInd { target } => {
                    let t = self.regs.get(target);
                    jump_to!(t);
                }
                Insn::Jcc { cond, target } => {
                    if self.cond_holds(cond) {
                        self.stats.cycles +=
                            self.cfg.machine.taken_branch_cost - self.cfg.machine.branch_cost;
                        jump_to!(target);
                    }
                }
                Insn::Nop { .. } => {}
                Insn::Trap => fault!(Fault::BoobyTrap { addr }),
                Insn::VLoad { dst, mem, aligned } => {
                    let a = self.ea(&mem);
                    if aligned && !a.is_multiple_of(32) {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let mut buf = [0u8; 32];
                    try_mem!(self.mem.read(a, &mut buf));
                    self.regs.set_ymm(dst, buf);
                    self.ymm_dirty = true;
                }
                Insn::VStore { mem, src, aligned } => {
                    let a = self.ea(&mem);
                    if aligned && !a.is_multiple_of(32) {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let buf = self.regs.get_ymm(src);
                    try_mem!(self.mem.write(a, &buf));
                    self.ymm_dirty = true;
                }
                Insn::VZeroUpper => {
                    self.regs.vzeroupper();
                    self.ymm_dirty = false;
                }
                Insn::Halt => {
                    let code = self.regs.get(Gpr::Rdi);
                    return self.finish(ExitStatus::Exited(code as i64));
                }
            }
            idx += 1;
            if idx as usize >= prog.insns.len() {
                return self.finish(ExitStatus::Faulted(Fault::InvalidJump {
                    target: addr + insn.len(),
                }));
            }
        }
    }

    #[inline]
    fn charge_avx_transition(&mut self) {
        if self.ymm_dirty {
            self.stats.cycles += self.cfg.machine.avx_transition_penalty;
            self.stats.avx_transitions += 1;
        }
    }

    fn do_native(&mut self, native: u16, probe_pc: VAddr) -> Result<(), Fault> {
        let kind = *self
            .prog
            .natives
            .get(native as usize)
            .ok_or(Fault::NativeError { native })?;
        match kind {
            NativeKind::Malloc => {
                let size = self.regs.get(Gpr::Rdi);
                let p = self.heap.malloc(&mut self.mem, size).unwrap_or(0);
                self.regs.set(Gpr::Rax, p);
            }
            NativeKind::Free => {
                let p = self.regs.get(Gpr::Rdi);
                self.heap.free(&mut self.mem, p)?;
            }
            NativeKind::Memalign => {
                let align = self.regs.get(Gpr::Rdi);
                let size = self.regs.get(Gpr::Rsi);
                let p = self.heap.memalign(&mut self.mem, align, size).unwrap_or(0);
                self.regs.set(Gpr::Rax, p);
            }
            NativeKind::Mprotect => {
                let addr = self.regs.get(Gpr::Rdi);
                let len = self.regs.get(Gpr::Rsi);
                let bits = self.regs.get(Gpr::Rdx);
                let mut perms = Perms::NONE;
                if bits & 1 != 0 {
                    perms = perms.union(Perms::R);
                }
                if bits & 2 != 0 {
                    perms = perms.union(Perms::W);
                }
                if bits & 4 != 0 {
                    perms = perms.union(Perms::X);
                }
                let rc = if self.mem.protect(addr, len, perms).is_ok() {
                    0u64
                } else {
                    u64::MAX
                };
                self.regs.set(Gpr::Rax, rc);
            }
            NativeKind::PrintI64 => {
                let v = self.regs.get(Gpr::Rdi);
                self.output.push(v as i64);
            }
            NativeKind::PutChar => {
                let v = self.regs.get(Gpr::Rdi) & 0xff;
                self.output.push(v as i64);
            }
            NativeKind::StackProbe => {
                let rsp = self.regs.get(Gpr::Rsp);
                let len = (2 * crate::mem::PAGE_SIZE) as usize;
                let mut buf = vec![0u8; len];
                self.mem.peek(rsp, &mut buf);
                self.probes.push(StackSnapshot {
                    pc: probe_pc,
                    rsp,
                    bytes: buf,
                });
            }
        }
        Ok(())
    }

    /// Records heap telemetry / trace events for a just-executed native
    /// call. Reads only; guest state is untouched.
    fn trace_native(&mut self, native: u16) {
        let Some(&kind) = self.prog.natives.get(native as usize) else {
            return;
        };
        let live = self.heap.in_use();
        let resident = self.mem.resident_pages() as u64;
        let insns = self.stats.instructions;
        let (rax, rdi, rsi, rdx) = (
            self.regs.get(Gpr::Rax),
            self.regs.get(Gpr::Rdi),
            self.regs.get(Gpr::Rsi),
            self.regs.get(Gpr::Rdx),
        );
        let Some(tr) = &mut self.tracer else { return };
        // Capture mode records every native with its argument registers
        // and answer (the replay stub serves these back); the heap/
        // protect hooks below additionally feed the telemetry.
        tr.on_extern(kind, [rdi, rsi, rdx], rax);
        match kind {
            NativeKind::Malloc => tr.on_alloc(rax, rdi, live, resident, insns),
            NativeKind::Memalign => tr.on_alloc(rax, rsi, live, resident, insns),
            NativeKind::Free => tr.on_free(rdi, live, resident, insns),
            NativeKind::Mprotect => {
                let mut perms = Perms::NONE;
                if rdx & 1 != 0 {
                    perms = perms.union(Perms::R);
                }
                if rdx & 2 != 0 {
                    perms = perms.union(Perms::W);
                }
                if rdx & 4 != 0 {
                    perms = perms.union(Perms::X);
                }
                tr.on_protect(rdi, rsi, perms);
            }
            _ => {}
        }
    }

    // --- Attacker primitives (threat model of paper §3) ---------------

    /// Arbitrary-read primitive: permission-checked read of `len` bytes.
    ///
    /// A denied read is what the process would experience as a segfault;
    /// guard-page hits are additionally recorded as detections, which is
    /// the reactive component of R²C.
    pub fn attacker_read(&mut self, addr: VAddr, len: usize) -> Result<Vec<u8>, Fault> {
        let mut buf = vec![0u8; len];
        match self.mem.read(addr, &mut buf) {
            Ok(()) => Ok(buf),
            Err(f) => {
                self.note_fault(&f);
                Err(f)
            }
        }
    }

    /// Arbitrary-read of one 64-bit word.
    pub fn attacker_read_u64(&mut self, addr: VAddr) -> Result<u64, Fault> {
        let b = self.attacker_read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Arbitrary-write primitive (permission-checked).
    pub fn attacker_write(&mut self, addr: VAddr, bytes: &[u8]) -> Result<(), Fault> {
        match self.mem.write(addr, bytes) {
            Ok(()) => Ok(()),
            Err(f) => {
                self.note_fault(&f);
                Err(f)
            }
        }
    }

    /// Arbitrary-write of one 64-bit word.
    pub fn attacker_write_u64(&mut self, addr: VAddr, val: u64) -> Result<(), Fault> {
        self.attacker_write(addr, &val.to_le_bytes())
    }

    /// Leaks a window of the stack, as Malicious Thread Blocking allows
    /// (paper §2.3): returns `words` 64-bit values starting at `addr`.
    pub fn leak_stack(&mut self, addr: VAddr, words: usize) -> Result<Vec<u64>, Fault> {
        let bytes = self.attacker_read(addr, words * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Control-flow hijack: transfers control to `target` (e.g. a gadget
    /// address or function entry) and runs until return/halt/fault. The
    /// return lands on the exit sentinel, modelling an attack payload
    /// that regains control afterwards.
    pub fn hijack(&mut self, target: VAddr) -> RunOutcome {
        self.call(target, &[])
    }

    /// Executes a full ROP chain: writes the gadget addresses to the
    /// stack (last entry is where control goes when the final gadget
    /// returns — the exit sentinel is appended automatically) and
    /// transfers control to the first gadget. Each gadget's terminating
    /// `ret` pops the next entry, exactly like a real chain.
    pub fn hijack_chain(&mut self, gadgets: &[VAddr]) -> RunOutcome {
        assert!(!gadgets.is_empty());
        if let Some(tr) = &mut self.tracer {
            tr.on_activation();
        }
        let mut rsp = self.regs.get(Gpr::Rsp) & !15;
        // Push sentinel first (bottom of chain), then the gadgets in
        // reverse so that gadgets[0] is on top.
        rsp -= 8;
        if let Err(f) = self.mem.write_u64(rsp, EXIT_SENTINEL) {
            return self.finish(ExitStatus::Faulted(f));
        }
        for &g in gadgets[1..].iter().rev() {
            rsp -= 8;
            if let Err(f) = self.mem.write_u64(rsp, g) {
                return self.finish(ExitStatus::Faulted(f));
            }
        }
        self.regs.set(Gpr::Rsp, rsp);
        match self.index_of(gadgets[0]) {
            Some(idx) => self.exec_from(idx),
            None => self.finish(ExitStatus::Faulted(Fault::InvalidJump {
                target: gadgets[0],
            })),
        }
    }

    /// Reads the current stack pointer.
    pub fn rsp(&self) -> VAddr {
        self.regs.get(Gpr::Rsp)
    }

    /// Address-space introspection for evaluation (ground truth, not an
    /// attacker capability): permissions at an address.
    pub fn perms_at(&self, addr: VAddr) -> Option<Perms> {
        self.mem.perms_at(addr)
    }

    /// Decodes the instruction at `addr` *if the attacker can read it*,
    /// modelling direct code disclosure for JIT-ROP. With execute-only
    /// text this fails with a protection fault.
    pub fn attacker_disassemble(&mut self, addr: VAddr) -> Result<Insn, Fault> {
        // Reading one byte is enough to trigger the permission check.
        self.attacker_read(addr, 1)?;
        match self.index_of(addr) {
            Some(i) => Ok(self.prog.insns[i as usize]),
            None => Err(Fault::InvalidJump { target: addr }),
        }
    }

    /// The YMM scratch register reserved for the AVX2 BTRA setup.
    pub fn btra_scratch_ymm() -> Ymm {
        Ymm(15)
    }
}

#[inline]
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Imul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => a.wrapping_shr(b as u32 & 63),
        AluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{SectionLayout, Symbol, SymbolKind};
    use crate::machine::MachineKind;
    use crate::mem::PAGE_SIZE;
    use crate::unwind::UnwindTable;

    /// Hand-assembles an image from instructions laid out contiguously.
    fn asm(insns: Vec<Insn>, natives: Vec<NativeKind>) -> Image {
        let text_base = 0x40_0000u64;
        let mut addrs = Vec::new();
        let mut a = text_base;
        for i in &insns {
            addrs.push(a);
            a += i.len();
        }
        let text_end = a.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        Image {
            insns,
            insn_addrs: addrs,
            layout: SectionLayout {
                text_base,
                text_end,
                data_base: 0x60_0000,
                data_end: 0x60_4000,
                heap_base: 0x10_0000_0000,
                heap_size: 16 * 1024 * 1024,
                stack_top: 0x7fff_ffff_f000,
                stack_size: 1024 * 1024,
            },
            entry: text_base,
            constructors: vec![],
            data_init: vec![],
            xom: true,
            symbols: vec![Symbol {
                name: "main".into(),
                addr: text_base,
                size: 0,
                kind: SymbolKind::Function,
            }],
            natives,
            unwind: UnwindTable::default(),
        }
    }

    fn vm(insns: Vec<Insn>) -> Vm {
        Vm::new(
            &asm(insns, vec![NativeKind::Malloc, NativeKind::PrintI64]),
            VmConfig::new(MachineKind::EpycRome.config()),
        )
    }

    #[test]
    fn mov_and_exit() {
        let mut v = vm(vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 42,
            },
            Insn::Ret,
        ]);
        let out = v.run();
        assert_eq!(out.status, ExitStatus::Exited(42));
        assert_eq!(out.stats.instructions, 2);
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 via a loop: rax = acc, rcx = i.
        let base = 0x40_0000u64;
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0,
            }, // +0, len 5
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 1,
            }, // +5, len 5
            Insn::AluReg {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            }, // +10, len 3
            Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rcx,
                imm: 1,
            }, // +13, len 4
            Insn::CmpImm {
                a: Gpr::Rcx,
                imm: 10,
            }, // +17, len 4
            Insn::Jcc {
                cond: Cond::Le,
                target: base + 10,
            }, // +21
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert_eq!(v.run().status, ExitStatus::Exited(55));
    }

    #[test]
    fn call_and_return() {
        let base = 0x40_0000u64;
        // main: call f (at base+10); ret. f: mov rax, 7; ret.
        let insns = vec![
            Insn::Call { target: base + 6 }, // len 5
            Insn::Ret,                       // +5
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 7,
            }, // +6  <- f
            Insn::Ret,
        ];
        let mut v = vm(insns);
        let out = v.run();
        assert_eq!(out.status, ExitStatus::Exited(7));
        assert_eq!(out.stats.calls, 1);
        assert_eq!(out.stats.rets, 2);
    }

    #[test]
    fn trap_faults_and_detects() {
        let mut v = vm(vec![Insn::Trap]);
        let out = v.run();
        assert!(matches!(
            out.status,
            ExitStatus::Faulted(Fault::BoobyTrap { .. })
        ));
        assert_eq!(v.detections().len(), 1);
    }

    #[test]
    fn invalid_jump_faults() {
        let mut v = vm(vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0xdead,
            },
            Insn::JmpInd { target: Gpr::Rax },
        ]);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::InvalidJump { target: 0xdead })
        ));
    }

    #[test]
    fn native_malloc_gives_heap_pointer() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rdi,
                imm: 128,
            },
            Insn::CallNative { native: 0 },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        let out = v.run();
        let ExitStatus::Exited(p) = out.status else {
            panic!()
        };
        assert!(p as u64 >= 0x10_0000_0000);
        assert_eq!(out.stats.native_calls, 1);
    }

    #[test]
    fn print_output_collected() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rdi,
                imm: 99,
            },
            Insn::CallNative { native: 1 },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        v.run();
        assert_eq!(v.output, vec![99]);
    }

    #[test]
    fn attacker_cannot_read_xom_text() {
        let mut v = vm(vec![Insn::Ret]);
        let err = v.attacker_read(0x40_0000, 8).unwrap_err();
        assert!(matches!(err, Fault::Protection { .. }));
        // XoM read denial is a crash but not a booby-trap detection.
        assert!(v.detections().is_empty());
    }

    #[test]
    fn attacker_disassemble_works_without_xom() {
        let mut img = asm(vec![Insn::Ret], vec![]);
        img.xom = false;
        let mut v = Vm::new(&img, VmConfig::new(MachineKind::EpycRome.config()));
        assert_eq!(v.attacker_disassemble(0x40_0000).unwrap(), Insn::Ret);
    }

    #[test]
    fn guard_page_hit_is_detected() {
        let mut v = vm(vec![Insn::Ret]);
        // Forge a guard page on the heap.
        v.mem.map(0x10_0000_0000, PAGE_SIZE, Perms::NONE);
        assert!(v.attacker_read_u64(0x10_0000_0100).is_err());
        assert_eq!(v.detections().len(), 1);
        assert!(matches!(v.detections()[0], Detection::GuardPage { .. }));
    }

    #[test]
    fn budget_exhaustion() {
        let base = 0x40_0000u64;
        let mut v = Vm::new(
            &asm(vec![Insn::Jmp { target: base }], vec![]),
            VmConfig {
                insn_budget: 1000,
                ..VmConfig::new(MachineKind::EpycRome.config())
            },
        );
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::BudgetExhausted)
        ));
    }

    #[test]
    fn vector_roundtrip_through_stack() {
        let insns = vec![
            // Write 32 bytes of pattern into ymm1 via memory.
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0x0102030405060708,
            },
            Insn::Push { src: Gpr::Rax },
            Insn::Push { src: Gpr::Rax },
            Insn::Push { src: Gpr::Rax },
            Insn::Push { src: Gpr::Rax },
            Insn::VLoad {
                dst: Ymm(1),
                mem: MemRef::base(Gpr::Rsp),
                aligned: false,
            },
            Insn::VStore {
                mem: MemRef::base_disp(Gpr::Rsp, -64),
                src: Ymm(1),
                aligned: false,
            },
            Insn::Load {
                dst: Gpr::Rax,
                mem: MemRef::base_disp(Gpr::Rsp, -64),
            },
            Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm: 32,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert_eq!(v.run().status, ExitStatus::Exited(0x0102030405060708));
    }

    #[test]
    fn vmovdqa_misalignment_faults() {
        let insns = vec![
            // rsp is 16-aligned at entry minus 8; rsp+4 is misaligned.
            Insn::VLoad {
                dst: Ymm(0),
                mem: MemRef::base_disp(Gpr::Rsp, 4),
                aligned: true,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::Misaligned { .. })
        ));
    }

    #[test]
    fn avx_transition_penalty_without_vzeroupper() {
        let base = 0x40_0000u64;
        let f = |with_vzu: bool| {
            let mut insns = vec![Insn::VLoad {
                dst: Ymm(0),
                mem: MemRef::base_disp(Gpr::Rsp, -32),
                aligned: false,
            }];
            if with_vzu {
                insns.push(Insn::VZeroUpper);
            }
            insns.push(Insn::Ret);
            let mut v = Vm::new(
                &asm(insns, vec![]),
                VmConfig::new(MachineKind::EpycRome.config()),
            );
            let _ = base;
            let out = v.run();
            (out.stats.avx_transitions, out.stats.cycles)
        };
        let (trans_no, _) = f(false);
        let (trans_yes, _) = f(true);
        assert_eq!(trans_no, 1);
        assert_eq!(trans_yes, 0);
    }

    #[test]
    fn division_by_zero_faults() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 10,
            },
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 0,
            },
            Insn::Div {
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::DivideByZero { .. })
        ));
    }

    #[test]
    fn stack_overflow_detected() {
        let base = 0x40_0000u64;
        // Infinite recursion.
        let insns = vec![Insn::Call { target: base }];
        let mut v = vm(insns);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::StackOverflow { .. })
        ));
    }

    #[test]
    fn div_and_rem_semantics() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: (-17i64) as u64,
            },
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 5,
            },
            Insn::Rem {
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert_eq!(v.run().status, ExitStatus::Exited(-2));
    }

    #[test]
    fn reset_to_image_matches_fresh_vm() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 7,
            },
            Insn::Ret,
        ];
        let image = asm(insns, vec![NativeKind::Malloc, NativeKind::PrintI64]);
        let cfg = VmConfig::new(MachineKind::EpycRome.config());
        let mut fresh = Vm::new(&image, cfg);
        let fresh_out = fresh.run();

        let mut v = Vm::new(&image, cfg);
        assert_eq!(v.run().status, ExitStatus::Exited(7));
        // Dirty everything a restart must not leak: data writes, faults
        // (an invalid hijack), output, probe snapshots.
        v.mem.poke_u64(0x60_0008, 0xDEAD_BEEF);
        assert!(matches!(
            v.call(0x1234, &[]).status,
            ExitStatus::Faulted(Fault::InvalidJump { .. })
        ));
        v.output.push(99);

        v.reset_to_image();
        assert_eq!(v.mem.peek_u64(0x60_0008), 0);
        assert!(v.detections().is_empty());
        assert!(v.output.is_empty());
        assert!(v.probes.is_empty());
        assert!(!v.paused_at_probe());
        assert_eq!(v.stats().instructions, 0);
        assert_eq!(v.stats().cycles, 0);
        assert_eq!(v.heap.in_use(), 0);
        assert_eq!(v.heap.alloc_count, 0);
        let out = v.run();
        assert_eq!(out.status, fresh_out.status);
        assert_eq!(out.stats, fresh_out.stats);
    }

    #[test]
    fn reset_to_image_restores_unmapped_and_reprotected_pages() {
        let image = asm(vec![Insn::Ret], vec![NativeKind::Malloc]);
        let cfg = VmConfig::new(MachineKind::EpycRome.config());
        let mut v = Vm::new(&image, cfg);
        // Unmap a data page and revoke the stack's write bit; a restart
        // must undo both or the next request faults spuriously.
        v.mem.unmap(0x60_0000, PAGE_SIZE);
        let stack_page = image.layout.stack_top - PAGE_SIZE;
        v.mem.protect(stack_page, PAGE_SIZE, Perms::R).unwrap();
        assert_eq!(v.mem.perms_at(0x60_0000), None);
        v.reset_to_image();
        assert_eq!(v.mem.perms_at(0x60_0000), Some(Perms::RW));
        assert_eq!(v.mem.perms_at(stack_page), Some(Perms::RW));
        assert_eq!(v.run().status, ExitStatus::Exited(0));
    }

    #[test]
    fn fused_and_unfused_vms_share_nothing_but_agree() {
        // Same image, fusion on vs off: different decoded programs,
        // identical observable execution.
        let base = 0x40_0000u64;
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0,
            },
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 1,
            },
            Insn::AluReg {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rcx,
                imm: 1,
            },
            Insn::CmpImm {
                a: Gpr::Rcx,
                imm: 100,
            },
            Insn::Jcc {
                cond: Cond::Le,
                target: base + 10,
            },
            Insn::Ret,
        ];
        let image = asm(insns, vec![]);
        let cfg = VmConfig::new(MachineKind::EpycRome.config());
        let mut fused = Vm::new(
            &image,
            VmConfig {
                no_fuse: false,
                ..cfg
            },
        );
        let mut unfused = Vm::new(
            &image,
            VmConfig {
                no_fuse: true,
                ..cfg
            },
        );
        assert!(fused.fusion_enabled());
        assert!(!unfused.fusion_enabled());
        assert_ne!(fused.decoded_program_id(), unfused.decoded_program_id());
        let a = fused.run();
        let b = unfused.run();
        assert_eq!(a.status, b.status);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn decode_is_shared_across_vms_on_same_image() {
        let image = asm(vec![Insn::Ret], vec![]);
        let cfg = VmConfig {
            no_fuse: false,
            ..VmConfig::new(MachineKind::EpycRome.config())
        };
        let a = Vm::new(&image, cfg);
        let b = Vm::new(&image, cfg);
        assert_eq!(a.decoded_program_id(), b.decoded_program_id());
    }
}
