//! The virtual-machine interpreter.
//!
//! [`Vm`] loads an [`Image`], runs its constructors and entry point, and
//! accounts per-instruction costs against a [`MachineConfig`]. It also
//! exposes the *attacker primitives* the paper's threat model grants
//! (§3): permission-checked arbitrary read/write (a memory-corruption
//! vulnerability), stack-frame leaks, and control-flow hijacking. Every
//! booby-trap execution and guard-page access is recorded as a
//! [`Detection`] event for the reactive-defense monitor.

use crate::fault::{Detection, Fault};
use crate::heap::Heap;
use crate::image::{Image, NativeKind};
use crate::insn::{AluOp, Cond, Insn, MemRef};
use crate::machine::{ICache, MachineConfig};
use crate::mem::{MemSnapshot, Memory, Perms};
use crate::regs::{Gpr, RegFile, Ymm};
use crate::stats::ExecStats;
use crate::trace::{ExecProfile, TraceConfig, Tracer};
use crate::VAddr;

/// Sentinel return address: `ret`ing to it ends the current activation
/// (used for the entry point, constructors, and attacker-driven calls).
pub const EXIT_SENTINEL: VAddr = 0xE0D0_0000_0000;

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// The guest exited normally with this status value.
    Exited(i64),
    /// The guest died with a fault.
    Faulted(Fault),
    /// Execution paused at a `StackProbe` (only with
    /// [`VmConfig::break_on_probe`]); resume with [`Vm::resume`].
    /// This models Malicious Thread Blocking precisely: the victim
    /// thread is *held* at a known point while the attacker reads and
    /// writes its memory, then released (§2.3).
    Probed,
}

impl ExitStatus {
    /// True for a normal exit.
    pub fn is_exit(&self) -> bool {
        matches!(self, ExitStatus::Exited(_))
    }
}

/// A stack snapshot captured at a `StackProbe` hypercall: the state a
/// Malicious-Thread-Blocking attacker observes while the victim thread
/// is blocked.
#[derive(Clone, Debug)]
pub struct StackSnapshot {
    /// Program counter of the probe call (where the thread "blocks").
    pub pc: VAddr,
    /// Stack pointer at the probe.
    pub rsp: VAddr,
    /// Contents of `[rsp, rsp + 2 pages)`.
    pub bytes: Vec<u8>,
}

/// Result of running a guest activation to completion.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Exit status or fault.
    pub status: ExitStatus,
    /// Statistics accumulated so far (cumulative over the VM lifetime).
    pub stats: ExecStats,
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Cost model.
    pub machine: MachineConfig,
    /// Maximum dynamically executed instructions before the run is
    /// aborted with [`Fault::BudgetExhausted`].
    pub insn_budget: u64,
    /// Pause execution (returning [`ExitStatus::Probed`]) at every
    /// `StackProbe` native, so a Malicious-Thread-Blocking attacker can
    /// act on the live frame before [`Vm::resume`] releases the thread.
    pub break_on_probe: bool,
}

impl VmConfig {
    /// Config with the given machine and a generous default budget.
    pub fn new(machine: MachineConfig) -> VmConfig {
        VmConfig {
            machine,
            insn_budget: 2_000_000_000,
            break_on_probe: false,
        }
    }
}

/// Sentinel in the dense dispatch table marking a text offset that is
/// not the start of an instruction.
const NO_INSN: u32 = u32::MAX;

/// The virtual machine.
pub struct Vm {
    cfg: VmConfig,
    insns: Vec<Insn>,
    insn_addrs: Vec<VAddr>,
    /// Dense jump table: `dispatch[addr - text_base]` is the index of
    /// the instruction starting at `addr`, or [`NO_INSN`]. Replaces the
    /// per-jump `HashMap<VAddr, u32>` lookup — every control transfer
    /// resolves with one bounds check and one array load.
    dispatch: Vec<u32>,
    text_base: VAddr,
    natives: Vec<NativeKind>,
    /// Guest memory. Public for tests and analysis tooling; attacks must
    /// use the permission-checked primitives instead.
    pub mem: Memory,
    /// Architectural registers.
    pub regs: RegFile,
    /// Guest heap allocator state.
    pub heap: Heap,
    icache: ICache,
    stats: ExecStats,
    stack_limit: VAddr,
    /// Values printed by the guest (`PrintI64` / `PutChar` natives), the
    /// "program output" used for differential correctness checks.
    pub output: Vec<i64>,
    detections: Vec<Detection>,
    /// Stack snapshots taken at `StackProbe` natives — the window
    /// Malicious Thread Blocking lets an attacker observe (§2.3).
    /// AOCR's analysis uses two pages of stack values, so that is what
    /// each snapshot covers.
    pub probes: Vec<StackSnapshot>,
    ymm_dirty: bool,
    pending_resume: Option<u32>,
    image_entry: VAddr,
    image_ctors: Vec<VAddr>,
    /// Memory as loaded (text + initialized data + stack mapping, before
    /// any constructor ran), backing [`Vm::reset_to_image`].
    init_mem: MemSnapshot,
    heap_base: VAddr,
    heap_size: u64,
    stack_top: VAddr,
    /// Execution tracer (`None` by default). Every hook in the
    /// interpreter is behind this option, which is the whole of the
    /// zero-overhead-when-off contract: an untraced VM runs exactly the
    /// pre-trace code paths, and a traced VM only *observes* state —
    /// cycle counts stay bit-identical either way.
    tracer: Option<Box<Tracer>>,
}

impl Vm {
    /// Loads an image into a fresh address space.
    ///
    /// # Panics
    ///
    /// Panics if the image fails [`Image::validate`].
    pub fn new(image: &Image, cfg: VmConfig) -> Vm {
        image.validate().expect("invalid image");
        let mut mem = Memory::new();
        let l = image.layout;
        // Text: execute-only when XoM is on, read-execute otherwise. The
        // stored bytes are a 0xCC fill; disclosure-based attacks use
        // `AttackerView`-style decoding gated on readability.
        let text_len = l.text_end - l.text_base;
        mem.map(
            l.text_base,
            text_len,
            if image.xom { Perms::XO } else { Perms::RX },
        );
        mem.poke(l.text_base, &vec![0xCCu8; text_len as usize]);
        // Data.
        mem.map(l.data_base, l.data_end - l.data_base, Perms::RW);
        for (addr, bytes) in &image.data_init {
            mem.poke(*addr, bytes);
        }
        // Stack (leave the page below the reservation unmapped as guard).
        mem.map(l.stack_top - l.stack_size, l.stack_size, Perms::RW);

        let heap = Heap::new(l.heap_base, l.heap_size);
        let mut regs = RegFile::new();
        regs.set(Gpr::Rsp, l.stack_top - 64);

        // Dense offset → instruction-index table over the text section.
        // Image::validate guarantees every instruction lies inside it.
        let mut dispatch = vec![NO_INSN; text_len as usize];
        for (i, &a) in image.insn_addrs.iter().enumerate() {
            dispatch[(a - l.text_base) as usize] = i as u32;
        }

        let init_mem = mem.snapshot();
        Vm {
            cfg,
            insns: image.insns.clone(),
            insn_addrs: image.insn_addrs.clone(),
            dispatch,
            text_base: l.text_base,
            natives: image.natives.clone(),
            mem,
            regs,
            heap,
            icache: ICache::new(cfg.machine.icache),
            stats: ExecStats::default(),
            stack_limit: l.stack_top - l.stack_size,
            output: Vec::new(),
            detections: Vec::new(),
            probes: Vec::new(),
            ymm_dirty: false,
            pending_resume: None,
            image_entry: image.entry,
            image_ctors: image.constructors.clone(),
            init_mem,
            heap_base: l.heap_base,
            heap_size: l.heap_size,
            stack_top: l.stack_top,
            tracer: None,
        }
    }

    /// Resets the VM to the state [`Vm::new`] left it in, without
    /// rebuilding the image: memory is rolled back to the load-time
    /// snapshot (constructors have *not* run again), the heap allocator
    /// and register file are reinitialized, and every piece of observable
    /// run state — [`ExecStats`], recorded [`Detection`]s, stack-probe
    /// snapshots, guest output, the icache — is cleared.
    ///
    /// This is the fast worker-restart primitive for crash-restarting
    /// server pools: restarting on the *same* image preserves the layout
    /// an attacker has been probing (the Blind-ROP-vulnerable
    /// configuration), while a re-randomizing pool builds a fresh image
    /// and a fresh `Vm` instead. A reset VM is indistinguishable from a
    /// newly constructed one; nothing leaks across the restart (an
    /// attached tracer is dropped).
    pub fn reset_to_image(&mut self) {
        self.mem.restore(&self.init_mem);
        self.heap = Heap::new(self.heap_base, self.heap_size);
        self.regs = RegFile::new();
        self.regs.set(Gpr::Rsp, self.stack_top - 64);
        self.icache = ICache::new(self.cfg.machine.icache);
        self.stats = ExecStats::default();
        self.output.clear();
        self.detections.clear();
        self.probes.clear();
        self.ymm_dirty = false;
        self.pending_resume = None;
        self.tracer = None;
    }

    /// Attaches an execution tracer built from `image`'s symbol table.
    /// Call before [`Vm::run`]; tracing observes execution without
    /// changing it (cycle counts stay bit-identical to untraced runs).
    pub fn enable_trace(&mut self, image: &Image, cfg: TraceConfig) {
        self.tracer = Some(Box::new(Tracer::new(image, cfg)));
    }

    /// Snapshot of the traced run, or `None` if tracing is off.
    pub fn trace_profile(&self) -> Option<ExecProfile> {
        let tr = self.tracer.as_deref()?;
        let mut p = tr.profile(self.stats());
        p.heap.end_live_bytes = self.heap.in_use();
        p.heap.end_resident_pages = self.mem.resident_pages() as u64;
        p.heap.released_pages = self.heap.released_pages;
        p.heap.quarantined_pages = self.heap.quarantined_pages() as u64;
        // The allocator-event samples can miss the true residency peak;
        // the address-space high-water mark never does.
        p.heap.peak_resident_pages = p
            .heap
            .peak_resident_pages
            .max(self.mem.max_resident_pages() as u64);
        Some(p)
    }

    /// Runs constructors, then the entry point, to completion.
    pub fn run(&mut self) -> RunOutcome {
        for i in 0..self.image_ctors.len() {
            let ctor = self.image_ctors[i];
            let out = self.call(ctor, &[]);
            if let ExitStatus::Faulted(_) = out.status {
                return out;
            }
        }
        self.call(self.image_entry, &[])
    }

    /// Adjusts the instruction budget. The budget is cumulative over
    /// the VM's lifetime (and reset together with [`ExecStats`] by
    /// [`Vm::reset_to_image`]), so a long-lived server worker that
    /// wants a *per-request* watchdog sets
    /// `stats().instructions + per_request_budget` before each call.
    pub fn set_insn_budget(&mut self, budget: u64) {
        self.cfg.insn_budget = budget;
    }

    /// Resumes execution after an [`ExitStatus::Probed`] pause (the
    /// blocked thread is released).
    ///
    /// # Panics
    ///
    /// Panics if the VM is not paused at a probe.
    pub fn resume(&mut self) -> RunOutcome {
        let idx = self
            .pending_resume
            .take()
            .expect("resume without a pending probe");
        self.exec_from(idx)
    }

    /// True if the VM is paused at a probe.
    pub fn paused_at_probe(&self) -> bool {
        self.pending_resume.is_some()
    }

    /// Calls the function at `target` with up to six integer arguments,
    /// running until it returns (to the sentinel) or faults.
    ///
    /// This doubles as the whole-function-reuse primitive: an attacker
    /// who has hijacked control flow calls an arbitrary address with
    /// arbitrary arguments.
    pub fn call(&mut self, target: VAddr, args: &[u64]) -> RunOutcome {
        assert!(args.len() <= 6, "register arguments only");
        if let Some(tr) = &mut self.tracer {
            // A fresh activation: the shadow call stack starts over
            // (resuming from a probe does not come through here and
            // keeps its stack).
            tr.on_activation();
        }
        for (i, &a) in args.iter().enumerate() {
            self.regs.set(Gpr::ARGS[i], a);
        }
        // Align rsp so the callee sees the ABI-mandated rsp % 16 == 8.
        let rsp = self.regs.get(Gpr::Rsp) & !15;
        self.regs.set(Gpr::Rsp, rsp - 8);
        if let Err(f) = self.mem.write_u64(rsp - 8, EXIT_SENTINEL) {
            return self.finish(ExitStatus::Faulted(f));
        }
        match self.index_of(target) {
            Some(idx) => self.exec_from(idx),
            None => self.finish(ExitStatus::Faulted(Fault::InvalidJump { target })),
        }
    }

    /// Resolves a jump target to its instruction index via the dense
    /// dispatch table. `None` exactly when the old `HashMap` lookup
    /// missed: outside the text section or between instruction starts.
    #[inline]
    fn index_of(&self, target: VAddr) -> Option<u32> {
        let off = target.wrapping_sub(self.text_base);
        if off < self.dispatch.len() as u64 {
            let idx = self.dispatch[off as usize];
            if idx != NO_INSN {
                return Some(idx);
            }
        }
        None
    }

    fn finish(&mut self, status: ExitStatus) -> RunOutcome {
        if let ExitStatus::Faulted(f) = status {
            self.note_fault(&f);
        }
        let (h, m) = self.icache.stats();
        if let Some(tr) = &mut self.tracer {
            if let ExitStatus::Faulted(f) = &status {
                tr.on_fault(f);
            }
            // Attribute the final instruction's cost; after this the
            // folded map accounts for every cycle charged so far.
            tr.sync(self.stats.cycles, m);
        }
        self.stats.icache_hits = h;
        self.stats.icache_misses = m;
        self.stats.max_rss_pages = self.mem.max_resident_pages();
        RunOutcome {
            status,
            stats: self.stats,
        }
    }

    fn note_fault(&mut self, f: &Fault) {
        match f {
            Fault::BoobyTrap { addr } => self.detections.push(Detection::BoobyTrap { addr: *addr }),
            Fault::Protection { addr, perms, .. } if *perms == Perms::NONE => {
                self.detections.push(Detection::GuardPage { addr: *addr })
            }
            _ => {}
        }
    }

    /// Detection events recorded so far (booby traps, guard pages).
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats;
        let (h, m) = self.icache.stats();
        s.icache_hits = h;
        s.icache_misses = m;
        s.max_rss_pages = self.mem.max_resident_pages();
        s
    }

    #[inline]
    fn ea(&self, m: &MemRef) -> VAddr {
        let mut a = self.regs.get(m.base);
        if let Some((idx, scale)) = m.index {
            a = a.wrapping_add(self.regs.get(idx).wrapping_mul(scale as u64));
        }
        a.wrapping_add_signed(m.disp as i64)
    }

    #[inline]
    fn push_word(&mut self, val: u64) -> Result<(), Fault> {
        let rsp = self.regs.get(Gpr::Rsp).wrapping_sub(8);
        if rsp < self.stack_limit {
            return Err(Fault::StackOverflow { rsp });
        }
        self.mem.write_u64(rsp, val)?;
        self.regs.set(Gpr::Rsp, rsp);
        Ok(())
    }

    #[inline]
    fn pop_word(&mut self) -> Result<u64, Fault> {
        let rsp = self.regs.get(Gpr::Rsp);
        let v = self.mem.read_u64(rsp)?;
        self.regs.set(Gpr::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    #[inline]
    fn cond_holds(&self, c: Cond) -> bool {
        let f = self.regs.flags;
        match c {
            Cond::Eq => f.zf,
            Cond::Ne => !f.zf,
            Cond::Lt => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::Gt => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
        }
    }

    /// Executes starting at instruction index `idx` until the activation
    /// returns to the sentinel, the guest halts, or a fault occurs.
    fn exec_from(&mut self, mut idx: u32) -> RunOutcome {
        loop {
            if self.stats.instructions >= self.cfg.insn_budget {
                return self.finish(ExitStatus::Faulted(Fault::BudgetExhausted));
            }
            let insn = self.insns[idx as usize];
            let addr = self.insn_addrs[idx as usize];
            if let Some(tr) = &mut self.tracer {
                // Counters *before* this instruction is charged: the
                // delta since the previous step is the full cost of the
                // previously executed instruction, extras included.
                tr.step(addr, self.stats.cycles, self.icache.stats().1);
            }
            self.stats.instructions += 1;
            self.stats.cycles += self.cfg.machine.base_cost(&insn) + self.icache.access(addr);

            macro_rules! fault {
                ($f:expr) => {
                    return self.finish(ExitStatus::Faulted($f))
                };
            }
            macro_rules! try_mem {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(f) => fault!(f),
                    }
                };
            }
            macro_rules! jump_to {
                ($t:expr) => {{
                    let t = $t;
                    match self.index_of(t) {
                        Some(i) => {
                            idx = i;
                            continue;
                        }
                        None => fault!(Fault::InvalidJump { target: t }),
                    }
                }};
            }

            match insn {
                Insn::MovImm { dst, imm } | Insn::MovAbs { dst, imm } => self.regs.set(dst, imm),
                Insn::MovReg { dst, src } => {
                    let v = self.regs.get(src);
                    self.regs.set(dst, v);
                }
                Insn::Load { dst, mem } => {
                    let a = self.ea(&mem);
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                }
                Insn::Store { mem, src } => {
                    let a = self.ea(&mem);
                    let v = self.regs.get(src);
                    try_mem!(self.mem.write_u64(a, v));
                }
                Insn::StoreImm { mem, imm } => {
                    let a = self.ea(&mem);
                    try_mem!(self.mem.write_u64(a, imm as i64 as u64));
                }
                Insn::Lea { dst, mem } => {
                    let a = self.ea(&mem);
                    self.regs.set(dst, a);
                }
                Insn::Push { src } => {
                    let v = self.regs.get(src);
                    try_mem!(self.push_word(v));
                }
                Insn::PushImm { imm } => try_mem!(self.push_word(imm)),
                Insn::Pop { dst } => {
                    let v = try_mem!(self.pop_word());
                    self.regs.set(dst, v);
                }
                Insn::AluReg { op, dst, src } => {
                    let a = self.regs.get(dst);
                    let b = self.regs.get(src);
                    let r = alu(op, a, b);
                    self.regs.set(dst, r);
                    self.regs.flags.set_result(r);
                }
                Insn::AluImm { op, dst, imm } => {
                    let a = self.regs.get(dst);
                    let r = alu(op, a, imm as i64 as u64);
                    self.regs.set(dst, r);
                    self.regs.flags.set_result(r);
                }
                Insn::Div { dst, src } => {
                    let b = self.regs.get(src) as i64;
                    if b == 0 {
                        fault!(Fault::DivideByZero { addr });
                    }
                    let a = self.regs.get(dst) as i64;
                    self.regs.set(dst, a.wrapping_div(b) as u64);
                }
                Insn::Rem { dst, src } => {
                    let b = self.regs.get(src) as i64;
                    if b == 0 {
                        fault!(Fault::DivideByZero { addr });
                    }
                    let a = self.regs.get(dst) as i64;
                    self.regs.set(dst, a.wrapping_rem(b) as u64);
                }
                Insn::CmpReg { a, b } => {
                    let (x, y) = (self.regs.get(a), self.regs.get(b));
                    self.regs.flags.set_cmp(x, y);
                }
                Insn::CmpImm { a, imm } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_cmp(x, imm as i64 as u64);
                }
                Insn::Test { a } => {
                    let x = self.regs.get(a);
                    self.regs.flags.set_test(x, x);
                }
                Insn::SetCc { cond, dst } => {
                    let v = self.cond_holds(cond) as u64;
                    self.regs.set(dst, v);
                }
                Insn::LoadAbs { dst, addr: a } => {
                    let v = try_mem!(self.mem.read_u64(a));
                    self.regs.set(dst, v);
                }
                Insn::VLoadAbs { dst, addr: a } => {
                    if a % 32 != 0 {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let mut buf = [0u8; 32];
                    try_mem!(self.mem.read(a, &mut buf));
                    self.regs.set_ymm(dst, buf);
                    self.ymm_dirty = true;
                }
                Insn::Call { target } => {
                    self.charge_avx_transition();
                    self.stats.calls += 1;
                    let ra = addr + insn.len();
                    try_mem!(self.push_word(ra));
                    if let Some(tr) = &mut self.tracer {
                        tr.on_call(addr, target);
                    }
                    jump_to!(target);
                }
                Insn::CallInd { target } => {
                    self.charge_avx_transition();
                    self.stats.calls += 1;
                    let t = self.regs.get(target);
                    let ra = addr + insn.len();
                    try_mem!(self.push_word(ra));
                    if let Some(tr) = &mut self.tracer {
                        tr.on_call(addr, t);
                    }
                    jump_to!(t);
                }
                Insn::CallNative { native } => {
                    self.stats.native_calls += 1;
                    if let Err(f) = self.do_native(native, addr) {
                        fault!(f);
                    }
                    if self.tracer.is_some() {
                        self.trace_native(native);
                    }
                    if self.cfg.break_on_probe
                        && self.natives.get(native as usize) == Some(&NativeKind::StackProbe)
                    {
                        self.pending_resume = Some(idx + 1);
                        return self.finish(ExitStatus::Probed);
                    }
                }
                Insn::Ret => {
                    self.charge_avx_transition();
                    self.stats.rets += 1;
                    let ra = try_mem!(self.pop_word());
                    if let Some(tr) = &mut self.tracer {
                        tr.on_ret(addr);
                    }
                    if ra == EXIT_SENTINEL {
                        let rax = self.regs.get(Gpr::Rax);
                        return self.finish(ExitStatus::Exited(rax as i64));
                    }
                    jump_to!(ra);
                }
                Insn::Jmp { target } => jump_to!(target),
                Insn::JmpInd { target } => {
                    let t = self.regs.get(target);
                    jump_to!(t);
                }
                Insn::Jcc { cond, target } => {
                    if self.cond_holds(cond) {
                        self.stats.cycles +=
                            self.cfg.machine.taken_branch_cost - self.cfg.machine.branch_cost;
                        jump_to!(target);
                    }
                }
                Insn::Nop { .. } => {}
                Insn::Trap => fault!(Fault::BoobyTrap { addr }),
                Insn::VLoad { dst, mem, aligned } => {
                    let a = self.ea(&mem);
                    if aligned && !a.is_multiple_of(32) {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let mut buf = [0u8; 32];
                    try_mem!(self.mem.read(a, &mut buf));
                    self.regs.set_ymm(dst, buf);
                    self.ymm_dirty = true;
                }
                Insn::VStore { mem, src, aligned } => {
                    let a = self.ea(&mem);
                    if aligned && !a.is_multiple_of(32) {
                        fault!(Fault::Misaligned { addr: a, align: 32 });
                    }
                    let buf = self.regs.get_ymm(src);
                    try_mem!(self.mem.write(a, &buf));
                    self.ymm_dirty = true;
                }
                Insn::VZeroUpper => {
                    self.regs.vzeroupper();
                    self.ymm_dirty = false;
                }
                Insn::Halt => {
                    let code = self.regs.get(Gpr::Rdi);
                    return self.finish(ExitStatus::Exited(code as i64));
                }
            }
            idx += 1;
            if idx as usize >= self.insns.len() {
                return self.finish(ExitStatus::Faulted(Fault::InvalidJump {
                    target: addr + insn.len(),
                }));
            }
        }
    }

    #[inline]
    fn charge_avx_transition(&mut self) {
        if self.ymm_dirty {
            self.stats.cycles += self.cfg.machine.avx_transition_penalty;
            self.stats.avx_transitions += 1;
        }
    }

    fn do_native(&mut self, native: u16, probe_pc: VAddr) -> Result<(), Fault> {
        let kind = *self
            .natives
            .get(native as usize)
            .ok_or(Fault::NativeError { native })?;
        match kind {
            NativeKind::Malloc => {
                let size = self.regs.get(Gpr::Rdi);
                let p = self.heap.malloc(&mut self.mem, size).unwrap_or(0);
                self.regs.set(Gpr::Rax, p);
            }
            NativeKind::Free => {
                let p = self.regs.get(Gpr::Rdi);
                self.heap.free(&mut self.mem, p)?;
            }
            NativeKind::Memalign => {
                let align = self.regs.get(Gpr::Rdi);
                let size = self.regs.get(Gpr::Rsi);
                let p = self.heap.memalign(&mut self.mem, align, size).unwrap_or(0);
                self.regs.set(Gpr::Rax, p);
            }
            NativeKind::Mprotect => {
                let addr = self.regs.get(Gpr::Rdi);
                let len = self.regs.get(Gpr::Rsi);
                let bits = self.regs.get(Gpr::Rdx);
                let mut perms = Perms::NONE;
                if bits & 1 != 0 {
                    perms = perms.union(Perms::R);
                }
                if bits & 2 != 0 {
                    perms = perms.union(Perms::W);
                }
                if bits & 4 != 0 {
                    perms = perms.union(Perms::X);
                }
                let rc = if self.mem.protect(addr, len, perms).is_ok() {
                    0u64
                } else {
                    u64::MAX
                };
                self.regs.set(Gpr::Rax, rc);
            }
            NativeKind::PrintI64 => {
                let v = self.regs.get(Gpr::Rdi);
                self.output.push(v as i64);
            }
            NativeKind::PutChar => {
                let v = self.regs.get(Gpr::Rdi) & 0xff;
                self.output.push(v as i64);
            }
            NativeKind::StackProbe => {
                let rsp = self.regs.get(Gpr::Rsp);
                let len = (2 * crate::mem::PAGE_SIZE) as usize;
                let mut buf = vec![0u8; len];
                self.mem.peek(rsp, &mut buf);
                self.probes.push(StackSnapshot {
                    pc: probe_pc,
                    rsp,
                    bytes: buf,
                });
            }
        }
        Ok(())
    }

    /// Records heap telemetry / trace events for a just-executed native
    /// call. Reads only; guest state is untouched.
    fn trace_native(&mut self, native: u16) {
        let Some(&kind) = self.natives.get(native as usize) else {
            return;
        };
        let live = self.heap.in_use();
        let resident = self.mem.resident_pages() as u64;
        let insns = self.stats.instructions;
        let (rax, rdi, rsi, rdx) = (
            self.regs.get(Gpr::Rax),
            self.regs.get(Gpr::Rdi),
            self.regs.get(Gpr::Rsi),
            self.regs.get(Gpr::Rdx),
        );
        let Some(tr) = &mut self.tracer else { return };
        match kind {
            NativeKind::Malloc => tr.on_alloc(rax, rdi, live, resident, insns),
            NativeKind::Memalign => tr.on_alloc(rax, rsi, live, resident, insns),
            NativeKind::Free => tr.on_free(rdi, live, resident, insns),
            NativeKind::Mprotect => {
                let mut perms = Perms::NONE;
                if rdx & 1 != 0 {
                    perms = perms.union(Perms::R);
                }
                if rdx & 2 != 0 {
                    perms = perms.union(Perms::W);
                }
                if rdx & 4 != 0 {
                    perms = perms.union(Perms::X);
                }
                tr.on_protect(rdi, rsi, perms);
            }
            _ => {}
        }
    }

    // --- Attacker primitives (threat model of paper §3) ---------------

    /// Arbitrary-read primitive: permission-checked read of `len` bytes.
    ///
    /// A denied read is what the process would experience as a segfault;
    /// guard-page hits are additionally recorded as detections, which is
    /// the reactive component of R²C.
    pub fn attacker_read(&mut self, addr: VAddr, len: usize) -> Result<Vec<u8>, Fault> {
        let mut buf = vec![0u8; len];
        match self.mem.read(addr, &mut buf) {
            Ok(()) => Ok(buf),
            Err(f) => {
                self.note_fault(&f);
                Err(f)
            }
        }
    }

    /// Arbitrary-read of one 64-bit word.
    pub fn attacker_read_u64(&mut self, addr: VAddr) -> Result<u64, Fault> {
        let b = self.attacker_read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Arbitrary-write primitive (permission-checked).
    pub fn attacker_write(&mut self, addr: VAddr, bytes: &[u8]) -> Result<(), Fault> {
        match self.mem.write(addr, bytes) {
            Ok(()) => Ok(()),
            Err(f) => {
                self.note_fault(&f);
                Err(f)
            }
        }
    }

    /// Arbitrary-write of one 64-bit word.
    pub fn attacker_write_u64(&mut self, addr: VAddr, val: u64) -> Result<(), Fault> {
        self.attacker_write(addr, &val.to_le_bytes())
    }

    /// Leaks a window of the stack, as Malicious Thread Blocking allows
    /// (paper §2.3): returns `words` 64-bit values starting at `addr`.
    pub fn leak_stack(&mut self, addr: VAddr, words: usize) -> Result<Vec<u64>, Fault> {
        let bytes = self.attacker_read(addr, words * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Control-flow hijack: transfers control to `target` (e.g. a gadget
    /// address or function entry) and runs until return/halt/fault. The
    /// return lands on the exit sentinel, modelling an attack payload
    /// that regains control afterwards.
    pub fn hijack(&mut self, target: VAddr) -> RunOutcome {
        self.call(target, &[])
    }

    /// Executes a full ROP chain: writes the gadget addresses to the
    /// stack (last entry is where control goes when the final gadget
    /// returns — the exit sentinel is appended automatically) and
    /// transfers control to the first gadget. Each gadget's terminating
    /// `ret` pops the next entry, exactly like a real chain.
    pub fn hijack_chain(&mut self, gadgets: &[VAddr]) -> RunOutcome {
        assert!(!gadgets.is_empty());
        if let Some(tr) = &mut self.tracer {
            tr.on_activation();
        }
        let mut rsp = self.regs.get(Gpr::Rsp) & !15;
        // Push sentinel first (bottom of chain), then the gadgets in
        // reverse so that gadgets[0] is on top.
        rsp -= 8;
        if let Err(f) = self.mem.write_u64(rsp, EXIT_SENTINEL) {
            return self.finish(ExitStatus::Faulted(f));
        }
        for &g in gadgets[1..].iter().rev() {
            rsp -= 8;
            if let Err(f) = self.mem.write_u64(rsp, g) {
                return self.finish(ExitStatus::Faulted(f));
            }
        }
        self.regs.set(Gpr::Rsp, rsp);
        match self.index_of(gadgets[0]) {
            Some(idx) => self.exec_from(idx),
            None => self.finish(ExitStatus::Faulted(Fault::InvalidJump {
                target: gadgets[0],
            })),
        }
    }

    /// Reads the current stack pointer.
    pub fn rsp(&self) -> VAddr {
        self.regs.get(Gpr::Rsp)
    }

    /// Address-space introspection for evaluation (ground truth, not an
    /// attacker capability): permissions at an address.
    pub fn perms_at(&self, addr: VAddr) -> Option<Perms> {
        self.mem.perms_at(addr)
    }

    /// Decodes the instruction at `addr` *if the attacker can read it*,
    /// modelling direct code disclosure for JIT-ROP. With execute-only
    /// text this fails with a protection fault.
    pub fn attacker_disassemble(&mut self, addr: VAddr) -> Result<Insn, Fault> {
        // Reading one byte is enough to trigger the permission check.
        self.attacker_read(addr, 1)?;
        match self.index_of(addr) {
            Some(i) => Ok(self.insns[i as usize]),
            None => Err(Fault::InvalidJump { target: addr }),
        }
    }

    /// The YMM scratch register reserved for the AVX2 BTRA setup.
    pub fn btra_scratch_ymm() -> Ymm {
        Ymm(15)
    }
}

#[inline]
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Imul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => a.wrapping_shr(b as u32 & 63),
        AluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{SectionLayout, Symbol, SymbolKind};
    use crate::machine::MachineKind;
    use crate::mem::PAGE_SIZE;
    use crate::unwind::UnwindTable;

    /// Hand-assembles an image from instructions laid out contiguously.
    fn asm(insns: Vec<Insn>, natives: Vec<NativeKind>) -> Image {
        let text_base = 0x40_0000u64;
        let mut addrs = Vec::new();
        let mut a = text_base;
        for i in &insns {
            addrs.push(a);
            a += i.len();
        }
        let text_end = a.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        Image {
            insns,
            insn_addrs: addrs,
            layout: SectionLayout {
                text_base,
                text_end,
                data_base: 0x60_0000,
                data_end: 0x60_4000,
                heap_base: 0x10_0000_0000,
                heap_size: 16 * 1024 * 1024,
                stack_top: 0x7fff_ffff_f000,
                stack_size: 1024 * 1024,
            },
            entry: text_base,
            constructors: vec![],
            data_init: vec![],
            xom: true,
            symbols: vec![Symbol {
                name: "main".into(),
                addr: text_base,
                size: 0,
                kind: SymbolKind::Function,
            }],
            natives,
            unwind: UnwindTable::default(),
        }
    }

    fn vm(insns: Vec<Insn>) -> Vm {
        Vm::new(
            &asm(insns, vec![NativeKind::Malloc, NativeKind::PrintI64]),
            VmConfig::new(MachineKind::EpycRome.config()),
        )
    }

    #[test]
    fn mov_and_exit() {
        let mut v = vm(vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 42,
            },
            Insn::Ret,
        ]);
        let out = v.run();
        assert_eq!(out.status, ExitStatus::Exited(42));
        assert_eq!(out.stats.instructions, 2);
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 via a loop: rax = acc, rcx = i.
        let base = 0x40_0000u64;
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0,
            }, // +0, len 5
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 1,
            }, // +5, len 5
            Insn::AluReg {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            }, // +10, len 3
            Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rcx,
                imm: 1,
            }, // +13, len 4
            Insn::CmpImm {
                a: Gpr::Rcx,
                imm: 10,
            }, // +17, len 4
            Insn::Jcc {
                cond: Cond::Le,
                target: base + 10,
            }, // +21
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert_eq!(v.run().status, ExitStatus::Exited(55));
    }

    #[test]
    fn call_and_return() {
        let base = 0x40_0000u64;
        // main: call f (at base+10); ret. f: mov rax, 7; ret.
        let insns = vec![
            Insn::Call { target: base + 6 }, // len 5
            Insn::Ret,                       // +5
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 7,
            }, // +6  <- f
            Insn::Ret,
        ];
        let mut v = vm(insns);
        let out = v.run();
        assert_eq!(out.status, ExitStatus::Exited(7));
        assert_eq!(out.stats.calls, 1);
        assert_eq!(out.stats.rets, 2);
    }

    #[test]
    fn trap_faults_and_detects() {
        let mut v = vm(vec![Insn::Trap]);
        let out = v.run();
        assert!(matches!(
            out.status,
            ExitStatus::Faulted(Fault::BoobyTrap { .. })
        ));
        assert_eq!(v.detections().len(), 1);
    }

    #[test]
    fn invalid_jump_faults() {
        let mut v = vm(vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0xdead,
            },
            Insn::JmpInd { target: Gpr::Rax },
        ]);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::InvalidJump { target: 0xdead })
        ));
    }

    #[test]
    fn native_malloc_gives_heap_pointer() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rdi,
                imm: 128,
            },
            Insn::CallNative { native: 0 },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        let out = v.run();
        let ExitStatus::Exited(p) = out.status else {
            panic!()
        };
        assert!(p as u64 >= 0x10_0000_0000);
        assert_eq!(out.stats.native_calls, 1);
    }

    #[test]
    fn print_output_collected() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rdi,
                imm: 99,
            },
            Insn::CallNative { native: 1 },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        v.run();
        assert_eq!(v.output, vec![99]);
    }

    #[test]
    fn attacker_cannot_read_xom_text() {
        let mut v = vm(vec![Insn::Ret]);
        let err = v.attacker_read(0x40_0000, 8).unwrap_err();
        assert!(matches!(err, Fault::Protection { .. }));
        // XoM read denial is a crash but not a booby-trap detection.
        assert!(v.detections().is_empty());
    }

    #[test]
    fn attacker_disassemble_works_without_xom() {
        let mut img = asm(vec![Insn::Ret], vec![]);
        img.xom = false;
        let mut v = Vm::new(&img, VmConfig::new(MachineKind::EpycRome.config()));
        assert_eq!(v.attacker_disassemble(0x40_0000).unwrap(), Insn::Ret);
    }

    #[test]
    fn guard_page_hit_is_detected() {
        let mut v = vm(vec![Insn::Ret]);
        // Forge a guard page on the heap.
        v.mem.map(0x10_0000_0000, PAGE_SIZE, Perms::NONE);
        assert!(v.attacker_read_u64(0x10_0000_0100).is_err());
        assert_eq!(v.detections().len(), 1);
        assert!(matches!(v.detections()[0], Detection::GuardPage { .. }));
    }

    #[test]
    fn budget_exhaustion() {
        let base = 0x40_0000u64;
        let mut v = Vm::new(
            &asm(vec![Insn::Jmp { target: base }], vec![]),
            VmConfig {
                machine: MachineKind::EpycRome.config(),
                insn_budget: 1000,
                break_on_probe: false,
            },
        );
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::BudgetExhausted)
        ));
    }

    #[test]
    fn vector_roundtrip_through_stack() {
        let insns = vec![
            // Write 32 bytes of pattern into ymm1 via memory.
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0x0102030405060708,
            },
            Insn::Push { src: Gpr::Rax },
            Insn::Push { src: Gpr::Rax },
            Insn::Push { src: Gpr::Rax },
            Insn::Push { src: Gpr::Rax },
            Insn::VLoad {
                dst: Ymm(1),
                mem: MemRef::base(Gpr::Rsp),
                aligned: false,
            },
            Insn::VStore {
                mem: MemRef::base_disp(Gpr::Rsp, -64),
                src: Ymm(1),
                aligned: false,
            },
            Insn::Load {
                dst: Gpr::Rax,
                mem: MemRef::base_disp(Gpr::Rsp, -64),
            },
            Insn::AluImm {
                op: AluOp::Add,
                dst: Gpr::Rsp,
                imm: 32,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert_eq!(v.run().status, ExitStatus::Exited(0x0102030405060708));
    }

    #[test]
    fn vmovdqa_misalignment_faults() {
        let insns = vec![
            // rsp is 16-aligned at entry minus 8; rsp+4 is misaligned.
            Insn::VLoad {
                dst: Ymm(0),
                mem: MemRef::base_disp(Gpr::Rsp, 4),
                aligned: true,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::Misaligned { .. })
        ));
    }

    #[test]
    fn avx_transition_penalty_without_vzeroupper() {
        let base = 0x40_0000u64;
        let f = |with_vzu: bool| {
            let mut insns = vec![Insn::VLoad {
                dst: Ymm(0),
                mem: MemRef::base_disp(Gpr::Rsp, -32),
                aligned: false,
            }];
            if with_vzu {
                insns.push(Insn::VZeroUpper);
            }
            insns.push(Insn::Ret);
            let mut v = Vm::new(
                &asm(insns, vec![]),
                VmConfig::new(MachineKind::EpycRome.config()),
            );
            let _ = base;
            let out = v.run();
            (out.stats.avx_transitions, out.stats.cycles)
        };
        let (trans_no, _) = f(false);
        let (trans_yes, _) = f(true);
        assert_eq!(trans_no, 1);
        assert_eq!(trans_yes, 0);
    }

    #[test]
    fn division_by_zero_faults() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 10,
            },
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 0,
            },
            Insn::Div {
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::DivideByZero { .. })
        ));
    }

    #[test]
    fn stack_overflow_detected() {
        let base = 0x40_0000u64;
        // Infinite recursion.
        let insns = vec![Insn::Call { target: base }];
        let mut v = vm(insns);
        assert!(matches!(
            v.run().status,
            ExitStatus::Faulted(Fault::StackOverflow { .. })
        ));
    }

    #[test]
    fn div_and_rem_semantics() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: (-17i64) as u64,
            },
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 5,
            },
            Insn::Rem {
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            Insn::Ret,
        ];
        let mut v = vm(insns);
        assert_eq!(v.run().status, ExitStatus::Exited(-2));
    }

    #[test]
    fn reset_to_image_matches_fresh_vm() {
        let insns = vec![
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: 7,
            },
            Insn::Ret,
        ];
        let image = asm(insns, vec![NativeKind::Malloc, NativeKind::PrintI64]);
        let cfg = VmConfig::new(MachineKind::EpycRome.config());
        let mut fresh = Vm::new(&image, cfg);
        let fresh_out = fresh.run();

        let mut v = Vm::new(&image, cfg);
        assert_eq!(v.run().status, ExitStatus::Exited(7));
        // Dirty everything a restart must not leak: data writes, faults
        // (an invalid hijack), output, probe snapshots.
        v.mem.poke_u64(0x60_0008, 0xDEAD_BEEF);
        assert!(matches!(
            v.call(0x1234, &[]).status,
            ExitStatus::Faulted(Fault::InvalidJump { .. })
        ));
        v.output.push(99);

        v.reset_to_image();
        assert_eq!(v.mem.peek_u64(0x60_0008), 0);
        assert!(v.detections().is_empty());
        assert!(v.output.is_empty());
        assert!(v.probes.is_empty());
        assert!(!v.paused_at_probe());
        assert_eq!(v.stats().instructions, 0);
        assert_eq!(v.stats().cycles, 0);
        assert_eq!(v.heap.in_use(), 0);
        assert_eq!(v.heap.alloc_count, 0);
        let out = v.run();
        assert_eq!(out.status, fresh_out.status);
        assert_eq!(out.stats, fresh_out.stats);
    }

    #[test]
    fn reset_to_image_restores_unmapped_and_reprotected_pages() {
        let image = asm(vec![Insn::Ret], vec![NativeKind::Malloc]);
        let cfg = VmConfig::new(MachineKind::EpycRome.config());
        let mut v = Vm::new(&image, cfg);
        // Unmap a data page and revoke the stack's write bit; a restart
        // must undo both or the next request faults spuriously.
        v.mem.unmap(0x60_0000, PAGE_SIZE);
        let stack_page = image.layout.stack_top - PAGE_SIZE;
        v.mem.protect(stack_page, PAGE_SIZE, Perms::R).unwrap();
        assert_eq!(v.mem.perms_at(0x60_0000), None);
        v.reset_to_image();
        assert_eq!(v.mem.perms_at(0x60_0000), Some(Perms::RW));
        assert_eq!(v.mem.perms_at(stack_page), Some(Perms::RW));
        assert_eq!(v.run().status, ExitStatus::Exited(0));
    }
}
