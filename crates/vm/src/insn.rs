//! The machine instruction set.
//!
//! Instructions are stored pre-decoded (the text section holds opaque
//! bytes for permission purposes), but every instruction has a realistic
//! *encoded length*, so code addresses, NOP padding, prolog traps and
//! function shuffling move return addresses and gadget locations exactly
//! as they would in a real binary.

pub use crate::regs::{Gpr, Ymm};
use crate::VAddr;

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MemRef {
    /// Base register.
    pub base: Gpr,
    /// Optional scaled index register.
    pub index: Option<(Gpr, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl MemRef {
    /// `[base]`
    pub fn base(base: Gpr) -> MemRef {
        MemRef {
            base,
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Gpr, disp: i32) -> MemRef {
        MemRef {
            base,
            index: None,
            disp,
        }
    }

    /// `[base + index*scale + disp]`
    pub fn full(base: Gpr, index: Gpr, scale: u8, disp: i32) -> MemRef {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        MemRef {
            base,
            index: Some((index, scale)),
            disp,
        }
    }

    fn enc_len(&self) -> u64 {
        // Rough x86-64 ModRM/SIB/disp estimate.
        let mut n = 1; // ModRM
        if self.index.is_some() || self.base == Gpr::Rsp {
            n += 1; // SIB
        }
        if self.disp != 0 {
            n += if (-128..128).contains(&self.disp) {
                1
            } else {
                4
            };
        }
        n
    }
}

impl std::fmt::Display for MemRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((idx, scale)) = self.index {
            write!(f, " + {idx}*{scale}")?;
        }
        if self.disp != 0 {
            write!(
                f,
                " {} {:#x}",
                if self.disp < 0 { '-' } else { '+' },
                self.disp.unsigned_abs()
            )?;
        }
        write!(f, "]")
    }
}

/// ALU operation selector for [`Insn::AluReg`] / [`Insn::AluImm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Imul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

/// Branch condition (after a `cmp a, b`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned above-or-equal.
    Ae,
}

impl Cond {
    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
        }
    }
}

/// One machine instruction.
///
/// The set is a pragmatic subset of x86-64: enough for the code generator
/// (moves, ALU, loads/stores, stack ops, calls/returns, conditional
/// branches) plus the AVX2 subset the optimized BTRA setup sequence of
/// paper §5.1.2 needs (`vmovdqa`/`vmovdqu`/`vzeroupper`) and the trap
/// instruction that implements booby-trap functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Insn {
    /// `mov dst, imm64`
    MovImm {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: u64,
    },
    /// `movabs dst, imm64` — always encoded in the 10-byte form.
    ///
    /// Used for link-time-patched addresses (globals, function
    /// pointers), whose final value must not change the encoded length.
    MovAbs {
        /// Destination register.
        dst: Gpr,
        /// Immediate (patched by the linker for relocated uses).
        imm: u64,
    },
    /// `mov dst, src`
    MovReg {
        /// Destination register.
        dst: Gpr,
        /// Source register.
        src: Gpr,
    },
    /// 64-bit load `mov dst, [mem]`.
    Load {
        /// Destination register.
        dst: Gpr,
        /// Address operand.
        mem: MemRef,
    },
    /// 64-bit store `mov [mem], src`.
    Store {
        /// Address operand.
        mem: MemRef,
        /// Source register.
        src: Gpr,
    },
    /// Store of an immediate `mov qword [mem], imm32` (sign-extended).
    StoreImm {
        /// Address operand.
        mem: MemRef,
        /// Immediate (sign-extended to 64 bits).
        imm: i32,
    },
    /// `lea dst, [mem]`
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address computation.
        mem: MemRef,
    },
    /// `push src`
    Push {
        /// Register whose value is pushed.
        src: Gpr,
    },
    /// Push of a 64-bit immediate.
    ///
    /// Real x86-64 has no `push imm64`; R²C either embeds addresses in
    /// (pairs of) push instructions or reads them from the GOT (paper
    /// §5.1). We model the combined sequence as one instruction with the
    /// combined encoded length and cost.
    PushImm {
        /// The 64-bit immediate (e.g. a BTRA).
        imm: u64,
    },
    /// `pop dst`
    Pop {
        /// Destination register.
        dst: Gpr,
    },
    /// `op dst, src` for [`AluOp`].
    AluReg {
        /// Operation.
        op: AluOp,
        /// Destination (and first source).
        dst: Gpr,
        /// Second source.
        src: Gpr,
    },
    /// `op dst, imm32`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination (and first source).
        dst: Gpr,
        /// Immediate (sign-extended).
        imm: i32,
    },
    /// Signed 64-bit division: `dst = dst / src`, faulting on zero.
    ///
    /// (Modelled as a two-operand instruction rather than the x86
    /// `rax:rdx` convention to keep register allocation simple.)
    Div {
        /// Dividend and destination.
        dst: Gpr,
        /// Divisor.
        src: Gpr,
    },
    /// Signed 64-bit remainder: `dst = dst % src`, faulting on zero.
    Rem {
        /// Dividend and destination.
        dst: Gpr,
        /// Divisor.
        src: Gpr,
    },
    /// `cmp a, b`
    CmpReg {
        /// Left operand.
        a: Gpr,
        /// Right operand.
        b: Gpr,
    },
    /// `cmp a, imm32`
    CmpImm {
        /// Left operand.
        a: Gpr,
        /// Immediate right operand (sign-extended).
        imm: i32,
    },
    /// `test a, a` (used for null checks).
    Test {
        /// Operand tested against itself.
        a: Gpr,
    },
    /// `setcc dst` + zero-extension: dst = 1 if the condition holds.
    SetCc {
        /// Condition to materialize.
        cond: Cond,
        /// Destination register.
        dst: Gpr,
    },
    /// 64-bit load from an absolute address (models RIP-relative
    /// addressing of a data-section object, e.g. the BTDP array
    /// pointer).
    LoadAbs {
        /// Destination register.
        dst: Gpr,
        /// Absolute address (patched by the linker).
        addr: VAddr,
    },
    /// 256-bit aligned vector load from an absolute address (the
    /// `vmovdqa arr, %ymm` of Figure 4, where `arr` is a call-site
    /// specific array in the data section).
    VLoadAbs {
        /// Destination YMM register.
        dst: Ymm,
        /// Absolute address (32-byte aligned; patched by the linker).
        addr: VAddr,
    },
    /// Direct call. Pushes the return address and jumps.
    Call {
        /// Absolute target address (resolved at link/load time).
        target: VAddr,
    },
    /// Indirect call through a register.
    CallInd {
        /// Register holding the target address.
        target: Gpr,
    },
    /// Call of a native (hypercall) function; behaves like a direct call
    /// that returns immediately. Arguments in the System V argument
    /// registers, result in `rax`.
    CallNative {
        /// Index into the image's native-function table.
        native: u16,
    },
    /// `ret`
    Ret,
    /// Direct jump.
    Jmp {
        /// Absolute target address.
        target: VAddr,
    },
    /// Indirect jump through a register.
    JmpInd {
        /// Register holding the target address.
        target: Gpr,
    },
    /// Conditional jump.
    Jcc {
        /// Branch condition.
        cond: Cond,
        /// Absolute target address.
        target: VAddr,
    },
    /// A NOP of the given encoded length (1..=15 bytes), as inserted by
    /// R²C's call-site NOP insertion (paper §4.3).
    Nop {
        /// Encoded length in bytes.
        len: u8,
    },
    /// Trap instruction (`int3`-alike). Executing it raises
    /// [`Fault::BoobyTrap`](crate::fault::Fault::BoobyTrap); R²C places
    /// these in booby-trap functions and in function prologs.
    Trap,
    /// 256-bit vector load `vmovdqa/vmovdqu dst, [mem]`.
    VLoad {
        /// Destination YMM register.
        dst: Ymm,
        /// Address operand.
        mem: MemRef,
        /// True for the aligned form (`vmovdqa`), which faults on a
        /// non-32-byte-aligned address.
        aligned: bool,
    },
    /// 256-bit vector store `vmovdqa/vmovdqu [mem], src`.
    VStore {
        /// Address operand.
        mem: MemRef,
        /// Source YMM register.
        src: Ymm,
        /// True for the aligned form.
        aligned: bool,
    },
    /// `vzeroupper` — zeroes the upper lanes of all YMM registers.
    ///
    /// Omitting this after the AVX2 BTRA setup cost the authors up to 50%
    /// performance (paper §5.1.2); the cost model charges an SSE/AVX
    /// transition penalty to code that mixes dirty upper lanes with
    /// legacy operations.
    VZeroUpper,
    /// Stops the machine with the value in `rdi` as exit status.
    Halt,
}

impl Insn {
    /// The encoded length of the instruction in bytes.
    ///
    /// Lengths approximate typical x86-64 encodings; what matters for the
    /// reproduction is that they are non-uniform, stable, and that NOPs
    /// have their stated length.
    pub fn len(&self) -> u64 {
        match self {
            Insn::MovImm { imm, .. } => {
                if *imm <= u32::MAX as u64 {
                    5
                } else {
                    10
                }
            }
            Insn::MovAbs { .. } => 10,
            Insn::MovReg { .. } => 3,
            Insn::Load { mem, .. } | Insn::Store { mem, .. } => 2 + mem.enc_len(),
            Insn::StoreImm { mem, .. } => 2 + mem.enc_len() + 4,
            Insn::Lea { mem, .. } => 2 + mem.enc_len(),
            Insn::Push { .. } => 2,
            // mov r11, imm64 (10 bytes) + push r11 (2 bytes).
            Insn::PushImm { .. } => 12,
            Insn::Pop { .. } => 2,
            Insn::AluReg { .. } => 3,
            Insn::AluImm { imm, .. } => {
                if (-128..128).contains(imm) {
                    4
                } else {
                    7
                }
            }
            Insn::Div { .. } | Insn::Rem { .. } => 3,
            Insn::CmpReg { .. } => 3,
            Insn::CmpImm { imm, .. } => {
                if (-128..128).contains(imm) {
                    4
                } else {
                    7
                }
            }
            Insn::Test { .. } => 3,
            Insn::SetCc { .. } => 7, // setcc + movzx
            Insn::LoadAbs { .. } => 7,
            Insn::VLoadAbs { .. } => 8,
            Insn::Call { .. } => 5,
            Insn::CallInd { .. } => 3,
            Insn::CallNative { .. } => 5,
            Insn::Ret => 1,
            Insn::Jmp { .. } => 5,
            Insn::JmpInd { .. } => 3,
            Insn::Jcc { .. } => 6,
            Insn::Nop { len } => *len as u64,
            Insn::Trap => 1,
            Insn::VLoad { mem, .. } | Insn::VStore { mem, .. } => 4 + mem.enc_len(),
            Insn::VZeroUpper => 3,
            Insn::Halt => 2,
        }
    }

    /// Always false; instructions occupy at least one byte. Present to
    /// satisfy the `len`-without-`is_empty` lint in spirit.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True for instructions that end a basic block (the emitter never
    /// falls through past one of these into another function).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Ret | Insn::Jmp { .. } | Insn::JmpInd { .. } | Insn::Halt
        )
    }

    /// True for call instructions of any flavor (direct, indirect,
    /// native).
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Insn::Call { .. } | Insn::CallInd { .. } | Insn::CallNative { .. }
        )
    }

    /// The absolute target of a direct control transfer (`call`, `jmp`,
    /// `jcc`), if this is one. Indirect transfers and returns have no
    /// static target.
    pub fn branch_target(&self) -> Option<VAddr> {
        match self {
            Insn::Call { target } | Insn::Jmp { target } | Insn::Jcc { target, .. } => {
                Some(*target)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_lengths_are_exact() {
        for len in 1..=15u8 {
            assert_eq!(Insn::Nop { len }.len(), len as u64);
        }
    }

    #[test]
    fn lengths_are_positive_and_bounded() {
        let insns = [
            Insn::MovImm {
                dst: Gpr::Rax,
                imm: u64::MAX,
            },
            Insn::MovReg {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
            },
            Insn::Push { src: Gpr::Rbp },
            Insn::PushImm { imm: 0x1234 },
            Insn::Call { target: 0x400000 },
            Insn::Ret,
            Insn::Trap,
            Insn::VLoad {
                dst: Ymm(0),
                mem: MemRef::base(Gpr::Rsp),
                aligned: true,
            },
            Insn::VZeroUpper,
        ];
        for i in insns {
            assert!(!i.is_empty() && i.len() <= 16, "{i:?}");
        }
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::B,
            Cond::Ae,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn memref_length_grows_with_displacement() {
        let small = MemRef::base_disp(Gpr::Rax, 8);
        let large = MemRef::base_disp(Gpr::Rax, 4096);
        assert!(
            Insn::Load {
                dst: Gpr::Rcx,
                mem: large
            }
            .len()
                > Insn::Load {
                    dst: Gpr::Rcx,
                    mem: small
                }
                .len()
        );
    }
}
