//! Sparse paged guest memory with R/W/X permissions.
//!
//! Memory is organized in 4 KiB pages, mapped on demand. Every access is
//! permission-checked the way the corresponding hardware access would be:
//! data loads need `R`, stores need `W`, and instruction fetch needs `X`
//! (and *only* `X`, which is what makes execute-only text useful against
//! direct JIT-ROP disclosure). Pages with no permissions at all act as the
//! guard pages backing booby-trapped data pointers: any access faults.

use std::collections::HashMap;

use crate::fault::Fault;
use crate::VAddr;

/// Size of a guest page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Page permission bits.
///
/// A fresh mapping gets whatever the caller asks for; `mprotect` can later
/// revoke or grant bits, exactly like the POSIX call the R²C constructor
/// uses to turn allocated heap pages into guard pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access at all (guard page).
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const R: Perms = Perms(1);
    /// Writable.
    pub const W: Perms = Perms(2);
    /// Executable.
    pub const X: Perms = Perms(4);
    /// Read + write (ordinary data).
    pub const RW: Perms = Perms(1 | 2);
    /// Read + execute (conventional text).
    pub const RX: Perms = Perms(1 | 4);
    /// Execute-only (XoM-protected text).
    pub const XO: Perms = Perms(4);

    /// Returns true if all bits of `other` are present in `self`.
    pub fn allows(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }

    /// True if the page is readable.
    pub fn readable(self) -> bool {
        self.allows(Perms::R)
    }

    /// True if the page is writable.
    pub fn writable(self) -> bool {
        self.allows(Perms::W)
    }

    /// True if the page is executable.
    pub fn executable(self) -> bool {
        self.allows(Perms::X)
    }
}

impl std::fmt::Display for Perms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

struct Page {
    perms: Perms,
    data: Box<[u8; PAGE_SIZE as usize]>,
}

/// Sparse paged memory.
///
/// Tracks the number of resident pages and the high-water mark, which is
/// how the reproduction measures the `maxrss` metric of paper §6.2.5.
pub struct Memory {
    pages: HashMap<u64, Page>,
    /// High-water mark of mapped pages (for maxrss accounting).
    max_pages: usize,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory {
            pages: HashMap::new(),
            max_pages: 0,
        }
    }

    fn page_index(addr: VAddr) -> u64 {
        addr / PAGE_SIZE
    }

    /// Maps `len` bytes starting at `addr` with permissions `perms`,
    /// zero-filling fresh pages. Remapping an existing page only updates
    /// its permissions (contents are preserved).
    pub fn map(&mut self, addr: VAddr, len: u64, perms: Perms) {
        if len == 0 {
            return;
        }
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        for p in first..=last {
            self.pages
                .entry(p)
                .or_insert_with(|| Page {
                    perms,
                    data: Box::new([0u8; PAGE_SIZE as usize]),
                })
                .perms = perms;
        }
        self.max_pages = self.max_pages.max(self.pages.len());
    }

    /// Unmaps every page intersecting `[addr, addr+len)`.
    pub fn unmap(&mut self, addr: VAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        for p in first..=last {
            self.pages.remove(&p);
        }
    }

    /// Changes permissions on already-mapped pages (like `mprotect(2)`).
    ///
    /// Returns an access fault if any page in the range is unmapped.
    pub fn protect(&mut self, addr: VAddr, len: u64, perms: Perms) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        for p in first..=last {
            match self.pages.get_mut(&p) {
                Some(page) => page.perms = perms,
                None => {
                    return Err(Fault::Unmapped {
                        addr: p * PAGE_SIZE,
                    })
                }
            }
        }
        Ok(())
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perms_at(&self, addr: VAddr) -> Option<Perms> {
        self.pages.get(&Self::page_index(addr)).map(|p| p.perms)
    }

    /// True if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        self.pages.contains_key(&Self::page_index(addr))
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// High-water mark of resident pages over the lifetime of this
    /// address space (the `maxrss` analogue).
    pub fn max_resident_pages(&self) -> usize {
        self.max_pages
    }

    fn check(&self, addr: VAddr, len: u64, need: Perms, write: bool) -> Result<(), Fault> {
        debug_assert!(len > 0);
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        for p in first..=last {
            match self.pages.get(&p) {
                None => {
                    return Err(Fault::Unmapped { addr });
                }
                Some(page) => {
                    if !page.perms.allows(need) {
                        return Err(Fault::Protection {
                            addr,
                            perms: page.perms,
                            write,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Permission-checked read of `buf.len()` bytes at `addr`.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::R, false)?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Permission-checked write of `buf` at `addr`.
    pub fn write(&mut self, addr: VAddr, buf: &[u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::W, true)?;
        self.copy_in(addr, buf);
        Ok(())
    }

    /// Permission-checked 64-bit little-endian load.
    pub fn read_u64(&self, addr: VAddr) -> Result<u64, Fault> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Permission-checked 64-bit little-endian store.
    pub fn write_u64(&mut self, addr: VAddr, val: u64) -> Result<(), Fault> {
        self.write(addr, &val.to_le_bytes())
    }

    /// Checks that `addr` may be fetched as code (needs `X`, and *not*
    /// `R`): execute-only mappings pass this check but fail [`read`].
    ///
    /// [`read`]: Memory::read
    pub fn check_exec(&self, addr: VAddr) -> Result<(), Fault> {
        self.check(addr, 1, Perms::X, false)
    }

    /// Writes bytes ignoring permissions. Used by the loader to populate
    /// execute-only text and by the kernel-side of native calls.
    pub fn poke(&mut self, addr: VAddr, buf: &[u8]) {
        if buf.is_empty() {
            return;
        }
        debug_assert!(
            self.check(addr, buf.len() as u64, Perms::NONE, true)
                .is_ok(),
            "poke to unmapped memory at {addr:#x}"
        );
        self.copy_in(addr, buf);
    }

    /// Reads bytes ignoring permissions (debugger / test view; *not*
    /// available to attackers, who must go through [`read`]).
    ///
    /// [`read`]: Memory::read
    pub fn peek(&self, addr: VAddr, buf: &mut [u8]) {
        self.copy_out(addr, buf);
    }

    /// Unchecked 64-bit load for tests and the loader.
    pub fn peek_u64(&self, addr: VAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.peek(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Unchecked 64-bit store for the loader.
    pub fn poke_u64(&mut self, addr: VAddr, val: u64) {
        self.poke(addr, &val.to_le_bytes());
    }

    fn copy_out(&self, mut addr: VAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let page = Self::page_index(addr);
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize - in_page) as usize).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p.data[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
            addr += n as u64;
        }
    }

    fn copy_in(&mut self, mut addr: VAddr, buf: &[u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let page = Self::page_index(addr);
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize - in_page) as usize).min(buf.len() - off);
            let p = self.pages.entry(page).or_insert_with(|| Page {
                perms: Perms::NONE,
                data: Box::new([0u8; PAGE_SIZE as usize]),
            });
            p.data[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            off += n;
            addr += n as u64;
        }
        self.max_pages = self.max_pages.max(self.pages.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 4096, Perms::RW);
        m.write_u64(0x1000, 0xdead_beef).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xdead_beef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::RW);
        let addr = 0x1000 + PAGE_SIZE - 4;
        m.write_u64(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn unmapped_faults() {
        let m = Memory::new();
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 4096, Perms::R);
        assert_eq!(m.read_u64(0x1000).unwrap(), 0);
        assert!(matches!(
            m.write_u64(0x1000, 1),
            Err(Fault::Protection { write: true, .. })
        ));
    }

    #[test]
    fn execute_only_denies_read_but_allows_fetch() {
        let mut m = Memory::new();
        m.map(0x4000, 4096, Perms::XO);
        assert!(matches!(m.read_u64(0x4000), Err(Fault::Protection { .. })));
        assert!(m.check_exec(0x4000).is_ok());
    }

    #[test]
    fn guard_page_denies_everything() {
        let mut m = Memory::new();
        m.map(0x7000, 4096, Perms::RW);
        m.protect(0x7000, 4096, Perms::NONE).unwrap();
        assert!(m.read_u64(0x7000).is_err());
        assert!(m.write_u64(0x7000, 1).is_err());
        assert!(m.check_exec(0x7000).is_err());
    }

    #[test]
    fn protect_unmapped_faults() {
        let mut m = Memory::new();
        assert!(m.protect(0x9000, 4096, Perms::R).is_err());
    }

    #[test]
    fn rss_high_water_mark() {
        let mut m = Memory::new();
        m.map(0x1000, 8 * PAGE_SIZE, Perms::RW);
        assert_eq!(m.resident_pages(), 8);
        m.unmap(0x1000, 4 * PAGE_SIZE);
        assert_eq!(m.resident_pages(), 4);
        assert_eq!(m.max_resident_pages(), 8);
    }

    #[test]
    fn poke_bypasses_permissions() {
        let mut m = Memory::new();
        m.map(0x4000, 4096, Perms::XO);
        m.poke_u64(0x4000, 42);
        assert_eq!(m.peek_u64(0x4000), 42);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::XO.to_string(), "--x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }
}
