//! Sparse paged guest memory with R/W/X permissions.
//!
//! Memory is organized in 4 KiB pages, mapped on demand. Every access is
//! permission-checked the way the corresponding hardware access would be:
//! data loads need `R`, stores need `W`, and instruction fetch needs `X`
//! (and *only* `X`, which is what makes execute-only text useful against
//! direct JIT-ROP disclosure). Pages with no permissions at all act as the
//! guard pages backing booby-trapped data pointers: any access faults.
//!
//! ## Host-side fast paths
//!
//! The observable behaviour (fault semantics, permission checks, byte
//! contents, rss accounting) is independent of the lookup machinery, so
//! the hot paths are free to be aggressive:
//!
//! * page frames live in one contiguous arena (a single [`Vec<u8>`]), so
//!   materializing a page never heap-allocates on its own; the page
//!   table is two-level — a [`HashMap`] of 2 MiB *regions* (keyed with
//!   an FxHash-style multiplicative hasher instead of the
//!   DoS-resistant SipHash default; guest page numbers are not
//!   attacker-controlled hash inputs — the *simulated* attacker
//!   operates on simulated memory, never on host data structures),
//!   each a dense 512-entry array — so a bulk `map`/`unmap`/`protect`
//!   of a multi-megabyte `malloc` costs one hash probe per region and
//!   an array store per page, not a hash insert per page;
//! * page frames are **lazily materialized**: `map` records only the
//!   table entry, and the backing frame is allocated (zeroed) on first
//!   write — reads of never-written pages return zeros without
//!   allocating, so a huge guest `malloc` that is sparsely touched
//!   costs only its table entries;
//! * a software TLB (one last-page entry per access class: read, write,
//!   execute) short-circuits the map for the overwhelmingly common
//!   same-page-as-last-time case. It caches permissions too, which is
//!   sound because every table mutation (`map`, `protect`, `unmap`,
//!   frame materialization) flushes it — revoked permissions are
//!   visible immediately;
//! * `read_u64`/`write_u64` take a whole-word single-page fast path and
//!   only fall back to the byte loop when the access crosses a page
//!   boundary.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::fault::Fault;
use crate::VAddr;

/// FxHash (the rustc hash): a single multiply-xor round per word. Not
/// DoS-resistant, which is fine here — see the module docs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// Size of a guest page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Page permission bits.
///
/// A fresh mapping gets whatever the caller asks for; `mprotect` can later
/// revoke or grant bits, exactly like the POSIX call the R²C constructor
/// uses to turn allocated heap pages into guard pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access at all (guard page).
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const R: Perms = Perms(1);
    /// Writable.
    pub const W: Perms = Perms(2);
    /// Executable.
    pub const X: Perms = Perms(4);
    /// Read + write (ordinary data).
    pub const RW: Perms = Perms(1 | 2);
    /// Read + execute (conventional text).
    pub const RX: Perms = Perms(1 | 4);
    /// Execute-only (XoM-protected text).
    pub const XO: Perms = Perms(4);

    /// Returns true if all bits of `other` are present in `self`.
    pub fn allows(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }

    /// True if the page is readable.
    pub fn readable(self) -> bool {
        self.allows(Perms::R)
    }

    /// True if the page is writable.
    pub fn writable(self) -> bool {
        self.allows(Perms::W)
    }

    /// True if the page is executable.
    pub fn executable(self) -> bool {
        self.allows(Perms::X)
    }
}

impl std::fmt::Display for Perms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

/// Access classes with a dedicated TLB entry each.
#[derive(Clone, Copy)]
enum AccessClass {
    Read = 0,
    Write = 1,
    Exec = 2,
}

/// Frame-slot sentinel: the page is mapped but its backing frame has
/// not been materialized yet, so its contents are all-zero.
const NO_FRAME: u32 = u32::MAX;

/// Table entry for one page.
#[derive(Clone, Copy)]
struct PageEntry {
    perms: Perms,
    /// False for the dense-array slots of a region whose page was never
    /// mapped (or was unmapped): the entry is a hole, not a mapping.
    mapped: bool,
    /// Frame arena slot, or [`NO_FRAME`] while the page has never been
    /// written.
    slot: u32,
}

const UNMAPPED_ENTRY: PageEntry = PageEntry {
    perms: Perms::NONE,
    mapped: false,
    slot: NO_FRAME,
};

/// Pages per second-level table: 512 pages = 2 MiB of guest address
/// space per region.
const REGION_BITS: u64 = 9;
const REGION_PAGES: usize = 1 << REGION_BITS;
const REGION_MASK: u64 = REGION_PAGES as u64 - 1;

/// Second-level page table: a dense entry array covering one 2 MiB
/// aligned slice of the guest address space, plus a population count
/// so a fully-unmapped region can be dropped from the top-level map.
#[derive(Clone)]
struct Region {
    entries: Box<[PageEntry; REGION_PAGES]>,
    mapped: u32,
}

impl Region {
    fn empty() -> Region {
        Region {
            entries: Box::new([UNMAPPED_ENTRY; REGION_PAGES]),
            mapped: 0,
        }
    }
}

/// One cached page-number → page-entry translation. `page` is
/// `u64::MAX` (an impossible page number for valid 64-bit addresses)
/// when invalid. Caching `perms` is sound because every operation that
/// changes an entry (`map`, `protect`, `unmap`, materialization)
/// flushes the TLB.
#[derive(Clone, Copy)]
struct TlbEntry {
    page: u64,
    slot: u32,
    perms: Perms,
}

const TLB_INVALID: TlbEntry = TlbEntry {
    page: u64::MAX,
    slot: NO_FRAME,
    perms: Perms::NONE,
};

/// Sparse paged memory.
///
/// Tracks the number of resident pages and the high-water mark, which is
/// how the reproduction measures the `maxrss` metric of paper §6.2.5.
pub struct Memory {
    /// Region number (page >> [`REGION_BITS`]) → dense page entries.
    table: HashMap<u64, Region, BuildFxHasher>,
    /// Number of mapped pages across all regions.
    resident: usize,
    /// Contiguous frame arena holding the *materialized* pages only;
    /// slot `i`'s backing bytes are `frames[i * PAGE_SIZE..][..PAGE_SIZE]`.
    /// Mapping allocates nothing here — a frame appears on first write,
    /// so a multi-megabyte guest `malloc` whose pages are never touched
    /// costs only its table entries. Unmapped slots are parked on `free`
    /// and re-zeroed on reuse.
    frames: Vec<u8>,
    free: Vec<u32>,
    /// Per-access-class software TLB. `Cell` so read-only accesses
    /// (`&self`) can refill it; `Memory` stays `Send` (each VM owns its
    /// address space exclusively — the parallel harness never shares
    /// one).
    tlb: [Cell<TlbEntry>; 3],
    /// High-water mark of mapped pages (for maxrss accounting).
    max_pages: usize,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of an address space, captured with
/// [`Memory::snapshot`] and reinstated with [`Memory::restore`].
///
/// This backs fast worker resets ([`Vm::reset_to_image`]): a server
/// fleet that restarts a crashed or booby-trapped worker does not
/// rebuild the image from scratch, it rolls the address space back to
/// the snapshot taken at load time. The snapshot owns its own copy of
/// the page table and frame arena, so it stays valid however the live
/// memory is mutated (including `unmap`).
///
/// [`Vm::reset_to_image`]: crate::Vm::reset_to_image
#[derive(Clone)]
pub struct MemSnapshot {
    table: HashMap<u64, Region, BuildFxHasher>,
    resident: usize,
    frames: Vec<u8>,
    free: Vec<u32>,
    max_pages: usize,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory {
            table: HashMap::default(),
            resident: 0,
            frames: Vec::new(),
            free: Vec::new(),
            tlb: [const { Cell::new(TLB_INVALID) }; 3],
            max_pages: 0,
        }
    }

    /// Creates an address space directly from a snapshot — the moral
    /// equivalent of `Memory::new()` + [`Memory::restore`], used to spin
    /// up a VM from a shared load-time image without re-running the
    /// map-and-poke sequence that produced it.
    pub fn from_snapshot(snap: &MemSnapshot) -> Memory {
        Memory {
            table: snap.table.clone(),
            resident: snap.resident,
            frames: snap.frames.clone(),
            free: snap.free.clone(),
            tlb: [const { Cell::new(TLB_INVALID) }; 3],
            max_pages: snap.max_pages,
        }
    }

    /// Captures the current address space (mappings, permissions, byte
    /// contents, rss high-water mark) for a later [`Memory::restore`].
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            table: self.table.clone(),
            resident: self.resident,
            frames: self.frames.clone(),
            free: self.free.clone(),
            max_pages: self.max_pages,
        }
    }

    /// Rolls the address space back to `snap`, discarding every mapping,
    /// protection change and write performed since the snapshot was
    /// taken. Reuses the live table/arena allocations where possible, so
    /// a restore is a memcpy-scale operation rather than a rebuild.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        self.table.clone_from(&snap.table);
        self.resident = snap.resident;
        self.frames.clone_from(&snap.frames);
        self.free.clone_from(&snap.free);
        self.max_pages = snap.max_pages;
        self.flush_tlb();
    }

    fn page_index(addr: VAddr) -> u64 {
        addr / PAGE_SIZE
    }

    #[inline]
    fn flush_tlb(&self) {
        for e in &self.tlb {
            e.set(TLB_INVALID);
        }
    }

    /// Translates a page number to its table entry, consulting the TLB
    /// entry of `class` first. Fills the entry on a map hit.
    #[inline]
    fn lookup(&self, page: u64, class: AccessClass) -> Option<PageEntry> {
        let e = self.tlb[class as usize].get();
        if e.page == page {
            return Some(PageEntry {
                perms: e.perms,
                mapped: true,
                slot: e.slot,
            });
        }
        let r = self.table.get(&(page >> REGION_BITS))?;
        let pe = r.entries[(page & REGION_MASK) as usize];
        if !pe.mapped {
            return None;
        }
        self.tlb[class as usize].set(TlbEntry {
            page,
            slot: pe.slot,
            perms: pe.perms,
        });
        Some(pe)
    }

    /// Mutable entry of a mapped page, or `None` if unmapped.
    #[inline]
    fn entry_mut(&mut self, page: u64) -> Option<&mut PageEntry> {
        let r = self.table.get_mut(&(page >> REGION_BITS))?;
        let e = &mut r.entries[(page & REGION_MASK) as usize];
        if e.mapped {
            Some(e)
        } else {
            None
        }
    }

    /// Backing bytes of an arena slot.
    #[inline]
    fn frame(&self, slot: u32) -> &[u8] {
        let base = slot as usize * PAGE_SIZE as usize;
        &self.frames[base..base + PAGE_SIZE as usize]
    }

    #[inline]
    fn frame_mut(&mut self, slot: u32) -> &mut [u8] {
        let base = slot as usize * PAGE_SIZE as usize;
        &mut self.frames[base..base + PAGE_SIZE as usize]
    }

    /// Allocates (or reuses) a zeroed frame and attaches it to `page`'s
    /// entry. Flushes the TLB: cached entries still carrying
    /// [`NO_FRAME`] for this page would otherwise go stale.
    fn materialize(&mut self, page: u64) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.frame_mut(s).fill(0);
                s
            }
            None => {
                let s = (self.frames.len() / PAGE_SIZE as usize) as u32;
                self.frames
                    .resize(self.frames.len() + PAGE_SIZE as usize, 0);
                s
            }
        };
        self.entry_mut(page)
            .expect("materialize of unmapped page")
            .slot = slot;
        self.flush_tlb();
        slot
    }

    /// Maps `len` bytes starting at `addr` with permissions `perms`,
    /// zero-filling fresh pages. Remapping an existing page only updates
    /// its permissions (contents are preserved).
    pub fn map(&mut self, addr: VAddr, len: u64, perms: Perms) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let r = self
                .table
                .entry(p >> REGION_BITS)
                .or_insert_with(Region::empty);
            let stop = last.min(p | REGION_MASK);
            while p <= stop {
                let e = &mut r.entries[(p & REGION_MASK) as usize];
                if e.mapped {
                    e.perms = perms;
                } else {
                    *e = PageEntry {
                        perms,
                        mapped: true,
                        slot: NO_FRAME,
                    };
                    r.mapped += 1;
                    self.resident += 1;
                }
                p += 1;
            }
        }
        self.max_pages = self.max_pages.max(self.resident);
    }

    /// Maps only the currently-unmapped pages in `[addr, addr + len)`
    /// with `perms`, leaving already-mapped pages — contents *and*
    /// permissions — untouched. The heap uses this to back fresh
    /// allocations: a neighbouring page the guest already turned into a
    /// guard must stay a guard, and a bulk `malloc` must not pay a
    /// per-page `is_mapped` probe to find that out.
    pub fn map_missing(&mut self, addr: VAddr, len: u64, perms: Perms) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let r = self
                .table
                .entry(p >> REGION_BITS)
                .or_insert_with(Region::empty);
            let stop = last.min(p | REGION_MASK);
            while p <= stop {
                let e = &mut r.entries[(p & REGION_MASK) as usize];
                if !e.mapped {
                    *e = PageEntry {
                        perms,
                        mapped: true,
                        slot: NO_FRAME,
                    };
                    r.mapped += 1;
                    self.resident += 1;
                }
                p += 1;
            }
        }
        self.max_pages = self.max_pages.max(self.resident);
    }

    /// Sets every mapped, accessible (non-`NONE`) page in
    /// `[addr, addr + len)` to no-access, invoking `f` with each such
    /// page number in ascending order. Unmapped holes and pages that
    /// already deny everything (guards, quarantined pages) are skipped.
    /// This is the heap's bulk page-retirement primitive: one TLB flush
    /// and one region probe per 2 MiB, instead of an `is_mapped` +
    /// `perms_at` + `protect` round-trip per page.
    pub fn retire_accessible(&mut self, addr: VAddr, len: u64, mut f: impl FnMut(u64)) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let stop = last.min(p | REGION_MASK);
            if let Some(r) = self.table.get_mut(&(p >> REGION_BITS)) {
                while p <= stop {
                    let e = &mut r.entries[(p & REGION_MASK) as usize];
                    if e.mapped && e.perms != Perms::NONE {
                        e.perms = Perms::NONE;
                        f(p);
                    }
                    p += 1;
                }
            } else {
                p = stop + 1;
            }
        }
    }

    /// Unmaps every page intersecting `[addr, addr+len)`.
    pub fn unmap(&mut self, addr: VAddr, len: u64) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let rkey = p >> REGION_BITS;
            let stop = last.min(p | REGION_MASK);
            if let Some(r) = self.table.get_mut(&rkey) {
                while p <= stop {
                    let e = &mut r.entries[(p & REGION_MASK) as usize];
                    if e.mapped {
                        if e.slot != NO_FRAME {
                            self.free.push(e.slot);
                        }
                        *e = UNMAPPED_ENTRY;
                        r.mapped -= 1;
                        self.resident -= 1;
                    }
                    p += 1;
                }
                if r.mapped == 0 {
                    self.table.remove(&rkey);
                }
            } else {
                p = stop + 1;
            }
        }
    }

    /// Changes permissions on already-mapped pages (like `mprotect(2)`).
    ///
    /// Returns an access fault if any page in the range is unmapped.
    pub fn protect(&mut self, addr: VAddr, len: u64, perms: Perms) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        for p in first..=last {
            match self.entry_mut(p) {
                Some(e) => e.perms = perms,
                None => {
                    return Err(Fault::Unmapped {
                        addr: p * PAGE_SIZE,
                    })
                }
            }
        }
        Ok(())
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perms_at(&self, addr: VAddr) -> Option<Perms> {
        Some(
            self.lookup(Self::page_index(addr), AccessClass::Read)?
                .perms,
        )
    }

    /// True if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        let page = Self::page_index(addr);
        self.table
            .get(&(page >> REGION_BITS))
            .is_some_and(|r| r.entries[(page & REGION_MASK) as usize].mapped)
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// High-water mark of resident pages over the lifetime of this
    /// address space (the `maxrss` analogue).
    pub fn max_resident_pages(&self) -> usize {
        self.max_pages
    }

    /// Mapped pages intersecting `[addr, addr + len)`, as sorted
    /// `(page_number, perms)` pairs. Costs a scan of the whole page
    /// table — diagnostic/reporting use, not a hot path.
    pub fn mapped_pages_in(&self, addr: VAddr, len: u64) -> Vec<(u64, Perms)> {
        if len == 0 {
            return Vec::new();
        }
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut pages: Vec<(u64, Perms)> = Vec::new();
        for (&rkey, r) in &self.table {
            let base = rkey << REGION_BITS;
            if base > last || base + REGION_MASK < first {
                continue;
            }
            for (i, e) in r.entries.iter().enumerate() {
                let p = base + i as u64;
                if e.mapped && p >= first && p <= last {
                    pages.push((p, e.perms));
                }
            }
        }
        pages.sort_unstable_by_key(|&(p, _)| p);
        pages
    }

    /// Number of mapped pages intersecting `[addr, addr + len)`.
    pub fn resident_pages_in(&self, addr: VAddr, len: u64) -> usize {
        self.mapped_pages_in(addr, len).len()
    }

    /// Single-page access check returning the page entry, shared by the
    /// word fast paths. A TLB hit may serve cached permissions — every
    /// mutation of the table flushes the TLB, so a `protect` immediately
    /// invalidates what a stale entry would otherwise allow.
    #[inline]
    fn check_page(
        &self,
        addr: VAddr,
        need: Perms,
        write: bool,
        class: AccessClass,
    ) -> Result<PageEntry, Fault> {
        match self.lookup(Self::page_index(addr), class) {
            None => Err(Fault::Unmapped { addr }),
            Some(e) => {
                if !e.perms.allows(need) {
                    Err(Fault::Protection {
                        addr,
                        perms: e.perms,
                        write,
                    })
                } else {
                    Ok(e)
                }
            }
        }
    }

    fn check(&self, addr: VAddr, len: u64, need: Perms, write: bool) -> Result<(), Fault> {
        debug_assert!(len > 0);
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let class = if write {
            AccessClass::Write
        } else {
            AccessClass::Read
        };
        for p in first..=last {
            match self.lookup(p, class) {
                None => {
                    return Err(Fault::Unmapped { addr });
                }
                Some(e) => {
                    if !e.perms.allows(need) {
                        return Err(Fault::Protection {
                            addr,
                            perms: e.perms,
                            write,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Permission-checked read of `buf.len()` bytes at `addr`.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::R, false)?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Permission-checked write of `buf` at `addr`.
    pub fn write(&mut self, addr: VAddr, buf: &[u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::W, true)?;
        self.copy_in(addr, buf);
        Ok(())
    }

    /// Permission-checked 64-bit little-endian load.
    ///
    /// Whole-word fast path when the access stays within one page; byte
    /// loop only for page-crossing accesses.
    #[inline]
    pub fn read_u64(&self, addr: VAddr) -> Result<u64, Fault> {
        let in_page = (addr % PAGE_SIZE) as usize;
        if in_page <= PAGE_SIZE as usize - 8 {
            let e = self.check_page(addr, Perms::R, false, AccessClass::Read)?;
            if e.slot == NO_FRAME {
                // Mapped but never written: contents are all-zero.
                return Ok(0);
            }
            let word: [u8; 8] = self.frame(e.slot)[in_page..in_page + 8].try_into().unwrap();
            Ok(u64::from_le_bytes(word))
        } else {
            let mut buf = [0u8; 8];
            self.read(addr, &mut buf)?;
            Ok(u64::from_le_bytes(buf))
        }
    }

    /// Permission-checked 64-bit little-endian store.
    ///
    /// Whole-word fast path when the access stays within one page; byte
    /// loop only for page-crossing accesses.
    #[inline]
    pub fn write_u64(&mut self, addr: VAddr, val: u64) -> Result<(), Fault> {
        let in_page = (addr % PAGE_SIZE) as usize;
        if in_page <= PAGE_SIZE as usize - 8 {
            let e = self.check_page(addr, Perms::W, true, AccessClass::Write)?;
            let slot = if e.slot == NO_FRAME {
                self.materialize(Self::page_index(addr))
            } else {
                e.slot
            };
            self.frame_mut(slot)[in_page..in_page + 8].copy_from_slice(&val.to_le_bytes());
            Ok(())
        } else {
            self.write(addr, &val.to_le_bytes())
        }
    }

    /// Checks that `addr` may be fetched as code (needs `X`, and *not*
    /// `R`): execute-only mappings pass this check but fail [`read`].
    ///
    /// [`read`]: Memory::read
    #[inline]
    pub fn check_exec(&self, addr: VAddr) -> Result<(), Fault> {
        self.check_page(addr, Perms::X, false, AccessClass::Exec)
            .map(|_| ())
    }

    /// Writes bytes ignoring permissions. Used by the loader to populate
    /// execute-only text and by the kernel-side of native calls.
    pub fn poke(&mut self, addr: VAddr, buf: &[u8]) {
        if buf.is_empty() {
            return;
        }
        debug_assert!(
            self.check(addr, buf.len() as u64, Perms::NONE, true)
                .is_ok(),
            "poke to unmapped memory at {addr:#x}"
        );
        self.copy_in(addr, buf);
    }

    /// Reads bytes ignoring permissions (debugger / test view; *not*
    /// available to attackers, who must go through [`read`]).
    ///
    /// [`read`]: Memory::read
    pub fn peek(&self, addr: VAddr, buf: &mut [u8]) {
        self.copy_out(addr, buf);
    }

    /// Unchecked 64-bit load for tests and the loader.
    pub fn peek_u64(&self, addr: VAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.peek(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Unchecked 64-bit store for the loader.
    pub fn poke_u64(&mut self, addr: VAddr, val: u64) {
        self.poke(addr, &val.to_le_bytes());
    }

    fn copy_out(&self, mut addr: VAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let page = Self::page_index(addr);
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            match self.lookup(page, AccessClass::Read) {
                Some(e) if e.slot != NO_FRAME => {
                    let data = self.frame(e.slot);
                    buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]);
                }
                // Unmapped or never written: reads as zero either way.
                _ => buf[off..off + n].fill(0),
            }
            off += n;
            addr += n as u64;
        }
    }

    fn copy_in(&mut self, mut addr: VAddr, buf: &[u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let page = Self::page_index(addr);
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let entry = self.lookup(page, AccessClass::Write);
            if entry.is_none() {
                // Demand-map, as the old implementation did for
                // permissionless pokes into fresh pages.
                self.flush_tlb();
                let r = self
                    .table
                    .entry(page >> REGION_BITS)
                    .or_insert_with(Region::empty);
                r.entries[(page & REGION_MASK) as usize] = PageEntry {
                    perms: Perms::NONE,
                    mapped: true,
                    slot: NO_FRAME,
                };
                r.mapped += 1;
                self.resident += 1;
                self.max_pages = self.max_pages.max(self.resident);
            }
            let slot = match entry {
                Some(e) if e.slot != NO_FRAME => Some(e.slot),
                // Never-written page: writing zeros into it is a no-op
                // (it already reads as zero), so loader pokes of
                // zero-initialized data sections materialize nothing.
                _ => {
                    if buf[off..off + n].iter().all(|&b| b == 0) {
                        None
                    } else {
                        Some(self.materialize(page))
                    }
                }
            };
            if let Some(slot) = slot {
                self.frame_mut(slot)[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            }
            off += n;
            addr += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 4096, Perms::RW);
        m.write_u64(0x1000, 0xdead_beef).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xdead_beef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::RW);
        let addr = 0x1000 + PAGE_SIZE - 4;
        m.write_u64(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn unmapped_faults() {
        let m = Memory::new();
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 4096, Perms::R);
        assert_eq!(m.read_u64(0x1000).unwrap(), 0);
        assert!(matches!(
            m.write_u64(0x1000, 1),
            Err(Fault::Protection { write: true, .. })
        ));
    }

    #[test]
    fn execute_only_denies_read_but_allows_fetch() {
        let mut m = Memory::new();
        m.map(0x4000, 4096, Perms::XO);
        assert!(matches!(m.read_u64(0x4000), Err(Fault::Protection { .. })));
        assert!(m.check_exec(0x4000).is_ok());
    }

    #[test]
    fn guard_page_denies_everything() {
        let mut m = Memory::new();
        m.map(0x7000, 4096, Perms::RW);
        m.protect(0x7000, 4096, Perms::NONE).unwrap();
        assert!(m.read_u64(0x7000).is_err());
        assert!(m.write_u64(0x7000, 1).is_err());
        assert!(m.check_exec(0x7000).is_err());
    }

    #[test]
    fn protect_unmapped_faults() {
        let mut m = Memory::new();
        assert!(m.protect(0x9000, 4096, Perms::R).is_err());
    }

    #[test]
    fn rss_high_water_mark() {
        let mut m = Memory::new();
        m.map(0x1000, 8 * PAGE_SIZE, Perms::RW);
        assert_eq!(m.resident_pages(), 8);
        m.unmap(0x1000, 4 * PAGE_SIZE);
        assert_eq!(m.resident_pages(), 4);
        assert_eq!(m.max_resident_pages(), 8);
    }

    #[test]
    fn poke_bypasses_permissions() {
        let mut m = Memory::new();
        m.map(0x4000, 4096, Perms::XO);
        m.poke_u64(0x4000, 42);
        assert_eq!(m.peek_u64(0x4000), 42);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::XO.to_string(), "--x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }

    #[test]
    fn protect_revokes_immediately_after_cached_hit() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RW);
        // Warm the read and write TLB entries.
        m.write_u64(0x1000, 7).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 7);
        m.protect(0x1000, PAGE_SIZE, Perms::NONE).unwrap();
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Protection { .. })));
        assert!(matches!(
            m.write_u64(0x1000, 1),
            Err(Fault::Protection { write: true, .. })
        ));
    }

    #[test]
    fn unmap_invalidates_cached_translation() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RW);
        m.write_u64(0x1000, 42).unwrap();
        m.unmap(0x1000, PAGE_SIZE);
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Unmapped { .. })));
        // Slot reuse must hand back a zeroed page, not the old contents.
        m.map(0x9000, PAGE_SIZE, Perms::RW);
        assert_eq!(m.read_u64(0x9000).unwrap(), 0);
    }

    #[test]
    fn word_fast_path_matches_byte_path_at_page_edges() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::RW);
        for delta in 0..16u64 {
            let addr = 0x1000 + PAGE_SIZE - 8 - delta;
            let val = 0x1111_2222_3333_4444u64.wrapping_add(delta);
            m.write_u64(addr, val).unwrap();
            assert_eq!(m.read_u64(addr).unwrap(), val, "addr {addr:#x}");
            let mut buf = [0u8; 8];
            m.read(addr, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), val, "byte path at {addr:#x}");
        }
    }

    #[test]
    fn fx_hasher_is_deterministic() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(0xdead_bee0);
        assert_ne!(a.finish(), c.finish());
    }
}
