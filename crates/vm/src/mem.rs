//! Sparse paged guest memory with R/W/X permissions.
//!
//! Memory is organized in 4 KiB pages, mapped on demand. Every access is
//! permission-checked the way the corresponding hardware access would be:
//! data loads need `R`, stores need `W`, and instruction fetch needs `X`
//! (and *only* `X`, which is what makes execute-only text useful against
//! direct JIT-ROP disclosure). Pages with no permissions at all act as the
//! guard pages backing booby-trapped data pointers: any access faults.
//!
//! ## Host-side fast paths
//!
//! The observable behaviour (fault semantics, permission checks, byte
//! contents, rss accounting) is independent of the lookup machinery, so
//! the hot paths are free to be aggressive:
//!
//! * page frames live in one contiguous arena (a single [`Vec<u8>`]), so
//!   materializing a page never heap-allocates on its own; the page
//!   table is two-level — a [`HashMap`] of 2 MiB *regions* (keyed with
//!   an FxHash-style multiplicative hasher instead of the
//!   DoS-resistant SipHash default; guest page numbers are not
//!   attacker-controlled hash inputs — the *simulated* attacker
//!   operates on simulated memory, never on host data structures),
//!   each a dense 512-entry array — so a bulk `map`/`unmap`/`protect`
//!   of a multi-megabyte `malloc` costs one hash probe per region and
//!   an array store per page, not a hash insert per page;
//! * page frames are **lazily materialized**: `map` records only the
//!   table entry, and the backing frame is allocated (zeroed) on first
//!   write — reads of never-written pages return zeros without
//!   allocating, so a huge guest `malloc` that is sparsely touched
//!   costs only its table entries;
//! * a software TLB (one last-page entry per access class: read, write,
//!   execute) short-circuits the map for the overwhelmingly common
//!   same-page-as-last-time case. It caches permissions too, which is
//!   sound because every table mutation (`map`, `protect`, `unmap`,
//!   frame materialization) flushes it — revoked permissions are
//!   visible immediately;
//! * `read_u64`/`write_u64` take a whole-word single-page fast path and
//!   only fall back to the byte loop when the access crosses a page
//!   boundary.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::fault::Fault;
use crate::VAddr;

/// FxHash (the rustc hash): a single multiply-xor round per word. Not
/// DoS-resistant, which is fine here — see the module docs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// Size of a guest page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Page permission bits.
///
/// A fresh mapping gets whatever the caller asks for; `mprotect` can later
/// revoke or grant bits, exactly like the POSIX call the R²C constructor
/// uses to turn allocated heap pages into guard pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access at all (guard page).
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const R: Perms = Perms(1);
    /// Writable.
    pub const W: Perms = Perms(2);
    /// Executable.
    pub const X: Perms = Perms(4);
    /// Read + write (ordinary data).
    pub const RW: Perms = Perms(1 | 2);
    /// Read + execute (conventional text).
    pub const RX: Perms = Perms(1 | 4);
    /// Execute-only (XoM-protected text).
    pub const XO: Perms = Perms(4);

    /// Returns true if all bits of `other` are present in `self`.
    pub fn allows(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }

    /// True if the page is readable.
    pub fn readable(self) -> bool {
        self.allows(Perms::R)
    }

    /// True if the page is writable.
    pub fn writable(self) -> bool {
        self.allows(Perms::W)
    }

    /// True if the page is executable.
    pub fn executable(self) -> bool {
        self.allows(Perms::X)
    }
}

impl std::fmt::Display for Perms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

/// Access classes with a dedicated TLB entry each.
#[derive(Clone, Copy)]
enum AccessClass {
    Read = 0,
    Write = 1,
    Exec = 2,
}

/// Frame-slot sentinel: the page is mapped but its backing frame has
/// not been materialized yet, so its contents are all-zero.
const NO_FRAME: u32 = u32::MAX;

/// Frame-slot flag: the frame lives in the *shared* snapshot arena
/// ([`Memory::base`]) rather than this address space's private arena.
/// Shared frames are read-only; the first write to such a page breaks
/// the sharing by copying the frame into a private slot
/// ([`Memory::cow_break`]). Note [`NO_FRAME`] (all ones) also carries
/// this bit, so every slot inspection checks `NO_FRAME` first.
const SHARED_BIT: u32 = 1 << 31;

/// Mask extracting the arena index from a slot (strips [`SHARED_BIT`]).
const SLOT_MASK: u32 = SHARED_BIT - 1;

/// Table entry for one page.
#[derive(Clone, Copy)]
struct PageEntry {
    perms: Perms,
    /// False for the dense-array slots of a region whose page was never
    /// mapped (or was unmapped): the entry is a hole, not a mapping.
    mapped: bool,
    /// Frame arena slot, or [`NO_FRAME`] while the page has never been
    /// written.
    slot: u32,
}

const UNMAPPED_ENTRY: PageEntry = PageEntry {
    perms: Perms::NONE,
    mapped: false,
    slot: NO_FRAME,
};

/// Pages per second-level table: 512 pages = 2 MiB of guest address
/// space per region.
const REGION_BITS: u64 = 9;
const REGION_PAGES: usize = 1 << REGION_BITS;
const REGION_MASK: u64 = REGION_PAGES as u64 - 1;

/// Second-level page table: a dense entry array covering one 2 MiB
/// aligned slice of the guest address space, plus a population count
/// so a fully-unmapped region can be dropped from the top-level map.
#[derive(Clone)]
struct Region {
    entries: Box<[PageEntry; REGION_PAGES]>,
    mapped: u32,
}

impl Region {
    fn empty() -> Region {
        Region {
            entries: Box::new([UNMAPPED_ENTRY; REGION_PAGES]),
            mapped: 0,
        }
    }
}

/// One cached page-number → page-entry translation. `page` is
/// `u64::MAX` (an impossible page number for valid 64-bit addresses)
/// when invalid. Caching `perms` is sound because every operation that
/// changes an entry (`map`, `protect`, `unmap`, materialization)
/// flushes the TLB.
#[derive(Clone, Copy)]
struct TlbEntry {
    page: u64,
    slot: u32,
    perms: Perms,
}

const TLB_INVALID: TlbEntry = TlbEntry {
    page: u64::MAX,
    slot: NO_FRAME,
    perms: Perms::NONE,
};

/// Sparse paged memory.
///
/// Tracks the number of resident pages and the high-water mark, which is
/// how the reproduction measures the `maxrss` metric of paper §6.2.5.
///
/// ## Copy-on-write sharing
///
/// An address space built from a [`MemSnapshot`] shares both layers of
/// state with it instead of deep-copying:
///
/// * **regions** are refcounted (`Arc<Region>`): [`Memory::from_snapshot`]
///   and [`Memory::restore`] clone the top-level map only, bumping one
///   refcount per 2 MiB region, and any mutation of a shared region
///   (`map`, `protect`, `unmap`, materialization) un-shares just that
///   region via `Arc::make_mut`;
/// * **frames** stay in the snapshot's immutable arena ([`Memory::base`]),
///   marked with [`SHARED_BIT`] in their slots. Reads serve straight
///   from the shared arena; the first *write* to a shared page copies
///   its 4 KiB into the private arena ([`Memory::cow_break`]) and
///   repoints the entry.
///
/// Forking or resetting a worker is therefore O(dirty pages), not
/// O(image) — a 1000-worker fleet shares one copy of every untouched
/// text/data/stack page. The software TLB stays coherent across CoW
/// breaks because every table mutation (including a break) flushes it.
/// None of this is guest-visible: fault semantics, byte contents and
/// rss accounting are identical to a deep copy, which
/// [`Memory::from_snapshot_deep`] exists to prove differentially.
pub struct Memory {
    /// Region number (page >> [`REGION_BITS`]) → dense page entries.
    /// Regions are refcounted so a snapshot restore shares them until
    /// first mutation.
    table: HashMap<u64, Arc<Region>, BuildFxHasher>,
    /// Number of mapped pages across all regions.
    resident: usize,
    /// Contiguous *private* frame arena holding pages this address space
    /// owns (freshly materialized or un-shared by a CoW break); slot
    /// `i`'s backing bytes are `frames[i * PAGE_SIZE..][..PAGE_SIZE]`.
    /// Mapping allocates nothing here — a frame appears on first write,
    /// so a multi-megabyte guest `malloc` whose pages are never touched
    /// costs only its table entries. Unmapped slots are parked on `free`
    /// and re-zeroed on reuse.
    frames: Vec<u8>,
    free: Vec<u32>,
    /// The shared, immutable frame arena of the snapshot this address
    /// space was built from (empty for a fresh [`Memory::new`]). Slots
    /// carrying [`SHARED_BIT`] index into it.
    base: Arc<Vec<u8>>,
    /// Per-access-class software TLB. `Cell` so read-only accesses
    /// (`&self`) can refill it; `Memory` stays `Send` (each VM owns its
    /// address space exclusively — the parallel harness never shares
    /// one).
    tlb: [Cell<TlbEntry>; 3],
    /// High-water mark of mapped pages (for maxrss accounting).
    max_pages: usize,
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of an address space, captured with
/// [`Memory::snapshot`] and reinstated with [`Memory::restore`].
///
/// This backs fast worker resets ([`Vm::reset_to_image`]) and forks
/// ([`Vm::fork_from_image`]): a server fleet that restarts a crashed or
/// booby-trapped worker does not rebuild the image from scratch, it
/// rolls the address space back to the snapshot taken at load time.
/// The snapshot owns an immutable, compacted copy of the page table
/// and frame arena, so it stays valid however the live memory is
/// mutated (including `unmap`) — and because both layers are
/// refcounted, reinstating it is O(dirty pages discarded), not
/// O(image): restored memories *share* the snapshot's regions and
/// frames copy-on-write.
///
/// [`Vm::reset_to_image`]: crate::Vm::reset_to_image
/// [`Vm::fork_from_image`]: crate::Vm::fork_from_image
#[derive(Clone)]
pub struct MemSnapshot {
    /// Shared regions; every materialized slot carries [`SHARED_BIT`]
    /// and indexes `arena`.
    table: HashMap<u64, Arc<Region>, BuildFxHasher>,
    resident: usize,
    /// Compacted frame arena holding every materialized page's bytes.
    arena: Arc<Vec<u8>>,
    max_pages: usize,
}

impl MemSnapshot {
    /// Number of mapped pages in the snapshot.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Number of *materialized* pages (pages with actual backing bytes;
    /// the rest read as zero) — the size a deep copy would pay for.
    pub fn materialized_pages(&self) -> usize {
        self.arena.len() / PAGE_SIZE as usize
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory {
            table: HashMap::default(),
            resident: 0,
            frames: Vec::new(),
            free: Vec::new(),
            base: Arc::new(Vec::new()),
            tlb: [const { Cell::new(TLB_INVALID) }; 3],
            max_pages: 0,
        }
    }

    /// Creates an address space directly from a snapshot — the moral
    /// equivalent of `Memory::new()` + [`Memory::restore`], used to spin
    /// up a VM from a shared load-time image without re-running the
    /// map-and-poke sequence that produced it.
    ///
    /// O(regions), not O(image): the new address space shares the
    /// snapshot's regions (refcount bumps) and frame arena (CoW), so a
    /// fleet forking 1000 workers off one image copies no page bytes at
    /// all — each worker pays only for the pages it subsequently
    /// dirties.
    pub fn from_snapshot(snap: &MemSnapshot) -> Memory {
        Memory {
            table: snap.table.clone(),
            resident: snap.resident,
            frames: Vec::new(),
            free: Vec::new(),
            base: Arc::clone(&snap.arena),
            tlb: [const { Cell::new(TLB_INVALID) }; 3],
            max_pages: snap.max_pages,
        }
    }

    /// [`Memory::from_snapshot`] with sharing disabled: every
    /// materialized frame is copied into the private arena up front,
    /// exactly as the pre-CoW implementation did. Kept as the O(image)
    /// reference the differential suites (and the `report_fleet`
    /// fork-cost table) compare the CoW path against — guest-visible
    /// behaviour must be identical.
    pub fn from_snapshot_deep(snap: &MemSnapshot) -> Memory {
        let mut m = Memory::from_snapshot(snap);
        m.unshare_all();
        m
    }

    /// Captures the current address space (mappings, permissions, byte
    /// contents, rss high-water mark) for a later [`Memory::restore`].
    ///
    /// The snapshot compacts every materialized frame — private or
    /// itself shared with an earlier snapshot — into one immutable
    /// arena. O(resident); taken once per image at load time.
    pub fn snapshot(&self) -> MemSnapshot {
        let mut arena: Vec<u8> = Vec::with_capacity(self.frames.len());
        let mut table: HashMap<u64, Arc<Region>, BuildFxHasher> = HashMap::default();
        let mut rkeys: Vec<u64> = self.table.keys().copied().collect();
        rkeys.sort_unstable();
        for rkey in rkeys {
            let r = &self.table[&rkey];
            let mut nr = Region::empty();
            nr.mapped = r.mapped;
            for (i, e) in r.entries.iter().enumerate() {
                if !e.mapped {
                    continue;
                }
                let mut ne = *e;
                if e.slot != NO_FRAME {
                    let idx = (arena.len() / PAGE_SIZE as usize) as u32;
                    arena.extend_from_slice(self.frame(e.slot));
                    ne.slot = idx | SHARED_BIT;
                }
                nr.entries[i] = ne;
            }
            table.insert(rkey, Arc::new(nr));
        }
        MemSnapshot {
            table,
            resident: self.resident,
            arena: Arc::new(arena),
            max_pages: self.max_pages,
        }
    }

    /// Rolls the address space back to `snap`, discarding every mapping,
    /// protection change and write performed since the snapshot was
    /// taken. O(dirty pages): the snapshot's regions and frames are
    /// re-shared (the private arena is kept, emptied, for later CoW
    /// breaks to reuse), so resetting a worker costs what the previous
    /// generation dirtied — independent of image size.
    ///
    /// The rss high-water mark is the one lifetime statistic that
    /// survives: `maxrss` measures the peak over the address space's
    /// whole life, so a long-lived restart-same worker keeps
    /// `max(self, snap)` rather than having its history erased by the
    /// rollback.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        self.table.clone_from(&snap.table);
        self.resident = snap.resident;
        self.frames.clear();
        self.free.clear();
        self.base = Arc::clone(&snap.arena);
        self.max_pages = self.max_pages.max(snap.max_pages);
        self.flush_tlb();
    }

    /// [`Memory::restore`] with sharing disabled (see
    /// [`Memory::from_snapshot_deep`]): the O(image) deep-copy
    /// reference path.
    pub fn restore_deep(&mut self, snap: &MemSnapshot) {
        self.restore(snap);
        self.unshare_all();
    }

    /// Copies every still-shared frame into the private arena and drops
    /// the shared base, turning a CoW address space into a deep copy.
    fn unshare_all(&mut self) {
        let rkeys: Vec<u64> = self.table.keys().copied().collect();
        for rkey in rkeys {
            for i in 0..REGION_PAGES {
                let e = self.table[&rkey].entries[i];
                if e.mapped && e.slot != NO_FRAME && e.slot & SHARED_BIT != 0 {
                    self.cow_break((rkey << REGION_BITS) + i as u64, e.slot);
                }
            }
        }
        self.base = Arc::new(Vec::new());
        self.flush_tlb();
    }

    /// Pages whose backing frame this address space privately owns —
    /// freshly materialized or un-shared by a CoW break since the last
    /// restore. This is the "dirty pages" a CoW fork or reset has
    /// actually paid for, the quantity the O(dirty) claim is measured
    /// on.
    pub fn private_frames(&self) -> usize {
        self.frames.len() / PAGE_SIZE as usize - self.free.len()
    }

    /// Mapped pages whose frame is still shared with the snapshot arena
    /// (reads are served from the shared copy; a write would CoW-break).
    pub fn shared_frames(&self) -> usize {
        self.table
            .values()
            .map(|r| {
                r.entries
                    .iter()
                    .filter(|e| e.mapped && e.slot != NO_FRAME && e.slot & SHARED_BIT != 0)
                    .count()
            })
            .sum()
    }

    fn page_index(addr: VAddr) -> u64 {
        addr / PAGE_SIZE
    }

    #[inline]
    fn flush_tlb(&self) {
        for e in &self.tlb {
            e.set(TLB_INVALID);
        }
    }

    /// Translates a page number to its table entry, consulting the TLB
    /// entry of `class` first. Fills the entry on a map hit.
    #[inline]
    fn lookup(&self, page: u64, class: AccessClass) -> Option<PageEntry> {
        let e = self.tlb[class as usize].get();
        if e.page == page {
            return Some(PageEntry {
                perms: e.perms,
                mapped: true,
                slot: e.slot,
            });
        }
        let r = self.table.get(&(page >> REGION_BITS))?;
        let pe = r.entries[(page & REGION_MASK) as usize];
        if !pe.mapped {
            return None;
        }
        self.tlb[class as usize].set(TlbEntry {
            page,
            slot: pe.slot,
            perms: pe.perms,
        });
        Some(pe)
    }

    /// Mutable entry of a mapped page, or `None` if unmapped. Un-shares
    /// the containing region (`Arc::make_mut`) — any caller is about to
    /// mutate the entry, so the region cannot stay shared with a
    /// snapshot.
    #[inline]
    fn entry_mut(&mut self, page: u64) -> Option<&mut PageEntry> {
        let r = Arc::make_mut(self.table.get_mut(&(page >> REGION_BITS))?);
        let e = &mut r.entries[(page & REGION_MASK) as usize];
        if e.mapped {
            Some(e)
        } else {
            None
        }
    }

    /// Backing bytes of an arena slot — private or shared, dispatched on
    /// [`SHARED_BIT`].
    #[inline]
    fn frame(&self, slot: u32) -> &[u8] {
        let idx = (slot & SLOT_MASK) as usize * PAGE_SIZE as usize;
        if slot & SHARED_BIT != 0 {
            &self.base[idx..idx + PAGE_SIZE as usize]
        } else {
            &self.frames[idx..idx + PAGE_SIZE as usize]
        }
    }

    /// Mutable backing bytes of a *private* arena slot. Shared slots are
    /// immutable; writes route through [`Memory::frame_for_write`],
    /// which breaks the sharing first.
    #[inline]
    fn frame_mut(&mut self, slot: u32) -> &mut [u8] {
        debug_assert!(slot & SHARED_BIT == 0, "frame_mut on shared slot");
        let idx = slot as usize * PAGE_SIZE as usize;
        &mut self.frames[idx..idx + PAGE_SIZE as usize]
    }

    /// Allocates (or reuses) a zeroed slot in the private arena.
    fn alloc_private_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.frame_mut(s).fill(0);
                s
            }
            None => {
                let s = (self.frames.len() / PAGE_SIZE as usize) as u32;
                self.frames
                    .resize(self.frames.len() + PAGE_SIZE as usize, 0);
                s
            }
        }
    }

    /// Allocates (or reuses) a zeroed frame and attaches it to `page`'s
    /// entry. Flushes the TLB: cached entries still carrying
    /// [`NO_FRAME`] for this page would otherwise go stale.
    fn materialize(&mut self, page: u64) -> u32 {
        let slot = self.alloc_private_slot();
        self.entry_mut(page)
            .expect("materialize of unmapped page")
            .slot = slot;
        self.flush_tlb();
        slot
    }

    /// Breaks copy-on-write sharing for `page`: copies its 4 KiB out of
    /// the shared arena into a private slot and repoints the entry.
    /// Flushes the TLB so no access class keeps serving the (read-only)
    /// shared translation after the break.
    fn cow_break(&mut self, page: u64, shared_slot: u32) -> u32 {
        debug_assert!(
            shared_slot != NO_FRAME && shared_slot & SHARED_BIT != 0,
            "cow break of non-shared slot"
        );
        let slot = self.alloc_private_slot();
        let base = Arc::clone(&self.base);
        let idx = (shared_slot & SLOT_MASK) as usize * PAGE_SIZE as usize;
        self.frame_mut(slot)
            .copy_from_slice(&base[idx..idx + PAGE_SIZE as usize]);
        self.entry_mut(page)
            .expect("cow break of unmapped page")
            .slot = slot;
        self.flush_tlb();
        slot
    }

    /// Resolves a page's slot for writing: materializes a never-written
    /// page, CoW-breaks a shared one. Always returns a private slot.
    #[inline]
    fn frame_for_write(&mut self, page: u64, slot: u32) -> u32 {
        if slot == NO_FRAME {
            self.materialize(page)
        } else if slot & SHARED_BIT != 0 {
            self.cow_break(page, slot)
        } else {
            slot
        }
    }

    /// Maps `len` bytes starting at `addr` with permissions `perms`,
    /// zero-filling fresh pages. Remapping an existing page only updates
    /// its permissions (contents are preserved).
    pub fn map(&mut self, addr: VAddr, len: u64, perms: Perms) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let r = Arc::make_mut(
                self.table
                    .entry(p >> REGION_BITS)
                    .or_insert_with(|| Arc::new(Region::empty())),
            );
            let stop = last.min(p | REGION_MASK);
            while p <= stop {
                let e = &mut r.entries[(p & REGION_MASK) as usize];
                if e.mapped {
                    e.perms = perms;
                } else {
                    *e = PageEntry {
                        perms,
                        mapped: true,
                        slot: NO_FRAME,
                    };
                    r.mapped += 1;
                    self.resident += 1;
                }
                p += 1;
            }
        }
        self.max_pages = self.max_pages.max(self.resident);
    }

    /// Maps only the currently-unmapped pages in `[addr, addr + len)`
    /// with `perms`, leaving already-mapped pages — contents *and*
    /// permissions — untouched. The heap uses this to back fresh
    /// allocations: a neighbouring page the guest already turned into a
    /// guard must stay a guard, and a bulk `malloc` must not pay a
    /// per-page `is_mapped` probe to find that out.
    pub fn map_missing(&mut self, addr: VAddr, len: u64, perms: Perms) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let r = Arc::make_mut(
                self.table
                    .entry(p >> REGION_BITS)
                    .or_insert_with(|| Arc::new(Region::empty())),
            );
            let stop = last.min(p | REGION_MASK);
            while p <= stop {
                let e = &mut r.entries[(p & REGION_MASK) as usize];
                if !e.mapped {
                    *e = PageEntry {
                        perms,
                        mapped: true,
                        slot: NO_FRAME,
                    };
                    r.mapped += 1;
                    self.resident += 1;
                }
                p += 1;
            }
        }
        self.max_pages = self.max_pages.max(self.resident);
    }

    /// Sets every mapped, accessible (non-`NONE`) page in
    /// `[addr, addr + len)` to no-access, invoking `f` with each such
    /// page number in ascending order. Unmapped holes and pages that
    /// already deny everything (guards, quarantined pages) are skipped.
    /// This is the heap's bulk page-retirement primitive: one TLB flush
    /// and one region probe per 2 MiB, instead of an `is_mapped` +
    /// `perms_at` + `protect` round-trip per page.
    pub fn retire_accessible(&mut self, addr: VAddr, len: u64, mut f: impl FnMut(u64)) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let stop = last.min(p | REGION_MASK);
            if let Some(r) = self.table.get_mut(&(p >> REGION_BITS)) {
                let r = Arc::make_mut(r);
                while p <= stop {
                    let e = &mut r.entries[(p & REGION_MASK) as usize];
                    if e.mapped && e.perms != Perms::NONE {
                        e.perms = Perms::NONE;
                        f(p);
                    }
                    p += 1;
                }
            } else {
                p = stop + 1;
            }
        }
    }

    /// Unmaps every page intersecting `[addr, addr+len)`.
    pub fn unmap(&mut self, addr: VAddr, len: u64) {
        if len == 0 {
            return;
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut p = first;
        while p <= last {
            let rkey = p >> REGION_BITS;
            let stop = last.min(p | REGION_MASK);
            if let Some(r) = self.table.get_mut(&rkey) {
                let r = Arc::make_mut(r);
                while p <= stop {
                    let e = &mut r.entries[(p & REGION_MASK) as usize];
                    if e.mapped {
                        // Only privately-owned frames return to the free
                        // list; a shared frame stays in the snapshot
                        // arena (other address spaces may map it).
                        if e.slot != NO_FRAME && e.slot & SHARED_BIT == 0 {
                            self.free.push(e.slot);
                        }
                        *e = UNMAPPED_ENTRY;
                        r.mapped -= 1;
                        self.resident -= 1;
                    }
                    p += 1;
                }
                if r.mapped == 0 {
                    self.table.remove(&rkey);
                }
            } else {
                p = stop + 1;
            }
        }
    }

    /// Changes permissions on already-mapped pages (like `mprotect(2)`).
    ///
    /// Returns an access fault if any page in the range is unmapped.
    pub fn protect(&mut self, addr: VAddr, len: u64, perms: Perms) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        self.flush_tlb();
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        for p in first..=last {
            match self.entry_mut(p) {
                Some(e) => e.perms = perms,
                None => {
                    return Err(Fault::Unmapped {
                        addr: p * PAGE_SIZE,
                    })
                }
            }
        }
        Ok(())
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perms_at(&self, addr: VAddr) -> Option<Perms> {
        Some(
            self.lookup(Self::page_index(addr), AccessClass::Read)?
                .perms,
        )
    }

    /// True if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        let page = Self::page_index(addr);
        self.table
            .get(&(page >> REGION_BITS))
            .is_some_and(|r| r.entries[(page & REGION_MASK) as usize].mapped)
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// High-water mark of resident pages over the lifetime of this
    /// address space (the `maxrss` analogue).
    pub fn max_resident_pages(&self) -> usize {
        self.max_pages
    }

    /// Mapped pages intersecting `[addr, addr + len)`, as sorted
    /// `(page_number, perms)` pairs. Costs a scan of the whole page
    /// table — diagnostic/reporting use, not a hot path.
    pub fn mapped_pages_in(&self, addr: VAddr, len: u64) -> Vec<(u64, Perms)> {
        if len == 0 {
            return Vec::new();
        }
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let mut pages: Vec<(u64, Perms)> = Vec::new();
        for (&rkey, r) in &self.table {
            let base = rkey << REGION_BITS;
            if base > last || base + REGION_MASK < first {
                continue;
            }
            for (i, e) in r.entries.iter().enumerate() {
                let p = base + i as u64;
                if e.mapped && p >= first && p <= last {
                    pages.push((p, e.perms));
                }
            }
        }
        pages.sort_unstable_by_key(|&(p, _)| p);
        pages
    }

    /// Number of mapped pages intersecting `[addr, addr + len)`.
    pub fn resident_pages_in(&self, addr: VAddr, len: u64) -> usize {
        self.mapped_pages_in(addr, len).len()
    }

    /// Single-page access check returning the page entry, shared by the
    /// word fast paths. A TLB hit may serve cached permissions — every
    /// mutation of the table flushes the TLB, so a `protect` immediately
    /// invalidates what a stale entry would otherwise allow.
    #[inline]
    fn check_page(
        &self,
        addr: VAddr,
        need: Perms,
        write: bool,
        class: AccessClass,
    ) -> Result<PageEntry, Fault> {
        match self.lookup(Self::page_index(addr), class) {
            None => Err(Fault::Unmapped { addr }),
            Some(e) => {
                if !e.perms.allows(need) {
                    Err(Fault::Protection {
                        addr,
                        perms: e.perms,
                        write,
                    })
                } else {
                    Ok(e)
                }
            }
        }
    }

    fn check(&self, addr: VAddr, len: u64, need: Perms, write: bool) -> Result<(), Fault> {
        debug_assert!(len > 0);
        let first = Self::page_index(addr);
        let last = Self::page_index(addr + len - 1);
        let class = if write {
            AccessClass::Write
        } else {
            AccessClass::Read
        };
        for p in first..=last {
            match self.lookup(p, class) {
                None => {
                    return Err(Fault::Unmapped { addr });
                }
                Some(e) => {
                    if !e.perms.allows(need) {
                        return Err(Fault::Protection {
                            addr,
                            perms: e.perms,
                            write,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Permission-checked read of `buf.len()` bytes at `addr`.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::R, false)?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Permission-checked write of `buf` at `addr`.
    pub fn write(&mut self, addr: VAddr, buf: &[u8]) -> Result<(), Fault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.check(addr, buf.len() as u64, Perms::W, true)?;
        self.copy_in(addr, buf);
        Ok(())
    }

    /// Permission-checked 64-bit little-endian load.
    ///
    /// Whole-word fast path when the access stays within one page; byte
    /// loop only for page-crossing accesses.
    #[inline]
    pub fn read_u64(&self, addr: VAddr) -> Result<u64, Fault> {
        let in_page = (addr % PAGE_SIZE) as usize;
        if in_page <= PAGE_SIZE as usize - 8 {
            let e = self.check_page(addr, Perms::R, false, AccessClass::Read)?;
            if e.slot == NO_FRAME {
                // Mapped but never written: contents are all-zero.
                return Ok(0);
            }
            let word: [u8; 8] = self.frame(e.slot)[in_page..in_page + 8].try_into().unwrap();
            Ok(u64::from_le_bytes(word))
        } else {
            let mut buf = [0u8; 8];
            self.read(addr, &mut buf)?;
            Ok(u64::from_le_bytes(buf))
        }
    }

    /// Permission-checked 64-bit little-endian store.
    ///
    /// Whole-word fast path when the access stays within one page; byte
    /// loop only for page-crossing accesses.
    #[inline]
    pub fn write_u64(&mut self, addr: VAddr, val: u64) -> Result<(), Fault> {
        let in_page = (addr % PAGE_SIZE) as usize;
        if in_page <= PAGE_SIZE as usize - 8 {
            let e = self.check_page(addr, Perms::W, true, AccessClass::Write)?;
            let slot = self.frame_for_write(Self::page_index(addr), e.slot);
            self.frame_mut(slot)[in_page..in_page + 8].copy_from_slice(&val.to_le_bytes());
            Ok(())
        } else {
            self.write(addr, &val.to_le_bytes())
        }
    }

    /// Checks that `addr` may be fetched as code (needs `X`, and *not*
    /// `R`): execute-only mappings pass this check but fail [`read`].
    ///
    /// [`read`]: Memory::read
    #[inline]
    pub fn check_exec(&self, addr: VAddr) -> Result<(), Fault> {
        self.check_page(addr, Perms::X, false, AccessClass::Exec)
            .map(|_| ())
    }

    /// Writes bytes ignoring permissions. Used by the loader to populate
    /// execute-only text and by the kernel-side of native calls.
    pub fn poke(&mut self, addr: VAddr, buf: &[u8]) {
        if buf.is_empty() {
            return;
        }
        debug_assert!(
            self.check(addr, buf.len() as u64, Perms::NONE, true)
                .is_ok(),
            "poke to unmapped memory at {addr:#x}"
        );
        self.copy_in(addr, buf);
    }

    /// Reads bytes ignoring permissions (debugger / test view; *not*
    /// available to attackers, who must go through [`read`]).
    ///
    /// [`read`]: Memory::read
    pub fn peek(&self, addr: VAddr, buf: &mut [u8]) {
        self.copy_out(addr, buf);
    }

    /// Unchecked 64-bit load for tests and the loader.
    pub fn peek_u64(&self, addr: VAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.peek(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Unchecked 64-bit store for the loader.
    pub fn poke_u64(&mut self, addr: VAddr, val: u64) {
        self.poke(addr, &val.to_le_bytes());
    }

    fn copy_out(&self, mut addr: VAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let page = Self::page_index(addr);
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            match self.lookup(page, AccessClass::Read) {
                Some(e) if e.slot != NO_FRAME => {
                    let data = self.frame(e.slot);
                    buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]);
                }
                // Unmapped or never written: reads as zero either way.
                _ => buf[off..off + n].fill(0),
            }
            off += n;
            addr += n as u64;
        }
    }

    fn copy_in(&mut self, mut addr: VAddr, buf: &[u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let page = Self::page_index(addr);
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let entry = self.lookup(page, AccessClass::Write);
            if entry.is_none() {
                // Demand-map, as the old implementation did for
                // permissionless pokes into fresh pages.
                self.flush_tlb();
                let r = Arc::make_mut(
                    self.table
                        .entry(page >> REGION_BITS)
                        .or_insert_with(|| Arc::new(Region::empty())),
                );
                r.entries[(page & REGION_MASK) as usize] = PageEntry {
                    perms: Perms::NONE,
                    mapped: true,
                    slot: NO_FRAME,
                };
                r.mapped += 1;
                self.resident += 1;
                self.max_pages = self.max_pages.max(self.resident);
            }
            let slot = match entry {
                Some(e) if e.slot != NO_FRAME && e.slot & SHARED_BIT == 0 => Some(e.slot),
                // Shared frame: even an all-zero store must break the
                // sharing — the shared copy may hold nonzero bytes.
                Some(e) if e.slot != NO_FRAME => Some(self.cow_break(page, e.slot)),
                // Never-written page: writing zeros into it is a no-op
                // (it already reads as zero), so loader pokes of
                // zero-initialized data sections materialize nothing.
                _ => {
                    if buf[off..off + n].iter().all(|&b| b == 0) {
                        None
                    } else {
                        Some(self.materialize(page))
                    }
                }
            };
            if let Some(slot) = slot {
                self.frame_mut(slot)[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            }
            off += n;
            addr += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 4096, Perms::RW);
        m.write_u64(0x1000, 0xdead_beef).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xdead_beef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::RW);
        let addr = 0x1000 + PAGE_SIZE - 4;
        m.write_u64(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn unmapped_faults() {
        let m = Memory::new();
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 4096, Perms::R);
        assert_eq!(m.read_u64(0x1000).unwrap(), 0);
        assert!(matches!(
            m.write_u64(0x1000, 1),
            Err(Fault::Protection { write: true, .. })
        ));
    }

    #[test]
    fn execute_only_denies_read_but_allows_fetch() {
        let mut m = Memory::new();
        m.map(0x4000, 4096, Perms::XO);
        assert!(matches!(m.read_u64(0x4000), Err(Fault::Protection { .. })));
        assert!(m.check_exec(0x4000).is_ok());
    }

    #[test]
    fn guard_page_denies_everything() {
        let mut m = Memory::new();
        m.map(0x7000, 4096, Perms::RW);
        m.protect(0x7000, 4096, Perms::NONE).unwrap();
        assert!(m.read_u64(0x7000).is_err());
        assert!(m.write_u64(0x7000, 1).is_err());
        assert!(m.check_exec(0x7000).is_err());
    }

    #[test]
    fn protect_unmapped_faults() {
        let mut m = Memory::new();
        assert!(m.protect(0x9000, 4096, Perms::R).is_err());
    }

    #[test]
    fn rss_high_water_mark() {
        let mut m = Memory::new();
        m.map(0x1000, 8 * PAGE_SIZE, Perms::RW);
        assert_eq!(m.resident_pages(), 8);
        m.unmap(0x1000, 4 * PAGE_SIZE);
        assert_eq!(m.resident_pages(), 4);
        assert_eq!(m.max_resident_pages(), 8);
    }

    #[test]
    fn poke_bypasses_permissions() {
        let mut m = Memory::new();
        m.map(0x4000, 4096, Perms::XO);
        m.poke_u64(0x4000, 42);
        assert_eq!(m.peek_u64(0x4000), 42);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::XO.to_string(), "--x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }

    #[test]
    fn protect_revokes_immediately_after_cached_hit() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RW);
        // Warm the read and write TLB entries.
        m.write_u64(0x1000, 7).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 7);
        m.protect(0x1000, PAGE_SIZE, Perms::NONE).unwrap();
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Protection { .. })));
        assert!(matches!(
            m.write_u64(0x1000, 1),
            Err(Fault::Protection { write: true, .. })
        ));
    }

    #[test]
    fn unmap_invalidates_cached_translation() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RW);
        m.write_u64(0x1000, 42).unwrap();
        m.unmap(0x1000, PAGE_SIZE);
        assert!(matches!(m.read_u64(0x1000), Err(Fault::Unmapped { .. })));
        // Slot reuse must hand back a zeroed page, not the old contents.
        m.map(0x9000, PAGE_SIZE, Perms::RW);
        assert_eq!(m.read_u64(0x9000).unwrap(), 0);
    }

    #[test]
    fn word_fast_path_matches_byte_path_at_page_edges() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::RW);
        for delta in 0..16u64 {
            let addr = 0x1000 + PAGE_SIZE - 8 - delta;
            let val = 0x1111_2222_3333_4444u64.wrapping_add(delta);
            m.write_u64(addr, val).unwrap();
            assert_eq!(m.read_u64(addr).unwrap(), val, "addr {addr:#x}");
            let mut buf = [0u8; 8];
            m.read(addr, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), val, "byte path at {addr:#x}");
        }
    }

    /// Builds a small image-like address space: XO text, RW data with
    /// contents, a never-written RW page, and a guard page.
    fn image() -> Memory {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::XO);
        m.poke_u64(0x1000, 0x1111);
        m.map(0x10000, 4 * PAGE_SIZE, Perms::RW);
        m.write_u64(0x10000, 0x2222).unwrap();
        m.write_u64(0x11000, 0x3333).unwrap();
        m.map(0x20000, PAGE_SIZE, Perms::NONE);
        m
    }

    #[test]
    fn cow_fork_copies_no_frames_until_written() {
        let snap = image().snapshot();
        let mut f = Memory::from_snapshot(&snap);
        assert_eq!(f.private_frames(), 0, "fork must not copy any frame");
        assert_eq!(f.shared_frames(), 3);
        assert_eq!(f.read_u64(0x10000).unwrap(), 0x2222);
        assert_eq!(f.private_frames(), 0, "reads must not break sharing");
        f.write_u64(0x10000, 0x9999).unwrap();
        assert_eq!(f.private_frames(), 1, "one write breaks one page");
        assert_eq!(f.shared_frames(), 2);
        assert_eq!(f.read_u64(0x10000).unwrap(), 0x9999);
        // The sibling frame and the snapshot are untouched.
        assert_eq!(f.read_u64(0x11000).unwrap(), 0x3333);
        let g = Memory::from_snapshot(&snap);
        assert_eq!(g.read_u64(0x10000).unwrap(), 0x2222);
    }

    #[test]
    fn cow_write_after_warm_read_tlb_stays_coherent() {
        let snap = image().snapshot();
        let mut f = Memory::from_snapshot(&snap);
        // Warm the read TLB with the shared translation, then write the
        // same page: the cached shared slot must not serve the next read.
        assert_eq!(f.read_u64(0x11000).unwrap(), 0x3333);
        f.write_u64(0x11008, 0x7777).unwrap();
        assert_eq!(f.read_u64(0x11000).unwrap(), 0x3333);
        assert_eq!(f.read_u64(0x11008).unwrap(), 0x7777);
    }

    #[test]
    fn cow_restore_discards_dirty_pages() {
        let mut m = image();
        let snap = m.snapshot();
        m.write_u64(0x10000, 0xdead).unwrap();
        m.unmap(0x11000, PAGE_SIZE);
        m.protect(0x1000, PAGE_SIZE, Perms::RW).unwrap();
        m.restore(&snap);
        assert_eq!(m.private_frames(), 0);
        assert_eq!(m.read_u64(0x10000).unwrap(), 0x2222);
        assert_eq!(m.read_u64(0x11000).unwrap(), 0x3333);
        assert_eq!(m.perms_at(0x1000), Some(Perms::XO));
        assert_eq!(m.resident_pages(), snap.resident_pages());
    }

    #[test]
    fn restore_keeps_lifetime_rss_high_water_mark() {
        let mut m = image();
        let snap = m.snapshot();
        let at_snap = m.max_resident_pages();
        // Map (and touch) well past the snapshot's footprint…
        m.map(0x100000, 32 * PAGE_SIZE, Perms::RW);
        let peak = m.max_resident_pages();
        assert!(peak >= at_snap + 32);
        // …then reset: the lifetime maxrss must survive the rollback.
        m.restore(&snap);
        assert_eq!(m.max_resident_pages(), peak);
        assert_eq!(m.resident_pages(), snap.resident_pages());
    }

    #[test]
    fn deep_copy_matches_cow_per_page() {
        let snap = image().snapshot();
        let cow = Memory::from_snapshot(&snap);
        let deep = Memory::from_snapshot_deep(&snap);
        assert_eq!(deep.private_frames(), 3);
        assert_eq!(deep.shared_frames(), 0);
        for addr in [0x1000u64, 0x10000, 0x11000, 0x12000, 0x20000] {
            assert_eq!(cow.perms_at(addr), deep.perms_at(addr), "{addr:#x}");
            assert_eq!(cow.peek_u64(addr), deep.peek_u64(addr), "{addr:#x}");
        }
        assert_eq!(cow.resident_pages(), deep.resident_pages());
        assert_eq!(cow.max_resident_pages(), deep.max_resident_pages());
    }

    #[test]
    fn unmap_of_shared_page_frees_nothing_private() {
        let snap = image().snapshot();
        let mut f = Memory::from_snapshot(&snap);
        f.unmap(0x10000, PAGE_SIZE);
        assert!(matches!(f.read_u64(0x10000), Err(Fault::Unmapped { .. })));
        assert_eq!(f.free.len(), 0, "shared slot must not enter free list");
        // Remapping the same page hands back zeros, not the image bytes.
        f.map(0x10000, PAGE_SIZE, Perms::RW);
        assert_eq!(f.read_u64(0x10000).unwrap(), 0);
        // The snapshot still serves the original contents.
        assert_eq!(
            Memory::from_snapshot(&snap).read_u64(0x10000).unwrap(),
            0x2222
        );
    }

    #[test]
    fn snapshot_of_cow_memory_compacts_shared_and_private_frames() {
        let snap = image().snapshot();
        let mut f = Memory::from_snapshot(&snap);
        f.write_u64(0x10000, 0x4444).unwrap();
        // Re-snapshot: one private frame, two still-shared frames.
        let snap2 = f.snapshot();
        assert_eq!(snap2.materialized_pages(), 3);
        let g = Memory::from_snapshot(&snap2);
        assert_eq!(g.read_u64(0x10000).unwrap(), 0x4444);
        assert_eq!(g.read_u64(0x11000).unwrap(), 0x3333);
        assert_eq!(g.peek_u64(0x1000), 0x1111);
    }

    #[test]
    fn fx_hasher_is_deterministic() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(0xdead_bee0);
        assert_ne!(a.finish(), c.finish());
    }
}
