//! Register file: 16 general-purpose registers, 16 YMM vector registers,
//! and the condition flags produced by `cmp`/`test`.

/// General-purpose registers, named after their x86-64 counterparts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen registers in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// System V integer argument registers, in order.
    pub const ARGS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

    /// Registers the callee must preserve under the System V ABI.
    pub const CALLEE_SAVED: [Gpr; 5] = [Gpr::Rbx, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

    /// The register's index in encoding order.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register from its encoding index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn from_index(i: usize) -> Gpr {
        Gpr::ALL[i]
    }

    /// The conventional lower-case name (e.g. `"rax"`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        NAMES[self.index()]
    }
}

impl std::fmt::Display for Gpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A YMM vector register (256-bit), used by the AVX2 BTRA setup.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Ymm(pub u8);

impl Ymm {
    /// The register index (0..=15).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Ymm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ymm{}", self.0)
    }
}

/// Condition flags (subset of RFLAGS sufficient for our codegen).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Carry flag (used for unsigned comparisons).
    pub cf: bool,
}

impl Flags {
    /// Sets the flags from a subtraction `a - b`, the way `cmp` does.
    pub fn set_cmp(&mut self, a: u64, b: u64) {
        let (res, borrow) = a.overflowing_sub(b);
        self.zf = res == 0;
        self.sf = (res as i64) < 0;
        self.cf = borrow;
        self.of = ((a ^ b) & (a ^ res)) >> 63 == 1;
    }

    /// Sets the flags from a bitwise AND, the way `test` does.
    pub fn set_test(&mut self, a: u64, b: u64) {
        let res = a & b;
        self.zf = res == 0;
        self.sf = (res as i64) < 0;
        self.cf = false;
        self.of = false;
    }

    /// Sets ZF/SF from an ALU result (OF/CF cleared; sufficient for our
    /// lowered code, which only branches on `cmp`/`test`).
    pub fn set_result(&mut self, res: u64) {
        self.zf = res == 0;
        self.sf = (res as i64) < 0;
        self.cf = false;
        self.of = false;
    }
}

/// The full architectural register state.
#[derive(Clone)]
pub struct RegFile {
    gpr: [u64; 16],
    ymm: [[u8; 32]; 16],
    /// Condition flags.
    pub flags: Flags,
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// All-zero register file.
    pub fn new() -> RegFile {
        RegFile {
            gpr: [0; 16],
            ymm: [[0; 32]; 16],
            flags: Flags::default(),
        }
    }

    /// Reads a general-purpose register.
    #[inline]
    pub fn get(&self, r: Gpr) -> u64 {
        self.gpr[r.index()]
    }

    /// Writes a general-purpose register.
    #[inline]
    pub fn set(&mut self, r: Gpr, v: u64) {
        self.gpr[r.index()] = v;
    }

    /// Reads a YMM register.
    #[inline]
    pub fn get_ymm(&self, r: Ymm) -> [u8; 32] {
        self.ymm[r.index()]
    }

    /// Writes a YMM register.
    #[inline]
    pub fn set_ymm(&mut self, r: Ymm, v: [u8; 32]) {
        self.ymm[r.index()] = v;
    }

    /// Zeroes the upper 128 bits of every YMM register (`vzeroupper`).
    pub fn vzeroupper(&mut self) {
        for reg in &mut self.ymm {
            reg[16..].fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Gpr::from_index(i), *r);
        }
    }

    #[test]
    fn flags_signed_compare() {
        let mut f = Flags::default();
        f.set_cmp(3, 5);
        // 3 < 5 signed: sf != of.
        assert!(f.sf != f.of);
        f.set_cmp(5, 3);
        assert!(f.sf == f.of && !f.zf);
        f.set_cmp(7, 7);
        assert!(f.zf);
    }

    #[test]
    fn flags_signed_overflow() {
        let mut f = Flags::default();
        // i64::MIN - 1 overflows: result is positive but MIN < 1.
        f.set_cmp(i64::MIN as u64, 1);
        assert!(f.sf != f.of, "i64::MIN must compare less than 1");
    }

    #[test]
    fn vzeroupper_clears_high_lanes() {
        let mut r = RegFile::new();
        r.set_ymm(Ymm(3), [0xff; 32]);
        r.vzeroupper();
        let v = r.get_ymm(Ymm(3));
        assert_eq!(&v[..16], &[0xff; 16]);
        assert_eq!(&v[16..], &[0u8; 16]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::Rsp.to_string(), "rsp");
        assert_eq!(Ymm(13).to_string(), "ymm13");
    }
}
