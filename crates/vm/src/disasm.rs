//! Disassembly and image inspection (objdump-style).
//!
//! Formats instructions in an AT&T-inspired syntax and dumps whole
//! images function by function. Useful for debugging diversification
//! passes and for *seeing* what R²C did to a binary — the BTRA windows,
//! NOP sleds, trap runs and shuffled layout are all visible in a dump.

use std::fmt::Write as _;

use crate::image::{Image, SymbolKind};
use crate::insn::{AluOp, Cond, Insn, MemRef};
use crate::VAddr;

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Imul => "imul",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sar => "sar",
    }
}

fn cond_suffix(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "e",
        Cond::Ne => "ne",
        Cond::Lt => "l",
        Cond::Le => "le",
        Cond::Gt => "g",
        Cond::Ge => "ge",
        Cond::B => "b",
        Cond::Ae => "ae",
    }
}

fn mem(m: &MemRef) -> String {
    let mut s = String::new();
    if m.disp != 0 {
        if m.disp < 0 {
            let _ = write!(s, "-{:#x}", m.disp.unsigned_abs());
        } else {
            let _ = write!(s, "{:#x}", m.disp);
        }
    }
    s.push('(');
    let _ = write!(s, "%{}", m.base);
    if let Some((idx, scale)) = m.index {
        let _ = write!(s, ",%{idx},{scale}");
    }
    s.push(')');
    s
}

/// Formats one instruction.
pub fn format_insn(insn: &Insn) -> String {
    match insn {
        Insn::MovImm { dst, imm } => format!("mov    ${imm:#x}, %{dst}"),
        Insn::MovAbs { dst, imm } => format!("movabs ${imm:#x}, %{dst}"),
        Insn::MovReg { dst, src } => format!("mov    %{src}, %{dst}"),
        Insn::Load { dst, mem: m } => format!("mov    {}, %{dst}", mem(m)),
        Insn::Store { mem: m, src } => format!("mov    %{src}, {}", mem(m)),
        Insn::StoreImm { mem: m, imm } => format!("movq   ${imm:#x}, {}", mem(m)),
        Insn::Lea { dst, mem: m } => format!("lea    {}, %{dst}", mem(m)),
        Insn::Push { src } => format!("push   %{src}"),
        Insn::PushImm { imm } => format!("push   ${imm:#x}"),
        Insn::Pop { dst } => format!("pop    %{dst}"),
        Insn::AluReg { op, dst, src } => {
            format!("{:<6} %{src}, %{dst}", alu_mnemonic(*op))
        }
        Insn::AluImm { op, dst, imm } => {
            format!("{:<6} ${imm:#x}, %{dst}", alu_mnemonic(*op))
        }
        Insn::Div { dst, src } => format!("idiv   %{src}, %{dst}"),
        Insn::Rem { dst, src } => format!("irem   %{src}, %{dst}"),
        Insn::CmpReg { a, b } => format!("cmp    %{b}, %{a}"),
        Insn::CmpImm { a, imm } => format!("cmp    ${imm:#x}, %{a}"),
        Insn::Test { a } => format!("test   %{a}, %{a}"),
        Insn::SetCc { cond, dst } => format!("set{:<4} %{dst}", cond_suffix(*cond)),
        Insn::LoadAbs { dst, addr } => format!("mov    {addr:#x}, %{dst}"),
        Insn::VLoadAbs { dst, addr } => format!("vmovdqa {addr:#x}, %{dst}"),
        Insn::Call { target } => format!("call   {target:#x}"),
        Insn::CallInd { target } => format!("call   *%{target}"),
        Insn::CallNative { native } => format!("call   @native{native}"),
        Insn::Ret => "ret".to_string(),
        Insn::Jmp { target } => format!("jmp    {target:#x}"),
        Insn::JmpInd { target } => format!("jmp    *%{target}"),
        Insn::Jcc { cond, target } => format!("j{:<5} {target:#x}", cond_suffix(*cond)),
        Insn::Nop { len } => format!("nop{len}"),
        Insn::Trap => "int3".to_string(),
        Insn::VLoad {
            dst,
            mem: m,
            aligned,
        } => {
            format!(
                "vmovdq{} {}, %{dst}",
                if *aligned { 'a' } else { 'u' },
                mem(m)
            )
        }
        Insn::VStore {
            mem: m,
            src,
            aligned,
        } => {
            format!(
                "vmovdq{} %{src}, {}",
                if *aligned { 'a' } else { 'u' },
                mem(m)
            )
        }
        Insn::VZeroUpper => "vzeroupper".to_string(),
        Insn::Halt => "hlt".to_string(),
    }
}

/// Disassembles one function of an image, with addresses.
pub fn disasm_function(image: &Image, name: &str) -> Option<String> {
    let sym = image.symbol(name)?;
    let mut out = String::new();
    let _ = writeln!(out, "{:#014x} <{}>:", sym.addr, sym.name);
    for (i, &addr) in image.insn_addrs.iter().enumerate() {
        if addr >= sym.addr && addr < sym.addr + sym.size {
            let _ = writeln!(out, "  {addr:#014x}:  {}", format_insn(&image.insns[i]));
        }
    }
    Some(out)
}

/// Dumps the whole image: section map, then every function in layout
/// order (booby traps included, abbreviated).
pub fn dump_image(image: &Image) -> String {
    let mut out = String::new();
    let l = image.layout;
    let _ = writeln!(out, "sections:");
    let _ = writeln!(
        out,
        "  .text  {:#014x}..{:#014x}  {}",
        l.text_base,
        l.text_end,
        if image.xom {
            "--x (execute-only)"
        } else {
            "r-x"
        }
    );
    let _ = writeln!(
        out,
        "  .data  {:#014x}..{:#014x}  rw-",
        l.data_base, l.data_end
    );
    let _ = writeln!(out, "  heap   {:#014x}+{:#x}", l.heap_base, l.heap_size);
    let _ = writeln!(out, "  stack  {:#014x}-{:#x}", l.stack_top, l.stack_size);
    let _ = writeln!(out, "  entry  {:#014x}", image.entry);
    out.push('\n');
    let mut funcs: Vec<_> = image.functions().collect();
    funcs.sort_by_key(|s| s.addr);
    for sym in funcs {
        if sym.kind == SymbolKind::BoobyTrap {
            let _ = writeln!(out, "{:#014x} <{}>: [trap run]", sym.addr, sym.name);
            continue;
        }
        if let Some(text) = disasm_function(image, &sym.name) {
            out.push_str(&text);
            out.push('\n');
        }
    }
    out
}

/// Finds the symbol containing an address, for annotating dumps and
/// backtraces.
pub fn symbolize(image: &Image, addr: VAddr) -> Option<(String, u64)> {
    image
        .symbols
        .iter()
        .filter(|s| addr >= s.addr && addr < s.addr + s.size.max(1))
        .map(|s| (s.name.clone(), addr - s.addr))
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{SectionLayout, Symbol};
    use crate::regs::{Gpr, Ymm};
    use crate::unwind::UnwindTable;

    #[test]
    fn formats_are_stable() {
        assert_eq!(
            format_insn(&Insn::MovImm {
                dst: Gpr::Rax,
                imm: 0x2a
            }),
            "mov    $0x2a, %rax"
        );
        assert_eq!(format_insn(&Insn::Push { src: Gpr::Rbp }), "push   %rbp");
        assert_eq!(format_insn(&Insn::Ret), "ret");
        assert_eq!(format_insn(&Insn::Trap), "int3");
        assert_eq!(
            format_insn(&Insn::VStore {
                mem: MemRef::base_disp(Gpr::Rsp, -0x40),
                src: Ymm(15),
                aligned: false
            }),
            "vmovdqu %ymm15, -0x40(%rsp)"
        );
        assert_eq!(
            format_insn(&Insn::Jcc {
                cond: Cond::Ne,
                target: 0x400123
            }),
            "jne    0x400123"
        );
    }

    #[test]
    fn dump_contains_functions_and_sections() {
        let layout = SectionLayout {
            text_base: 0x40_0000,
            text_end: 0x40_1000,
            data_base: 0x60_0000,
            data_end: 0x60_1000,
            heap_base: 0x10_0000_0000,
            heap_size: 0x10_0000,
            stack_top: 0x7fff_0000_0000,
            stack_size: 0x4_0000,
        };
        let image = Image {
            insns: vec![
                Insn::MovImm {
                    dst: Gpr::Rax,
                    imm: 1,
                },
                Insn::Ret,
            ],
            insn_addrs: vec![0x40_0000, 0x40_0005],
            layout,
            entry: 0x40_0000,
            constructors: vec![],
            data_init: vec![],
            xom: true,
            symbols: vec![Symbol {
                name: "main".into(),
                addr: 0x40_0000,
                size: 6,
                kind: SymbolKind::Function,
            }],
            natives: vec![],
            unwind: UnwindTable::default(),
        };
        let d = dump_image(&image);
        assert!(d.contains("<main>"));
        assert!(d.contains("execute-only"));
        assert!(d.contains("mov    $0x1, %rax"));
        assert_eq!(symbolize(&image, 0x40_0005), Some(("main".into(), 5)));
        assert_eq!(symbolize(&image, 0x50_0000), None);
    }
}
