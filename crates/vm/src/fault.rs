//! Hardware faults and reactive-defense detection events.

use crate::mem::Perms;
use crate::VAddr;

/// A hardware fault raised by the simulated machine.
///
/// Faults terminate execution of the guest, the way a signal without a
/// handler terminates a process. Under R²C, several fault kinds double as
/// *detection events*: hitting a booby trap or a BTDP guard page tells the
/// defender an attack is in progress (paper §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Access to an unmapped page.
    Unmapped {
        /// Faulting address.
        addr: VAddr,
    },
    /// Access violated page permissions (includes reads of execute-only
    /// text and any access to a guard page).
    Protection {
        /// Faulting address.
        addr: VAddr,
        /// Permissions of the page that was hit.
        perms: Perms,
        /// True for a write access, false for a read/fetch.
        write: bool,
    },
    /// Control transferred to an address that is not the start of an
    /// instruction in executable memory.
    InvalidJump {
        /// The bogus target.
        target: VAddr,
    },
    /// A booby-trap instruction was executed (BTRA fired).
    BoobyTrap {
        /// Address of the trap instruction.
        addr: VAddr,
    },
    /// An aligned vector access (`vmovdqa`) hit a misaligned address.
    Misaligned {
        /// The misaligned address.
        addr: VAddr,
        /// Required alignment in bytes.
        align: u64,
    },
    /// Integer division by zero.
    DivideByZero {
        /// Address of the faulting instruction.
        addr: VAddr,
    },
    /// The instruction budget was exhausted (runaway guest).
    BudgetExhausted,
    /// Guest stack overflowed its reservation.
    StackOverflow {
        /// Stack pointer value at overflow.
        rsp: VAddr,
    },
    /// A native (hypercall) function was invoked with invalid arguments.
    NativeError {
        /// Numeric code identifying the native function.
        native: u16,
    },
}

impl Fault {
    /// True if this fault is one a reactive defense would flag as an
    /// attack indicator: booby traps and guard-page hits.
    ///
    /// An `Unmapped` fault is *not* counted: a benign wild pointer can
    /// produce it, and the paper's reactive component is specifically
    /// about booby traps and BTDP guard pages.
    pub fn is_detection(&self) -> bool {
        matches!(
            self,
            Fault::BoobyTrap { .. }
                | Fault::Protection {
                    perms: Perms::NONE,
                    ..
                }
        )
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Unmapped { addr } => write!(f, "segfault: unmapped address {addr:#x}"),
            Fault::Protection { addr, perms, write } => write!(
                f,
                "segfault: {} of {addr:#x} denied (page is {perms})",
                if *write { "write" } else { "read" }
            ),
            Fault::InvalidJump { target } => write!(f, "invalid jump target {target:#x}"),
            Fault::BoobyTrap { addr } => write!(f, "booby trap fired at {addr:#x}"),
            Fault::Misaligned { addr, align } => {
                write!(
                    f,
                    "misaligned access at {addr:#x} (requires {align}-byte alignment)"
                )
            }
            Fault::DivideByZero { addr } => write!(f, "division by zero at {addr:#x}"),
            Fault::BudgetExhausted => write!(f, "instruction budget exhausted"),
            Fault::StackOverflow { rsp } => write!(f, "stack overflow (rsp = {rsp:#x})"),
            Fault::NativeError { native } => write!(f, "native function {native} error"),
        }
    }
}

impl std::error::Error for Fault {}

/// A reactive-defense detection event recorded by the VM monitor.
///
/// The paper argues that dereferencing a BTDP "causes a segmentation
/// fault that can be handled by the program or a monitoring system"
/// (§4.2); this type is that monitoring system's log entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Detection {
    /// A booby-trap function was entered / trap instruction executed.
    BoobyTrap {
        /// Address of the trap.
        addr: VAddr,
    },
    /// A BTDP guard page was touched.
    GuardPage {
        /// Faulting address inside the guard page.
        addr: VAddr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_classification() {
        assert!(Fault::BoobyTrap { addr: 0x40 }.is_detection());
        assert!(Fault::Protection {
            addr: 0x1000,
            perms: Perms::NONE,
            write: false
        }
        .is_detection());
        // Execute-only read denial is a crash, not a booby-trap detection.
        assert!(!Fault::Protection {
            addr: 0x1000,
            perms: Perms::XO,
            write: false
        }
        .is_detection());
        assert!(!Fault::Unmapped { addr: 0x1000 }.is_detection());
    }

    #[test]
    fn display_is_informative() {
        let s = Fault::Misaligned {
            addr: 0x10,
            align: 32,
        }
        .to_string();
        assert!(s.contains("0x10") && s.contains("32"));
    }
}
