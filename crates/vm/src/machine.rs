//! Machine cost models.
//!
//! The paper evaluates on four machines (§6.1): an Intel i9-9900K, an AMD
//! EPYC Rome 7H12, an AMD Threadripper 3970X and an Intel Xeon Platinum
//! 8358. R²C's overhead is dominated by (i) the extra instructions per
//! call site, and (ii) instruction-cache pressure from code growth
//! (§7.1). The cost model therefore charges a per-class base cost for
//! every executed instruction and simulates a set-associative
//! instruction cache whose parameters differ per machine; nothing is
//! benchmark-specific.

use crate::insn::{AluOp, Insn};
use crate::VAddr;

/// Instruction-cache geometry and penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ICacheConfig {
    /// Total size in bytes.
    pub size: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u32,
}

/// One of the paper's four evaluation machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MachineKind {
    /// Intel Core i9-9900K (Coffee Lake, 32 KiB 8-way L1I).
    I9_9900K,
    /// AMD EPYC Rome 7H12 (Zen 2, 32 KiB 8-way L1I).
    EpycRome,
    /// AMD Ryzen Threadripper 3970X (Zen 2, slower DRAM in the paper's
    /// configuration).
    Tr3970X,
    /// Intel Xeon Platinum 8358 (Ice Lake, 48 KiB 8-way L1I, lower
    /// clock).
    Xeon8358,
}

impl MachineKind {
    /// All four machines, in the order used by the Figure 6 report.
    pub const ALL: [MachineKind; 4] = [
        MachineKind::I9_9900K,
        MachineKind::EpycRome,
        MachineKind::Tr3970X,
        MachineKind::Xeon8358,
    ];

    /// Human-readable machine name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::I9_9900K => "i9-9900K",
            MachineKind::EpycRome => "EPYC Rome",
            MachineKind::Tr3970X => "TR 3970X",
            MachineKind::Xeon8358 => "Xeon",
        }
    }

    /// Nominal clock frequency in GHz (paper §6.1), used to convert
    /// simulated cycles into wall-clock time for throughput numbers.
    pub fn freq_ghz(self) -> f64 {
        match self {
            MachineKind::I9_9900K => 3.6,
            MachineKind::EpycRome => 3.2,
            MachineKind::Tr3970X => 3.7,
            MachineKind::Xeon8358 => 2.6,
        }
    }

    /// The cost model for this machine.
    pub fn config(self) -> MachineConfig {
        match self {
            MachineKind::I9_9900K => MachineConfig {
                kind: self,
                icache: ICacheConfig {
                    size: 32 * 1024,
                    ways: 8,
                    line: 64,
                    miss_penalty: 12,
                },
                alu_cost: 3,
                mov_cost: 2,
                load_cost: 5,
                store_cost: 4,
                push_cost: 4,
                push_imm_cost: 10,
                call_cost: 18,
                callind_cost: 32,
                ret_cost: 16,
                branch_cost: 2,
                taken_branch_cost: 4,
                div_cost: 110,
                mul_cost: 9,
                nop_cost: 1,
                vload_cost: 5,
                vstore_cost: 5,
                vzeroupper_cost: 4,
                avx_transition_penalty: 600,
                native_cost: 90,
                decode_per_byte: 0,
            },
            MachineKind::EpycRome => MachineConfig {
                kind: self,
                icache: ICacheConfig {
                    size: 32 * 1024,
                    ways: 8,
                    line: 64,
                    miss_penalty: 14,
                },
                alu_cost: 3,
                mov_cost: 2,
                load_cost: 5,
                store_cost: 4,
                push_cost: 4,
                push_imm_cost: 11,
                call_cost: 20,
                callind_cost: 24,
                ret_cost: 17,
                branch_cost: 2,
                taken_branch_cost: 4,
                div_cost: 110,
                mul_cost: 9,
                nop_cost: 1,
                vload_cost: 6,
                vstore_cost: 6,
                vzeroupper_cost: 4,
                avx_transition_penalty: 600,
                native_cost: 90,
                decode_per_byte: 0,
            },
            MachineKind::Tr3970X => MachineConfig {
                kind: self,
                icache: ICacheConfig {
                    size: 32 * 1024,
                    ways: 8,
                    line: 64,
                    miss_penalty: 15,
                },
                alu_cost: 3,
                mov_cost: 2,
                load_cost: 6,
                store_cost: 4,
                push_cost: 4,
                push_imm_cost: 11,
                call_cost: 20,
                callind_cost: 24,
                ret_cost: 17,
                branch_cost: 2,
                taken_branch_cost: 4,
                div_cost: 110,
                mul_cost: 9,
                nop_cost: 1,
                vload_cost: 6,
                vstore_cost: 6,
                vzeroupper_cost: 4,
                avx_transition_penalty: 600,
                native_cost: 90,
                decode_per_byte: 0,
            },
            MachineKind::Xeon8358 => MachineConfig {
                kind: self,
                icache: ICacheConfig {
                    size: 48 * 1024,
                    ways: 8,
                    line: 64,
                    miss_penalty: 13,
                },
                alu_cost: 3,
                mov_cost: 2,
                load_cost: 6,
                store_cost: 5,
                push_cost: 6,
                push_imm_cost: 14,
                call_cost: 24,
                callind_cost: 34,
                ret_cost: 21,
                branch_cost: 2,
                taken_branch_cost: 6,
                div_cost: 110,
                mul_cost: 9,
                nop_cost: 1,
                vload_cost: 8,
                vstore_cost: 8,
                vzeroupper_cost: 7,
                avx_transition_penalty: 600,
                native_cost: 90,
                decode_per_byte: 0,
            },
        }
    }
}

/// Per-instruction-class cycle costs (scaled ×10 to allow sub-cycle
/// resolution in integer arithmetic) plus cache geometry.
///
/// `PartialEq`/`Hash` cover every cost field: the decoded-program cache
/// (`crate::Vm` bakes these costs into its pre-decoded ops) keys and
/// verifies entries by the full cost model, not just [`MachineKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Which machine this models.
    pub kind: MachineKind,
    /// Instruction-cache parameters.
    pub icache: ICacheConfig,
    /// Cost of simple ALU ops (deci-cycles).
    pub alu_cost: u64,
    /// Cost of register-register moves.
    pub mov_cost: u64,
    /// Cost of a 64-bit load.
    pub load_cost: u64,
    /// Cost of a 64-bit store.
    pub store_cost: u64,
    /// Cost of `push reg` / `pop reg`.
    pub push_cost: u64,
    /// Cost of the immediate-push pseudo-instruction (mov+push).
    pub push_imm_cost: u64,
    /// Cost of `call` (address push + redirect + BTB pressure).
    pub call_cost: u64,
    /// Cost of an indirect `call` through a register (adds indirect
    /// branch prediction pressure; notably worse on the i9 in the
    /// paper's perlbench results).
    pub callind_cost: u64,
    /// Cost of `ret`.
    pub ret_cost: u64,
    /// Cost of a not-taken conditional branch.
    pub branch_cost: u64,
    /// Cost of a taken branch / unconditional jump.
    pub taken_branch_cost: u64,
    /// Cost of 64-bit signed division.
    pub div_cost: u64,
    /// Cost of 64-bit multiplication.
    pub mul_cost: u64,
    /// Cost of a NOP (decode only).
    pub nop_cost: u64,
    /// Cost of a 256-bit vector load.
    pub vload_cost: u64,
    /// Cost of a 256-bit vector store.
    pub vstore_cost: u64,
    /// Cost of `vzeroupper`.
    pub vzeroupper_cost: u64,
    /// One-time penalty charged when a call/ret executes while YMM upper
    /// lanes are dirty (models the SSE/AVX transition stalls that made
    /// the authors' no-`vzeroupper` variant up to 50% slower, §5.1.2).
    pub avx_transition_penalty: u64,
    /// Cost of a native (hypercall) invocation, standing in for a PLT
    /// call into unprotected libc.
    pub native_cost: u64,
    /// Additional decode cost per encoded byte (front-end bandwidth);
    /// this is what makes long instructions and NOP sleds non-free.
    pub decode_per_byte: u64,
}

impl MachineConfig {
    /// Base cost of one instruction in deci-cycles, excluding cache
    /// effects and branch-taken adjustments.
    pub fn base_cost(&self, insn: &Insn) -> u64 {
        let c = match insn {
            Insn::MovImm { .. } | Insn::MovAbs { .. } | Insn::MovReg { .. } | Insn::Lea { .. } => {
                self.mov_cost
            }
            Insn::Load { .. } => self.load_cost,
            Insn::Store { .. } | Insn::StoreImm { .. } => self.store_cost,
            Insn::Push { .. } | Insn::Pop { .. } => self.push_cost,
            Insn::PushImm { .. } => self.push_imm_cost,
            Insn::AluReg { op, .. } | Insn::AluImm { op, .. } => match op {
                AluOp::Imul => self.mul_cost,
                _ => self.alu_cost,
            },
            Insn::Div { .. } | Insn::Rem { .. } => self.div_cost,
            Insn::CmpReg { .. } | Insn::CmpImm { .. } | Insn::Test { .. } | Insn::SetCc { .. } => {
                self.alu_cost
            }
            Insn::LoadAbs { .. } => self.load_cost,
            Insn::VLoadAbs { .. } => self.vload_cost,
            Insn::Call { .. } => self.call_cost,
            Insn::CallInd { .. } => self.callind_cost,
            Insn::CallNative { .. } => self.native_cost,
            Insn::Ret => self.ret_cost,
            Insn::Jmp { .. } | Insn::JmpInd { .. } => self.taken_branch_cost,
            Insn::Jcc { .. } => self.branch_cost,
            Insn::Nop { .. } => self.nop_cost,
            Insn::Trap => self.alu_cost,
            Insn::VLoad { .. } => self.vload_cost,
            Insn::VStore { .. } => self.vstore_cost,
            Insn::VZeroUpper => self.vzeroupper_cost,
            Insn::Halt => self.alu_cost,
        };
        c + self.decode_per_byte * insn.len()
    }
}

/// A set-associative instruction cache with LRU replacement.
///
/// Host-side fast paths (the simulated hit/miss sequence, LRU order and
/// counters are untouched by all of them):
///
/// * tags store the full *line number* instead of `line / sets` — the
///   (set, tag) pair is bijective with the line either way, so hits and
///   evictions are identical, but lookups no longer divide;
/// * power-of-two line sizes and set counts (every built-in machine's
///   line; all but the Xeon's 96 sets) resolve with shift/mask instead
///   of division;
/// * consecutive accesses to the same line — the overwhelmingly common
///   case for straight-line code — short-circuit the set scan: the
///   previous access touched that very slot, so nothing can have
///   evicted it in between. Their bookkeeping is *batched*: a run of
///   `n` same-line hits is recorded as `pending = n` and folded into
///   `clock`/`hits`/the slot's LRU stamp only when the line changes
///   (or counters are read). Each hit in the run would have set the
///   stamp to its own clock value and immediately overwritten it, so
///   folding the run at its final clock value leaves every subsequent
///   LRU decision — and the hit/miss counts — bit-identical;
/// * a tiny direct-mapped side table remembers recently hit
///   `line → slot` translations beyond the last line, so loop bodies
///   spanning a handful of lines resolve without rescanning the set.
///   An entry is a *proof of residency* — a line's slot binding can
///   only break when a miss fills a slot, and every fill clears the
///   whole side table — so serving a hit from it (stamp refresh at the
///   current clock, `hits += 1`) is indistinguishable from the scan
///   finding the same slot.
pub struct ICache {
    cfg: ICacheConfig,
    sets: u32,
    /// `line >> line_shift` when the line size is a power of two.
    line_shift: Option<u32>,
    /// `line & set_mask` when the set count is a power of two.
    set_mask: Option<u64>,
    /// Line number of the most recent access (`u64::MAX` = none).
    last_line: u64,
    /// Slot index (into `tags`/`stamps`) of the most recent access.
    last_slot: u32,
    /// Same-line hits accumulated since the last fold (see the batching
    /// note above): each owes `clock += 1`, `hits += 1` and a final
    /// stamp refresh of `last_slot`.
    pending: u64,
    /// Direct-mapped `line → slot` side table (`AUX_LINES` entries,
    /// indexed by the line's low bits). `u64::MAX` = empty; cleared on
    /// every fill.
    aux_line: [u64; AUX_LINES],
    /// Slots paired with `aux_line`.
    aux_slot: [u32; AUX_LINES],
    /// `tags[set * ways + way]` holds the full line number; `u64::MAX`
    /// means invalid (no valid access has line `u64::MAX`: addresses
    /// are below `2^64 - line`).
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Entries in the [`ICache`] line → slot side table. Eight 64-byte
/// lines cover a 512-byte loop body, enough for the hot kernels.
const AUX_LINES: usize = 8;

impl ICache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: ICacheConfig) -> ICache {
        let sets = cfg.size / (cfg.line * cfg.ways);
        debug_assert!(sets > 0);
        ICache {
            cfg,
            sets,
            line_shift: cfg
                .line
                .is_power_of_two()
                .then(|| cfg.line.trailing_zeros()),
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            last_line: u64::MAX,
            last_slot: 0,
            pending: 0,
            aux_line: [u64::MAX; AUX_LINES],
            aux_slot: [0; AUX_LINES],
            tags: vec![u64::MAX; (sets * cfg.ways) as usize],
            stamps: vec![0; (sets * cfg.ways) as usize],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_size(&self) -> u64 {
        self.cfg.line as u64
    }

    /// Folds the pending same-line run into the real counters and the
    /// slot's LRU stamp. Must run before any set scan or counter read.
    #[inline]
    fn fold_pending(&mut self) {
        if self.pending > 0 {
            self.clock += self.pending;
            self.hits += self.pending;
            self.stamps[self.last_slot as usize] = self.clock;
            self.pending = 0;
        }
    }

    /// Touches the line containing `addr`; returns the miss penalty in
    /// deci-cycles (0 on a hit).
    #[inline]
    pub fn access(&mut self, addr: VAddr) -> u64 {
        let line = match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.line as u64,
        };
        if line == self.last_line {
            self.pending += 1;
            return 0;
        }
        self.line_change(line)
    }

    /// `count` consecutive accesses all falling on `line` (a run
    /// segment from the decoded engine): exactly equivalent to `count`
    /// [`ICache::access`] calls with addresses on that line — the first
    /// access resolves the line, the rest are batched same-line hits.
    /// Returns the summed miss penalty.
    #[inline]
    pub fn access_span(&mut self, line: u64, count: u64) -> u64 {
        debug_assert!(count > 0);
        if line == self.last_line {
            self.pending += count;
            return 0;
        }
        let p = self.line_change(line);
        self.pending += count - 1;
        p
    }

    /// Un-books `count` batched same-line hits that were charged ahead
    /// of instructions that never executed (a fault mid-run). Sound
    /// because pending hits are pure arithmetic — nothing else about
    /// the cache state has observed them yet.
    #[inline]
    pub fn rollback_pending(&mut self, count: u64) {
        debug_assert!(self.pending >= count);
        self.pending -= count;
    }

    /// Line-change path of [`ICache::access`]: side table, then set
    /// scan, then fill.
    fn line_change(&mut self, line: u64) -> u64 {
        // Side-table hit: the binding is proven resident, so this is
        // a plain hit at the known slot — stamp it at this access's
        // clock and make it the new batched line.
        let h = line as usize & (AUX_LINES - 1);
        if self.aux_line[h] == line {
            let slot = self.aux_slot[h];
            self.fold_pending();
            self.clock += 1;
            self.stamps[slot as usize] = self.clock;
            self.hits += 1;
            self.remember_last();
            self.last_line = line;
            self.last_slot = slot;
            return 0;
        }
        self.fold_pending();
        let set = match self.set_mask {
            Some(m) => (line & m) as u32,
            None => (line % self.sets as u64) as u32,
        };
        let base = (set * self.cfg.ways) as usize;
        self.clock += 1;
        let ways = self.cfg.ways as usize;
        // Hit scan first: no LRU bookkeeping needed unless we miss.
        for i in base..base + ways {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                self.hits += 1;
                self.remember_last();
                self.last_line = line;
                self.last_slot = i as u32;
                return 0;
            }
        }
        let mut victim = base;
        let mut victim_stamp = self.stamps[base];
        for i in base + 1..base + ways {
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        self.misses += 1;
        // The fill may have evicted any remembered line (the victim
        // slot could back any entry): drop every residency proof.
        self.aux_line = [u64::MAX; AUX_LINES];
        self.last_line = line;
        self.last_slot = victim as u32;
        self.cfg.miss_penalty as u64 * 10
    }

    /// Demotes the current batched line into the side table (its
    /// residency is proven: `tags[last_slot]` still holds it, since
    /// every fill clears the table and resets `last_*`).
    #[inline]
    fn remember_last(&mut self) {
        if self.last_line != u64::MAX {
            let h = self.last_line as usize & (AUX_LINES - 1);
            self.aux_line[h] = self.last_line;
            self.aux_slot[h] = self.last_slot;
        }
    }

    /// (hits, misses) counters. Same-line hits still pending fold are
    /// included — reading the counters never loses them.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits + self.pending, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;
    use crate::regs::Gpr;

    #[test]
    fn all_machines_have_configs() {
        for m in MachineKind::ALL {
            let c = m.config();
            assert_eq!(c.kind, m);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn icache_hits_after_first_access() {
        let mut ic = ICache::new(MachineKind::EpycRome.config().icache);
        assert!(ic.access(0x40_0000) > 0);
        assert_eq!(ic.access(0x40_0000), 0);
        assert_eq!(ic.access(0x40_003f), 0, "same 64-byte line");
        assert!(ic.access(0x40_0040) > 0, "next line misses");
    }

    #[test]
    fn icache_capacity_eviction() {
        let cfg = ICacheConfig {
            size: 1024,
            ways: 2,
            line: 64,
            miss_penalty: 10,
        };
        let mut ic = ICache::new(cfg);
        // Fill three lines mapping to the same set (sets = 1024/128 = 8).
        let stride = 8 * 64; // lines with the same set index
        ic.access(0);
        ic.access(stride);
        ic.access(2 * stride); // evicts line 0 (LRU)
        assert!(ic.access(0) > 0, "line 0 must have been evicted");
    }

    #[test]
    fn nops_cost_decode_only() {
        // The superscalar-effective model absorbs NOP decoding almost
        // entirely (decode_per_byte is 0); NOPs still cost a uniform
        // front-end slot so sleds are not free.
        let c = MachineKind::I9_9900K.config();
        let short = Insn::Nop { len: 1 };
        let long = Insn::Nop { len: 9 };
        assert!(c.base_cost(&short) >= 1);
        assert!(c.base_cost(&long) >= c.base_cost(&short));
    }

    #[test]
    fn push_imm_costs_more_than_push() {
        let c = MachineKind::EpycRome.config();
        assert!(
            c.base_cost(&Insn::PushImm { imm: 1 }) > c.base_cost(&Insn::Push { src: Gpr::Rax })
        );
    }
}
