//! Stack-depth dataflow.
//!
//! Abstractly interprets every push/pop/`rsp` adjustment over the
//! recovered CFG, checking that all paths agree on the depth at every
//! join, that the depth never goes negative, that every `ret` sees the
//! frame fully torn down, that every call leaves `rsp % 16 == 8` for the
//! callee (the System V contract the lowerer's residue computation
//! exists to uphold), and that the whole profile agrees with the
//! recorded `UnwindPoint` table the attack simulations rely on.

use crate::cfgpass::FnInfo;
use crate::{err_at, CheckError, CheckKind};
use r2c_codegen::CompiledFunc;
use r2c_vm::insn::AluOp;
use r2c_vm::{Gpr, Insn};

/// Net change to the current frame's stack depth.
fn delta(insn: &Insn) -> i64 {
    match insn {
        Insn::Push { .. } | Insn::PushImm { .. } => 8,
        Insn::Pop { .. } => -8,
        Insn::AluImm {
            op: AluOp::Sub,
            dst: Gpr::Rsp,
            imm,
        } => *imm as i64,
        Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rsp,
            imm,
        } => -(*imm as i64),
        // Calls push and pop the return address; net zero for the
        // caller's frame.
        _ => 0,
    }
}

pub(crate) fn check_function(
    fi: usize,
    f: &CompiledFunc,
    info: &FnInfo,
    errs: &mut Vec<CheckError>,
) {
    let n = f.insns.len();
    if n == 0 {
        return;
    }

    // Unwind-table sanity: sorted, anchored at instruction 0, in range.
    if f.unwind.first().map(|u| (u.from, u.depth)) != Some((0, 0)) {
        errs.push(err_at(
            fi,
            &f.name,
            None,
            CheckKind::BadUnwindTable {
                detail: "first entry must be (from 0, depth 0)".to_string(),
            },
        ));
    }
    if f.unwind.windows(2).any(|w| w[1].from < w[0].from) {
        errs.push(err_at(
            fi,
            &f.name,
            None,
            CheckKind::BadUnwindTable {
                detail: "entries not sorted by `from`".to_string(),
            },
        ));
    }
    if let Some(u) = f.unwind.iter().find(|u| u.from > n) {
        errs.push(err_at(
            fi,
            &f.name,
            None,
            CheckKind::BadUnwindTable {
                detail: format!("entry at {} past end of function", u.from),
            },
        ));
    }

    // Recorded depth per instruction: last entry with `from <= i` wins,
    // matching the linker's start==end collapsing.
    let mut recorded = vec![0i64; n];
    {
        let mut k = 0;
        let mut cur = 0;
        for (i, slot) in recorded.iter_mut().enumerate() {
            while k < f.unwind.len() && f.unwind[k].from <= i {
                cur = f.unwind[k].depth;
                k += 1;
            }
            *slot = cur;
        }
    }

    // Forward dataflow: depth flowing *into* each instruction.
    let mut depth: Vec<Option<i64>> = vec![None; n];
    depth[0] = Some(0);
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        let out = depth[i].unwrap() + delta(&f.insns[i]);
        for &s in &info.succs[i] {
            match depth[s] {
                None => {
                    depth[s] = Some(out);
                    work.push(s);
                }
                Some(prev) if prev != out => {
                    errs.push(err_at(
                        fi,
                        &f.name,
                        Some(s),
                        CheckKind::DepthJoinMismatch { a: prev, b: out },
                    ));
                }
                Some(_) => {}
            }
        }
    }

    // Per-instruction checks on reachable code. A single mutation skews
    // every downstream depth, so report only the first unwind
    // disagreement per function.
    let mut unwind_reported = false;
    for (i, insn) in f.insns.iter().enumerate() {
        let Some(d) = depth[i] else { continue };
        if d < 0 {
            errs.push(err_at(
                fi,
                &f.name,
                Some(i),
                CheckKind::StackUnderflow { depth: d },
            ));
            continue;
        }
        if d != recorded[i] && !unwind_reported {
            unwind_reported = true;
            errs.push(err_at(
                fi,
                &f.name,
                Some(i),
                CheckKind::UnwindMismatch {
                    computed: d,
                    recorded: recorded[i],
                },
            ));
        }
        match insn {
            Insn::Ret if d != 0 => {
                errs.push(err_at(
                    fi,
                    &f.name,
                    Some(i),
                    CheckKind::NonzeroDepthAtRet { depth: d },
                ));
            }
            Insn::Call { .. } | Insn::CallInd { .. } | Insn::CallNative { .. } if d % 16 != 8 => {
                errs.push(err_at(
                    fi,
                    &f.name,
                    Some(i),
                    CheckKind::MisalignedCall { depth: d },
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfgpass;
    use r2c_codegen::program::UnwindPoint;
    use r2c_codegen::{FuncKind, Program};

    fn check(insns: Vec<Insn>, unwind: Vec<UnwindPoint>) -> Vec<CheckError> {
        let f = CompiledFunc {
            name: "f".to_string(),
            insns,
            relocs: vec![],
            unwind,
            kind: FuncKind::Normal,
            btra_sites: 0,
            btdp_stores: 0,
        };
        let p = Program {
            funcs: vec![f],
            data: vec![],
            entry: 0,
            ctors: vec![],
            natives: vec![],
            booby_trap_funcs: 0,
        };
        let mut errs = vec![];
        let info = cfgpass::check_function(&p, 0, &p.funcs[0], &mut errs);
        errs.clear(); // only stack findings matter here
        check_function(0, &p.funcs[0], &info, &mut errs);
        errs
    }

    fn base_unwind() -> Vec<UnwindPoint> {
        vec![UnwindPoint { from: 0, depth: 0 }]
    }

    #[test]
    fn balanced_frame_is_clean() {
        let mut unwind = base_unwind();
        unwind.push(UnwindPoint { from: 1, depth: 8 });
        unwind.push(UnwindPoint { from: 2, depth: 0 });
        let errs = check(
            vec![
                Insn::Push { src: Gpr::Rbx },
                Insn::Pop { dst: Gpr::Rbx },
                Insn::Ret,
            ],
            unwind,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn unbalanced_push_flagged() {
        let mut unwind = base_unwind();
        unwind.push(UnwindPoint { from: 1, depth: 8 });
        let errs = check(vec![Insn::Push { src: Gpr::Rbx }, Insn::Ret], unwind);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::NonzeroDepthAtRet { depth: 8 })));
    }

    #[test]
    fn pop_of_empty_frame_flagged() {
        let mut unwind = base_unwind();
        unwind.push(UnwindPoint { from: 1, depth: -8 });
        let errs = check(vec![Insn::Pop { dst: Gpr::Rbx }, Insn::Ret], unwind);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::StackUnderflow { .. })));
    }

    #[test]
    fn stale_unwind_table_flagged() {
        // Push at 0 but the table still claims depth 0 afterwards.
        let errs = check(
            vec![
                Insn::Push { src: Gpr::Rbx },
                Insn::Pop { dst: Gpr::Rbx },
                Insn::Ret,
            ],
            base_unwind(),
        );
        assert!(errs.iter().any(|e| matches!(
            e.kind,
            CheckKind::UnwindMismatch {
                computed: 8,
                recorded: 0
            }
        )));
    }

    #[test]
    fn misaligned_call_flagged() {
        let mut unwind = base_unwind();
        unwind.push(UnwindPoint { from: 1, depth: 16 });
        unwind.push(UnwindPoint { from: 3, depth: 0 });
        let errs = check(
            vec![
                Insn::AluImm {
                    op: AluOp::Sub,
                    dst: Gpr::Rsp,
                    imm: 16,
                },
                Insn::Call { target: 0 },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Gpr::Rsp,
                    imm: 16,
                },
                Insn::Ret,
            ],
            unwind,
        );
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::MisalignedCall { depth: 16 })));
    }
}
