//! Hash-consed symbolic semantics for the decode translation validator.
//!
//! Two independent evaluators over a shared term arena:
//!
//! * [`sym_exec_insn`] gives the meaning of a source [`Insn`], mirroring
//!   the reference interpreter (`Vm::exec_slow`) arm by arm;
//! * [`sym_exec_op`] gives the meaning of a decoded [`Op`], mirroring
//!   the decoded engine (`Vm::exec_fast` / `Vm::exec_member` /
//!   `quad_effects` / `alu_imm_quad_effects`) arm by arm.
//!
//! Both produce a [`SymState`]: the final symbolic register file, YMM
//! file, flags term, YMM-dirty tri-state, and the ordered sequence of
//! memory [`Effect`]s, plus a [`SymCtrl`] successor. Terms are
//! hash-consed in a [`SymCtx`], so two computations are equal iff their
//! [`Id`]s are equal — structural comparison is O(1) per slot and the
//! validator never walks a term DAG.
//!
//! Memory is modelled positionally: the k-th read performed by an
//! evaluation yields the opaque term `Load(k)` (or `LoadVec(k)`).
//! Because the validator also requires the *effect sequences* of the
//! two sides to be identical (same kinds, same symbolic addresses, same
//! written values, in the same order), positional naming is sound: when
//! the effect lists agree, the k-th read on either side denotes the
//! same concrete value in every concrete execution, faults included.
//! The per-entry `ord` tag records which original instruction of a
//! fused pair an effect belongs to, which is exactly the fault-
//! attribution metadata (`exec_member`'s "half", the position of the
//! `second!` accounting boundary) that mid-pair faults depend on.

use std::collections::HashMap;

use r2c_vm::decode_inspect::Op;
use r2c_vm::insn::AluOp;
use r2c_vm::{Cond, Gpr, Insn, MemRef, NativeKind, VAddr, Ymm};

/// Handle of a hash-consed term: equal ids ⇔ equal terms.
pub(crate) type Id = u32;

/// One node of the term DAG.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    /// Initial (pre-evaluation) value of a general-purpose register.
    InitGpr(u8),
    /// Initial value of a YMM register.
    InitYmm(u8),
    /// Initial flags.
    InitFlags,
    /// Constant.
    Imm(u64),
    /// `alu(op, a, b)` with the interpreter's wrapping semantics.
    Alu(AluOp, Id, Id),
    /// Signed wrapping quotient (divisor already checked non-zero).
    Div(Id, Id),
    /// Signed wrapping remainder.
    Rem(Id, Id),
    /// Result of the k-th memory read (8-byte word).
    Load(u32),
    /// Result of the k-th memory read (32-byte vector).
    LoadVec(u32),
    /// `vzeroupper` applied to a YMM value.
    ZeroUpper(Id),
    /// `cond_holds(cond, flags) as u64`.
    CondVal(Cond, Id),
    /// Flags after `set_cmp(a, b)`.
    FlagsCmp(Id, Id),
    /// Flags after `set_test(x, x)`.
    FlagsTest(Id),
    /// Flags after `set_result(r)`.
    FlagsResult(Id),
}

/// Hash-consing arena. One context is shared by both sides of every
/// comparison, so identical computations intern to identical ids.
pub(crate) struct SymCtx {
    nodes: Vec<Node>,
    memo: HashMap<Node, Id>,
}

impl SymCtx {
    pub(crate) fn new() -> SymCtx {
        SymCtx {
            nodes: Vec::new(),
            memo: HashMap::new(),
        }
    }

    pub(crate) fn node(&mut self, n: Node) -> Id {
        if let Some(&id) = self.memo.get(&n) {
            return id;
        }
        let id = self.nodes.len() as Id;
        self.nodes.push(n);
        self.memo.insert(n, id);
        id
    }

    fn imm(&mut self, v: u64) -> Id {
        self.node(Node::Imm(v))
    }

    /// Bounded-depth rendering of a term, for error details.
    pub(crate) fn describe(&self, id: Id) -> String {
        self.desc(id, 4)
    }

    fn desc(&self, id: Id, depth: u32) -> String {
        if depth == 0 {
            return format!("#{id}");
        }
        let d = |i: Id| self.desc(i, depth - 1);
        match self.nodes[id as usize] {
            Node::InitGpr(r) => format!("{:?}₀", Gpr::from_index(r as usize)),
            Node::InitYmm(r) => format!("ymm{r}₀"),
            Node::InitFlags => "flags₀".into(),
            Node::Imm(v) => format!("{v:#x}"),
            Node::Alu(op, a, b) => format!("{op:?}({}, {})", d(a), d(b)),
            Node::Div(a, b) => format!("div({}, {})", d(a), d(b)),
            Node::Rem(a, b) => format!("rem({}, {})", d(a), d(b)),
            Node::Load(k) => format!("load#{k}"),
            Node::LoadVec(k) => format!("vload#{k}"),
            Node::ZeroUpper(a) => format!("zeroupper({})", d(a)),
            Node::CondVal(c, f) => format!("{c:?}({})", d(f)),
            Node::FlagsCmp(a, b) => format!("cmp({}, {})", d(a), d(b)),
            Node::FlagsTest(a) => format!("test({})", d(a)),
            Node::FlagsResult(a) => format!("result({})", d(a)),
        }
    }
}

/// What kind of memory interaction an [`Effect`] is. Push/pop are kept
/// distinct from plain writes/reads: they additionally move `rsp` and
/// pushes fault on the stack limit before the write, so decoding one
/// into the other is never equivalent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EffectKind {
    /// 8-byte data read.
    Read,
    /// 8-byte data write.
    Write,
    /// `push_word`: stack-limit check + 8-byte write at `rsp - 8`.
    PushWrite,
    /// `pop_word`: 8-byte read at `rsp`.
    PopRead,
    /// 32-byte vector read.
    ReadVec,
    /// 32-byte vector write.
    WriteVec,
    /// Divide-by-zero check on the divisor (in `val`).
    DivCheck,
    /// 32-byte alignment check on the address.
    AlignCheck,
}

/// One memory-visible step, in program order. Equal effect sequences
/// (kind, symbolic address, written value, and fault-attribution `ord`)
/// mean both sides touch memory identically — and fault identically —
/// in every concrete execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Effect {
    pub kind: EffectKind,
    /// Symbolic address (absent for [`EffectKind::DivCheck`]).
    pub addr: Option<Id>,
    /// Written value / checked divisor, when the kind has one.
    pub val: Option<Id>,
    /// Ordinal of the original instruction this effect belongs to
    /// within the evaluated unit (the pair "half" of `exec_member`, the
    /// side of the `second!` boundary at top level).
    pub ord: u8,
}

/// Tri-state for `ymm_dirty`: `Inherit` means the evaluated unit never
/// touched it, so the dynamic value is whatever it was before.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum YmmDirty {
    Inherit,
    Dirty,
    Clean,
}

/// Successor of an evaluated unit. The target type is the side's
/// native representation — virtual addresses on the source side,
/// pre-resolved instruction indices on the decoded side — unified by
/// the validator through an independently rebuilt resolver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SymCtrl<T: Copy + Eq> {
    /// Fall through to the next instruction after the unit.
    Next,
    Jmp(T),
    Jcc {
        cond: Cond,
        flags: Id,
        tgt: T,
    },
    Call {
        tgt: T,
        ra: u64,
    },
    CallInd {
        target: Id,
        ra: u64,
    },
    CallNative {
        native: u16,
        is_probe: bool,
    },
    Ret {
        ra: Id,
    },
    JmpInd {
        target: Id,
    },
    Trap,
    Halt,
}

impl<T: Copy + Eq> SymCtrl<T> {
    /// Rewrites the direct-branch target through `f`, leaving every
    /// other component untouched.
    pub(crate) fn map_target<U: Copy + Eq>(self, f: impl Fn(T) -> U) -> SymCtrl<U> {
        match self {
            SymCtrl::Next => SymCtrl::Next,
            SymCtrl::Jmp(t) => SymCtrl::Jmp(f(t)),
            SymCtrl::Jcc { cond, flags, tgt } => SymCtrl::Jcc {
                cond,
                flags,
                tgt: f(tgt),
            },
            SymCtrl::Call { tgt, ra } => SymCtrl::Call { tgt: f(tgt), ra },
            SymCtrl::CallInd { target, ra } => SymCtrl::CallInd { target, ra },
            SymCtrl::CallNative { native, is_probe } => SymCtrl::CallNative { native, is_probe },
            SymCtrl::Ret { ra } => SymCtrl::Ret { ra },
            SymCtrl::JmpInd { target } => SymCtrl::JmpInd { target },
            SymCtrl::Trap => SymCtrl::Trap,
            SymCtrl::Halt => SymCtrl::Halt,
        }
    }

    /// True when `self` and `other` are the same control shape and
    /// differ at most in the direct-branch target.
    pub(crate) fn same_shape<U: Copy + Eq>(&self, other: &SymCtrl<U>) -> bool {
        match (self, other) {
            (SymCtrl::Next, SymCtrl::Next)
            | (SymCtrl::Jmp(_), SymCtrl::Jmp(_))
            | (SymCtrl::Trap, SymCtrl::Trap)
            | (SymCtrl::Halt, SymCtrl::Halt) => true,
            (
                SymCtrl::Jcc { cond, flags, .. },
                SymCtrl::Jcc {
                    cond: c2,
                    flags: f2,
                    ..
                },
            ) => cond == c2 && flags == f2,
            (SymCtrl::Call { ra, .. }, SymCtrl::Call { ra: r2, .. }) => ra == r2,
            (SymCtrl::CallInd { target, ra }, SymCtrl::CallInd { target: t2, ra: r2 }) => {
                target == t2 && ra == r2
            }
            (
                SymCtrl::CallNative { native, is_probe },
                SymCtrl::CallNative {
                    native: n2,
                    is_probe: p2,
                },
            ) => native == n2 && is_probe == p2,
            (SymCtrl::Ret { ra }, SymCtrl::Ret { ra: r2 }) => ra == r2,
            (SymCtrl::JmpInd { target }, SymCtrl::JmpInd { target: t2 }) => target == t2,
            _ => false,
        }
    }
}

/// Symbolic machine state threaded through an evaluation.
pub(crate) struct SymState {
    pub gpr: [Id; 16],
    pub ymm: [Id; 16],
    pub flags: Id,
    pub dirty: YmmDirty,
    pub effects: Vec<Effect>,
    reads: u32,
    ord: u8,
}

impl SymState {
    pub(crate) fn fresh(cx: &mut SymCtx) -> SymState {
        SymState {
            gpr: std::array::from_fn(|i| cx.node(Node::InitGpr(i as u8))),
            ymm: std::array::from_fn(|i| cx.node(Node::InitYmm(i as u8))),
            flags: cx.node(Node::InitFlags),
            dirty: YmmDirty::Inherit,
            effects: Vec::new(),
            reads: 0,
            ord: 0,
        }
    }

    /// Marks the start of the `ord`-th original instruction within the
    /// unit; subsequent effects carry this attribution.
    pub(crate) fn set_ord(&mut self, ord: u8) {
        self.ord = ord;
    }

    fn get(&self, r: Gpr) -> Id {
        self.gpr[r.index()]
    }

    fn set(&mut self, r: Gpr, v: Id) {
        self.gpr[r.index()] = v;
    }

    /// `Vm::ea`: `base + index*scale + sext(disp)`, wrapping.
    fn ea(&self, cx: &mut SymCtx, m: &MemRef) -> Id {
        let mut a = self.get(m.base);
        if let Some((idx, scale)) = m.index {
            let s = cx.imm(scale as u64);
            let mul = cx.node(Node::Alu(AluOp::Imul, self.get(idx), s));
            a = cx.node(Node::Alu(AluOp::Add, a, mul));
        }
        let disp = cx.imm(m.disp as i64 as u64);
        cx.node(Node::Alu(AluOp::Add, a, disp))
    }

    fn effect(&mut self, kind: EffectKind, addr: Option<Id>, val: Option<Id>) {
        self.effects.push(Effect {
            kind,
            addr,
            val,
            ord: self.ord,
        });
    }

    fn read_word(&mut self, cx: &mut SymCtx, kind: EffectKind, addr: Id) -> Id {
        self.effect(kind, Some(addr), None);
        let v = cx.node(Node::Load(self.reads));
        self.reads += 1;
        v
    }

    fn read_vec(&mut self, cx: &mut SymCtx, addr: Id) -> Id {
        self.effect(EffectKind::ReadVec, Some(addr), None);
        let v = cx.node(Node::LoadVec(self.reads));
        self.reads += 1;
        v
    }

    /// `Vm::push_word`: limit check + write at `rsp - 8`, then
    /// `rsp -= 8`.
    fn push_val(&mut self, cx: &mut SymCtx, val: Id) {
        let eight = cx.imm(8);
        let nrsp = cx.node(Node::Alu(AluOp::Sub, self.get(Gpr::Rsp), eight));
        self.effect(EffectKind::PushWrite, Some(nrsp), Some(val));
        self.set(Gpr::Rsp, nrsp);
    }

    /// `Vm::pop_word`: read at `rsp`, then `rsp += 8`.
    fn pop_val(&mut self, cx: &mut SymCtx) -> Id {
        let rsp = self.get(Gpr::Rsp);
        let v = self.read_word(cx, EffectKind::PopRead, rsp);
        let eight = cx.imm(8);
        let nrsp = cx.node(Node::Alu(AluOp::Add, rsp, eight));
        self.set(Gpr::Rsp, nrsp);
        v
    }

    // --- shared micro-semantics: each helper is the effect of exactly
    // one original instruction, used verbatim by both evaluators -----

    fn m_mov_imm(&mut self, cx: &mut SymCtx, dst: Gpr, imm: u64) {
        let v = cx.imm(imm);
        self.set(dst, v);
    }

    fn m_mov_reg(&mut self, dst: Gpr, src: Gpr) {
        let v = self.get(src);
        self.set(dst, v);
    }

    fn m_load(&mut self, cx: &mut SymCtx, dst: Gpr, mem: &MemRef) {
        let a = self.ea(cx, mem);
        let v = self.read_word(cx, EffectKind::Read, a);
        self.set(dst, v);
    }

    fn m_store(&mut self, cx: &mut SymCtx, mem: &MemRef, src: Gpr) {
        let a = self.ea(cx, mem);
        let v = self.get(src);
        self.effect(EffectKind::Write, Some(a), Some(v));
    }

    fn m_store_imm(&mut self, cx: &mut SymCtx, mem: &MemRef, imm: i32) {
        let a = self.ea(cx, mem);
        let v = cx.imm(imm as i64 as u64);
        self.effect(EffectKind::Write, Some(a), Some(v));
    }

    fn m_lea(&mut self, cx: &mut SymCtx, dst: Gpr, mem: &MemRef) {
        let a = self.ea(cx, mem);
        self.set(dst, a);
    }

    fn m_alu(&mut self, cx: &mut SymCtx, op: AluOp, dst: Gpr, b: Id) {
        let r = cx.node(Node::Alu(op, self.get(dst), b));
        self.set(dst, r);
        self.flags = cx.node(Node::FlagsResult(r));
    }

    fn m_divrem(&mut self, cx: &mut SymCtx, dst: Gpr, src: Gpr, rem: bool) {
        let b = self.get(src);
        self.effect(EffectKind::DivCheck, None, Some(b));
        let a = self.get(dst);
        let r = cx.node(if rem {
            Node::Rem(a, b)
        } else {
            Node::Div(a, b)
        });
        self.set(dst, r);
    }

    fn m_cmp(&mut self, cx: &mut SymCtx, a: Id, b: Id) {
        self.flags = cx.node(Node::FlagsCmp(a, b));
    }

    fn m_test(&mut self, cx: &mut SymCtx, a: Gpr) {
        let x = self.get(a);
        self.flags = cx.node(Node::FlagsTest(x));
    }

    fn m_setcc(&mut self, cx: &mut SymCtx, cond: Cond, dst: Gpr) {
        let v = cx.node(Node::CondVal(cond, self.flags));
        self.set(dst, v);
    }

    fn m_load_abs(&mut self, cx: &mut SymCtx, dst: Gpr, addr: VAddr) {
        let a = cx.imm(addr);
        let v = self.read_word(cx, EffectKind::Read, a);
        self.set(dst, v);
    }

    fn m_vload_abs(&mut self, cx: &mut SymCtx, dst: Ymm, addr: VAddr) {
        let a = cx.imm(addr);
        self.effect(EffectKind::AlignCheck, Some(a), None);
        let v = self.read_vec(cx, a);
        self.ymm[dst.index()] = v;
        self.dirty = YmmDirty::Dirty;
    }

    fn m_vload(&mut self, cx: &mut SymCtx, dst: Ymm, mem: &MemRef, aligned: bool) {
        let a = self.ea(cx, mem);
        if aligned {
            self.effect(EffectKind::AlignCheck, Some(a), None);
        }
        let v = self.read_vec(cx, a);
        self.ymm[dst.index()] = v;
        self.dirty = YmmDirty::Dirty;
    }

    fn m_vstore(&mut self, cx: &mut SymCtx, mem: &MemRef, src: Ymm, aligned: bool) {
        let a = self.ea(cx, mem);
        if aligned {
            self.effect(EffectKind::AlignCheck, Some(a), None);
        }
        let v = self.ymm[src.index()];
        self.effect(EffectKind::WriteVec, Some(a), Some(v));
        self.dirty = YmmDirty::Dirty;
    }

    fn m_vzeroupper(&mut self, cx: &mut SymCtx) {
        for slot in &mut self.ymm {
            *slot = cx.node(Node::ZeroUpper(*slot));
        }
        self.dirty = YmmDirty::Clean;
    }

    /// `quad_effects`: the expanded mov/mov/alu/mov template.
    #[allow(clippy::too_many_arguments)]
    fn m_quad_expanded(
        &mut self,
        cx: &mut SymCtx,
        imm: u64,
        a: Gpr,
        bd: Gpr,
        bs: Gpr,
        op: AluOp,
        cd: Gpr,
        cs: Gpr,
        dd: Gpr,
        ds: Gpr,
    ) {
        self.m_mov_imm(cx, a, imm);
        self.m_mov_reg(bd, bs);
        let r = cx.node(Node::Alu(op, self.get(cd), self.get(cs)));
        self.set(cd, r);
        self.flags = cx.node(Node::FlagsResult(r));
        self.m_mov_reg(dd, ds);
    }

    /// `alu_imm_quad_effects`: the collapsed operand-chained quad.
    #[allow(clippy::too_many_arguments)] // mirrors the Op variant's fields
    fn m_quad_collapsed(
        &mut self,
        cx: &mut SymCtx,
        imm: u64,
        a: Gpr,
        scratch: Gpr,
        op: AluOp,
        src: Gpr,
        dst: Gpr,
    ) {
        let iv = cx.imm(imm);
        let r = cx.node(Node::Alu(op, self.get(src), iv));
        self.set(a, iv);
        self.set(scratch, r);
        self.flags = cx.node(Node::FlagsResult(r));
        self.set(dst, r);
    }
}

/// Whether a native index is the stack-probe hypercall — the property
/// `Op::CallNative::is_probe` pre-bakes at decode time.
fn probe_of(natives: &[NativeKind], native: u16) -> bool {
    natives.get(native as usize) == Some(&NativeKind::StackProbe)
}

/// Symbolic meaning of one source instruction, mirroring the reference
/// interpreter. `addr` is the instruction's own address (return-address
/// computation); `natives` resolves probe-ness of native calls.
pub(crate) fn sym_exec_insn(
    cx: &mut SymCtx,
    st: &mut SymState,
    insn: &Insn,
    addr: VAddr,
    natives: &[NativeKind],
) -> SymCtrl<VAddr> {
    match *insn {
        Insn::MovImm { dst, imm } | Insn::MovAbs { dst, imm } => st.m_mov_imm(cx, dst, imm),
        Insn::MovReg { dst, src } => st.m_mov_reg(dst, src),
        Insn::Load { dst, mem } => st.m_load(cx, dst, &mem),
        Insn::Store { mem, src } => st.m_store(cx, &mem, src),
        Insn::StoreImm { mem, imm } => st.m_store_imm(cx, &mem, imm),
        Insn::Lea { dst, mem } => st.m_lea(cx, dst, &mem),
        Insn::Push { src } => {
            let v = st.get(src);
            st.push_val(cx, v);
        }
        Insn::PushImm { imm } => {
            let v = cx.imm(imm);
            st.push_val(cx, v);
        }
        Insn::Pop { dst } => {
            let v = st.pop_val(cx);
            st.set(dst, v);
        }
        Insn::AluReg { op, dst, src } => {
            let b = st.get(src);
            st.m_alu(cx, op, dst, b);
        }
        Insn::AluImm { op, dst, imm } => {
            let b = cx.imm(imm as i64 as u64);
            st.m_alu(cx, op, dst, b);
        }
        Insn::Div { dst, src } => st.m_divrem(cx, dst, src, false),
        Insn::Rem { dst, src } => st.m_divrem(cx, dst, src, true),
        Insn::CmpReg { a, b } => {
            let (x, y) = (st.get(a), st.get(b));
            st.m_cmp(cx, x, y);
        }
        Insn::CmpImm { a, imm } => {
            let x = st.get(a);
            let y = cx.imm(imm as i64 as u64);
            st.m_cmp(cx, x, y);
        }
        Insn::Test { a } => st.m_test(cx, a),
        Insn::SetCc { cond, dst } => st.m_setcc(cx, cond, dst),
        Insn::LoadAbs { dst, addr } => st.m_load_abs(cx, dst, addr),
        Insn::VLoadAbs { dst, addr } => st.m_vload_abs(cx, dst, addr),
        Insn::Call { target } => {
            let ra = addr + insn.len();
            let v = cx.imm(ra);
            st.push_val(cx, v);
            return SymCtrl::Call { tgt: target, ra };
        }
        Insn::CallInd { target } => {
            let ra = addr + insn.len();
            let t = st.get(target);
            let v = cx.imm(ra);
            st.push_val(cx, v);
            return SymCtrl::CallInd { target: t, ra };
        }
        Insn::CallNative { native } => {
            return SymCtrl::CallNative {
                native,
                is_probe: probe_of(natives, native),
            };
        }
        Insn::Ret => {
            let ra = st.pop_val(cx);
            return SymCtrl::Ret { ra };
        }
        Insn::Jmp { target } => return SymCtrl::Jmp(target),
        Insn::JmpInd { target } => {
            return SymCtrl::JmpInd {
                target: st.get(target),
            };
        }
        Insn::Jcc { cond, target } => {
            return SymCtrl::Jcc {
                cond,
                flags: st.flags,
                tgt: target,
            };
        }
        Insn::Nop { .. } => {}
        Insn::Trap => return SymCtrl::Trap,
        Insn::VLoad { dst, mem, aligned } => st.m_vload(cx, dst, &mem, aligned),
        Insn::VStore { mem, src, aligned } => st.m_vstore(cx, &mem, src, aligned),
        Insn::VZeroUpper => st.m_vzeroupper(cx),
        Insn::Halt => return SymCtrl::Halt,
    }
    SymCtrl::Next
}

/// Symbolic meaning of one decoded op, mirroring the decoded engine.
/// Fused variants advance the effect attribution (`set_ord`) between
/// their halves exactly where `exec_fast` places the `second!`
/// accounting boundary and `exec_member` switches its fault half.
/// `Op::Run` has no local meaning (the validator walks run tables
/// itself) and is rejected.
pub(crate) fn sym_exec_op(
    cx: &mut SymCtx,
    st: &mut SymState,
    op: &Op,
) -> Result<SymCtrl<u32>, String> {
    match *op {
        Op::MovImm { dst, imm } => st.m_mov_imm(cx, dst, imm),
        Op::MovReg { dst, src } => st.m_mov_reg(dst, src),
        Op::Load { dst, mem } => st.m_load(cx, dst, &mem),
        Op::Store { mem, src } => st.m_store(cx, &mem, src),
        Op::StoreImm { mem, imm } => st.m_store_imm(cx, &mem, imm),
        Op::Lea { dst, mem } => st.m_lea(cx, dst, &mem),
        Op::Push { src } => {
            let v = st.get(src);
            st.push_val(cx, v);
        }
        Op::PushImm { imm } => {
            let v = cx.imm(imm);
            st.push_val(cx, v);
        }
        Op::Pop { dst } => {
            let v = st.pop_val(cx);
            st.set(dst, v);
        }
        Op::AluReg { op, dst, src } => {
            let b = st.get(src);
            st.m_alu(cx, op, dst, b);
        }
        Op::AluImm { op, dst, imm } => {
            let b = cx.imm(imm as i64 as u64);
            st.m_alu(cx, op, dst, b);
        }
        Op::Div { dst, src } => st.m_divrem(cx, dst, src, false),
        Op::Rem { dst, src } => st.m_divrem(cx, dst, src, true),
        Op::CmpReg { a, b } => {
            let (x, y) = (st.get(a), st.get(b));
            st.m_cmp(cx, x, y);
        }
        Op::CmpImm { a, imm } => {
            let x = st.get(a);
            let y = cx.imm(imm as i64 as u64);
            st.m_cmp(cx, x, y);
        }
        Op::Test { a } => st.m_test(cx, a),
        Op::SetCc { cond, dst } => st.m_setcc(cx, cond, dst),
        Op::LoadAbs { dst, addr } => st.m_load_abs(cx, dst, addr),
        Op::VLoadAbs { dst, addr } => st.m_vload_abs(cx, dst, addr),
        Op::Call { tgt, ra } => {
            let v = cx.imm(ra);
            st.push_val(cx, v);
            return Ok(SymCtrl::Call { tgt, ra });
        }
        Op::CallInd { target, ra } => {
            let t = st.get(target);
            let v = cx.imm(ra);
            st.push_val(cx, v);
            return Ok(SymCtrl::CallInd { target: t, ra });
        }
        Op::CallNative { native, is_probe } => {
            return Ok(SymCtrl::CallNative { native, is_probe });
        }
        Op::Ret => {
            let ra = st.pop_val(cx);
            return Ok(SymCtrl::Ret { ra });
        }
        Op::Jmp { tgt } => return Ok(SymCtrl::Jmp(tgt)),
        Op::JmpInd { target } => {
            return Ok(SymCtrl::JmpInd {
                target: st.get(target),
            });
        }
        Op::Jcc { cond, tgt, .. } => {
            return Ok(SymCtrl::Jcc {
                cond,
                flags: st.flags,
                tgt,
            });
        }
        Op::Nop => {}
        Op::Trap => return Ok(SymCtrl::Trap),
        Op::VLoad { dst, mem, aligned } => st.m_vload(cx, dst, &mem, aligned),
        Op::VStore { mem, src, aligned } => st.m_vstore(cx, &mem, src, aligned),
        Op::VZeroUpper => st.m_vzeroupper(cx),
        Op::Halt => return Ok(SymCtrl::Halt),

        // --- fused pairs ---------------------------------------------
        Op::MovRegAluReg {
            dst1,
            src1,
            op,
            dst2,
            src2,
            ..
        } => {
            st.m_mov_reg(dst1, src1);
            st.set_ord(1);
            let b = st.get(src2);
            st.m_alu(cx, op, dst2, b);
        }
        Op::AluRegMovReg {
            op,
            dst1,
            src1,
            dst2,
            src2,
            ..
        } => {
            let b = st.get(src1);
            st.m_alu(cx, op, dst1, b);
            st.set_ord(1);
            st.m_mov_reg(dst2, src2);
        }
        Op::MovImmMovReg {
            dst1,
            imm,
            dst2,
            src2,
            ..
        } => {
            st.m_mov_imm(cx, dst1, imm);
            st.set_ord(1);
            st.m_mov_reg(dst2, src2);
        }
        Op::MovRegMovImm {
            dst1,
            src1,
            dst2,
            imm,
            ..
        } => {
            st.m_mov_reg(dst1, src1);
            st.set_ord(1);
            st.m_mov_imm(cx, dst2, imm);
        }
        Op::MovRegStore {
            dst1,
            src1,
            mem,
            src2,
            ..
        } => {
            st.m_mov_reg(dst1, src1);
            st.set_ord(1);
            st.m_store(cx, &mem, src2);
        }
        Op::LoadMovReg {
            dst1,
            mem,
            dst2,
            src2,
            ..
        } => {
            st.m_load(cx, dst1, &mem);
            st.set_ord(1);
            st.m_mov_reg(dst2, src2);
        }
        Op::StoreLoad {
            smem,
            src,
            dst,
            lmem,
            ..
        } => {
            st.m_store(cx, &smem, src);
            st.set_ord(1);
            st.m_load(cx, dst, &lmem);
        }
        Op::LeaMovReg {
            dst1,
            mem,
            dst2,
            src2,
            ..
        } => {
            st.m_lea(cx, dst1, &mem);
            st.set_ord(1);
            st.m_mov_reg(dst2, src2);
        }
        Op::CmpRegJcc {
            a, b, cond, tgt, ..
        } => {
            let (x, y) = (st.get(a), st.get(b));
            st.m_cmp(cx, x, y);
            st.set_ord(1);
            return Ok(SymCtrl::Jcc {
                cond,
                flags: st.flags,
                tgt,
            });
        }
        Op::CmpImmJcc {
            a, imm, cond, tgt, ..
        } => {
            let x = st.get(a);
            let y = cx.imm(imm as i64 as u64);
            st.m_cmp(cx, x, y);
            st.set_ord(1);
            return Ok(SymCtrl::Jcc {
                cond,
                flags: st.flags,
                tgt,
            });
        }
        Op::TestJcc { a, cond, tgt, .. } => {
            st.m_test(cx, a);
            st.set_ord(1);
            return Ok(SymCtrl::Jcc {
                cond,
                flags: st.flags,
                tgt,
            });
        }
        Op::CmpRegSetCc {
            a, b, cond, dst, ..
        } => {
            let (x, y) = (st.get(a), st.get(b));
            st.m_cmp(cx, x, y);
            st.set_ord(1);
            st.m_setcc(cx, cond, dst);
        }
        Op::PushPush { s1, s2, .. } => {
            let v = st.get(s1);
            st.push_val(cx, v);
            st.set_ord(1);
            let v = st.get(s2);
            st.push_val(cx, v);
        }
        Op::PopPop { d1, d2, .. } => {
            let v = st.pop_val(cx);
            st.set(d1, v);
            st.set_ord(1);
            let v = st.pop_val(cx);
            st.set(d2, v);
        }
        Op::PopRet { d1, .. } => {
            let v = st.pop_val(cx);
            st.set(d1, v);
            st.set_ord(1);
            let ra = st.pop_val(cx);
            return Ok(SymCtrl::Ret { ra });
        }

        // --- quad templates (pair heads share their fields' meaning;
        // the partner entry is evaluated separately by the validator) --
        Op::MovImmAluQuad {
            imm,
            a,
            bd,
            bs,
            op,
            cd,
            cs,
            dd,
            ds,
        }
        | Op::MovImmAluQuadPair {
            imm,
            a,
            bd,
            bs,
            op,
            cd,
            cs,
            dd,
            ds,
        } => st.m_quad_expanded(cx, imm, a, bd, bs, op, cd, cs, dd, ds),
        Op::AluImmQuad {
            imm,
            a,
            scratch,
            op,
            src,
            dst,
        }
        | Op::AluImmQuadPair {
            imm,
            a,
            scratch,
            op,
            src,
            dst,
        } => st.m_quad_collapsed(cx, imm, a, scratch, op, src, dst),

        Op::Run { run } => return Err(format!("Op::Run({run}) has no local semantics")),
    }
    Ok(SymCtrl::Next)
}
