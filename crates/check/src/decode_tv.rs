//! Translation validation for the decoded execution engine.
//!
//! [`check_decoded_program`] proves, statically, that a
//! [`DecodedProgram`] means the same thing as the [`Image`] it claims
//! to decode — for every instruction, every fused superinstruction,
//! every quad template, and every block run — under three obligation
//! classes (surfaced as [`DecodeTvClass`]):
//!
//! * **State** — per decoded unit, the symbolic final state (register
//!   file, YMM file, flags, `ymm_dirty`, ordered memory-effect
//!   sequence with fault-half attribution) of the decoded op equals
//!   that of the source instruction slice it covers, and run-entry
//!   positional-rollback metadata (`ROp::k`, the line-relative
//!   fault-attribution address `ROp::off`) names the exact member, so
//!   a mid-run fault unwinds to precisely the reference state.
//! * **Cost** — every pre-baked constant equals what the reference
//!   interpreter would charge: `DOp::cost` and `F2::cost2` against
//!   [`MachineConfig::base_cost`], fused second-half icache addresses
//!   against the real second-instruction address, `Jcc` `taken_extra`
//!   against `taken_branch_cost - branch_cost`, a run's batched
//!   `members_cost` against the per-member sum, and icache segment
//!   lines against the members' `addr / line_size`.
//! * **Target** — the dense dispatch table is exactly the
//!   text-offset → index map of the image, and every pre-resolved
//!   direct branch index equals an independently rebuilt resolution of
//!   the original target address.
//!
//! Anything structurally unverifiable (truncated tables, fused ops in
//! an unfused decode, quads outside run streams, control flow inside a
//! run) is a **Shape** finding. An empty result is a proof that the
//! decoded program, executed by the decoded engine, is observably
//! identical — states, faults, and stats — to the reference
//! interpreter on the original image, for all inputs.
//!
//! [`check_decode`] sweeps all four machine models with fusion both on
//! and off; it is the `R2cConfig::check_decode` compiler pass and the
//! `check --decode` CI sweep.

use std::collections::HashMap;

use r2c_vm::decode_inspect::{decode_program, DecodedProgram, Op, F2, NO_INSN};
use r2c_vm::{Image, Insn, MachineKind, SymbolKind, VAddr};

use crate::sym::{sym_exec_insn, sym_exec_op, Effect, SymCtrl, SymCtx, SymState};
use crate::{CheckError, CheckKind};

/// Which proof obligation a decode translation-validation finding
/// violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeTvClass {
    /// Structural well-formedness of the decoded tables.
    Shape,
    /// Pre-baked cost/accounting conformance.
    Cost,
    /// Branch-target / dispatch-table integrity.
    Target,
    /// Symbolic state equivalence (registers, flags, memory effects,
    /// successors, rollback metadata).
    State,
}

impl std::fmt::Display for DecodeTvClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTvClass::Shape => write!(f, "shape"),
            DecodeTvClass::Cost => write!(f, "cost"),
            DecodeTvClass::Target => write!(f, "target"),
            DecodeTvClass::State => write!(f, "state"),
        }
    }
}

/// Validates `image`'s decode under every machine model, with fusion
/// on and off. An empty result proves every decoded program the VM
/// could build for this image equivalent to the reference semantics.
pub fn check_decode(image: &Image) -> Vec<CheckError> {
    let mut errs = Vec::new();
    for kind in MachineKind::ALL {
        for fuse in [true, false] {
            let prog = decode_program(image, &kind.config(), fuse);
            errs.extend(check_decoded_program(&prog, image));
        }
    }
    errs
}

/// Validates one decoded program (already built, possibly corrupted —
/// this is the mutation-test entry point) against the image it claims
/// to represent, under its own recorded machine model and fusion flag.
pub fn check_decoded_program(prog: &DecodedProgram, image: &Image) -> Vec<CheckError> {
    Tv::new(prog, image).run()
}

/// Dispatch class of a decoded op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    /// Standalone op covering one instruction.
    Single,
    /// Fused pair covering two instructions.
    Pair,
    /// Quad template covering four instructions (run streams only).
    Quad,
    /// Quad pair head (run streams only; partner entry follows).
    QuadPair,
    /// Block run.
    Run,
}

fn class_of(op: &Op) -> OpClass {
    match op {
        Op::MovRegAluReg { .. }
        | Op::AluRegMovReg { .. }
        | Op::MovImmMovReg { .. }
        | Op::MovRegMovImm { .. }
        | Op::MovRegStore { .. }
        | Op::LoadMovReg { .. }
        | Op::StoreLoad { .. }
        | Op::LeaMovReg { .. }
        | Op::CmpRegJcc { .. }
        | Op::CmpImmJcc { .. }
        | Op::TestJcc { .. }
        | Op::CmpRegSetCc { .. }
        | Op::PushPush { .. }
        | Op::PopPop { .. }
        | Op::PopRet { .. } => OpClass::Pair,
        Op::MovImmAluQuad { .. } | Op::AluImmQuad { .. } => OpClass::Quad,
        Op::MovImmAluQuadPair { .. } | Op::AluImmQuadPair { .. } => OpClass::QuadPair,
        Op::Run { .. } => OpClass::Run,
        _ => OpClass::Single,
    }
}

/// Second-half metadata of a top-level fused pair.
fn f2_of(op: &Op) -> Option<F2> {
    match *op {
        Op::MovRegAluReg { f2, .. }
        | Op::AluRegMovReg { f2, .. }
        | Op::MovImmMovReg { f2, .. }
        | Op::MovRegMovImm { f2, .. }
        | Op::MovRegStore { f2, .. }
        | Op::LoadMovReg { f2, .. }
        | Op::StoreLoad { f2, .. }
        | Op::LeaMovReg { f2, .. }
        | Op::CmpRegJcc { f2, .. }
        | Op::CmpImmJcc { f2, .. }
        | Op::TestJcc { f2, .. }
        | Op::CmpRegSetCc { f2, .. }
        | Op::PushPush { f2, .. }
        | Op::PopPop { f2, .. }
        | Op::PopRet { f2, .. } => Some(f2),
        _ => None,
    }
}

/// Pre-baked taken-branch surcharge, where the op carries one.
fn taken_extra_of(op: &Op) -> Option<u16> {
    match *op {
        Op::Jcc { taken_extra, .. }
        | Op::CmpRegJcc { taken_extra, .. }
        | Op::CmpImmJcc { taken_extra, .. }
        | Op::TestJcc { taken_extra, .. } => Some(taken_extra),
        _ => None,
    }
}

/// Mirror of the decoder's straight-line predicate: instructions a
/// block run may cover (`exec_member` has no control arms).
fn is_straight(insn: &Insn) -> bool {
    !matches!(
        insn,
        Insn::Call { .. }
            | Insn::CallInd { .. }
            | Insn::CallNative { .. }
            | Insn::Ret
            | Insn::Jmp { .. }
            | Insn::JmpInd { .. }
            | Insn::Jcc { .. }
            | Insn::Trap
            | Insn::Halt
    )
}

struct Tv<'a> {
    prog: &'a DecodedProgram,
    image: &'a Image,
    /// Independently rebuilt address → instruction-index map.
    addr_to_idx: HashMap<VAddr, u32>,
    /// Function symbols, sorted by address, for finding attribution.
    funcs: Vec<(VAddr, String)>,
    /// `taken_branch_cost - branch_cost` under the program's machine.
    taken_extra: u16,
    line_size: u64,
    errs: Vec<CheckError>,
}

impl<'a> Tv<'a> {
    fn new(prog: &'a DecodedProgram, image: &'a Image) -> Tv<'a> {
        let addr_to_idx = image
            .insn_addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        let mut funcs: Vec<(VAddr, String)> = image
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Function)
            .map(|s| (s.addr, s.name.clone()))
            .collect();
        funcs.sort();
        Tv {
            prog,
            image,
            addr_to_idx,
            funcs,
            taken_extra: (prog.machine.taken_branch_cost - prog.machine.branch_cost) as u16,
            line_size: prog.machine.icache.line as u64,
            errs: Vec::new(),
        }
    }

    /// The decoder's target resolution, rebuilt from the image alone.
    fn resolve(&self, target: VAddr) -> u32 {
        let l = self.image.layout;
        if target >= l.text_base && target < l.text_end {
            self.addr_to_idx.get(&target).copied().unwrap_or(NO_INSN)
        } else {
            NO_INSN
        }
    }

    fn err(&mut self, insn: Option<usize>, class: DecodeTvClass, detail: String) {
        let func_name = insn
            .and_then(|i| self.image.insn_addrs.get(i))
            .and_then(|&a| {
                let at = self.funcs.partition_point(|(fa, _)| *fa <= a);
                self.funcs.get(at.checked_sub(1)?).map(|(_, n)| n.clone())
            });
        self.errs.push(CheckError {
            func: None,
            func_name,
            insn,
            kind: CheckKind::DecodeTv {
                machine: self.prog.machine.kind.name(),
                fused: self.prog.fused,
                class,
                detail,
            },
        });
    }

    fn run(mut self) -> Vec<CheckError> {
        self.check_copies();
        self.check_dispatch();
        let n = self.image.insns.len();
        if self.image.insn_addrs.len() != n {
            self.err(
                None,
                DecodeTvClass::Shape,
                format!(
                    "image has {} addresses for {n} instructions",
                    self.image.insn_addrs.len()
                ),
            );
            return self.errs;
        }
        if self.prog.ops.len() != n {
            self.err(
                None,
                DecodeTvClass::Shape,
                format!(
                    "ops table has {} entries for {n} instructions",
                    self.prog.ops.len()
                ),
            );
            return self.errs;
        }
        for i in 0..n {
            self.check_op(i);
        }
        self.errs
    }

    /// The decoded program's verbatim image copies must match the
    /// image being validated — otherwise every downstream proof would
    /// be about a different program.
    fn check_copies(&mut self) {
        if let Some(mm) = self
            .prog
            .mismatch(self.image, &self.prog.machine, self.prog.fused)
        {
            self.err(
                None,
                DecodeTvClass::Shape,
                format!("decoded copy diverges from image at {mm}"),
            );
        }
        if self.prog.text_base != self.image.layout.text_base {
            self.err(
                None,
                DecodeTvClass::Shape,
                format!(
                    "text_base {:#x} != layout.text_base {:#x}",
                    self.prog.text_base, self.image.layout.text_base
                ),
            );
        }
    }

    /// Target integrity of the dense dispatch table: it must be exactly
    /// the text-offset → instruction-index map of the image, with
    /// [`NO_INSN`] on every hole.
    fn check_dispatch(&mut self) {
        let l = self.image.layout;
        let text_len = (l.text_end - l.text_base) as usize;
        if self.prog.dispatch.len() != text_len {
            self.err(
                None,
                DecodeTvClass::Target,
                format!(
                    "dispatch table has {} entries for a {text_len}-byte text section",
                    self.prog.dispatch.len()
                ),
            );
            return;
        }
        let mut expected = vec![NO_INSN; text_len];
        for (i, &a) in self.image.insn_addrs.iter().enumerate() {
            let off = a.wrapping_sub(l.text_base);
            if off < text_len as u64 {
                expected[off as usize] = i as u32;
            }
        }
        let diverging: Vec<usize> = (0..text_len)
            .filter(|&off| self.prog.dispatch[off] != expected[off])
            .collect();
        if let Some(&off) = diverging.first() {
            let want = expected[off];
            let got = self.prog.dispatch[off];
            let insn = (want != NO_INSN).then_some(want as usize);
            self.err(
                insn,
                DecodeTvClass::Target,
                format!(
                    "dispatch[{off:#x}] is {got:#x}, expected {want:#x} ({} entries diverge)",
                    diverging.len()
                ),
            );
        }
    }

    fn check_op(&mut self, i: usize) {
        let dop = self.prog.ops[i];
        if dop.addr != self.image.insn_addrs[i] {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!(
                    "op addr {:#x} != instruction addr {:#x}",
                    dop.addr, self.image.insn_addrs[i]
                ),
            );
        }
        let base = self.prog.machine.base_cost(&self.image.insns[i]);
        if dop.cost as u64 != base {
            self.err(
                Some(i),
                DecodeTvClass::Cost,
                format!("pre-baked cost {} != base cost {base}", dop.cost),
            );
        }
        if let Some(te) = taken_extra_of(&dop.op) {
            if te != self.taken_extra {
                self.err(
                    Some(i),
                    DecodeTvClass::Cost,
                    format!(
                        "taken_extra {te} != taken_branch_cost - branch_cost = {}",
                        self.taken_extra
                    ),
                );
            }
        }
        match class_of(&dop.op) {
            OpClass::Single => self.check_unit(i, 1, &dop.op),
            OpClass::Pair => {
                if !self.prog.fused {
                    self.err(
                        Some(i),
                        DecodeTvClass::Shape,
                        "fused pair in an unfused decode".into(),
                    );
                    return;
                }
                self.check_pair_f2(i, &dop.op);
                self.check_unit(i, 2, &dop.op);
            }
            OpClass::Quad | OpClass::QuadPair => self.err(
                Some(i),
                DecodeTvClass::Shape,
                "quad entry outside a run effect stream".into(),
            ),
            OpClass::Run => {
                if !self.prog.fused {
                    self.err(
                        Some(i),
                        DecodeTvClass::Shape,
                        "block run in an unfused decode".into(),
                    );
                    return;
                }
                if let Op::Run { run } = dop.op {
                    self.check_run(i, run);
                }
            }
        }
    }

    /// Cost conformance of a top-level pair's second half: `second!`
    /// charges `cost2` deci-cycles and touches the icache at
    /// `addr + a2off`, which must be the second instruction's own base
    /// cost and real address.
    fn check_pair_f2(&mut self, i: usize, op: &Op) {
        let Some(f2) = f2_of(op) else { return };
        if i + 1 >= self.image.insns.len() {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                "fused pair at the last instruction".into(),
            );
            return;
        }
        let cost2 = self.prog.machine.base_cost(&self.image.insns[i + 1]);
        if f2.cost2 as u64 != cost2 {
            self.err(
                Some(i),
                DecodeTvClass::Cost,
                format!("second-half cost {} != base cost {cost2}", f2.cost2),
            );
        }
        let got = self.image.insn_addrs[i] + f2.a2off as u64;
        if got != self.image.insn_addrs[i + 1] {
            self.err(
                Some(i),
                DecodeTvClass::Cost,
                format!(
                    "second-half icache address {got:#x} != instruction addr {:#x}",
                    self.image.insn_addrs[i + 1]
                ),
            );
        }
    }

    /// State equivalence of one decoded unit against the `width`
    /// source instructions it covers: symbolically execute both sides
    /// in a shared arena and require identical final state, effect
    /// sequence, and successor.
    fn check_unit(&mut self, i: usize, width: usize, op: &Op) {
        let n = self.image.insns.len();
        if i + width > n {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!("unit of width {width} extends past the last instruction"),
            );
            return;
        }
        let mut cx = SymCtx::new();
        let mut src = SymState::fresh(&mut cx);
        let mut src_ctrl: SymCtrl<VAddr> = SymCtrl::Next;
        for k in 0..width {
            if k > 0 && src_ctrl != SymCtrl::Next {
                self.err(
                    Some(i + k - 1),
                    DecodeTvClass::Shape,
                    "control instruction in a non-final unit slot".into(),
                );
                return;
            }
            src.set_ord(k as u8);
            src_ctrl = sym_exec_insn(
                &mut cx,
                &mut src,
                &self.image.insns[i + k],
                self.image.insn_addrs[i + k],
                &self.image.natives,
            );
        }
        let mut dec = SymState::fresh(&mut cx);
        let dec_ctrl = match sym_exec_op(&mut cx, &mut dec, op) {
            Ok(c) => c,
            Err(e) => {
                self.err(Some(i), DecodeTvClass::Shape, e);
                return;
            }
        };
        if let Some(diff) = state_diff(&cx, &src, &dec) {
            self.err(Some(i), DecodeTvClass::State, diff);
        }
        let mapped = src_ctrl.map_target(|t| self.resolve(t));
        if mapped != dec_ctrl {
            let class = if mapped.same_shape(&dec_ctrl) {
                DecodeTvClass::Target
            } else {
                DecodeTvClass::State
            };
            self.err(
                Some(i),
                class,
                format!("successor diverges: source {mapped:?}, decoded {dec_ctrl:?}"),
            );
        }
    }

    /// Full validation of a block run: leader, batched cost, icache
    /// segmentation, effect-stream coverage, rollback metadata, and
    /// per-entry state equivalence.
    fn check_run(&mut self, i: usize, run: u32) {
        let n = self.image.insns.len();
        let Some(&ri) = self.prog.runs.get(run as usize) else {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!(
                    "run index {run} out of range ({} runs)",
                    self.prog.runs.len()
                ),
            );
            return;
        };
        let count = ri.n as usize;
        if count < 2 {
            self.err(Some(i), DecodeTvClass::Shape, "run with no members".into());
            return;
        }
        if i + count > n {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!("run of {count} instructions extends past the last instruction"),
            );
            return;
        }
        // Leader: a standalone, straight-line op equivalent to the
        // leading instruction (the run loop executes it through
        // `exec_member`, which has no control arms).
        if class_of(&ri.leader) != OpClass::Single {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                "run leader is not a standalone op".into(),
            );
        } else {
            self.check_unit(i, 1, &ri.leader);
        }
        if !is_straight(&self.image.insns[i]) {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                "control instruction leads a block run".into(),
            );
        }
        // Batched cost: `members_cost` is charged in one add; it must
        // be exactly the per-member base-cost sum.
        let nmem = count - 1;
        let want: u64 = self.image.insns[i + 1..i + count]
            .iter()
            .map(|insn| self.prog.machine.base_cost(insn))
            .sum();
        if ri.members_cost != want {
            self.err(
                Some(i),
                DecodeTvClass::Cost,
                format!(
                    "batched members_cost {} != per-member sum {want}",
                    ri.members_cost
                ),
            );
        }
        // Segments partition the members in order, each on one line.
        let s0 = ri.seg_start as usize;
        let sc = ri.seg_count as usize;
        if s0 + sc > self.prog.run_segs.len() {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!(
                    "segment range {s0}..{} out of bounds ({} segments)",
                    s0 + sc,
                    self.prog.run_segs.len()
                ),
            );
            return;
        }
        let segs = &self.prog.run_segs[s0..s0 + sc];
        let covered: usize = segs.iter().map(|s| s.count as usize).sum();
        if covered != nmem {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!("segments cover {covered} of {nmem} members"),
            );
            return;
        }
        let mut mi = i + 1; // absolute index of the segment's first member
        let mut next_entry: Option<usize> = None;
        let mut k_expect = 0usize; // member offset within the run
        for seg in segs {
            if seg.count == 0 {
                self.err(Some(i), DecodeTvClass::Shape, "empty icache segment".into());
            }
            for mj in mi..mi + seg.count as usize {
                let line = self.image.insn_addrs[mj] / self.line_size;
                if line != seg.line {
                    self.err(
                        Some(mj),
                        DecodeTvClass::Cost,
                        format!(
                            "member at {:#x} is on icache line {line}, segment claims {}",
                            self.image.insn_addrs[mj], seg.line
                        ),
                    );
                }
            }
            let first = seg.first as usize;
            let n_ops = seg.n_ops as usize;
            if let Some(want_first) = next_entry {
                if first != want_first {
                    self.err(
                        Some(i),
                        DecodeTvClass::Shape,
                        format!("segment effect stream starts at {first}, expected {want_first}"),
                    );
                }
            }
            if first + n_ops > self.prog.run_ops.len() {
                self.err(
                    Some(i),
                    DecodeTvClass::Shape,
                    format!(
                        "effect stream {first}..{} out of bounds ({} entries)",
                        first + n_ops,
                        self.prog.run_ops.len()
                    ),
                );
                return;
            }
            next_entry = Some(first + n_ops);
            let seg_lo = mi - (i + 1);
            let seg_hi = seg_lo + seg.count as usize;
            let entries = &self.prog.run_ops[first..first + n_ops];
            for (t, e) in entries.iter().enumerate() {
                let cls = class_of(&e.op);
                let width = match cls {
                    OpClass::Single => 1,
                    OpClass::Pair => 2,
                    OpClass::Quad | OpClass::QuadPair => 4,
                    OpClass::Run => {
                        self.err(
                            Some(i),
                            DecodeTvClass::Shape,
                            "nested Op::Run in a run effect stream".into(),
                        );
                        return;
                    }
                };
                if k_expect + width > nmem {
                    self.err(
                        Some(i),
                        DecodeTvClass::Shape,
                        format!(
                            "effect stream overruns the run ({} of {nmem} members left, entry covers {width})",
                            nmem - k_expect
                        ),
                    );
                    return;
                }
                let at = i + 1 + k_expect;
                // Positional-rollback metadata: `k` names the member a
                // fault in this entry starts rolling back from.
                if e.k as usize != k_expect {
                    self.err(
                        Some(at),
                        DecodeTvClass::State,
                        format!("rollback slot k={} but entry covers member {k_expect}", e.k),
                    );
                }
                if !(seg_lo..seg_hi).contains(&k_expect) {
                    self.err(
                        Some(at),
                        DecodeTvClass::Shape,
                        format!(
                            "entry for member {k_expect} assigned to segment covering {seg_lo}..{seg_hi}"
                        ),
                    );
                }
                // Rollback stays segment-local only if a fallible
                // pair's two members share the segment.
                if cls == OpClass::Pair && k_expect + 1 >= seg_hi {
                    self.err(
                        Some(at),
                        DecodeTvClass::Shape,
                        "fallible pair straddles an icache segment boundary".into(),
                    );
                }
                // Fault-attribution address rebuilt from line + offset.
                let got = seg.line * self.line_size + e.off as u64;
                if got != self.image.insn_addrs[at] {
                    self.err(
                        Some(at),
                        DecodeTvClass::State,
                        format!(
                            "fault-attribution address {got:#x} != member address {:#x}",
                            self.image.insn_addrs[at]
                        ),
                    );
                }
                // A pair head executes the next entry under its own
                // dispatch; the partner must exist, in this segment,
                // and be a plain quad.
                if cls == OpClass::QuadPair {
                    match entries.get(t + 1).map(|p| class_of(&p.op)) {
                        Some(OpClass::Quad) => {}
                        other => self.err(
                            Some(at),
                            DecodeTvClass::Shape,
                            format!(
                                "quad pair head without a quad partner (next entry: {other:?})"
                            ),
                        ),
                    }
                }
                // Runs cover straight-line code only; `exec_member`
                // cannot execute control instructions.
                if self.image.insns[at..at + width]
                    .iter()
                    .any(|x| !is_straight(x))
                {
                    self.err(
                        Some(at),
                        DecodeTvClass::Shape,
                        "control instruction covered by a run effect entry".into(),
                    );
                } else {
                    self.check_unit(at, width, &e.op);
                }
                k_expect += width;
            }
            mi += seg.count as usize;
        }
        if k_expect != nmem {
            self.err(
                Some(i),
                DecodeTvClass::Shape,
                format!("effect stream covers {k_expect} of {nmem} members"),
            );
        }
    }
}

/// First divergence between the two sides' final symbolic states.
fn state_diff(cx: &SymCtx, src: &SymState, dec: &SymState) -> Option<String> {
    use r2c_vm::Gpr;
    for r in 0..16 {
        if src.gpr[r] != dec.gpr[r] {
            return Some(format!(
                "{:?}: source {}, decoded {}",
                Gpr::from_index(r),
                cx.describe(src.gpr[r]),
                cx.describe(dec.gpr[r])
            ));
        }
    }
    for r in 0..16 {
        if src.ymm[r] != dec.ymm[r] {
            return Some(format!(
                "ymm{r}: source {}, decoded {}",
                cx.describe(src.ymm[r]),
                cx.describe(dec.ymm[r])
            ));
        }
    }
    if src.flags != dec.flags {
        return Some(format!(
            "flags: source {}, decoded {}",
            cx.describe(src.flags),
            cx.describe(dec.flags)
        ));
    }
    if src.dirty != dec.dirty {
        return Some(format!(
            "ymm_dirty: source {:?}, decoded {:?}",
            src.dirty, dec.dirty
        ));
    }
    if src.effects != dec.effects {
        let k = src
            .effects
            .iter()
            .zip(&dec.effects)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| src.effects.len().min(dec.effects.len()));
        return Some(format!(
            "memory effect #{k}: source {}, decoded {}",
            fmt_effect(cx, src.effects.get(k)),
            fmt_effect(cx, dec.effects.get(k))
        ));
    }
    None
}

fn fmt_effect(cx: &SymCtx, e: Option<&Effect>) -> String {
    let Some(e) = e else {
        return "<none>".into();
    };
    let addr = e.addr.map_or("-".into(), |a| cx.describe(a));
    let val = e.val.map_or("-".into(), |v| cx.describe(v));
    format!("{:?}@{}(addr {addr}, val {val})", e.kind, e.ord)
}
