//! Register def-before-use and calling-convention conformance.
//!
//! A forward must-analysis over the recovered CFG tracks which GPRs,
//! YMM registers, and flag state are definitely initialized on *every*
//! path into an instruction (meet = intersection). On entry only the
//! convention-defined registers are live: `rsp`, `rbp`, the six argument
//! registers, and the callee-saved set the caller guarantees; `rax` and
//! the scratch pair `r10`/`r11` start undefined. Calls clobber the
//! caller-saved set and the flags, exactly as the VM does.
//!
//! A second, structural sub-pass validates callee-saved discipline: the
//! prologue's push set is parsed, any write to an unsaved callee-saved
//! register is flagged, and every `ret` must be preceded by pops that
//! restore the saves in reverse order.

use crate::cfgpass::FnInfo;
use crate::{err_at, CheckError, CheckKind};
use r2c_codegen::CompiledFunc;
use r2c_vm::insn::AluOp;
use r2c_vm::{Gpr, Insn, MemRef};

/// Flags definedness lattice: a conditional consumer needs `Cmp`
/// (set by `cmp`/`test`); ALU results set flags but not the ones our
/// `Cond` decoding contract allows branching on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Flags {
    Unknown,
    Alu,
    Cmp,
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct State {
    gpr: u16,
    ymm: u16,
    flags: Flags,
}

const TOP: State = State {
    gpr: u16::MAX,
    ymm: u16::MAX,
    flags: Flags::Cmp,
};

fn bit(r: Gpr) -> u16 {
    1 << r.index()
}

fn meet(a: State, b: State) -> State {
    State {
        gpr: a.gpr & b.gpr,
        ymm: a.ymm & b.ymm,
        flags: a.flags.min(b.flags),
    }
}

fn entry_state() -> State {
    let mut gpr = u16::MAX;
    for r in [Gpr::Rax, Gpr::R10, Gpr::R11] {
        gpr &= !bit(r);
    }
    State {
        gpr,
        ymm: 0,
        flags: Flags::Unknown,
    }
}

/// Registers the callee may freely clobber (plus `rax` for the result).
const CALL_CLOBBERS: [Gpr; 9] = [
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rsi,
    Gpr::Rdi,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::Rbp,
];

fn mem_regs(m: &MemRef, out: &mut Vec<Gpr>) {
    out.push(m.base);
    if let Some((idx, _)) = m.index {
        out.push(idx);
    }
}

/// GPRs read by the instruction (explicitly; `rsp` implicit in stack
/// ops is always defined and not tracked).
fn reads(insn: &Insn, out: &mut Vec<Gpr>) {
    out.clear();
    match insn {
        Insn::MovReg { src, .. } | Insn::Push { src } => out.push(*src),
        Insn::Load { mem, .. }
        | Insn::StoreImm { mem, .. }
        | Insn::Lea { mem, .. }
        | Insn::VLoad { mem, .. }
        | Insn::VStore { mem, .. } => mem_regs(mem, out),
        Insn::Store { mem, src } => {
            mem_regs(mem, out);
            out.push(*src);
        }
        Insn::AluReg { dst, src, .. } => {
            out.push(*dst);
            out.push(*src);
        }
        Insn::AluImm { dst, .. } => out.push(*dst),
        Insn::Div { dst, src } | Insn::Rem { dst, src } => {
            out.push(*dst);
            out.push(*src);
        }
        Insn::CmpReg { a, b } => {
            out.push(*a);
            out.push(*b);
        }
        Insn::CmpImm { a, .. } | Insn::Test { a } => out.push(*a),
        Insn::CallInd { target } | Insn::JmpInd { target } => out.push(*target),
        Insn::Halt => out.push(Gpr::Rdi),
        _ => {}
    }
}

/// The GPR the instruction defines, if any.
fn gpr_write(insn: &Insn) -> Option<Gpr> {
    match insn {
        Insn::MovImm { dst, .. }
        | Insn::MovAbs { dst, .. }
        | Insn::MovReg { dst, .. }
        | Insn::Load { dst, .. }
        | Insn::Lea { dst, .. }
        | Insn::Pop { dst }
        | Insn::AluReg { dst, .. }
        | Insn::AluImm { dst, .. }
        | Insn::Div { dst, .. }
        | Insn::Rem { dst, .. }
        | Insn::SetCc { dst, .. }
        | Insn::LoadAbs { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn transfer(insn: &Insn, mut s: State) -> State {
    if let Some(w) = gpr_write(insn) {
        s.gpr |= bit(w);
    }
    match insn {
        Insn::CmpReg { .. } | Insn::CmpImm { .. } | Insn::Test { .. } => s.flags = Flags::Cmp,
        Insn::AluReg { .. } | Insn::AluImm { .. } | Insn::Div { .. } | Insn::Rem { .. } => {
            s.flags = Flags::Alu;
        }
        Insn::Call { .. } | Insn::CallInd { .. } | Insn::CallNative { .. } => {
            for r in CALL_CLOBBERS {
                s.gpr &= !bit(r);
            }
            s.gpr |= bit(Gpr::Rax);
            s.ymm = 0;
            s.flags = Flags::Unknown;
        }
        Insn::VLoadAbs { dst, .. } | Insn::VLoad { dst, .. } => s.ymm |= 1 << dst.0,
        Insn::VZeroUpper => {}
        _ => {}
    }
    s
}

pub(crate) fn check_function(
    fi: usize,
    f: &CompiledFunc,
    info: &FnInfo,
    errs: &mut Vec<CheckError>,
) {
    let n = f.insns.len();
    if n == 0 {
        return;
    }

    // Fixpoint: in-state per instruction, initialized to TOP so meets
    // only ever remove facts.
    let mut inst = vec![TOP; n];
    inst[0] = entry_state();
    let mut on_list = vec![false; n];
    let mut work = vec![0usize];
    on_list[0] = true;
    while let Some(i) = work.pop() {
        on_list[i] = false;
        let out = transfer(&f.insns[i], inst[i]);
        for &s in &info.succs[i] {
            let m = if s == 0 {
                meet(inst[s], meet(out, entry_state()))
            } else {
                meet(inst[s], out)
            };
            if m != inst[s] {
                inst[s] = m;
                if !on_list[s] {
                    on_list[s] = true;
                    work.push(s);
                }
            }
        }
    }

    // Reporting pass over reachable instructions.
    let mut rd = Vec::with_capacity(4);
    for (i, insn) in f.insns.iter().enumerate() {
        if !info.reachable[i] {
            continue;
        }
        let s = inst[i];
        reads(insn, &mut rd);
        for &r in &rd {
            if s.gpr & bit(r) == 0 {
                errs.push(err_at(
                    fi,
                    &f.name,
                    Some(i),
                    CheckKind::UndefinedRegRead { reg: r },
                ));
            }
        }
        match insn {
            Insn::Jcc { .. } | Insn::SetCc { .. } if s.flags != Flags::Cmp => {
                errs.push(err_at(fi, &f.name, Some(i), CheckKind::UndefinedFlagsRead));
            }
            Insn::VStore { src, .. } if s.ymm & (1 << src.0) == 0 => {
                errs.push(err_at(
                    fi,
                    &f.name,
                    Some(i),
                    CheckKind::UndefinedYmmRead { ymm: src.0 },
                ));
            }
            _ => {}
        }
    }

    check_callee_saved(fi, f, errs);
}

fn is_rsp_add(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rsp,
            ..
        }
    )
}

fn is_rsp_sub(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::AluImm {
            op: AluOp::Sub,
            dst: Gpr::Rsp,
            ..
        }
    )
}

/// Parse the prologue's callee-saved push run: an optional `sub rsp`
/// (BTRA post-offset), an optional jump-over-traps run, then pushes.
fn prologue_saves(f: &CompiledFunc) -> Vec<Gpr> {
    let insns = &f.insns;
    let mut i = 0;
    if insns.get(i).is_some_and(is_rsp_sub) {
        i += 1;
    }
    if matches!(insns.get(i), Some(Insn::Jmp { .. })) {
        let mut j = i + 1;
        while matches!(insns.get(j), Some(Insn::Trap)) {
            j += 1;
        }
        if j > i + 1 {
            i = j;
        }
    }
    let mut saves = Vec::new();
    while let Some(Insn::Push { src }) = insns.get(i) {
        if !Gpr::CALLEE_SAVED.contains(src) {
            break;
        }
        saves.push(*src);
        i += 1;
    }
    saves
}

fn check_callee_saved(fi: usize, f: &CompiledFunc, errs: &mut Vec<CheckError>) {
    let saves = prologue_saves(f);
    let saved_mask: u16 = saves.iter().fold(0, |m, &r| m | bit(r));

    for (i, insn) in f.insns.iter().enumerate() {
        if let Some(w) = gpr_write(insn) {
            if Gpr::CALLEE_SAVED.contains(&w) && saved_mask & bit(w) == 0 {
                errs.push(err_at(
                    fi,
                    &f.name,
                    Some(i),
                    CheckKind::CalleeSavedClobbered { reg: w },
                ));
            }
        }
    }

    // Every `ret` must be preceded by `[add rsp]? pops... [add rsp]?`
    // with the pops restoring the prologue's saves in reverse order
    // (walking backwards from the `ret` yields them in save order).
    for (i, insn) in f.insns.iter().enumerate() {
        if !matches!(insn, Insn::Ret) {
            continue;
        }
        let mut j = i;
        if j > 0 && is_rsp_add(&f.insns[j - 1]) {
            j -= 1;
        }
        let mut pops = Vec::new();
        while j > 0 {
            if let Insn::Pop { dst } = f.insns[j - 1] {
                pops.push(dst);
                j -= 1;
            } else {
                break;
            }
        }
        if pops != saves {
            errs.push(err_at(
                fi,
                &f.name,
                Some(i),
                CheckKind::EpilogueMismatch {
                    detail: format!("prologue saves {saves:?}, epilogue restores {pops:?}"),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfgpass;
    use r2c_codegen::{FuncKind, Program};

    fn check(insns: Vec<Insn>) -> Vec<CheckError> {
        let f = CompiledFunc {
            name: "f".to_string(),
            insns,
            relocs: vec![],
            unwind: vec![],
            kind: FuncKind::Normal,
            btra_sites: 0,
            btdp_stores: 0,
        };
        let p = Program {
            funcs: vec![f],
            data: vec![],
            entry: 0,
            ctors: vec![],
            natives: vec![],
            booby_trap_funcs: 0,
        };
        let mut errs = vec![];
        let info = cfgpass::check_function(&p, 0, &p.funcs[0], &mut errs);
        errs.clear();
        check_function(0, &p.funcs[0], &info, &mut errs);
        errs
    }

    #[test]
    fn argument_registers_are_defined_on_entry() {
        let errs = check(vec![
            Insn::MovReg {
                dst: Gpr::Rax,
                src: Gpr::Rdi,
            },
            Insn::Ret,
        ]);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn scratch_read_before_def_flagged() {
        let errs = check(vec![
            Insn::MovReg {
                dst: Gpr::Rax,
                src: Gpr::R10,
            },
            Insn::Ret,
        ]);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::UndefinedRegRead { reg: Gpr::R10 })));
    }

    #[test]
    fn rax_undefined_after_entry_defined_after_call() {
        let errs = check(vec![Insn::Push { src: Gpr::Rax }, Insn::Ret]);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::UndefinedRegRead { reg: Gpr::Rax })));

        let errs = check(vec![
            Insn::CallNative { native: 0 },
            Insn::MovReg {
                dst: Gpr::Rdi,
                src: Gpr::Rax,
            },
            Insn::Ret,
        ]);
        assert!(
            !errs
                .iter()
                .any(|e| matches!(e.kind, CheckKind::UndefinedRegRead { reg: Gpr::Rax })),
            "{errs:?}"
        );
    }

    #[test]
    fn caller_saved_killed_by_call() {
        let errs = check(vec![
            Insn::MovImm {
                dst: Gpr::Rcx,
                imm: 7,
            },
            Insn::CallNative { native: 0 },
            Insn::Push { src: Gpr::Rcx },
            Insn::Pop { dst: Gpr::Rcx },
            Insn::Ret,
        ]);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::UndefinedRegRead { reg: Gpr::Rcx })));
    }

    #[test]
    fn flags_unavailable_after_call() {
        let errs = check(vec![
            Insn::CmpImm {
                a: Gpr::Rdi,
                imm: 0,
            },
            Insn::CallNative { native: 0 },
            Insn::Jcc {
                cond: r2c_vm::Cond::Eq,
                target: 0,
            },
            Insn::Ret,
        ]);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::UndefinedFlagsRead)));
    }

    #[test]
    fn clobbered_callee_saved_flagged() {
        let errs = check(vec![
            Insn::MovImm {
                dst: Gpr::Rbx,
                imm: 1,
            },
            Insn::Ret,
        ]);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::CalleeSavedClobbered { reg: Gpr::Rbx })));
    }

    #[test]
    fn saved_callee_saved_accepted_and_epilogue_checked() {
        let errs = check(vec![
            Insn::Push { src: Gpr::Rbx },
            Insn::MovImm {
                dst: Gpr::Rbx,
                imm: 1,
            },
            Insn::Pop { dst: Gpr::Rbx },
            Insn::Ret,
        ]);
        assert!(errs.is_empty(), "{errs:?}");

        let errs = check(vec![
            Insn::Push { src: Gpr::Rbx },
            Insn::MovImm {
                dst: Gpr::Rbx,
                imm: 1,
            },
            Insn::Ret,
        ]);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::EpilogueMismatch { .. })));
    }
}
