//! Camouflage lints: the checks that make this a *security* validator
//! rather than a generic translation validator.
//!
//! * BTRA (paper §5.1): every `RetAddr` relocation must resolve to a
//!   call, each call has at most one genuine return address, and each
//!   window — a contiguous `PushImm` run in push mode, a synthetic
//!   32-byte-aligned array in AVX2 mode — hides exactly one `RetAddr`
//!   among `BoobyTrap` entries. `CompiledFunc::btra_sites` must agree
//!   with what is actually in the code.
//! * BTDP (paper §5.2): a function whose metadata records decoy-pointer
//!   stores must load the decoy-array pointer in its prologue and issue
//!   at least that many decoy stores.
//! * XoM (paper §4.2): no non-synthetic data object may hold a
//!   relocation that would place a text address in readable memory.

use std::collections::HashMap;

use crate::cfgpass::{kind_range_error, FnInfo};
use crate::{err_at, err_global, CheckError, CheckKind};
use r2c_codegen::{CompiledFunc, DiversifyConfig, FuncKind, Program, RelocKind};
use r2c_vm::insn::AluOp;
use r2c_vm::{Gpr, Insn};

/// `add rsp, imm` → the immediate.
fn rsp_add_imm(insn: &Insn) -> Option<i64> {
    match insn {
        Insn::AluImm {
            op: AluOp::Add,
            dst: Gpr::Rsp,
            imm,
        } => Some(*imm as i64),
        _ => None,
    }
}

pub(crate) fn check(
    program: &Program,
    config: &DiversifyConfig,
    infos: &[FnInfo],
    errs: &mut Vec<CheckError>,
) {
    data_relocs(program, errs);
    xom_leaks(program, errs);
    btra(program, infos, errs);
    btdp(program, config, infos, errs);
}

/// Data-section relocation well-formedness: aligned, in-bounds,
/// resolvable.
fn data_relocs(program: &Program, errs: &mut Vec<CheckError>) {
    for obj in &program.data {
        for r in &obj.relocs {
            if r.offset % 8 != 0 || r.offset + 8 > obj.bytes.len() {
                errs.push(err_global(CheckKind::BadRelocRef {
                    detail: format!(
                        "data reloc at misaligned/out-of-bounds offset {} in `{}`",
                        r.offset, obj.name
                    ),
                }));
                continue;
            }
            if let Some(detail) = kind_range_error(program, &r.kind) {
                errs.push(err_global(CheckKind::BadRelocRef {
                    detail: format!("in `{}`: {detail}", obj.name),
                }));
            }
        }
    }
}

/// XoM lint: user (non-synthetic) data objects may hold function
/// *entry* addresses — those are legitimate function pointers, and CPH
/// redirects them to trampolines at link time — but never instruction,
/// return-address, or booby-trap addresses, which would let a reader
/// reconstruct text layout.
fn xom_leaks(program: &Program, errs: &mut Vec<CheckError>) {
    for obj in &program.data {
        if obj.synthetic {
            continue;
        }
        for r in &obj.relocs {
            if matches!(
                r.kind,
                RelocKind::Insn { .. } | RelocKind::RetAddr { .. } | RelocKind::BoobyTrap { .. }
            ) {
                errs.push(err_global(CheckKind::CodeAddrInData {
                    object: obj.name.clone(),
                }));
                break;
            }
        }
    }
}

fn btra(program: &Program, infos: &[FnInfo], errs: &mut Vec<CheckError>) {
    // Collect every RetAddr relocation in the program (text and data)
    // and group by the call it claims to cover.
    let mut groups: HashMap<(usize, usize), u32> = HashMap::new();
    for f in &program.funcs {
        for r in &f.relocs {
            if let RelocKind::RetAddr { func, insn } = r.kind {
                *groups.entry((func, insn)).or_insert(0) += 1;
            }
        }
    }
    for obj in &program.data {
        for r in &obj.relocs {
            if let RelocKind::RetAddr { func, insn } = r.kind {
                *groups.entry((func, insn)).or_insert(0) += 1;
            }
        }
    }

    let mut sites_per_func: Vec<u32> = vec![0; program.funcs.len()];
    for (&(tf, ti), &count) in &groups {
        if tf >= program.funcs.len() || ti >= program.funcs[tf].insns.len() {
            continue; // already reported as a dangling reloc
        }
        sites_per_func[tf] += 1;
        let name = &program.funcs[tf].name;
        if !program.funcs[tf].insns[ti].is_call() {
            errs.push(err_at(
                tf,
                name,
                Some(ti),
                CheckKind::RetAddrNotAtCall { target: ti },
            ));
        }
        if count > 1 {
            errs.push(err_at(
                tf,
                name,
                Some(ti),
                CheckKind::DuplicateRetAddr { call: ti },
            ));
        }
    }

    for (fi, f) in program.funcs.iter().enumerate() {
        if f.kind == FuncKind::BoobyTrap {
            continue;
        }
        if sites_per_func[fi] != f.btra_sites {
            errs.push(err_at(
                fi,
                &f.name,
                None,
                CheckKind::BtraSiteCountMismatch {
                    recorded: f.btra_sites,
                    found: sites_per_func[fi],
                },
            ));
        }
    }

    // Push-mode window shape: each PushImm must be either a booby-trap
    // entry or the genuine return address of a well-formed window.
    for (fi, f) in program.funcs.iter().enumerate() {
        let info = &infos[fi];
        let n = f.insns.len();
        for i in 0..n {
            if !matches!(f.insns[i], Insn::PushImm { .. }) {
                continue;
            }
            match info.reloc_of.get(i).copied().flatten() {
                Some(RelocKind::BoobyTrap { .. }) => {}
                Some(RelocKind::RetAddr { func, insn }) => {
                    check_push_window(fi, f, info, i, (func, insn), errs);
                }
                _ => {
                    errs.push(err_at(fi, &f.name, Some(i), CheckKind::StrayPushImm));
                }
            }
        }
    }

    // AVX2-mode windows are synthetic data arrays; validate their slot
    // coverage.
    for obj in &program.data {
        if !obj.synthetic
            || !obj
                .relocs
                .iter()
                .any(|r| matches!(r.kind, RelocKind::RetAddr { .. }))
        {
            continue;
        }
        let mut push = |detail: String| {
            errs.push(err_global(CheckKind::MalformedWindow {
                detail: format!("array `{}`: {detail}", obj.name),
            }));
        };
        if obj.align < 32 || obj.bytes.len() % 32 != 0 || obj.bytes.is_empty() {
            push(format!(
                "not a whole number of 32-byte lanes (len {}, align {})",
                obj.bytes.len(),
                obj.align
            ));
            continue;
        }
        let slots = obj.bytes.len() / 8;
        let mut cover = vec![0u32; slots];
        let mut ret_addrs = 0u32;
        let mut bad_kind = false;
        for r in &obj.relocs {
            if r.offset % 8 != 0 || r.offset + 8 > obj.bytes.len() {
                continue; // reported by data_relocs
            }
            cover[r.offset / 8] += 1;
            match r.kind {
                RelocKind::RetAddr { .. } => ret_addrs += 1,
                RelocKind::BoobyTrap { .. } => {}
                _ => bad_kind = true,
            }
        }
        if ret_addrs != 1 {
            push(format!(
                "{ret_addrs} genuine return addresses (want exactly 1)"
            ));
        }
        if bad_kind {
            push("slot kind other than RetAddr/BoobyTrap".to_string());
        }
        if let Some(slot) = cover.iter().position(|&c| c != 1) {
            push(format!(
                "slot {slot} covered {} times (want 1)",
                cover[slot]
            ));
        }
    }
}

/// Validate the push-mode window around the genuine `PushImm` at `ra`:
/// a maximal contiguous `PushImm` run with booby traps on both sides of
/// the return address, an even pre-offset (so the caller's `rsp` stays
/// 16-byte aligned at the call), an exact teardown, and the covered
/// call immediately after the teardown.
fn check_push_window(
    fi: usize,
    f: &CompiledFunc,
    info: &FnInfo,
    ra: usize,
    target: (usize, usize),
    errs: &mut Vec<CheckError>,
) {
    let name = &f.name;
    let n = f.insns.len();
    let bad = |detail: String, errs: &mut Vec<CheckError>| {
        errs.push(err_at(
            fi,
            name,
            Some(ra),
            CheckKind::MalformedWindow { detail },
        ));
    };

    let mut start = ra;
    while start > 0 && matches!(f.insns[start - 1], Insn::PushImm { .. }) {
        start -= 1;
    }
    let mut end = ra;
    while end + 1 < n && matches!(f.insns[end + 1], Insn::PushImm { .. }) {
        end += 1;
    }

    for i in start..=end {
        if i == ra {
            continue;
        }
        match info.reloc_of.get(i).copied().flatten() {
            Some(RelocKind::BoobyTrap { .. }) => {}
            Some(RelocKind::RetAddr { .. }) => {
                bad("second genuine return address in window".to_string(), errs);
                return;
            }
            _ => {
                // Reported as StrayPushImm at that index.
            }
        }
    }

    if !(ra - start).is_multiple_of(2) {
        bad(
            format!("odd pre-offset {} misaligns the call", ra - start),
            errs,
        );
    }

    // Teardown: `add rsp, 8 * (slots above and including the RA)`.
    let expect = 8 * (end - ra + 1) as i64;
    match f.insns.get(end + 1).and_then(rsp_add_imm) {
        Some(imm) if imm == expect => {}
        _ => {
            bad(
                format!("missing `add rsp, {expect}` teardown after window"),
                errs,
            );
            return;
        }
    }

    // The covered call must immediately follow the teardown.
    if target.0 != fi || target.1 != end + 2 {
        bad(
            format!(
                "window covers call at {}+{} but sits before instruction {}",
                target.0,
                target.1,
                end + 2
            ),
            errs,
        );
    }
}

fn btdp(program: &Program, config: &DiversifyConfig, infos: &[FnInfo], errs: &mut Vec<CheckError>) {
    let btdp_cfg = config.btdp.filter(|b| b.array_len > 0);
    for (fi, f) in program.funcs.iter().enumerate() {
        if f.btdp_stores == 0 {
            continue;
        }
        let Some(b) = btdp_cfg else {
            errs.push(err_at(
                fi,
                &f.name,
                None,
                CheckKind::MissingBtdpStore {
                    recorded: f.btdp_stores,
                    found: 0,
                },
            ));
            continue;
        };
        let info = &infos[fi];
        // The prologue materializes the decoy-array pointer into r10:
        // a `LoadAbs` through the pointer global, or a direct `MovAbs`
        // of the (naive) static array.
        let ptr_at = f.insns.iter().enumerate().position(|(i, insn)| {
            let wants_ptr = matches!(
                info.reloc_of.get(i).copied().flatten(),
                Some(RelocKind::Data { index, .. }) if index == b.ptr_global as usize
            );
            wants_ptr
                && if b.naive_data_array {
                    matches!(insn, Insn::MovAbs { dst: Gpr::R10, .. })
                } else {
                    matches!(insn, Insn::LoadAbs { dst: Gpr::R10, .. })
                }
        });
        let Some(ptr_at) = ptr_at else {
            errs.push(err_at(fi, &f.name, None, CheckKind::MissingBtdpPointer));
            continue;
        };
        // Decoy stores follow as (load decoy via r10, store to frame
        // slot) pairs.
        let mut found = 0u32;
        let mut i = ptr_at + 1;
        while found < f.btdp_stores {
            let ok = matches!(
                f.insns.get(i),
                Some(Insn::Load { dst: Gpr::R11, mem }) if mem.base == Gpr::R10
            ) && matches!(
                f.insns.get(i + 1),
                Some(Insn::Store { mem, src: Gpr::R11 }) if mem.base == Gpr::Rsp
            );
            if !ok {
                break;
            }
            found += 1;
            i += 2;
        }
        if found < f.btdp_stores {
            errs.push(err_at(
                fi,
                &f.name,
                Some(ptr_at),
                CheckKind::MissingBtdpStore {
                    recorded: f.btdp_stores,
                    found,
                },
            ));
        }
    }
}
