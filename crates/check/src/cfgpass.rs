//! CFG recovery and relocation well-formedness.
//!
//! Pre-link code addresses branch targets symbolically: every `jmp`,
//! `jcc`, and `call` carries a relocation, and the instruction's
//! `target` field is a placeholder until `link` patches it. The CFG is
//! therefore recovered from the relocation table, not from the encoded
//! targets.

use crate::{err_at, CheckError, CheckKind};
use r2c_codegen::{CompiledFunc, Program, RelocKind, BOOBY_TRAP_RUN};
use r2c_vm::Insn;

/// Per-function facts shared by the later passes.
pub struct FnInfo {
    /// The relocation attached to each instruction, if any.
    pub reloc_of: Vec<Option<RelocKind>>,
    /// CFG successors of each instruction (intra-function indices).
    pub succs: Vec<Vec<usize>>,
    /// Reachability from instruction 0.
    pub reachable: Vec<bool>,
}

/// True if `link::patch` can rewrite this instruction.
fn patchable(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::MovAbs { .. }
            | Insn::PushImm { .. }
            | Insn::Call { .. }
            | Insn::Jmp { .. }
            | Insn::Jcc { .. }
            | Insn::LoadAbs { .. }
            | Insn::VLoadAbs { .. }
    )
}

/// Range-checks a relocation's reference against the program, returning
/// a description of the dangling reference if any.
pub(crate) fn kind_range_error(program: &Program, kind: &RelocKind) -> Option<String> {
    match *kind {
        RelocKind::Insn { func, insn } | RelocKind::RetAddr { func, insn } => {
            if func >= program.funcs.len() {
                Some(format!("function #{func} out of range"))
            } else if insn >= program.funcs[func].insns.len() {
                Some(format!(
                    "instruction {insn} out of range in `{}`",
                    program.funcs[func].name
                ))
            } else {
                None
            }
        }
        RelocKind::Func(func) => {
            (func >= program.funcs.len()).then(|| format!("function #{func} out of range"))
        }
        RelocKind::BoobyTrap { index, offset } => {
            if index as usize >= program.booby_trap_funcs as usize {
                Some(format!(
                    "booby trap #{index} out of range (program has {})",
                    program.booby_trap_funcs
                ))
            } else if offset >= BOOBY_TRAP_RUN {
                Some(format!("booby-trap offset {offset} past trap run"))
            } else {
                None
            }
        }
        RelocKind::Data { index, .. } => {
            (index >= program.data.len()).then(|| format!("data object #{index} out of range"))
        }
    }
}

pub(crate) fn check_function(
    program: &Program,
    fi: usize,
    f: &CompiledFunc,
    errs: &mut Vec<CheckError>,
) -> FnInfo {
    let n = f.insns.len();
    let mut reloc_of: Vec<Option<RelocKind>> = vec![None; n];

    for r in &f.relocs {
        if r.at >= n {
            errs.push(err_at(fi, &f.name, Some(r.at), CheckKind::RelocOutOfRange));
            continue;
        }
        if reloc_of[r.at].is_some() {
            errs.push(err_at(fi, &f.name, Some(r.at), CheckKind::DuplicateReloc));
            continue;
        }
        if !patchable(&f.insns[r.at]) {
            errs.push(err_at(fi, &f.name, Some(r.at), CheckKind::UnpatchableReloc));
        }
        if let Some(detail) = kind_range_error(program, &r.kind) {
            errs.push(err_at(
                fi,
                &f.name,
                Some(r.at),
                CheckKind::BadRelocRef { detail },
            ));
        }
        if matches!(f.insns[r.at], Insn::Jmp { .. } | Insn::Jcc { .. }) {
            match r.kind {
                RelocKind::Insn { func, .. } if func != fi => {
                    errs.push(err_at(
                        fi,
                        &f.name,
                        Some(r.at),
                        CheckKind::CrossFunctionBranch { target_func: func },
                    ));
                }
                RelocKind::Insn { .. } => {}
                _ => {
                    errs.push(err_at(
                        fi,
                        &f.name,
                        Some(r.at),
                        CheckKind::BadRelocRef {
                            detail: "branch relocation must name an instruction".to_string(),
                        },
                    ));
                }
            }
        }
        reloc_of[r.at] = Some(r.kind);
    }

    if n == 0 {
        errs.push(err_at(fi, &f.name, None, CheckKind::EmptyFunction));
        return FnInfo {
            reloc_of,
            succs: Vec::new(),
            reachable: Vec::new(),
        };
    }
    if !f.insns[n - 1].is_terminator() && !matches!(f.insns[n - 1], Insn::Trap) {
        errs.push(err_at(
            fi,
            &f.name,
            Some(n - 1),
            CheckKind::FallthroughOffEnd,
        ));
    }

    for (i, insn) in f.insns.iter().enumerate() {
        match insn {
            Insn::Jmp { .. } | Insn::Jcc { .. } | Insn::Call { .. } if reloc_of[i].is_none() => {
                errs.push(err_at(fi, &f.name, Some(i), CheckKind::MissingReloc));
            }
            Insn::JmpInd { .. } => {
                errs.push(err_at(fi, &f.name, Some(i), CheckKind::IndirectJump));
            }
            _ => {}
        }
    }

    // Recover successors from the relocation table. Branches whose
    // relocation was already reported as broken get no successor edge.
    let target = |i: usize| -> Option<usize> {
        match reloc_of[i] {
            Some(RelocKind::Insn { func, insn }) if func == fi && insn < n => Some(insn),
            _ => None,
        }
    };
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, insn) in f.insns.iter().enumerate() {
        match insn {
            Insn::Ret | Insn::Halt | Insn::Trap | Insn::JmpInd { .. } => {}
            Insn::Jmp { .. } => succs[i].extend(target(i)),
            Insn::Jcc { .. } => {
                succs[i].extend(target(i));
                if i + 1 < n {
                    succs[i].push(i + 1);
                }
            }
            _ => {
                if i + 1 < n {
                    succs[i].push(i + 1);
                }
            }
        }
    }

    let mut reachable = vec![false; n];
    let mut work = vec![0usize];
    reachable[0] = true;
    while let Some(i) = work.pop() {
        for &s in &succs[i] {
            if !reachable[s] {
                reachable[s] = true;
                work.push(s);
            }
        }
    }

    FnInfo {
        reloc_of,
        succs,
        reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2c_codegen::{FuncKind, Reloc};

    fn func(insns: Vec<Insn>, relocs: Vec<Reloc>) -> CompiledFunc {
        CompiledFunc {
            name: "f".to_string(),
            insns,
            relocs,
            unwind: vec![],
            kind: FuncKind::Normal,
            btra_sites: 0,
            btdp_stores: 0,
        }
    }

    fn program(f: CompiledFunc) -> Program {
        Program {
            funcs: vec![f],
            data: vec![],
            entry: 0,
            ctors: vec![],
            natives: vec![],
            booby_trap_funcs: 0,
        }
    }

    #[test]
    fn clean_straight_line() {
        let p = program(func(
            vec![
                Insn::MovImm {
                    dst: r2c_vm::Gpr::Rax,
                    imm: 1,
                },
                Insn::Ret,
            ],
            vec![],
        ));
        let mut errs = vec![];
        let info = check_function(&p, 0, &p.funcs[0], &mut errs);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(info.succs[0], vec![1]);
        assert!(info.reachable.iter().all(|&r| r));
    }

    #[test]
    fn fallthrough_off_end_flagged() {
        let p = program(func(
            vec![Insn::MovImm {
                dst: r2c_vm::Gpr::Rax,
                imm: 1,
            }],
            vec![],
        ));
        let mut errs = vec![];
        check_function(&p, 0, &p.funcs[0], &mut errs);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::FallthroughOffEnd)));
    }

    #[test]
    fn branch_without_reloc_flagged() {
        let p = program(func(vec![Insn::Jmp { target: 0 }], vec![]));
        let mut errs = vec![];
        check_function(&p, 0, &p.funcs[0], &mut errs);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::MissingReloc)));
    }

    #[test]
    fn dangling_insn_reloc_flagged() {
        let p = program(func(
            vec![Insn::Jmp { target: 0 }],
            vec![Reloc {
                at: 0,
                kind: RelocKind::Insn { func: 0, insn: 99 },
            }],
        ));
        let mut errs = vec![];
        check_function(&p, 0, &p.funcs[0], &mut errs);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::BadRelocRef { .. })));
    }

    #[test]
    fn cross_function_branch_flagged() {
        let mut p = program(func(
            vec![Insn::Jmp { target: 0 }],
            vec![Reloc {
                at: 0,
                kind: RelocKind::Insn { func: 1, insn: 0 },
            }],
        ));
        p.funcs.push(func(vec![Insn::Ret], vec![]));
        let mut errs = vec![];
        check_function(&p, 0, &p.funcs[0], &mut errs);
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, CheckKind::CrossFunctionBranch { target_func: 1 })));
    }
}
