//! Static checker (translation validator) for R²C compiled output.
//!
//! The code generator's security argument rests on structural invariants
//! of the emitted machine code: every genuine return address is hidden
//! inside a window of booby-trap addresses (BTRA, paper §5.1), every
//! protected frame carries its booby-trap decoy pointers (BTDP, §5.2),
//! execute-only text leaks no code address through readable data (XoM,
//! §4.2), and the usual compiler contracts (balanced stack, def-before-
//! use, callee-saved discipline) hold on every path. None of that is
//! observable from test *outcomes* alone — a silent regression in
//! `lower.rs`/`link.rs` would quietly invalidate every measurement.
//!
//! This crate re-derives those invariants from the artifacts themselves,
//! without executing anything:
//!
//! * [`check_program`] analyzes a pre-link [`Program`]: CFG recovery and
//!   relocation well-formedness, a stack-depth dataflow pass checked
//!   against the recorded unwind table, a register def-before-use /
//!   callee-saved conformance pass, and camouflage lints keyed off the
//!   [`DiversifyConfig`] that produced the program.
//! * [`check_image`] validates a linked [`Image`]: section permutation
//!   is a true permutation (no overlaps), every static branch target is
//!   an instruction boundary, symbols and data initializers stay inside
//!   their sections.
//!
//! Both return a flat list of structured [`CheckError`]s carrying
//! function and instruction coordinates, so a failure names the exact
//! emission site that broke the invariant.

use r2c_codegen::{DiversifyConfig, Program};
use r2c_vm::{Gpr, Image};

mod camo;
mod cfgpass;
mod decode_tv;
mod image;
mod regs;
mod stack;
mod sym;

pub use cfgpass::FnInfo;
pub use decode_tv::{check_decode, check_decoded_program, DecodeTvClass};

/// One checker finding, located as precisely as the pass allows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// Index of the offending function in `Program::funcs`, when the
    /// finding is function-scoped.
    pub func: Option<usize>,
    /// Name of the offending function, for readable reports.
    pub func_name: Option<String>,
    /// Instruction index within the function, when the finding is
    /// instruction-scoped.
    pub insn: Option<usize>,
    /// What went wrong.
    pub kind: CheckKind,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.func_name, self.insn) {
            (Some(name), Some(i)) => write!(f, "{name}+{i}: {}", self.kind),
            (Some(name), None) => write!(f, "{name}: {}", self.kind),
            (None, _) => write!(f, "{}", self.kind),
        }
    }
}

/// The specific invariant a [`CheckError`] reports as violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckKind {
    // --- CFG recovery / relocation well-formedness ---
    /// A function with no instructions at all.
    EmptyFunction,
    /// The last instruction of the function can fall through past the
    /// end of the function.
    FallthroughOffEnd,
    /// An indirect jump in pre-link code (the lowerer never emits one;
    /// its targets would be unrecoverable).
    IndirectJump,
    /// A direct branch/call with no relocation describing its target.
    MissingReloc,
    /// Two relocations attached to the same instruction.
    DuplicateReloc,
    /// A relocation pointing past the end of the function.
    RelocOutOfRange,
    /// A relocation attached to an instruction the linker cannot patch.
    UnpatchableReloc,
    /// A relocation referring to an out-of-range function, instruction,
    /// booby trap, or data object.
    BadRelocRef {
        /// Human-readable description of the dangling reference.
        detail: String,
    },
    /// A `jmp`/`jcc` whose relocation targets a different function.
    CrossFunctionBranch {
        /// The function the branch escapes into.
        target_func: usize,
    },

    // --- Stack-depth dataflow ---
    /// Two CFG paths reach the same instruction with different stack
    /// depths.
    DepthJoinMismatch {
        /// Depth already recorded for the instruction.
        a: i64,
        /// Conflicting depth arriving over another edge.
        b: i64,
    },
    /// The stack depth goes negative (pops exceed pushes).
    StackUnderflow {
        /// The (negative) computed depth.
        depth: i64,
    },
    /// `ret` executed with a non-zero frame depth.
    NonzeroDepthAtRet {
        /// The computed depth at the `ret`.
        depth: i64,
    },
    /// A call issued at a depth that breaks the ABI's 16-byte stack
    /// alignment contract (callee must see `rsp % 16 == 8`).
    MisalignedCall {
        /// The computed depth at the call.
        depth: i64,
    },
    /// The computed stack depth disagrees with the recorded
    /// `UnwindPoint` table.
    UnwindMismatch {
        /// Depth computed by the dataflow pass.
        computed: i64,
        /// Depth recorded in the unwind table.
        recorded: i64,
    },
    /// The `UnwindPoint` table itself is malformed (unsorted, missing
    /// the entry point, out of range).
    BadUnwindTable {
        /// Human-readable description.
        detail: String,
    },

    // --- Register conformance ---
    /// A register read on some path before any definition.
    UndefinedRegRead {
        /// The register read.
        reg: Gpr,
    },
    /// A conditional branch or `setcc` consuming flags that were not set
    /// by a comparison on every incoming path.
    UndefinedFlagsRead,
    /// A YMM register read before any definition.
    UndefinedYmmRead {
        /// The YMM register index.
        ymm: u8,
    },
    /// A callee-saved register written without having been saved in the
    /// prologue.
    CalleeSavedClobbered {
        /// The clobbered register.
        reg: Gpr,
    },
    /// The epilogue before a `ret` does not restore the prologue's saves
    /// in reverse order.
    EpilogueMismatch {
        /// Human-readable description.
        detail: String,
    },

    // --- Camouflage lints ---
    /// A `RetAddr` relocation whose target instruction is not a call.
    RetAddrNotAtCall {
        /// The instruction index the relocation claims as its call.
        target: usize,
    },
    /// More than one `RetAddr` relocation resolving to the same call.
    DuplicateRetAddr {
        /// The call instruction index.
        call: usize,
    },
    /// `CompiledFunc::btra_sites` disagrees with the number of distinct
    /// calls covered by `RetAddr` relocations.
    BtraSiteCountMismatch {
        /// Count recorded by the lowerer.
        recorded: u32,
        /// Count found by the checker.
        found: u32,
    },
    /// A BTRA window (push run or AVX2 array) that is not exactly one
    /// genuine return address camouflaged among booby traps.
    MalformedWindow {
        /// Human-readable description.
        detail: String,
    },
    /// A `PushImm` that is neither a booby-trap entry nor the genuine
    /// return address of a window (a raw immediate address push).
    StrayPushImm,
    /// A function with recorded BTDP stores whose prologue never loads
    /// the decoy-array pointer.
    MissingBtdpPointer,
    /// Fewer BTDP decoy stores in the prologue than the lowerer
    /// recorded.
    MissingBtdpStore {
        /// Count recorded by the lowerer.
        recorded: u32,
        /// Count found by the checker.
        found: u32,
    },
    /// A non-synthetic data object holding a relocation that would leak
    /// a code address through readable memory under XoM.
    CodeAddrInData {
        /// Name of the offending data object.
        object: String,
    },

    // --- Linked image ---
    /// A linked-image invariant violation (overlapping sections, branch
    /// to a non-boundary, symbol outside its section, ...).
    ImageError {
        /// Human-readable description.
        detail: String,
    },

    // --- Decode translation validation ---
    /// The decoded execution engine's pre-decoded program diverges from
    /// the reference semantics of the image it was built from.
    DecodeTv {
        /// Machine model the program was decoded for.
        machine: &'static str,
        /// Whether superinstruction fusion was enabled for the decode.
        fused: bool,
        /// Which proof obligation failed.
        class: DecodeTvClass,
        /// Human-readable description of the divergence.
        detail: String,
    },
}

impl CheckKind {
    /// Stable, payload-free name of this finding kind. The
    /// coverage-guided fuzzer hashes these into its coverage map, so a
    /// case that trips a *new class* of checker finding counts as new
    /// coverage regardless of the payload details; `DecodeTv` findings
    /// are additionally bucketed by their [`DecodeTvClass`].
    pub fn name(&self) -> &'static str {
        match self {
            CheckKind::EmptyFunction => "empty-function",
            CheckKind::FallthroughOffEnd => "fallthrough-off-end",
            CheckKind::IndirectJump => "indirect-jump",
            CheckKind::MissingReloc => "missing-reloc",
            CheckKind::DuplicateReloc => "duplicate-reloc",
            CheckKind::RelocOutOfRange => "reloc-out-of-range",
            CheckKind::UnpatchableReloc => "unpatchable-reloc",
            CheckKind::BadRelocRef { .. } => "bad-reloc-ref",
            CheckKind::CrossFunctionBranch { .. } => "cross-function-branch",
            CheckKind::DepthJoinMismatch { .. } => "depth-join-mismatch",
            CheckKind::StackUnderflow { .. } => "stack-underflow",
            CheckKind::NonzeroDepthAtRet { .. } => "nonzero-depth-at-ret",
            CheckKind::MisalignedCall { .. } => "misaligned-call",
            CheckKind::UnwindMismatch { .. } => "unwind-mismatch",
            CheckKind::BadUnwindTable { .. } => "bad-unwind-table",
            CheckKind::UndefinedRegRead { .. } => "undefined-reg-read",
            CheckKind::UndefinedFlagsRead => "undefined-flags-read",
            CheckKind::UndefinedYmmRead { .. } => "undefined-ymm-read",
            CheckKind::CalleeSavedClobbered { .. } => "callee-saved-clobbered",
            CheckKind::EpilogueMismatch { .. } => "epilogue-mismatch",
            CheckKind::RetAddrNotAtCall { .. } => "ret-addr-not-at-call",
            CheckKind::DuplicateRetAddr { .. } => "duplicate-ret-addr",
            CheckKind::BtraSiteCountMismatch { .. } => "btra-site-count-mismatch",
            CheckKind::MalformedWindow { .. } => "malformed-window",
            CheckKind::StrayPushImm => "stray-push-imm",
            CheckKind::MissingBtdpPointer => "missing-btdp-pointer",
            CheckKind::MissingBtdpStore { .. } => "missing-btdp-store",
            CheckKind::CodeAddrInData { .. } => "code-addr-in-data",
            CheckKind::ImageError { .. } => "image-error",
            CheckKind::DecodeTv { class, .. } => match class {
                DecodeTvClass::Shape => "decode-tv-shape",
                DecodeTvClass::Cost => "decode-tv-cost",
                DecodeTvClass::Target => "decode-tv-target",
                DecodeTvClass::State => "decode-tv-state",
            },
        }
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckKind::EmptyFunction => write!(f, "function has no instructions"),
            CheckKind::FallthroughOffEnd => {
                write!(f, "function can fall through past its last instruction")
            }
            CheckKind::IndirectJump => write!(f, "indirect jump in pre-link code"),
            CheckKind::MissingReloc => write!(f, "direct transfer has no relocation"),
            CheckKind::DuplicateReloc => write!(f, "multiple relocations on one instruction"),
            CheckKind::RelocOutOfRange => write!(f, "relocation points past end of function"),
            CheckKind::UnpatchableReloc => {
                write!(f, "relocation on an instruction the linker cannot patch")
            }
            CheckKind::BadRelocRef { detail } => write!(f, "dangling relocation: {detail}"),
            CheckKind::CrossFunctionBranch { target_func } => {
                write!(f, "branch escapes into function #{target_func}")
            }
            CheckKind::DepthJoinMismatch { a, b } => {
                write!(f, "stack depth mismatch at join: {a} vs {b}")
            }
            CheckKind::StackUnderflow { depth } => write!(f, "stack underflow (depth {depth})"),
            CheckKind::NonzeroDepthAtRet { depth } => {
                write!(f, "ret at non-zero stack depth {depth}")
            }
            CheckKind::MisalignedCall { depth } => {
                write!(f, "call at depth {depth} breaks 16-byte stack alignment")
            }
            CheckKind::UnwindMismatch { computed, recorded } => {
                write!(
                    f,
                    "computed stack depth {computed} disagrees with unwind table ({recorded})"
                )
            }
            CheckKind::BadUnwindTable { detail } => write!(f, "malformed unwind table: {detail}"),
            CheckKind::UndefinedRegRead { reg } => write!(f, "read of undefined register {reg}"),
            CheckKind::UndefinedFlagsRead => write!(f, "flags consumed without a comparison"),
            CheckKind::UndefinedYmmRead { ymm } => write!(f, "read of undefined ymm{ymm}"),
            CheckKind::CalleeSavedClobbered { reg } => {
                write!(f, "callee-saved {reg} clobbered without being saved")
            }
            CheckKind::EpilogueMismatch { detail } => write!(f, "epilogue mismatch: {detail}"),
            CheckKind::RetAddrNotAtCall { target } => {
                write!(
                    f,
                    "RetAddr relocation targets non-call instruction {target}"
                )
            }
            CheckKind::DuplicateRetAddr { call } => {
                write!(f, "multiple RetAddr relocations for call at {call}")
            }
            CheckKind::BtraSiteCountMismatch { recorded, found } => {
                write!(f, "btra_sites records {recorded} windows, found {found}")
            }
            CheckKind::MalformedWindow { detail } => write!(f, "malformed BTRA window: {detail}"),
            CheckKind::StrayPushImm => {
                write!(f, "PushImm without a RetAddr/BoobyTrap relocation")
            }
            CheckKind::MissingBtdpPointer => {
                write!(f, "prologue never loads the BTDP decoy-array pointer")
            }
            CheckKind::MissingBtdpStore { recorded, found } => {
                write!(
                    f,
                    "prologue has {found} BTDP stores, lowerer recorded {recorded}"
                )
            }
            CheckKind::CodeAddrInData { object } => {
                write!(
                    f,
                    "data object `{object}` leaks a code address (XoM violation)"
                )
            }
            CheckKind::ImageError { detail } => write!(f, "image: {detail}"),
            CheckKind::DecodeTv {
                machine,
                fused,
                class,
                detail,
            } => {
                let mode = if *fused { "fused" } else { "nofuse" };
                write!(f, "decode-tv[{machine}, {mode}] {class}: {detail}")
            }
        }
    }
}

pub(crate) fn err_at(func: usize, name: &str, insn: Option<usize>, kind: CheckKind) -> CheckError {
    CheckError {
        func: Some(func),
        func_name: Some(name.to_string()),
        insn,
        kind,
    }
}

pub(crate) fn err_global(kind: CheckKind) -> CheckError {
    CheckError {
        func: None,
        func_name: None,
        insn: None,
        kind,
    }
}

/// Statically validate a pre-link [`Program`] against the
/// [`DiversifyConfig`] that produced it.
///
/// Runs the CFG/reloc, stack-depth, register-conformance, and
/// camouflage passes over every function and data object. Returns every
/// finding; an empty vector means the program upholds all checked
/// invariants.
pub fn check_program(program: &Program, config: &DiversifyConfig) -> Vec<CheckError> {
    let mut errs = Vec::new();
    let mut infos = Vec::with_capacity(program.funcs.len());
    for (fi, f) in program.funcs.iter().enumerate() {
        let info = cfgpass::check_function(program, fi, f, &mut errs);
        stack::check_function(fi, f, &info, &mut errs);
        regs::check_function(fi, f, &info, &mut errs);
        infos.push(info);
    }
    camo::check(program, config, &infos, &mut errs);
    errs
}

/// Statically validate a linked [`Image`] against the
/// [`DiversifyConfig`] that produced it.
///
/// Checks the section layout permutation, instruction-boundary
/// resolution of every static transfer, symbol/table ranges, and data
/// initializer placement.
pub fn check_image(image: &Image, config: &DiversifyConfig) -> Vec<CheckError> {
    image::check(image, config)
}
