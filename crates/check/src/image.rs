//! Linked-image validation: the section permutation is a true
//! permutation (pairwise-disjoint regions), every statically-known
//! control transfer lands on an instruction boundary, and symbols,
//! data initializers, and unwind entries stay inside their sections.

use crate::{err_global, CheckError, CheckKind};
use r2c_codegen::DiversifyConfig;
use r2c_vm::{Image, Insn, SymbolKind, VAddr};

fn img_err(detail: String) -> CheckError {
    err_global(CheckKind::ImageError { detail })
}

fn img_err_at(insn: usize, detail: String) -> CheckError {
    CheckError {
        func: None,
        func_name: None,
        insn: Some(insn),
        kind: CheckKind::ImageError { detail },
    }
}

pub(crate) fn check(image: &Image, config: &DiversifyConfig) -> Vec<CheckError> {
    let mut errs = Vec::new();

    if let Err(detail) = image.validate() {
        errs.push(img_err(detail));
        // Structurally broken; the remaining checks assume validate()'s
        // basic shape (sorted insn_addrs, matching lengths).
        return errs;
    }

    if image.xom != config.xom {
        errs.push(img_err(format!(
            "image xom={} but config xom={}",
            image.xom, config.xom
        )));
    }

    let l = &image.layout;
    let sections = [
        ("text", l.text_base, l.text_end),
        ("data", l.data_base, l.data_end),
        ("heap", l.heap_base, l.heap_base + l.heap_size),
        ("stack", l.stack_top - l.stack_size, l.stack_top),
    ];
    for (i, &(an, ab, ae)) in sections.iter().enumerate() {
        if ab >= ae {
            errs.push(img_err(format!("empty/inverted {an} section")));
        }
        for &(bn, bb, be) in &sections[i + 1..] {
            if ab < be && bb < ae {
                errs.push(img_err(format!(
                    "sections {an} [{ab:#x},{ae:#x}) and {bn} [{bb:#x},{be:#x}) overlap"
                )));
            }
        }
    }

    let boundary = |a: VAddr| image.insn_addrs.binary_search(&a).is_ok();

    if !boundary(image.entry) {
        errs.push(img_err(format!(
            "entry {:#x} is not an instruction boundary",
            image.entry
        )));
    }
    for &c in &image.constructors {
        if !boundary(c) {
            errs.push(img_err(format!(
                "constructor {c:#x} is not an instruction boundary"
            )));
        }
    }

    for (i, insn) in image.insns.iter().enumerate() {
        if let Some(t) = insn.branch_target() {
            if !boundary(t) {
                errs.push(img_err_at(
                    i,
                    format!("transfer to {t:#x} is not an instruction boundary"),
                ));
            }
        }
        if let Insn::CallNative { native } = insn {
            if *native as usize >= image.natives.len() {
                errs.push(img_err_at(i, format!("native #{native} out of range")));
            }
        }
    }

    // Data initializers: inside the data section, non-overlapping.
    let mut runs: Vec<(VAddr, u64)> = image
        .data_init
        .iter()
        .filter(|(_, bytes)| !bytes.is_empty())
        .map(|(addr, bytes)| (*addr, bytes.len() as u64))
        .collect();
    runs.sort_unstable();
    for &(addr, len) in &runs {
        if addr < l.data_base || addr + len > l.data_end {
            errs.push(img_err(format!(
                "data initializer [{addr:#x},{:#x}) outside data section",
                addr + len
            )));
        }
    }
    for w in runs.windows(2) {
        if w[0].0 + w[0].1 > w[1].0 {
            errs.push(img_err(format!(
                "data initializers at {:#x} and {:#x} overlap",
                w[0].0, w[1].0
            )));
        }
    }

    // Symbols: code symbols on boundaries inside text, pairwise
    // disjoint (the function permutation must be a true permutation);
    // globals inside data, pairwise disjoint.
    let mut code: Vec<(VAddr, u64, &str)> = Vec::new();
    let mut data: Vec<(VAddr, u64, &str)> = Vec::new();
    for s in &image.symbols {
        match s.kind {
            SymbolKind::Function | SymbolKind::BoobyTrap => {
                if !boundary(s.addr) {
                    errs.push(img_err(format!(
                        "symbol `{}` at {:#x} is not an instruction boundary",
                        s.name, s.addr
                    )));
                }
                if s.addr < l.text_base || s.addr + s.size > l.text_end {
                    errs.push(img_err(format!(
                        "code symbol `{}` outside text section",
                        s.name
                    )));
                }
                if s.size > 0 {
                    code.push((s.addr, s.size, &s.name));
                }
            }
            SymbolKind::Global => {
                if s.addr < l.data_base || s.addr + s.size > l.data_end {
                    errs.push(img_err(format!("global `{}` outside data section", s.name)));
                }
                if s.size > 0 {
                    data.push((s.addr, s.size, &s.name));
                }
            }
        }
    }
    for set in [&mut code, &mut data] {
        set.sort_unstable();
        for w in set.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                errs.push(img_err(format!(
                    "symbols `{}` and `{}` overlap",
                    w[0].2, w[1].2
                )));
            }
        }
    }

    for e in image.unwind.iter() {
        if e.start >= e.end {
            errs.push(img_err(format!(
                "unwind entry [{:#x},{:#x}) is empty/inverted",
                e.start, e.end
            )));
        }
        if e.start < l.text_base || e.end > l.text_end {
            errs.push(img_err(format!(
                "unwind entry [{:#x},{:#x}) outside text section",
                e.start, e.end
            )));
        }
    }

    errs
}
